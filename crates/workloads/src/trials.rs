//! Figure 4 trial batching on the unified harness.
//!
//! A Figure 4 row compares one workload across several input seeds: for
//! each seed the workload runs under mips64 and under CheriABI, both ABIs
//! must compute the same result, and the per-seed overhead percentages
//! feed the median/IQR columns. This module lowers a set of named
//! workloads into paired [`RunSpec`]s (mips64 then purecap, per seed, in
//! workload-major order), fans them across the harness, and reduces the
//! reports to [`OverheadRow`]s. Because reports come back in submission
//! order, the rows — and every statistic computed from them — are
//! identical at any `--jobs` level.
//!
//! A [`Trial`] names its guest program declaratively (a
//! [`ProgramSpec`]), so the caller must supply a [`Registry`] that can
//! lower every trial it passes — [`crate::registry`] covers the Figure 4
//! workloads; `cheri_bench::registry()` covers everything.

use crate::Workload;
use cheri_isa::codegen::CodegenOpts;
use cheri_kernel::{AbiMode, ExitStatus};
use cheriabi::harness::{CaseOutcome, CaseReport, Harness, RunSpec};
use cheriabi::spec::{ProgramSpec, Registry};
use cheriabi::Metrics;

/// Instruction budget per trial run (matches the `cheri-bench` default).
pub const TRIAL_BUDGET: u64 = 2_000_000_000;

/// One named workload prepared for trial batching.
#[derive(Clone, Debug)]
pub struct Trial {
    /// Display name (the Figure 4 x-axis label).
    pub name: String,
    /// Declarative identity of the guest program.
    pub program: ProgramSpec,
}

impl Trial {
    /// A trial from a name and a program spec.
    #[must_use]
    pub fn new(name: impl Into<String>, program: ProgramSpec) -> Trial {
        Trial {
            name: name.into(),
            program,
        }
    }

    /// A trial from a [`Workload`].
    #[must_use]
    pub fn from_workload(w: &Workload) -> Trial {
        Trial::new(
            w.name,
            ProgramSpec::Workload {
                name: w.name.to_string(),
            },
        )
    }
}

/// One Figure 4 row: per-seed overhead percentages of CheriABI over the
/// mips64 baseline, in seed order.
#[derive(Clone, Debug, PartialEq)]
pub struct OverheadRow {
    /// Workload name.
    pub name: String,
    /// Instruction overhead per seed, percent.
    pub instr: Vec<f64>,
    /// Cycle overhead per seed, percent.
    pub cycles: Vec<f64>,
    /// L2-miss overhead per seed, percent.
    pub l2: Vec<f64>,
}

fn clean_metrics(report: &CaseReport) -> (ExitStatus, Metrics) {
    match &report.outcome {
        CaseOutcome::Exited(status @ ExitStatus::Code(_)) => (*status, report.metrics),
        other => panic!("{}: trial stopped abnormally: {other}", report.name),
    }
}

/// The paired spec matrix for `trials` × `seeds` (mips64 then purecap, per
/// seed, workload-major) — the input to [`rows_from_reports`], and to the
/// harness's caching / sharding / streaming session modes in between.
#[must_use]
pub fn trial_specs(trials: &[Trial], seeds: &[u64]) -> Vec<RunSpec> {
    let mut specs = Vec::with_capacity(trials.len() * seeds.len() * 2);
    for trial in trials {
        for &seed in seeds {
            specs.push(
                RunSpec::new(
                    format!("{}-s{}-mips64", trial.name, seed),
                    trial.program.clone(),
                    CodegenOpts::mips64(),
                    AbiMode::Mips64,
                )
                .with_seed(seed)
                .with_budget(TRIAL_BUDGET),
            );
            specs.push(
                RunSpec::new(
                    format!("{}-s{}-cheriabi", trial.name, seed),
                    trial.program.clone(),
                    CodegenOpts::purecap(),
                    AbiMode::CheriAbi,
                )
                .with_seed(seed)
                .with_budget(TRIAL_BUDGET),
            );
        }
    }
    specs
}

/// Reduces the reports of a [`trial_specs`] run (in spec order, for the
/// same `trials` and `seeds`) to one [`OverheadRow`] per trial.
///
/// # Panics
///
/// Panics if any run failed to load, panicked, or exited abnormally, or if
/// the two ABIs disagree on a workload's result — Figure 4 only compares
/// runs that computed the same answer.
#[must_use]
pub fn rows_from_reports(
    trials: &[Trial],
    seeds: &[u64],
    reports: &[CaseReport],
) -> Vec<OverheadRow> {
    let mut rows = Vec::with_capacity(trials.len());
    let mut next = reports.iter();
    for trial in trials {
        let mut row = OverheadRow {
            name: trial.name.clone(),
            instr: Vec::with_capacity(seeds.len()),
            cycles: Vec::with_capacity(seeds.len()),
            l2: Vec::with_capacity(seeds.len()),
        };
        for _ in seeds {
            let (sm, mm) = clean_metrics(next.next().expect("one report per spec"));
            let (sc, mc) = clean_metrics(next.next().expect("one report per spec"));
            assert_eq!(sm, sc, "{}: results differ between ABIs", trial.name);
            let o = mc.overhead_vs(&mm);
            row.instr.push((o.instructions - 1.0) * 100.0);
            row.cycles.push((o.cycles - 1.0) * 100.0);
            row.l2.push((o.l2_misses - 1.0) * 100.0);
        }
        rows.push(row);
    }
    rows
}

/// Runs every trial at every seed under both ABIs across `jobs` workers
/// and reduces to one [`OverheadRow`] per trial. The registry must lower
/// every trial's program.
///
/// # Panics
///
/// As [`rows_from_reports`].
#[must_use]
pub fn overhead_rows(
    registry: &Registry,
    trials: &[Trial],
    seeds: &[u64],
    jobs: usize,
) -> Vec<OverheadRow> {
    let reports = Harness::new(jobs).run(registry, &trial_specs(trials, seeds));
    rows_from_reports(trials, seeds, &reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_identical_at_any_job_count() {
        let trials: Vec<Trial> = crate::mibench()
            .iter()
            .take(2)
            .map(Trial::from_workload)
            .collect();
        let registry = crate::registry();
        let seq = overhead_rows(&registry, &trials, &[3, 7], 1);
        let par = overhead_rows(&registry, &trials, &[3, 7], 8);
        assert_eq!(seq, par);
        assert_eq!(seq.len(), 2);
        assert_eq!(seq[0].instr.len(), 2);
    }
}
