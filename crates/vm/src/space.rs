//! Per-process address spaces: mapping lists and page state.

use cheri_cap::{CapFormat, CapSource, Capability, Perms, PrincipalId};
use cheri_mem::{FrameId, FRAME_SIZE};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// Exclusive top of the user virtual address range.
pub const USER_TOP: u64 = 0x4000_0000_0000;

/// Identifier of an address space.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AsId(pub u64);

/// Page protection, as requested via `mmap`-style flags.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Prot(u8);

impl Prot {
    /// No access.
    pub const NONE: Prot = Prot(0);
    /// Readable.
    pub const READ: Prot = Prot(1);
    /// Writable.
    pub const WRITE: Prot = Prot(2);
    /// Executable.
    pub const EXEC: Prot = Prot(4);

    /// Read + write.
    #[must_use]
    pub fn rw() -> Prot {
        Prot(Self::READ.0 | Self::WRITE.0)
    }

    /// Read + execute.
    #[must_use]
    pub fn rx() -> Prot {
        Prot(Self::READ.0 | Self::EXEC.0)
    }

    /// Union of two protections.
    #[must_use]
    pub fn union(self, o: Prot) -> Prot {
        Prot(self.0 | o.0)
    }

    /// Whether all bits of `o` are present.
    #[must_use]
    pub fn allows(self, o: Prot) -> bool {
        self.0 & o.0 == o.0
    }

    /// The capability permissions the kernel grants on a mapping with this
    /// protection — how `mmap` returns "capabilities that are bounded to the
    /// requested allocation length, with permissions derived from the
    /// requested page permissions" (§4).
    #[must_use]
    pub fn as_cap_perms(self) -> Perms {
        let mut p = Perms::GLOBAL | Perms::VMMAP;
        if self.allows(Prot::READ) {
            p |= Perms::LOAD | Perms::LOAD_CAP;
        }
        if self.allows(Prot::WRITE) {
            p |= Perms::STORE | Perms::STORE_CAP | Perms::STORE_LOCAL_CAP;
        }
        if self.allows(Prot::EXEC) {
            p |= Perms::EXECUTE;
        }
        p
    }
}

impl fmt::Debug for Prot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.allows(Prot::READ) { "r" } else { "-" },
            if self.allows(Prot::WRITE) { "w" } else { "-" },
            if self.allows(Prot::EXEC) { "x" } else { "-" },
        )
    }
}

/// What initially backs a mapping's pages.
#[derive(Clone)]
pub enum Backing {
    /// Demand-zero anonymous memory.
    Zero,
    /// A read-only image (executable/library segment template); byte `i` of
    /// the mapping reads `data[offset + i]`, zero beyond the template.
    Image {
        /// Source bytes.
        data: Arc<Vec<u8>>,
        /// Offset of this mapping within `data`.
        offset: u64,
    },
    /// System-V style shared segment; pages alias the segment's frames.
    Shared {
        /// Segment id in the [`crate::Vm`]'s shared-segment table.
        seg: u64,
    },
}

impl fmt::Debug for Backing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backing::Zero => write!(f, "zero"),
            Backing::Image { offset, .. } => write!(f, "image+{offset:#x}"),
            Backing::Shared { seg } => write!(f, "shm{seg}"),
        }
    }
}

/// One contiguous mapping in an address space.
#[derive(Clone, Debug)]
pub struct Mapping {
    /// Start virtual address (page-aligned).
    pub start: u64,
    /// Length in bytes (page-aligned).
    pub len: u64,
    /// Protection.
    pub prot: Prot,
    /// Initial backing for faulted pages.
    pub backing: Backing,
    /// Human-readable tag ("text", "stack", "heap", ...) used by the
    /// Figure 5 trace analysis.
    pub label: &'static str,
}

impl Mapping {
    /// Exclusive end address.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.start + self.len
    }
}

/// Residency state of one virtual page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageState {
    /// Mapped to a physical frame. `cow` marks copy-on-write sharing.
    Resident {
        /// Backing frame.
        frame: FrameId,
        /// Write access must first copy.
        cow: bool,
    },
    /// Paged out to the given swap slot.
    Swapped {
        /// Index into the [`crate::Vm`] swap table.
        slot: u64,
    },
}

/// A single process address space.
#[derive(Debug)]
pub struct AddressSpace {
    /// This space's id.
    pub id: AsId,
    /// The owning abstract principal (fresh per `execve`, §3).
    pub principal: PrincipalId,
    /// Root capability for this principal's user range: the source of all
    /// rederivations (swap-in, debugger injection).
    pub root: Capability,
    /// Mappings keyed by start address.
    pub maps: BTreeMap<u64, Mapping>,
    /// Per-page residency, keyed by virtual page number.
    pub pages: HashMap<u64, PageState>,
    /// Bump hint for placing anonymous mappings.
    pub mmap_hint: u64,
}

impl AddressSpace {
    /// Creates an empty space for `principal` with a root capability of the
    /// given format covering the user range.
    #[must_use]
    pub fn new(id: AsId, principal: PrincipalId, fmt: CapFormat) -> AddressSpace {
        let root = Capability::root(fmt, principal, CapSource::Exec)
            .and_perms(Perms::ALL - Perms::SYSTEM_REGS - Perms::KERNEL_DIRECT);
        AddressSpace {
            id,
            principal,
            root,
            maps: BTreeMap::new(),
            pages: HashMap::new(),
            mmap_hint: 0x70_0000_0000,
        }
    }

    /// The mapping containing `vaddr`, if any.
    #[must_use]
    pub fn mapping_at(&self, vaddr: u64) -> Option<&Mapping> {
        self.maps
            .range(..=vaddr)
            .next_back()
            .map(|(_, m)| m)
            .filter(|m| vaddr < m.end())
    }

    /// Whether any byte of `[start, start+len)` is mapped.
    #[must_use]
    pub fn is_range_mapped(&self, start: u64, len: u64) -> bool {
        let end = start.saturating_add(len);
        self.maps.values().any(|m| m.start < end && start < m.end())
    }

    /// Finds a free, page-aligned region of `len` bytes at or after the
    /// mmap hint.
    #[must_use]
    pub fn find_free(&self, len: u64) -> Option<u64> {
        let len = len.div_ceil(FRAME_SIZE) * FRAME_SIZE;
        let mut candidate = self.mmap_hint;
        loop {
            if candidate + len > USER_TOP {
                return None;
            }
            match self
                .maps
                .values()
                .find(|m| m.start < candidate + len && candidate < m.end())
            {
                None => return Some(candidate),
                Some(m) => candidate = m.end(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        AddressSpace::new(AsId(1), PrincipalId::from_raw(1), CapFormat::C128)
    }

    #[test]
    fn prot_to_perms() {
        let p = Prot::rw().as_cap_perms();
        assert!(p.contains(Perms::LOAD | Perms::STORE | Perms::STORE_CAP | Perms::VMMAP));
        assert!(!p.contains(Perms::EXECUTE));
        let x = Prot::rx().as_cap_perms();
        assert!(x.contains(Perms::EXECUTE | Perms::LOAD));
        assert!(!x.contains(Perms::STORE));
    }

    #[test]
    fn mapping_lookup() {
        let mut s = space();
        s.maps.insert(
            0x1000,
            Mapping {
                start: 0x1000,
                len: 0x2000,
                prot: Prot::rw(),
                backing: Backing::Zero,
                label: "a",
            },
        );
        assert!(s.mapping_at(0x1000).is_some());
        assert!(s.mapping_at(0x2fff).is_some());
        assert!(s.mapping_at(0x3000).is_none());
        assert!(s.mapping_at(0xfff).is_none());
        assert!(s.is_range_mapped(0x2000, 0x2000));
        assert!(!s.is_range_mapped(0x3000, 0x1000));
    }

    #[test]
    fn find_free_skips_existing() {
        let mut s = space();
        let hint = s.mmap_hint;
        s.maps.insert(
            hint,
            Mapping {
                start: hint,
                len: 0x3000,
                prot: Prot::rw(),
                backing: Backing::Zero,
                label: "x",
            },
        );
        let got = s.find_free(0x1000).unwrap();
        assert_eq!(got, hint + 0x3000);
    }

    #[test]
    fn root_capability_excludes_kernel_perms() {
        let s = space();
        assert!(s.root.tag());
        assert!(!s.root.perms().contains(Perms::SYSTEM_REGS));
        assert!(!s.root.perms().contains(Perms::KERNEL_DIRECT));
        assert_eq!(s.root.provenance().principal, PrincipalId::from_raw(1));
    }
}
