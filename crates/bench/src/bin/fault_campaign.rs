//! Seeded fault-injection campaign: sweeps every fault kind over both
//! ABIs and a matrix of seeds, then machine-checks the robustness claims
//! of the fault plane:
//!
//! * **zero host panics** — injected corruption must surface as a guest
//!   outcome (clean capability fault, SIGBUS, errno, or a degraded but
//!   valid exit), never as a panic in the simulator itself;
//! * **zero silent successes** — a run that exits normally while a
//!   corrupted capability was loaded with its tag still set means the
//!   tag-clearing discipline failed. `--weaken-tag-clear` arms exactly
//!   that broken discipline as a self-test: the campaign must then fail.
//!
//! Each cell is one `(seed, fault kind, ABI, probe family)` tuple. Two
//! probe families run per triple: a single-process probe chosen per kind
//! (a capability-churn loop for memory and syscall faults, a swap-stress
//! loop for swap-device faults), and a scenario-plane probe — the same
//! fault armed mid-serve in the multi-process minidb scenario, where a
//! killed process surfaces as a degraded request count or a diagnosed
//! deadlock. Cells ride
//! the shared harness session, so `--jobs`, `--cache`, `--shard`,
//! `--retries`, `--fleet` and `--dump-specs` all apply, and the campaign
//! JSON — built solely from deterministic fields (outcomes and fault
//! counters, never wall time) — is byte-identical at any `--jobs` level
//! and across fleet-dispatched runs.
//!
//! Extra flags beyond the shared set:
//!
//! * `--seeds N` — seeds per (kind, ABI) cell (default 17, giving
//!   17 × 6 × 2 × 2 = 408 cells);
//! * `--weaken-tag-clear` — self-test hook, see above;
//! * `--out PATH` — where to write the campaign JSON (default
//!   `BENCH_faults.json`; `-` for stdout only).
//!
//! Exits non-zero iff any cell is a host panic or a silent success.

use cheri_bench::cli::{self, BenchOpts};
use cheri_isa::codegen::CodegenOpts;
use cheri_kernel::{AbiMode, KernelConfig};
use cheriabi::fault::{all_kinds, FaultKind, FaultPlan};
use cheriabi::harness::{CaseOutcome, CaseReport, RunSpec};
use cheriabi::json::Json;
use cheriabi::spec::ProgramSpec;
use cheriabi::ExitStatus;

/// How one cell's outcome is judged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CellClass {
    /// The simulator itself panicked — a campaign failure.
    HostPanic,
    /// The guest exited normally after loading a still-tagged corrupted
    /// capability — a campaign failure.
    SilentSuccess,
    /// The differential oracle caught the fast machine disagreeing with
    /// the reference semantics (`--oracle` runs) — a campaign failure.
    Divergence,
    /// The fault surfaced as a guest-visible fault or signal.
    CleanFault,
    /// The fault fired and the guest still produced a valid exit (retry
    /// absorbed it, errno was handled, or data corruption changed the
    /// result without touching a capability).
    Degraded,
    /// The fault never fired (e.g. the trigger point was past the end of
    /// the run) and the guest was untouched.
    Unaffected,
    /// Load failure or deadline — environmental, not a fault-plane verdict.
    Other,
}

impl CellClass {
    fn tag(self) -> &'static str {
        match self {
            CellClass::HostPanic => "host-panic",
            CellClass::SilentSuccess => "silent-success",
            CellClass::Divergence => "divergence",
            CellClass::CleanFault => "clean-fault",
            CellClass::Degraded => "degraded",
            CellClass::Unaffected => "unaffected",
            CellClass::Other => "other",
        }
    }
}

fn classify(report: &CaseReport) -> CellClass {
    let fired = report.faults.is_some_and(|c| c.fired());
    let escaped = report.faults.is_some_and(|c| c.corrupt_cap_loads > 0);
    match &report.outcome {
        CaseOutcome::Panicked(_) => CellClass::HostPanic,
        CaseOutcome::Exited(ExitStatus::Code(_)) if escaped => CellClass::SilentSuccess,
        CaseOutcome::Exited(ExitStatus::Code(_)) if fired => CellClass::Degraded,
        CaseOutcome::Exited(ExitStatus::Code(_)) => CellClass::Unaffected,
        CaseOutcome::Exited(_) => CellClass::CleanFault,
        // A deadlocked scenario is the fault surfacing as a guest-visible
        // outcome (a killed server strands its clients on reply pipes);
        // the kernel's diagnostics travel in the outcome JSON.
        CaseOutcome::Deadlock(_) => CellClass::CleanFault,
        CaseOutcome::Divergence(_) => CellClass::Divergence,
        CaseOutcome::LoadFailed(_) | CaseOutcome::DeadlineExceeded => CellClass::Other,
    }
}

/// The probe program for a fault kind: swap faults need pages on the swap
/// device; everything else wants a tight capability-churn loop.
fn probe_for(kind: FaultKind) -> ProgramSpec {
    match kind {
        FaultKind::SwapReadErr { .. } | FaultKind::SwapWriteErr { .. } => {
            ProgramSpec::SwapStress { pages: 5 }
        }
        _ => ProgramSpec::CapChurn { iters: 40 },
    }
}

/// The scenario-plane probe for a fault kind: the same fault injected
/// mid-serve into a multi-process minidb scenario. Swap faults only have
/// something to hit when the server forces swap traffic.
fn scenario_probe_for(kind: FaultKind) -> ProgramSpec {
    ProgramSpec::Scenario {
        clients: 2,
        queries: 4,
        mix: "mixed".to_string(),
        swap_pressure: matches!(
            kind,
            FaultKind::SwapReadErr { .. } | FaultKind::SwapWriteErr { .. }
        ),
    }
}

fn build_specs(seeds: u64, weaken: bool) -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for seed in 0..seeds {
        // Vary the trigger point and bit with the seed so the sweep hits
        // early, mid and late events and different corruption shapes. Each
        // family's window is scaled to how many of its events a probe run
        // actually produces (memory mutations are plentiful; swap-device
        // transfers and syscalls number in the single digits).
        let after = 1 + (seed * 13) % 60;
        let bit = u32::try_from((seed * 7) % 64).expect("bit < 64");
        let swap_at = 1 + seed % 8;
        let syscall_at = 1 + seed % 3;
        for kind in [
            FaultKind::BitFlipData {
                after_writes: after,
                bit,
            },
            FaultKind::BitFlipCap {
                after_writes: after,
                bit,
            },
            FaultKind::SwapReadErr {
                at: swap_at,
                count: 1 + u32::try_from(seed % 2).expect("small"),
            },
            FaultKind::SwapWriteErr {
                at: swap_at,
                count: 1 + u32::try_from(seed % 2).expect("small"),
            },
            FaultKind::SyscallEintr { at: syscall_at },
            FaultKind::SyscallEnomem { at: syscall_at },
        ] {
            for (abi, opts) in [
                (AbiMode::Mips64, CodegenOpts::mips64()),
                (AbiMode::CheriAbi, CodegenOpts::purecap()),
            ] {
                let mut plan = FaultPlan::new(kind);
                plan.weaken_tag_clear = weaken;
                specs.push(
                    RunSpec::new(
                        format!("{}-{abi}-s{seed}", kind.tag()),
                        probe_for(kind),
                        opts,
                        abi,
                    )
                    .with_seed(seed)
                    .with_fault(plan),
                );
                // Scenario cell family: the same fault armed mid-serve in
                // the multi-process minidb scenario. Tight pipes keep the
                // processes blocking/waking, so the fault lands amid real
                // scheduler traffic; a killed process shows up as either a
                // degraded request count or a diagnosed deadlock.
                let mut plan = FaultPlan::new(kind);
                plan.weaken_tag_clear = weaken;
                specs.push(
                    RunSpec::new(
                        format!("scenario-{}-{abi}-s{seed}", kind.tag()),
                        scenario_probe_for(kind),
                        opts,
                        abi,
                    )
                    .with_seed(seed)
                    .with_config(KernelConfig {
                        pipe_capacity: 6,
                        ..KernelConfig::default()
                    })
                    .with_fault(plan),
                );
            }
        }
    }
    specs
}

fn main() {
    let mut rest = Vec::new();
    let mut seeds: u64 = 17;
    let mut weaken = false;
    let mut out = "BENCH_faults.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => seeds = n,
                _ => {
                    eprintln!("--seeds needs a positive number");
                    std::process::exit(2);
                }
            },
            "--weaken-tag-clear" => weaken = true,
            "--out" => match args.next() {
                Some(path) => out = path,
                None => {
                    eprintln!("--out needs a path (or - for stdout only)");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!("fault_campaign: seeded fault-injection sweep");
                println!("{}", cli::USAGE);
                println!(
                    "  --seeds N      seeds per (kind, ABI) cell (default 17)\n  \
                     --weaken-tag-clear  self-test: break tag clearing; the\n                 \
                     campaign must then report silent successes and fail\n  \
                     --out PATH     campaign JSON destination (default\n                 \
                     BENCH_faults.json; - for stdout only)"
                );
                return;
            }
            other => rest.push(other.to_string()),
        }
    }
    let opts: BenchOpts = match cli::parse_args(rest) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let specs = build_specs(seeds, weaken);
    let Some(reports) = cli::run_specs(&cheri_bench::registry(), &specs, &opts) else {
        return;
    };

    let mut totals = [0usize; 7];
    let mut cells = Vec::new();
    for (spec, report) in specs.iter().zip(&reports) {
        let class = classify(report);
        totals[class as usize] += 1;
        let plan = spec.fault.as_ref().expect("every cell is planned");
        let mut fields = vec![
            ("case", Json::str(spec.name.clone())),
            ("kind", Json::str(plan.kind.tag())),
            ("abi", Json::str(spec.abi.to_string())),
            ("seed", Json::u64(spec.seed)),
            ("class", Json::str(class.tag())),
            ("outcome", report.outcome.to_json()),
        ];
        if let Some(counters) = &report.faults {
            fields.push(("faults", counters.to_json()));
        }
        cells.push(Json::obj(fields));
    }
    let host_panics = totals[CellClass::HostPanic as usize];
    let silent = totals[CellClass::SilentSuccess as usize];
    let divergences = totals[CellClass::Divergence as usize];
    let campaign_fields = vec![
        ("campaign", Json::str("faults")),
        ("seeds", Json::u64(seeds)),
        ("weaken_tag_clear", Json::Bool(weaken)),
        ("cells", Json::u64(cells.len() as u64)),
        ("host_panics", Json::u64(host_panics as u64)),
        ("silent_successes", Json::u64(silent as u64)),
        ("divergences", Json::u64(divergences as u64)),
        (
            "clean_faults",
            Json::u64(totals[CellClass::CleanFault as usize] as u64),
        ),
        (
            "degraded",
            Json::u64(totals[CellClass::Degraded as usize] as u64),
        ),
        (
            "unaffected",
            Json::u64(totals[CellClass::Unaffected as usize] as u64),
        ),
        ("other", Json::u64(totals[CellClass::Other as usize] as u64)),
        ("results", Json::Arr(cells)),
    ];
    let campaign = Json::obj(campaign_fields);
    if out == "-" {
        println!("{campaign}");
    } else {
        let mut text = campaign.to_string();
        text.push('\n');
        if let Err(err) = std::fs::write(&out, text) {
            eprintln!("fault_campaign: writing {out}: {err}");
            std::process::exit(2);
        }
    }
    if opts.json {
        println!(
            "{{\"campaign\":\"faults\",\"cells\":{},\"host_panics\":{host_panics},\"silent_successes\":{silent}}}",
            reports.len()
        );
    } else {
        println!(
            "fault campaign: {} cells ({} seeds x {} kinds x 2 ABIs x 2 probe families)",
            reports.len(),
            seeds,
            all_kinds(1, 0).len()
        );
        for class in [
            CellClass::HostPanic,
            CellClass::SilentSuccess,
            CellClass::Divergence,
            CellClass::CleanFault,
            CellClass::Degraded,
            CellClass::Unaffected,
            CellClass::Other,
        ] {
            println!("  {:<16} {:>5}", class.tag(), totals[class as usize]);
        }
        if out != "-" {
            println!("campaign JSON: {out}");
        }
    }
    if host_panics > 0 || silent > 0 || divergences > 0 {
        eprintln!(
            "fault_campaign: FAILED — {host_panics} host panics, {silent} silent successes, \
             {divergences} divergences"
        );
        std::process::exit(1);
    }
}
