//! Whole-system integration tests spanning every crate: multiple processes,
//! both ABIs side by side, IPC, debugging, swap pressure and the design
//! ablations of DESIGN.md.

use cheri_isa::codegen::{CodegenOpts, FnBuilder, Ptr, Val};
use cheri_isa::Width;
use cheri_kernel::{Kernel, KernelConfig, RunOutcome};
use cheriabi::guest::GuestOps;
use cheriabi::verify::check_process;
use cheriabi::{AbiMode, ExitStatus, Perms, ProgramBuilder, SpawnOpts, Sys, System, TrapCause};

fn opts_for(abi: AbiMode) -> CodegenOpts {
    match abi {
        AbiMode::Mips64 => CodegenOpts::mips64(),
        AbiMode::CheriAbi => CodegenOpts::purecap(),
    }
}

fn program(abi: AbiMode, body: impl FnOnce(&mut FnBuilder<'_>)) -> cheriabi::Program {
    let mut pb = ProgramBuilder::new("t");
    let mut exe = pb.object("t");
    {
        let mut f = FnBuilder::begin(&mut exe, "main", opts_for(abi));
        body(&mut f);
    }
    exe.set_entry("main");
    pb.add(exe.finish());
    pb.finish()
}

/// A legacy mips64 process and a CheriABI process run side by side in one
/// kernel ("we continue to support the large suite of legacy mips64
/// userspace applications ... alongside CheriABI userspace programs", §4)
/// and exchange data through System-V shared memory.
#[test]
fn mixed_abi_processes_share_memory() {
    let writer = program(AbiMode::Mips64, |f| {
        f.li(Val(0), 99); // key
        f.set_arg_val(0, Val(0));
        f.li(Val(1), 4096);
        f.set_arg_val(1, Val(1));
        f.syscall(Sys::Shmget as i64);
        f.ret_val_to(Val(2));
        f.set_arg_val(0, Val(2));
        f.set_arg_null(1);
        f.syscall(Sys::Shmat as i64);
        f.ret_ptr_to(Ptr(0));
        f.li(Val(3), 0xbeef);
        f.store(Val(3), Ptr(0), 64, Width::D);
        f.sys_exit_imm(0);
    });
    let reader = program(AbiMode::CheriAbi, |f| {
        f.li(Val(0), 99);
        f.set_arg_val(0, Val(0));
        f.li(Val(1), 4096);
        f.set_arg_val(1, Val(1));
        f.syscall(Sys::Shmget as i64);
        f.ret_val_to(Val(2));
        f.set_arg_val(0, Val(2));
        f.set_arg_null(1);
        f.syscall(Sys::Shmat as i64);
        f.ret_ptr_to(Ptr(0));
        f.load(Val(3), Ptr(0), 64, Width::D, false);
        f.sys_exit(Val(3));
    });
    let mut k = Kernel::new(KernelConfig::default());
    let w = k.spawn(&writer, &SpawnOpts::new(AbiMode::Mips64)).unwrap();
    assert_eq!(k.run(10_000_000), RunOutcome::AllExited);
    assert_eq!(k.exit_status(w), Some(ExitStatus::Code(0)));
    let r = k
        .spawn(&reader, &SpawnOpts::new(AbiMode::CheriAbi))
        .unwrap();
    assert_eq!(k.run(10_000_000), RunOutcome::AllExited);
    assert_eq!(
        k.exit_status(r),
        Some(ExitStatus::Code(0xbeef)),
        "CheriABI reader saw the legacy writer's data"
    );
}

/// Two CheriABI processes get distinct principals, and the abstract
/// capability checker confirms neither can see the other's capabilities.
#[test]
fn principals_are_disjoint_across_processes() {
    let spin = |_: &()| {
        program(AbiMode::CheriAbi, |f| {
            f.malloc_imm(Ptr(0), 128);
            let l = f.label();
            f.bind(l);
            f.jmp(l);
        })
    };
    let mut sys = System::new();
    let a = sys
        .kernel
        .spawn(&spin(&()), &SpawnOpts::new(AbiMode::CheriAbi))
        .unwrap();
    let b = sys
        .kernel
        .spawn(&spin(&()), &SpawnOpts::new(AbiMode::CheriAbi))
        .unwrap();
    sys.kernel.run(1_000_000);
    assert_ne!(
        sys.kernel.process(a).principal,
        sys.kernel.process(b).principal
    );
    for pid in [a, b] {
        let report = check_process(&sys.kernel, pid);
        assert!(report.is_clean(), "{pid}: {:?}", report.violations);
        assert!(report.caps_checked > 5);
    }
}

/// SIGPROT can be *handled*: a capability fault delivers a signal whose
/// handler runs with capability state saved/restored on the signal stack
/// (Figure 2), and the process continues.
#[test]
fn capability_fault_delivers_catchable_sigprot() {
    let mut pb = ProgramBuilder::new("sigprot");
    let mut exe = pb.object("sigprot");
    exe.add_data("mark", &[0u8; 8], 16);
    let o = opts_for(AbiMode::CheriAbi);
    {
        let mut f = FnBuilder::begin(&mut exe, "handler", o);
        f.load_global_ptr(Ptr(0), "mark");
        f.li(Val(0), 1);
        f.store(Val(0), Ptr(0), 0, Width::D);
        f.ret();
    }
    {
        let mut f = FnBuilder::begin(&mut exe, "main", o);
        // install handler for SIGPROT (34)
        f.li(Val(0), 34);
        f.set_arg_val(0, Val(0));
        f.load_global_ptr(Ptr(0), "handler");
        f.set_arg_ptr(1, Ptr(0));
        f.syscall(Sys::Sigaction as i64);
        // fault: overflow a heap buffer
        f.malloc_imm(Ptr(1), 32);
        f.li(Val(1), 7);
        f.store(Val(1), Ptr(1), 32, Width::B); // traps, handler runs, resumes after
                                               // prove we survived AND the handler ran
        f.load_global_ptr(Ptr(2), "mark");
        f.load(Val(2), Ptr(2), 0, Width::D, false);
        f.add_imm(Val(2), Val(2), 10);
        f.sys_exit(Val(2));
    }
    exe.set_entry("main");
    pb.add(exe.finish());
    let program = pb.finish();
    let mut k = Kernel::new(KernelConfig::default());
    let (status, _) = k
        .run_program(&program, &SpawnOpts::new(AbiMode::CheriAbi))
        .unwrap();
    assert_eq!(status, ExitStatus::Code(11), "handler ran (1) + 10");
}

/// D4 ablation: with the kernel capability discipline disabled, the same
/// confused-deputy read that CheriABI blocks goes back to corrupting
/// memory — demonstrating exactly what the paper's kernel changes buy.
#[test]
fn disabling_kernel_discipline_reenables_confused_deputy() {
    let body = |f: &mut FnBuilder<'_>| {
        f.enter(224);
        f.addr_of_stack(Ptr(0), 32, 16);
        f.addr_of_stack(Ptr(1), 56, 8);
        f.li(Val(0), 0x1234);
        f.store(Val(0), Ptr(1), 0, Width::D);
        f.addr_of_stack(Ptr(2), 72, 8);
        f.set_arg_ptr(0, Ptr(2));
        f.syscall(Sys::Pipe as i64);
        f.load(Val(6), Ptr(2), 0, Width::W, false);
        f.load(Val(7), Ptr(2), 4, Width::W, false);
        f.addr_of_stack(Ptr(3), 88, 64);
        f.set_arg_val(0, Val(7));
        f.set_arg_ptr(1, Ptr(3));
        f.li(Val(1), 64);
        f.set_arg_val(2, Val(1));
        f.syscall(Sys::Write as i64);
        f.set_arg_val(0, Val(6));
        f.set_arg_ptr(1, Ptr(0));
        f.li(Val(1), 64);
        f.set_arg_val(2, Val(1));
        f.syscall(Sys::Read as i64);
        f.ret_val_to(Val(2));
        f.load(Val(3), Ptr(1), 0, Width::D, false);
        f.li(Val(4), 0x1234);
        let ok = f.label();
        f.beq(Val(3), Val(4), ok);
        f.li(Val(2), -1);
        f.bind(ok);
        f.sys_exit(Val(2));
    };

    // With discipline (default): EFAULT.
    let mut k = Kernel::new(KernelConfig::default());
    let (status, _) = k
        .run_program(
            &program(AbiMode::CheriAbi, body),
            &SpawnOpts::new(AbiMode::CheriAbi),
        )
        .unwrap();
    assert_eq!(status, ExitStatus::Code(-14));

    // Without discipline: the kernel uses its address-space-wide authority
    // and smashes the canary.
    let mut k = Kernel::new(KernelConfig {
        kernel_cap_discipline: false,
        ..KernelConfig::default()
    });
    let (status, _) = k
        .run_program(
            &program(AbiMode::CheriAbi, body),
            &SpawnOpts::new(AbiMode::CheriAbi),
        )
        .unwrap();
    assert_eq!(status, ExitStatus::Code(-1), "canary destroyed");
}

/// Swap pressure across *processes*: one process's pages are evicted and
/// rederived while another runs; capabilities survive and principals never
/// mix (invariants I4 + I6 under load).
#[test]
fn swap_pressure_across_processes() {
    let worker = |exit_marker: i64| {
        program(AbiMode::CheriAbi, move |f| {
            // Build a linked chain of 32 heap nodes.
            f.malloc_imm(Ptr(0), 32); // head
            f.ptr_mv(Ptr(1), Ptr(0));
            f.li(Val(0), 0);
            let top = f.label();
            let done = f.label();
            f.bind(top);
            f.li(Val(1), 31);
            f.sub(Val(2), Val(0), Val(1));
            f.beqz(Val(2), done);
            f.malloc_imm(Ptr(2), 32);
            f.store(Val(0), Ptr(2), 0, Width::D);
            f.store_ptr(Ptr(2), Ptr(1), 16);
            f.ptr_mv(Ptr(1), Ptr(2));
            f.add_imm(Val(0), Val(0), 1);
            f.jmp(top);
            f.bind(done);
            // Evict everything, then walk the chain from the head.
            f.li(Val(3), 4096);
            f.set_arg_val(0, Val(3));
            f.syscall(Sys::Swapctl as i64);
            f.ptr_mv(Ptr(1), Ptr(0));
            f.li(Val(4), 0);
            let walk = f.label();
            let walked = f.label();
            f.bind(walk);
            f.load_ptr(Ptr(2), Ptr(1), 16);
            f.ptr_is_null(Val(5), Ptr(2));
            f.bnez(Val(5), walked);
            f.load(Val(6), Ptr(2), 0, Width::D, false);
            f.add(Val(4), Val(4), Val(6));
            f.ptr_mv(Ptr(1), Ptr(2));
            f.jmp(walk);
            f.bind(walked);
            // sum 0..=30 = 465 -> & 0x3f = 17
            f.and_imm(Val(4), Val(4), 0x3f);
            f.add_imm(Val(4), Val(4), exit_marker);
            f.sys_exit(Val(4));
        })
    };
    let mut k = Kernel::new(KernelConfig::default());
    let a = k
        .spawn(&worker(0), &SpawnOpts::new(AbiMode::CheriAbi))
        .unwrap();
    let b = k
        .spawn(&worker(100), &SpawnOpts::new(AbiMode::CheriAbi))
        .unwrap();
    assert_eq!(k.run(50_000_000), RunOutcome::AllExited);
    assert_eq!(k.exit_status(a), Some(ExitStatus::Code(465 % 64)));
    assert_eq!(k.exit_status(b), Some(ExitStatus::Code(465 % 64 + 100)));
    assert!(k.vm.stats.swap_outs > 0, "pages really were evicted");
    assert!(
        k.vm.stats.caps_rederived > 0,
        "capabilities really were rederived"
    );
    assert_eq!(k.vm.stats.caps_refused, 0);
}

/// The C256 (exact bounds) configuration runs the whole pipeline too
/// (D1 ablation plumbing).
#[test]
fn c256_configuration_works_end_to_end() {
    let mut k = Kernel::new(KernelConfig {
        cap_fmt: cheriabi::CapFormat::C256,
        ..KernelConfig::default()
    });
    let p = {
        let mut pb = ProgramBuilder::new("c256");
        let mut exe = pb.object("c256");
        {
            let mut f = FnBuilder::begin(&mut exe, "main", CodegenOpts::purecap_c256());
            f.malloc_imm(Ptr(0), 100);
            f.li(Val(0), 5);
            f.store(Val(0), Ptr(0), 88, Width::D);
            f.load(Val(1), Ptr(0), 88, Width::D, false);
            f.sys_exit(Val(1));
        }
        exe.set_entry("main");
        pb.add(exe.finish());
        pb.finish()
    };
    let (status, _) = k
        .run_program(&p, &SpawnOpts::new(AbiMode::CheriAbi))
        .unwrap();
    assert_eq!(status, ExitStatus::Code(5));
    // Exact bounds: 100-byte malloc under C256 rejects offset 100.
    let p2 = {
        let mut pb = ProgramBuilder::new("c256b");
        let mut exe = pb.object("c256b");
        {
            let mut f = FnBuilder::begin(&mut exe, "main", CodegenOpts::purecap_c256());
            f.malloc_imm(Ptr(0), 100);
            f.li(Val(0), 5);
            f.store(Val(0), Ptr(0), 100, Width::B);
            f.sys_exit_imm(0);
        }
        exe.set_entry("main");
        pb.add(exe.finish());
        pb.finish()
    };
    let mut k = Kernel::new(KernelConfig {
        cap_fmt: cheriabi::CapFormat::C256,
        ..KernelConfig::default()
    });
    let (status, _) = k
        .run_program(&p2, &SpawnOpts::new(AbiMode::CheriAbi))
        .unwrap();
    assert_eq!(
        status,
        ExitStatus::Fault(TrapCause::Cap(cheriabi::CapFault::LengthViolation))
    );
}

/// Legacy store cannot forge a capability: writing 16 bytes of data over a
/// stored capability clears its tag even when the bytes are identical.
#[test]
fn capability_integrity_survives_byte_identical_overwrite() {
    let (status, _) = {
        let p = program(AbiMode::CheriAbi, |f| {
            f.malloc_imm(Ptr(0), 64);
            f.malloc_imm(Ptr(1), 16);
            f.store_ptr(Ptr(1), Ptr(0), 0);
            // Read the pointer's address as data, write it back as data.
            f.load(Val(0), Ptr(0), 0, Width::D, false);
            f.store(Val(0), Ptr(0), 0, Width::D);
            // The bytes are identical, but the tag is gone.
            f.load_ptr(Ptr(2), Ptr(0), 0);
            f.load(Val(1), Ptr(2), 0, Width::D, false); // must trap
            f.sys_exit_imm(0);
        });
        let mut k = Kernel::new(KernelConfig::default());
        k.run_program(&p, &SpawnOpts::new(AbiMode::CheriAbi))
            .unwrap()
    };
    assert_eq!(
        status,
        ExitStatus::Fault(TrapCause::Cap(cheriabi::CapFault::TagViolation))
    );
}

/// mmap's returned capability really carries VMMAP: a process can unmap its
/// own mmap region but not through a malloc'd pointer; and perms track prot.
#[test]
fn vmmap_permission_tracks_provenance() {
    let (status, _) = {
        let p = program(AbiMode::CheriAbi, |f| {
            // map 8 KiB rw
            f.set_arg_null(0);
            f.li(Val(1), 8192);
            f.set_arg_val(1, Val(1));
            f.li(Val(2), 3);
            f.set_arg_val(2, Val(2));
            f.li(Val(3), 0);
            f.set_arg_val(3, Val(3));
            f.syscall(Sys::Mmap as i64);
            f.ret_ptr_to(Ptr(0));
            // munmap through the returned capability succeeds
            f.set_arg_ptr(0, Ptr(0));
            f.li(Val(1), 8192);
            f.set_arg_val(1, Val(1));
            f.syscall(Sys::Munmap as i64);
            f.ret_val_to(Val(4));
            f.sys_exit(Val(4));
        });
        let mut k = Kernel::new(KernelConfig::default());
        k.run_program(&p, &SpawnOpts::new(AbiMode::CheriAbi))
            .unwrap()
    };
    assert_eq!(status, ExitStatus::Code(0));
}

/// Read-only mmap returns a capability without STORE permission, so the
/// first write traps in *hardware*, before the MMU is even consulted.
#[test]
fn readonly_mapping_capability_lacks_store() {
    let p = program(AbiMode::CheriAbi, |f| {
        f.set_arg_null(0);
        f.li(Val(1), 4096);
        f.set_arg_val(1, Val(1));
        f.li(Val(2), 1); // PROT_READ only
        f.set_arg_val(2, Val(2));
        f.li(Val(3), 0);
        f.set_arg_val(3, Val(3));
        f.syscall(Sys::Mmap as i64);
        f.ret_ptr_to(Ptr(0));
        f.li(Val(0), 1);
        f.store(Val(0), Ptr(0), 0, Width::B);
        f.sys_exit_imm(0);
    });
    let mut k = Kernel::new(KernelConfig::default());
    let (status, _) = k
        .run_program(&p, &SpawnOpts::new(AbiMode::CheriAbi))
        .unwrap();
    assert_eq!(
        status,
        ExitStatus::Fault(TrapCause::Cap(cheriabi::CapFault::PermitStoreViolation))
    );
    // Verify it's the capability check, not the MMU: the permissions came
    // from prot, per §4 "virtual-address management APIs".
    let _ = Perms::user_rodata();
}
