//! tlsish — the `openssl s_server` stand-in traced for Figure 5 (§5.5).
//!
//! "openssl is a small representative application that exercises the
//! majority of the changes we introduced with CheriABI: it uses
//! thread-local storage, is dynamically linked with multiple libraries,
//! performs considerable memory allocation and pointer manipulation, and
//! exercises system calls." This workload reproduces that capability-source
//! mix: a dynamically linked crypto-ish library reached through the GOT, a
//! per-object TLS block, session and buffer allocations of many sizes,
//! automatic (stack) references in the inner loops, and pipe I/O syscalls
//! standing in for the client connection.

use cheri_isa::codegen::{CodegenOpts, FnBuilder, Ptr, Val};
use cheri_isa::Width;
use cheri_kernel::Sys;
use cheri_rtld::{Program, ProgramBuilder};
use cheriabi::guest::GuestOps;

/// Builds the tlsish server program.
#[must_use]
pub fn build(opts: CodegenOpts, sessions: i64) -> Program {
    let mut pb = ProgramBuilder::new("tlsish");

    // ---- libtls: the dynamically linked "crypto" library ----
    let mut lib = pb.object("libtls");
    lib.set_tls_size(128);
    let suites: Vec<u8> = (0..32u64)
        .flat_map(|i| (0x1301 + i * 7).to_le_bytes())
        .collect();
    lib.add_data("ciphersuites", &suites, 16);
    {
        // mix(buf, len): xor-rotate over a buffer ("encryption").
        let mut f = FnBuilder::begin(&mut lib, "tls_mix", opts);
        f.enter(32);
        f.arg_to_ptr(Ptr(0), 0);
        f.arg_to_val(Val(0), 1);
        f.li(Val(1), 0);
        f.li(Val(2), 0x5c);
        let top = f.label();
        let done = f.label();
        f.bind(top);
        f.sub(Val(3), Val(1), Val(0));
        f.beqz(Val(3), done);
        f.ptr_add(Ptr(1), Ptr(0), Val(1));
        f.load(Val(3), Ptr(1), 0, Width::B, false);
        f.xor(Val(3), Val(3), Val(2));
        f.add_imm(Val(3), Val(3), 13);
        f.store(Val(3), Ptr(1), 0, Width::B);
        f.add_imm(Val(1), Val(1), 1);
        f.jmp(top);
        f.bind(done);
        // bump the per-object TLS op counter
        f.tls_ptr(Ptr(2));
        f.load(Val(4), Ptr(2), 0, Width::D, false);
        f.add_imm(Val(4), Val(4), 1);
        f.store(Val(4), Ptr(2), 0, Width::D);
        f.leave_ret();
    }
    {
        // digest(buf, len) -> u64 checksum.
        let mut f = FnBuilder::begin(&mut lib, "tls_digest", opts);
        f.enter(32);
        f.arg_to_ptr(Ptr(0), 0);
        f.arg_to_val(Val(0), 1);
        f.li(Val(1), 0);
        f.li(Val(2), 0);
        let top = f.label();
        let done = f.label();
        f.bind(top);
        f.sub(Val(3), Val(1), Val(0));
        f.beqz(Val(3), done);
        f.ptr_add(Ptr(1), Ptr(0), Val(1));
        f.load(Val(3), Ptr(1), 0, Width::B, false);
        f.shl_imm(Val(4), Val(2), 3);
        f.xor(Val(2), Val(4), Val(2));
        f.add(Val(2), Val(2), Val(3));
        f.add_imm(Val(1), Val(1), 1);
        f.jmp(top);
        f.bind(done);
        f.set_ret_val(Val(2));
        f.leave_ret();
    }
    pb.add(lib.finish());

    // ---- the server executable ----
    let mut exe = pb.object("tlsish");
    {
        let mut f = FnBuilder::begin(&mut exe, "main", opts);
        f.enter(320);
        // Direct mmap: a "session arena" page, giving the trace its
        // syscall-derived capability.
        f.set_arg_null(0);
        f.li(Val(1), 16384);
        f.set_arg_val(1, Val(1));
        f.li(Val(2), 3);
        f.set_arg_val(2, Val(2));
        f.li(Val(3), 0);
        f.set_arg_val(3, Val(3));
        f.syscall(Sys::Mmap as i64);
        f.ret_ptr_to(Ptr(4));
        f.spill_ptr(Ptr(4), 32);

        // The "connection": a pipe we write and read like a socket.
        f.addr_of_stack(Ptr(0), 56, 8);
        f.set_arg_ptr(0, Ptr(0));
        f.syscall(Sys::Pipe as i64);
        f.load(Val(6), Ptr(0), 0, Width::W, false); // rfd
        f.load(Val(5), Ptr(0), 4, Width::W, false); // wfd
                                                    // fds live in the frame across the session loop
        f.addr_of_stack(Ptr(0), 72, 16);
        f.store(Val(6), Ptr(0), 0, Width::D);
        f.store(Val(5), Ptr(0), 8, Width::D);

        // Session table: pointer array in the mmap'd arena.
        // session struct: [id u64][pad][bufptr][keyptr] (pointer slots).
        let ps = f.ptr_size() as i64;
        let hdr = ps.max(16);
        let sess_size = hdr + 2 * ps;
        let buf_ptr_off = hdr;
        let key_ptr_off = hdr + ps;

        f.li(Val(4), 0); // session counter: kept in the frame
        f.addr_of_stack(Ptr(0), 96, 16);
        f.store(Val(4), Ptr(0), 0, Width::D);
        f.li(Val(4), 0); // running digest
        f.store(Val(4), Ptr(0), 8, Width::D);

        let s_top = f.label();
        let s_done = f.label();
        f.bind(s_top);
        f.addr_of_stack(Ptr(0), 96, 16);
        f.load(Val(0), Ptr(0), 0, Width::D, false);
        f.li(Val(1), sessions);
        f.sub(Val(1), Val(0), Val(1));
        f.beqz(Val(1), s_done);

        // --- handshake: allocate a session, key and traffic buffer ---
        f.li(Val(2), sess_size);
        f.set_arg_val(0, Val(2));
        f.syscall(Sys::RtMalloc as i64);
        f.ret_ptr_to(Ptr(1)); // session
        f.li(Val(2), 48);
        f.set_arg_val(0, Val(2));
        f.syscall(Sys::RtMalloc as i64);
        f.ret_ptr_to(Ptr(2)); // key
                              // traffic buffer size varies per session: 64 + (i * 37) % 1600
        f.li(Val(2), 37);
        f.mul(Val(2), Val(2), Val(0));
        f.li(Val(3), 1600);
        f.remu(Val(2), Val(2), Val(3));
        f.add_imm(Val(2), Val(2), 64);
        f.set_arg_val(0, Val(2));
        f.syscall(Sys::RtMalloc as i64);
        f.ret_ptr_to(Ptr(3)); // buffer
                              // link them: session.buf = buffer; session.key = key
        f.store(Val(0), Ptr(1), 0, Width::D);
        f.store_ptr(Ptr(3), Ptr(1), buf_ptr_off);
        f.store_ptr(Ptr(2), Ptr(1), key_ptr_off);
        // session table slot in the arena
        f.reload_ptr(Ptr(4), 32);
        f.li(Val(3), ps);
        f.li(Val(1), 64);
        f.remu(Val(1), Val(0), Val(1));
        f.mul(Val(3), Val(3), Val(1));
        f.ptr_add(Ptr(5), Ptr(4), Val(3));
        f.store_ptr(Ptr(1), Ptr(5), 0);

        // --- key schedule: stack scratch + ciphersuite table via GOT ---
        f.addr_of_stack(Ptr(0), 120, 48);
        f.load_global_ptr(Ptr(7), "ciphersuites");
        f.li(Val(1), 0);
        let k_top = f.label();
        let k_done = f.label();
        f.bind(k_top);
        f.li(Val(2), 48);
        f.sub(Val(2), Val(1), Val(2));
        f.beqz(Val(2), k_done);
        f.and_imm(Val(2), Val(1), 31);
        f.shl_imm(Val(2), Val(2), 3);
        f.ptr_add(Ptr(5), Ptr(7), Val(2));
        f.load(Val(2), Ptr(5), 0, Width::D, false);
        f.add(Val(2), Val(2), Val(0));
        f.ptr_add(Ptr(5), Ptr(0), Val(1));
        f.store(Val(2), Ptr(5), 0, Width::B);
        f.add_imm(Val(1), Val(1), 1);
        f.jmp(k_top);
        f.bind(k_done);
        // copy schedule into the key allocation
        f.li(Val(1), 48);
        f.memcpy_bytes(Ptr(2), Ptr(0), Val(1));

        // --- traffic: fill buffer, mix (encrypt), send, recv, digest ---
        f.li(Val(6), 0x41);
        f.li(Val(1), 0);
        let f_top = f.label();
        let f_done = f.label();
        f.bind(f_top);
        f.li(Val(2), 64);
        f.sub(Val(2), Val(1), Val(2));
        f.beqz(Val(2), f_done);
        f.ptr_add(Ptr(5), Ptr(3), Val(1));
        f.store(Val(6), Ptr(5), 0, Width::B);
        f.add_imm(Val(1), Val(1), 1);
        f.jmp(f_top);
        f.bind(f_done);
        // spill session pointers we still need across calls
        f.spill_ptr(Ptr(1), 176);
        f.spill_ptr(Ptr(3), 176 + 16);
        f.set_arg_ptr(0, Ptr(3));
        f.li(Val(1), 64);
        f.set_arg_val(1, Val(1));
        f.call_global("tls_mix");
        // send 64 bytes through the pipe, read them back
        f.addr_of_stack(Ptr(0), 72, 16);
        f.load(Val(5), Ptr(0), 8, Width::D, false); // wfd
        f.reload_ptr(Ptr(3), 176 + 16);
        f.set_arg_val(0, Val(5));
        f.set_arg_ptr(1, Ptr(3));
        f.li(Val(1), 64);
        f.set_arg_val(2, Val(1));
        f.syscall(Sys::Write as i64);
        f.addr_of_stack(Ptr(0), 72, 16);
        f.load(Val(6), Ptr(0), 0, Width::D, false); // rfd
        f.addr_of_stack(Ptr(6), 224, 64); // recv buffer (stack)
        f.set_arg_val(0, Val(6));
        f.set_arg_ptr(1, Ptr(6));
        f.li(Val(1), 64);
        f.set_arg_val(2, Val(1));
        f.syscall(Sys::Read as i64);
        // digest what we received
        f.addr_of_stack(Ptr(6), 224, 64);
        f.set_arg_ptr(0, Ptr(6));
        f.li(Val(1), 64);
        f.set_arg_val(1, Val(1));
        f.call_global("tls_digest");
        f.ret_val_to(Val(2));
        f.addr_of_stack(Ptr(0), 96, 16);
        f.load(Val(3), Ptr(0), 8, Width::D, false);
        f.add(Val(3), Val(3), Val(2));
        f.store(Val(3), Ptr(0), 8, Width::D);

        // --- teardown: free the buffer (sessions/keys stay cached) ---
        f.reload_ptr(Ptr(3), 176 + 16);
        f.set_arg_ptr(0, Ptr(3));
        f.syscall(Sys::RtFree as i64);

        f.addr_of_stack(Ptr(0), 96, 16);
        f.load(Val(0), Ptr(0), 0, Width::D, false);
        f.add_imm(Val(0), Val(0), 1);
        f.store(Val(0), Ptr(0), 0, Width::D);
        f.jmp(s_top);
        f.bind(s_done);

        f.addr_of_stack(Ptr(0), 96, 16);
        f.load(Val(0), Ptr(0), 8, Width::D, false);
        f.and_imm(Val(0), Val(0), 0x3f);
        f.sys_exit(Val(0));
    }
    exe.set_entry("main");
    pb.add(exe.finish());
    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_kernel::{AbiMode, ExitStatus, Kernel, KernelConfig, SpawnOpts};
    use cheriabi::{CapSource, System};

    #[test]
    fn tlsish_runs_on_both_abis() {
        for (abi, opts) in [
            (AbiMode::Mips64, CodegenOpts::mips64()),
            (AbiMode::CheriAbi, CodegenOpts::purecap()),
        ] {
            let program = build(opts, 20);
            let mut k = Kernel::new(KernelConfig::default());
            let (status, _) = k.run_program(&program, &SpawnOpts::new(abi)).unwrap();
            assert!(matches!(status, ExitStatus::Code(_)), "{abi}: {status:?}");
        }
    }

    #[test]
    fn tlsish_trace_covers_figure5_sources() {
        let program = build(CodegenOpts::purecap(), 120);
        let mut sys = System::new();
        sys.enable_tracing();
        let (status, _) = sys
            .kernel
            .run_program(&program, &SpawnOpts::new(AbiMode::CheriAbi))
            .unwrap();
        assert!(matches!(status, ExitStatus::Code(_)));
        let cdf = sys.capability_histogram();
        assert!(cdf.total() > 1000, "only {} events", cdf.total());
        for source in [
            CapSource::Stack,
            CapSource::Malloc,
            CapSource::Exec,
            CapSource::GlobReloc,
            CapSource::Syscall,
            CapSource::Tls,
        ] {
            assert!(
                cdf.cumulative(source, 24) > 0,
                "no {source} events in the trace"
            );
        }
        // Figure 5 shape: the bulk of capabilities are small.
        assert!(
            cdf.fraction_at_most(10) > 0.75,
            "fraction <=1KiB: {}",
            cdf.fraction_at_most(10)
        );
    }
}
