//! Property tests for tagged physical memory (DESIGN.md invariant I3):
//! against a simple reference model, arbitrary interleavings of data writes
//! and capability stores never fabricate a tag and never lose data.

use cheri_cap::{CapFormat, CapSource, Capability, PrincipalId, TAG_GRANULE};
use cheri_mem::{PAddr, PhysMem, FRAME_SIZE};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum Op {
    /// Write `len` bytes of `fill` at `off`.
    Data(u16, u8, u8),
    /// Store a capability at granule `g` (tagged or pre-cleared).
    Cap(u8, bool),
    /// Copy the frame to a scratch frame and back (tag-preserving path).
    RoundTripTagged,
    /// Export data only and reload it (tag-stripping path, like DMA).
    RoundTripData,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..4080, any::<u8>(), 1u8..32).prop_map(|(o, f, l)| Op::Data(o, f, l)),
        (any::<u8>(), any::<bool>()).prop_map(|(g, t)| Op::Cap(g, t)),
        Just(Op::RoundTripTagged),
        Just(Op::RoundTripData),
    ]
}

fn cap_at(addr: u64, tagged: bool) -> Capability {
    let c = Capability::root(CapFormat::C128, PrincipalId::from_raw(1), CapSource::Exec)
        .with_addr(addr)
        .set_bounds(16, true)
        .expect("small bounds");
    if tagged {
        c
    } else {
        c.clear_tag()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The reference model: per-granule "latest operation" tracking. A
    /// granule's tag is set iff the last operation covering any of its
    /// bytes was a *tagged* capability store; data reads reflect the last
    /// writer.
    #[test]
    fn tags_track_the_reference_model(ops in proptest::collection::vec(op_strategy(), 1..100)) {
        let mut pm = PhysMem::new(4);
        let frame = pm.alloc_frame().unwrap();
        let scratch = pm.alloc_frame().unwrap();
        // granule -> expected tagged capability
        let mut model: HashMap<u64, Capability> = HashMap::new();
        for op in &ops {
            match op {
                Op::Data(off, fill, len) => {
                    let off = u64::from(*off);
                    let len = u64::from(*len).min(FRAME_SIZE - off);
                    let buf = vec![*fill; len as usize];
                    pm.write_bytes(PAddr::new(frame, off), &buf).unwrap();
                    let g0 = off / TAG_GRANULE;
                    let g1 = (off + len - 1) / TAG_GRANULE;
                    for g in g0..=g1 {
                        model.remove(&g);
                    }
                }
                Op::Cap(g, tagged) => {
                    let g = u64::from(*g);
                    let addr = g * TAG_GRANULE;
                    let c = cap_at(0x1000 + addr, *tagged);
                    pm.store_cap(PAddr::new(frame, addr), c).unwrap();
                    if *tagged {
                        model.insert(g, c);
                    } else {
                        model.remove(&g);
                    }
                }
                Op::RoundTripTagged => {
                    pm.copy_frame_with_tags(frame, scratch).unwrap();
                    pm.copy_frame_with_tags(scratch, frame).unwrap();
                }
                Op::RoundTripData => {
                    let data = pm.frame_data(frame).unwrap();
                    pm.set_frame_data(frame, &data).unwrap();
                    model.clear(); // tags do not survive a data-only path
                }
            }
            // Full validation after every step.
            for g in 0..(FRAME_SIZE / TAG_GRANULE) {
                let got = pm.load_cap(PAddr::new(frame, g * TAG_GRANULE)).unwrap();
                match model.get(&g) {
                    Some(c) => prop_assert_eq!(got, Some(*c), "granule {}", g),
                    None => prop_assert_eq!(got, None, "granule {} must be untagged", g),
                }
            }
        }
    }

    /// Data written is data read, independent of tag traffic around it.
    #[test]
    fn data_integrity_under_cap_traffic(
        writes in proptest::collection::vec((0u16..4088, any::<u64>()), 1..40),
        caps in proptest::collection::vec(any::<u8>(), 0..20),
    ) {
        let mut pm = PhysMem::new(2);
        let frame = pm.alloc_frame().unwrap();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (i, (off, v)) in writes.iter().enumerate() {
            let off = u64::from(*off) & !7;
            pm.write_u64(PAddr::new(frame, off), *v).unwrap();
            model.insert(off, *v);
            // Interleave a capability store somewhere else.
            if let Some(g) = caps.get(i % caps.len().max(1)) {
                let addr = u64::from(*g) * TAG_GRANULE;
                pm.store_cap(PAddr::new(frame, addr), cap_at(addr, true)).unwrap();
                // The cap store rewrites that granule's data bytes.
                model.retain(|k, _| k / TAG_GRANULE != u64::from(*g));
            }
        }
        for (off, v) in &model {
            prop_assert_eq!(pm.read_u64(PAddr::new(frame, *off)).unwrap(), *v);
        }
    }
}
