//! Set-associative cache hierarchy model.
//!
//! Mirrors the paper's FPGA platform (§5): split 32-KiB L1 instruction and
//! data caches and a shared 256-KiB L2, all set-associative with true-LRU
//! replacement and no prefetching. Latencies are charged per access and
//! accumulated into [`MemStats`].

use crate::stats::MemStats;

/// What kind of access is being performed (instruction fetches go through
/// the L1I, everything else through the L1D).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Instruction fetch.
    Fetch,
    /// Data load.
    Load,
    /// Data store (write-allocate).
    Store,
}

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: u64,
    /// Line size in bytes.
    pub line: u64,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// 32-KiB, 4-way, 64-byte lines: the paper's L1.
    #[must_use]
    pub fn l1_default() -> CacheConfig {
        CacheConfig {
            size: 32 * 1024,
            line: 64,
            ways: 4,
        }
    }

    /// 256-KiB, 8-way, 64-byte lines: the paper's shared L2.
    #[must_use]
    pub fn l2_default() -> CacheConfig {
        CacheConfig {
            size: 256 * 1024,
            line: 64,
            ways: 8,
        }
    }

    fn num_sets(&self) -> usize {
        (self.size / self.line) as usize / self.ways
    }
}

/// One set-associative cache with LRU replacement.
#[derive(Clone, Debug)]
struct Cache {
    cfg: CacheConfig,
    /// Whether line size and set count are both powers of two (true for
    /// every geometry the paper uses), letting the hot path shift and
    /// mask instead of divide.
    pow2: bool,
    /// `log2(line)` when `pow2`.
    line_shift: u32,
    /// `num_sets - 1` when `pow2`.
    set_mask: u64,
    /// `sets[s]` holds line tags in LRU order (front = most recent).
    sets: Vec<Vec<u64>>,
}

impl Cache {
    fn new(cfg: CacheConfig) -> Cache {
        let num_sets = cfg.num_sets();
        Cache {
            cfg,
            pow2: cfg.line.is_power_of_two() && num_sets.is_power_of_two(),
            line_shift: cfg.line.trailing_zeros(),
            set_mask: num_sets as u64 - 1,
            sets: vec![Vec::new(); num_sets],
        }
    }

    /// Returns `true` on hit; always installs the line.
    fn access(&mut self, paddr: u64) -> bool {
        let (line, set_idx) = if self.pow2 {
            let line = paddr >> self.line_shift;
            (line, (line & self.set_mask) as usize)
        } else {
            let line = paddr / self.cfg.line;
            (line, (line as usize) % self.sets.len())
        };
        let ways = self.cfg.ways;
        let set = &mut self.sets[set_idx];
        // Hot loops hammer the most-recently-used line: a hit at the LRU
        // front needs no reordering at all.
        if set.first() == Some(&line) {
            return true;
        }
        if let Some(pos) = set.iter().position(|&t| t == line) {
            set.remove(pos);
            set.insert(0, line);
            true
        } else {
            set.insert(0, line);
            set.truncate(ways);
            false
        }
    }

    fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }
}

/// L1I + L1D + shared L2 with simple additive latencies.
///
/// ```
/// use cheri_mem::{CacheHierarchy, AccessKind};
/// let mut h = CacheHierarchy::fpga_default();
/// let cold = h.access(0x1000, AccessKind::Load);
/// let warm = h.access(0x1000, AccessKind::Load);
/// assert!(cold > warm);
/// assert_eq!(h.stats().l1d_hits, 1);
/// ```
#[derive(Clone, Debug)]
pub struct CacheHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    stats: MemStats,
    /// Cycles for an L1 hit.
    pub lat_l1: u64,
    /// Additional cycles for an L2 hit.
    pub lat_l2: u64,
    /// Additional cycles for a DRAM access.
    pub lat_mem: u64,
}

impl CacheHierarchy {
    /// The paper's FPGA configuration: 32-KiB L1s, 256-KiB shared L2.
    #[must_use]
    pub fn fpga_default() -> CacheHierarchy {
        CacheHierarchy::new(CacheConfig::l1_default(), CacheConfig::l2_default())
    }

    /// Builds a hierarchy from explicit level configurations.
    #[must_use]
    pub fn new(l1: CacheConfig, l2: CacheConfig) -> CacheHierarchy {
        CacheHierarchy {
            l1i: Cache::new(l1),
            l1d: Cache::new(l1),
            l2: Cache::new(l2),
            stats: MemStats::default(),
            lat_l1: 1,
            lat_l2: 10,
            lat_mem: 68,
        }
    }

    /// Performs an access and returns the stall cycles it cost (0 for an L1
    /// hit — the pipeline's base cost covers it).
    pub fn access(&mut self, paddr: u64, kind: AccessKind) -> u64 {
        let l1 = match kind {
            AccessKind::Fetch => &mut self.l1i,
            AccessKind::Load | AccessKind::Store => &mut self.l1d,
        };
        let l1_hit = l1.access(paddr);
        let (hit_ctr, miss_ctr) = match kind {
            AccessKind::Fetch => (&mut self.stats.l1i_hits, &mut self.stats.l1i_misses),
            _ => (&mut self.stats.l1d_hits, &mut self.stats.l1d_misses),
        };
        if l1_hit {
            *hit_ctr += 1;
            return 0;
        }
        *miss_ctr += 1;
        let mut cycles = self.lat_l2;
        if self.l2.access(paddr) {
            self.stats.l2_hits += 1;
        } else {
            self.stats.l2_misses += 1;
            cycles += self.lat_mem;
        }
        self.stats.stall_cycles += cycles;
        cycles
    }

    /// Replays every queued event, in order, through [`CacheHierarchy::access`]
    /// and returns the total stall cycles. Draining empties the ring.
    ///
    /// Because replay preserves program order exactly, the model state and
    /// [`MemStats`] after a drain are identical to what per-access calls
    /// would have produced — the only difference is *when* the work happens.
    ///
    /// A line-coalesced event (count > 1, recorded via
    /// [`MemEventRing::record_run`]) replays as one real access followed by
    /// `count - 1` same-line repeats. The repeats are provably L1 hits that
    /// leave the hierarchy state untouched: after the first access the line
    /// sits at the MRU front of its L1 set, a same-line re-access takes the
    /// front fast path in [`Cache::access`] (no LRU reorder, no L2
    /// involvement) and costs 0 stall cycles, so only the L1 hit counter
    /// advances. Folding them into one counter bump is therefore
    /// byte-identical to per-access replay.
    pub fn drain(&mut self, ring: &mut MemEventRing) -> u64 {
        let mut cycles = 0;
        for &(paddr, kind, count) in &ring.events {
            cycles += self.access(paddr, kind);
            if count > 1 {
                let hit_ctr = match kind {
                    AccessKind::Fetch => &mut self.stats.l1i_hits,
                    _ => &mut self.stats.l1d_hits,
                };
                *hit_ctr += count - 1;
            }
        }
        ring.events.clear();
        cycles
    }

    /// The L1 line size in bytes — the coalescing granularity for
    /// [`MemEventRing::record_run`]. Both L1s share one geometry.
    #[must_use]
    pub fn l1_line(&self) -> u64 {
        self.l1i.cfg.line
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Clears counters (between benchmark phases) without flushing lines.
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
    }

    /// Flushes all cache contents (e.g. simulating a cold start).
    pub fn flush(&mut self) {
        self.l1i.flush();
        self.l1d.flush();
        self.l2.flush();
    }
}

/// A consumer of physical memory access events.
///
/// The execute loop is the producer: every fetch, load and store emits one
/// `(paddr, kind)` event *in program order*. How promptly the cache model
/// observes them is the sink's choice — [`MemEventRing`] batches, while
/// [`ExactSink`] replays each event into the hierarchy immediately. Both
/// must yield identical model state once all events are consumed; the
/// equivalence gate in CI holds that line.
pub trait MemEventSink {
    /// Record one access. Ordering across calls is program order.
    fn record(&mut self, paddr: u64, kind: AccessKind);
}

/// A bounded FIFO of pending memory events, drained in batches by
/// [`CacheHierarchy::drain`] at superblock boundaries (and mandatorily
/// before any point that reads cycles or cache statistics).
///
/// Each entry carries a repeat count: `(paddr, kind, n)` stands for `n`
/// consecutive same-line accesses with nothing in between — the
/// line-granularity form the template tier emits for its instruction
/// fetches. Plain [`MemEventSink::record`] pushes count 1.
#[derive(Clone, Debug, Default)]
pub struct MemEventRing {
    events: Vec<(u64, AccessKind, u64)>,
}

impl MemEventRing {
    /// Capacity bound: producers should drain once [`MemEventRing::is_full`]
    /// reports true. (Exceeding it is not UB — the ring grows — but keeps
    /// the batch cache-resident on the host: at 16 bytes per event the
    /// buffer must stay well under the host L1 size, or every event gets
    /// written to and re-read from L2 and the batching costs more than it
    /// saves.)
    pub const CAPACITY: usize = 512;

    /// Creates an empty ring with [`MemEventRing::CAPACITY`] reserved.
    #[must_use]
    pub fn new() -> MemEventRing {
        MemEventRing {
            events: Vec::with_capacity(Self::CAPACITY),
        }
    }

    /// Number of queued events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether the ring has reached its nominal capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.events.len() >= Self::CAPACITY
    }

    /// Records `count` consecutive accesses to the *same cache line*
    /// (identified by any `paddr` within it) with no other access
    /// interleaved. The caller owns that contract; [`CacheHierarchy::drain`]
    /// then replays it as one access plus `count - 1` guaranteed L1 hits,
    /// which is byte-identical to recording each access individually (see
    /// the proof sketch on `drain`). `count` 0 records nothing.
    pub fn record_run(&mut self, paddr: u64, kind: AccessKind, count: u64) {
        if count > 0 {
            self.events.push((paddr, kind, count));
        }
    }
}

impl MemEventSink for MemEventRing {
    fn record(&mut self, paddr: u64, kind: AccessKind) {
        self.events.push((paddr, kind, 1));
    }
}

/// An event sink that replays each access into the hierarchy the moment it
/// is recorded, accumulating stall cycles in [`ExactSink::stalls`]. This is
/// the reference semantics: batched mode must be indistinguishable from it.
#[derive(Debug)]
pub struct ExactSink<'a> {
    caches: &'a mut CacheHierarchy,
    /// Stall cycles charged so far.
    pub stalls: u64,
}

impl<'a> ExactSink<'a> {
    /// Wraps a hierarchy for immediate replay.
    pub fn new(caches: &'a mut CacheHierarchy) -> ExactSink<'a> {
        ExactSink { caches, stalls: 0 }
    }
}

impl MemEventSink for ExactSink<'_> {
    fn record(&mut self, paddr: u64, kind: AccessKind) {
        self.stalls += self.caches.access(paddr, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut h = CacheHierarchy::fpga_default();
        assert!(h.access(0x40, AccessKind::Load) > 0);
        assert_eq!(h.access(0x40, AccessKind::Load), 0);
        assert_eq!(h.access(0x41, AccessKind::Load), 0, "same line");
        assert_eq!(h.stats().l1d_hits, 2);
        assert_eq!(h.stats().l1d_misses, 1);
        assert_eq!(h.stats().l2_misses, 1);
    }

    #[test]
    fn l1_eviction_falls_to_l2() {
        let mut h = CacheHierarchy::fpga_default();
        let cfg = CacheConfig::l1_default();
        let stride = cfg.size / cfg.ways as u64; // maps to the same set
        for i in 0..=cfg.ways as u64 {
            h.access(i * stride, AccessKind::Load);
        }
        // First line was evicted from L1 but still lives in L2.
        let cost = h.access(0, AccessKind::Load);
        assert_eq!(cost, h.lat_l2);
        assert_eq!(h.stats().l2_hits, 1);
    }

    #[test]
    fn fetch_and_data_use_separate_l1s() {
        let mut h = CacheHierarchy::fpga_default();
        h.access(0x100, AccessKind::Fetch);
        let cost = h.access(0x100, AccessKind::Load);
        assert!(cost > 0, "data access must miss its own L1");
        assert_eq!(cost, h.lat_l2, "but hit the shared L2");
    }

    #[test]
    fn bigger_footprint_more_l2_misses() {
        // The Figure 4 mechanism: doubling the stride footprint past L2
        // capacity produces more misses for the same access count.
        let count = 8192u64;
        let mut small = CacheHierarchy::fpga_default();
        for i in 0..count {
            small.access((i * 8) % (128 * 1024), AccessKind::Load);
        }
        let mut big = CacheHierarchy::fpga_default();
        for i in 0..count {
            big.access((i * 16) % (1024 * 1024), AccessKind::Load);
        }
        assert!(big.stats().l2_misses > small.stats().l2_misses);
    }

    #[test]
    fn flush_forgets_everything() {
        let mut h = CacheHierarchy::fpga_default();
        h.access(0x40, AccessKind::Load);
        h.flush();
        assert!(h.access(0x40, AccessKind::Load) > 0);
    }

    /// A pseudo-random but deterministic access trace.
    fn trace() -> Vec<(u64, AccessKind)> {
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut out = Vec::new();
        for i in 0..10_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let pa = (x >> 16) % (2 * 1024 * 1024);
            let kind = match i % 3 {
                0 => AccessKind::Fetch,
                1 => AccessKind::Load,
                _ => AccessKind::Store,
            };
            out.push((pa, kind));
        }
        out
    }

    #[test]
    fn batched_drain_equals_exact_replay() {
        let mut exact_h = CacheHierarchy::fpga_default();
        let exact_stalls = {
            let mut sink = ExactSink::new(&mut exact_h);
            for (pa, kind) in trace() {
                sink.record(pa, kind);
            }
            sink.stalls
        };

        let mut batched_h = CacheHierarchy::fpga_default();
        let mut ring = MemEventRing::new();
        let mut batched_stalls = 0;
        for (pa, kind) in trace() {
            if ring.is_full() {
                batched_stalls += batched_h.drain(&mut ring);
            }
            ring.record(pa, kind);
        }
        batched_stalls += batched_h.drain(&mut ring);

        assert!(ring.is_empty());
        assert_eq!(batched_stalls, exact_stalls);
        assert_eq!(batched_h.stats(), exact_h.stats());
    }

    /// The template tier's coalescing contract: a `record_run` of `n`
    /// same-line accesses drains to exactly the state and stalls of `n`
    /// individual records — across cold lines, warm lines, and interleaved
    /// data traffic between runs.
    #[test]
    fn coalesced_run_equals_per_access_replay() {
        let line = CacheConfig::l1_default().line;
        // (start paddr, kind, run length); runs stay within one line.
        let runs = [
            (0x1000, AccessKind::Fetch, 16),
            (0x1000 + line, AccessKind::Fetch, 5),
            (0x8000, AccessKind::Load, 3),
            (0x1000, AccessKind::Fetch, 16), // warm re-run
            (0x8004, AccessKind::Store, 2),
            (0x1000 + line, AccessKind::Fetch, 1),
        ];

        let mut exact_h = CacheHierarchy::fpga_default();
        let mut exact_stalls = 0;
        for &(pa, kind, n) in &runs {
            for i in 0..n {
                // Walk within the line like a fetch stream does.
                exact_stalls += exact_h.access(pa + (i % (line / 4)) * 4, kind);
            }
        }

        let mut coalesced_h = CacheHierarchy::fpga_default();
        let mut ring = MemEventRing::new();
        let mut coalesced_stalls = 0;
        for &(pa, kind, n) in &runs {
            ring.record_run(pa, kind, n);
            coalesced_stalls += coalesced_h.drain(&mut ring);
        }

        assert_eq!(coalesced_stalls, exact_stalls);
        assert_eq!(coalesced_h.stats(), exact_h.stats());
        assert_eq!(coalesced_h.l1_line(), line);
    }
}
