//! The flat op table: threaded dispatch for the execute core.
//!
//! Every [`Instr`] variant gets one handler function; [`OP_TABLE`] lists
//! them in a fixed order and [`dispatch_index`] resolves an instruction to
//! its slot. Decode ([`crate::region::DecodedRegion`]) runs the resolution
//! once per instruction at registration time, so both the single-step path
//! and the superblock loop execute with a single indexed call instead of
//! re-entering a 70-arm `match` per instruction.
//!
//! The table and the index function are generated from the *same* macro
//! list, so they cannot drift out of sync: a handler's position in
//! [`OP_TABLE`] is, by construction, the index [`dispatch_index`] assigns
//! to its pattern.

#![allow(clippy::unnecessary_wraps)] // handlers share one fallible signature

use crate::cpu::{Cpu, ExecCtx, Exit, TrapCause, TrapInfo};
use cheri_cap::{CapFault, Capability, Perms};
use cheri_isa::{Instr, Width};
use cheri_mem::AccessKind;
use cheri_vm::Access;

/// What one instruction produces: `Ok(None)` to continue, `Ok(Some(exit))`
/// to leave the run loop, `Err(trap)` on a fault (with `rf.pc` still at
/// the faulting instruction).
pub(crate) type OpResult = Result<Option<Exit>, TrapInfo>;

/// Handler signature shared by every slot of [`OP_TABLE`].
pub(crate) type OpFn = fn(&mut Cpu, &mut ExecCtx<'_>, Instr) -> OpResult;

fn capfault(pc: u64, f: CapFault, vaddr: Option<u64>) -> TrapInfo {
    TrapInfo {
        cause: TrapCause::Cap(f),
        pc,
        vaddr,
    }
}

macro_rules! define_ops {
    ($( $name:ident : $pat:pat => |$cpu:ident, $cx:ident| $body:block )+) => {
        $(
            fn $name($cpu: &mut Cpu, $cx: &mut ExecCtx<'_>, instr: Instr) -> OpResult {
                let $pat = instr else {
                    unreachable!("op table and dispatch index out of sync")
                };
                $body
            }
        )+

        /// The flat dispatch table, indexed by [`dispatch_index`].
        pub(crate) static OP_TABLE: &[OpFn] = &[$($name),+];

        /// Resolves an instruction to its [`OP_TABLE`] slot. Called once
        /// per instruction at decode time, never in the hot loop.
        #[allow(unused_variables, unused_assignments)]
        pub(crate) fn dispatch_index(i: &Instr) -> u8 {
            let mut idx: u8 = 0;
            $(
                if matches!(i, $pat) {
                    return idx;
                }
                idx += 1;
            )+
            unreachable!("instruction missing from op table")
        }
    };
}

define_ops! {
    op_li: Instr::Li { rd, imm } => |_cpu, cx| {
        cx.rf.w(rd, imm as u64);
        Ok(None)
    }
    op_move: Instr::Move { rd, rs } => |_cpu, cx| {
        cx.rf.w(rd, cx.rf.r(rs));
        Ok(None)
    }
    op_add: Instr::Add { rd, rs, rt } => |_cpu, cx| {
        cx.rf.w(rd, cx.rf.r(rs).wrapping_add(cx.rf.r(rt)));
        Ok(None)
    }
    op_sub: Instr::Sub { rd, rs, rt } => |_cpu, cx| {
        cx.rf.w(rd, cx.rf.r(rs).wrapping_sub(cx.rf.r(rt)));
        Ok(None)
    }
    op_mul: Instr::Mul { rd, rs, rt } => |_cpu, cx| {
        cx.rf.w(rd, cx.rf.r(rs).wrapping_mul(cx.rf.r(rt)));
        Ok(None)
    }
    op_divu: Instr::DivU { rd, rs, rt } => |_cpu, cx| {
        let d = cx.rf.r(rt);
        cx.rf.w(rd, cx.rf.r(rs).checked_div(d).unwrap_or(0));
        Ok(None)
    }
    op_divs: Instr::DivS { rd, rs, rt } => |_cpu, cx| {
        let d = cx.rf.r(rt) as i64;
        let n = cx.rf.r(rs) as i64;
        cx.rf.w(rd, if d == 0 { 0 } else { n.wrapping_div(d) as u64 });
        Ok(None)
    }
    op_remu: Instr::RemU { rd, rs, rt } => |_cpu, cx| {
        let d = cx.rf.r(rt);
        cx.rf.w(rd, if d == 0 { 0 } else { cx.rf.r(rs) % d });
        Ok(None)
    }
    op_and: Instr::And { rd, rs, rt } => |_cpu, cx| {
        cx.rf.w(rd, cx.rf.r(rs) & cx.rf.r(rt));
        Ok(None)
    }
    op_or: Instr::Or { rd, rs, rt } => |_cpu, cx| {
        cx.rf.w(rd, cx.rf.r(rs) | cx.rf.r(rt));
        Ok(None)
    }
    op_xor: Instr::Xor { rd, rs, rt } => |_cpu, cx| {
        cx.rf.w(rd, cx.rf.r(rs) ^ cx.rf.r(rt));
        Ok(None)
    }
    op_nor: Instr::Nor { rd, rs, rt } => |_cpu, cx| {
        cx.rf.w(rd, !(cx.rf.r(rs) | cx.rf.r(rt)));
        Ok(None)
    }
    op_sllv: Instr::Sllv { rd, rs, rt } => |_cpu, cx| {
        cx.rf.w(rd, cx.rf.r(rs) << (cx.rf.r(rt) & 63));
        Ok(None)
    }
    op_srlv: Instr::Srlv { rd, rs, rt } => |_cpu, cx| {
        cx.rf.w(rd, cx.rf.r(rs) >> (cx.rf.r(rt) & 63));
        Ok(None)
    }
    op_srav: Instr::Srav { rd, rs, rt } => |_cpu, cx| {
        cx.rf.w(rd, ((cx.rf.r(rs) as i64) >> (cx.rf.r(rt) & 63)) as u64);
        Ok(None)
    }
    op_slt: Instr::Slt { rd, rs, rt } => |_cpu, cx| {
        cx.rf.w(rd, u64::from((cx.rf.r(rs) as i64) < (cx.rf.r(rt) as i64)));
        Ok(None)
    }
    op_sltu: Instr::Sltu { rd, rs, rt } => |_cpu, cx| {
        cx.rf.w(rd, u64::from(cx.rf.r(rs) < cx.rf.r(rt)));
        Ok(None)
    }
    op_addi: Instr::AddI { rd, rs, imm } => |_cpu, cx| {
        cx.rf.w(rd, cx.rf.r(rs).wrapping_add(imm as u64));
        Ok(None)
    }
    op_andi: Instr::AndI { rd, rs, imm } => |_cpu, cx| {
        cx.rf.w(rd, cx.rf.r(rs) & imm);
        Ok(None)
    }
    op_ori: Instr::OrI { rd, rs, imm } => |_cpu, cx| {
        cx.rf.w(rd, cx.rf.r(rs) | imm);
        Ok(None)
    }
    op_xori: Instr::XorI { rd, rs, imm } => |_cpu, cx| {
        cx.rf.w(rd, cx.rf.r(rs) ^ imm);
        Ok(None)
    }
    op_slli: Instr::SllI { rd, rs, sh } => |_cpu, cx| {
        cx.rf.w(rd, cx.rf.r(rs) << (sh & 63));
        Ok(None)
    }
    op_srli: Instr::SrlI { rd, rs, sh } => |_cpu, cx| {
        cx.rf.w(rd, cx.rf.r(rs) >> (sh & 63));
        Ok(None)
    }
    op_srai: Instr::SraI { rd, rs, sh } => |_cpu, cx| {
        cx.rf.w(rd, ((cx.rf.r(rs) as i64) >> (sh & 63)) as u64);
        Ok(None)
    }
    op_slti: Instr::SltI { rd, rs, imm } => |_cpu, cx| {
        cx.rf.w(rd, u64::from((cx.rf.r(rs) as i64) < imm));
        Ok(None)
    }
    op_sltui: Instr::SltuI { rd, rs, imm } => |_cpu, cx| {
        cx.rf.w(rd, u64::from(cx.rf.r(rs) < imm));
        Ok(None)
    }
    op_beq: Instr::Beq { rs, rt, target } => |_cpu, cx| {
        if cx.rf.r(rs) == cx.rf.r(rt) {
            cx.next = cx.rstart + u64::from(target) * 4;
        }
        Ok(None)
    }
    op_bne: Instr::Bne { rs, rt, target } => |_cpu, cx| {
        if cx.rf.r(rs) != cx.rf.r(rt) {
            cx.next = cx.rstart + u64::from(target) * 4;
        }
        Ok(None)
    }
    op_blez: Instr::Blez { rs, target } => |_cpu, cx| {
        if (cx.rf.r(rs) as i64) <= 0 {
            cx.next = cx.rstart + u64::from(target) * 4;
        }
        Ok(None)
    }
    op_bgtz: Instr::Bgtz { rs, target } => |_cpu, cx| {
        if (cx.rf.r(rs) as i64) > 0 {
            cx.next = cx.rstart + u64::from(target) * 4;
        }
        Ok(None)
    }
    op_bltz: Instr::Bltz { rs, target } => |_cpu, cx| {
        if (cx.rf.r(rs) as i64) < 0 {
            cx.next = cx.rstart + u64::from(target) * 4;
        }
        Ok(None)
    }
    op_bgez: Instr::Bgez { rs, target } => |_cpu, cx| {
        if (cx.rf.r(rs) as i64) >= 0 {
            cx.next = cx.rstart + u64::from(target) * 4;
        }
        Ok(None)
    }
    op_j: Instr::J { target } => |_cpu, cx| {
        cx.next = cx.rstart + u64::from(target) * 4;
        Ok(None)
    }
    op_jal: Instr::Jal { target } => |_cpu, cx| {
        // Return continuation in both files: $ra for legacy code, $cra
        // (PCC-derived, hence bounded) for pure-capability code.
        cx.rf.w(cheri_isa::ireg::RA, cx.next);
        cx.rf.wc(cheri_isa::creg::CRA, cx.rf.pcc.with_addr(cx.next));
        cx.next = cx.rstart + u64::from(target) * 4;
        Ok(None)
    }
    op_jr: Instr::Jr { rs } => |_cpu, cx| {
        cx.next = cx.rf.r(rs);
        Ok(None)
    }
    op_jalr: Instr::Jalr { rd, rs } => |_cpu, cx| {
        cx.rf.w(rd, cx.next);
        cx.next = cx.rf.r(rs);
        Ok(None)
    }
    op_syscall: Instr::Syscall => |cpu, cx| {
        cpu.stats.syscalls += 1;
        cx.rf.pc = cx.next;
        Ok(Some(Exit::Syscall))
    }
    op_break: Instr::Break => |_cpu, cx| {
        cx.rf.pc = cx.pc;
        Ok(Some(Exit::Break))
    }
    op_nop: Instr::Nop => |_cpu, _cx| {
        Ok(None)
    }
    op_load: Instr::Load { rd, base, off, w, signed } => |cpu, cx| {
        let ddc = *Cpu::legacy_cap(cx.rf, cx.pc)?;
        let vaddr = cx.rf.r(base).wrapping_add(off as u64);
        // Legacy unaligned access is fixed up by the kernel on FreeBSD/MIPS
        // at significant cost; emulate that.
        if !vaddr.is_multiple_of(w.bytes()) {
            cpu.stats.cycles += 50;
        }
        let v = cpu.data_read(cx.vm, cx.id, &ddc, vaddr, w, signed, false, cx.pc)?;
        cx.rf.w(rd, v);
        Ok(None)
    }
    op_store: Instr::Store { rs, base, off, w } => |cpu, cx| {
        let ddc = *Cpu::legacy_cap(cx.rf, cx.pc)?;
        let vaddr = cx.rf.r(base).wrapping_add(off as u64);
        if !vaddr.is_multiple_of(w.bytes()) {
            cpu.stats.cycles += 50;
        }
        let v = cx.rf.r(rs);
        cpu.data_write(cx.vm, cx.id, &ddc, vaddr, w, v, false, cx.pc)?;
        Ok(None)
    }
    op_cload: Instr::CLoad { rd, cb, off, w, signed } => |cpu, cx| {
        let cap = cx.rf.c(cb);
        let vaddr = cap.addr().wrapping_add(off as u64);
        let v = cpu.data_read(cx.vm, cx.id, &cap, vaddr, w, signed, true, cx.pc)?;
        cx.rf.w(rd, v);
        Ok(None)
    }
    op_cstore: Instr::CStore { rs, cb, off, w } => |cpu, cx| {
        let cap = cx.rf.c(cb);
        let vaddr = cap.addr().wrapping_add(off as u64);
        let v = cx.rf.r(rs);
        cpu.data_write(cx.vm, cx.id, &cap, vaddr, w, v, true, cx.pc)?;
        Ok(None)
    }
    op_clc: Instr::Clc { cd, cb, off } => |cpu, cx| {
        let cap = cx.rf.c(cb);
        let vaddr = cap.addr().wrapping_add(off as u64);
        let size = cap.format().in_memory_size();
        if !vaddr.is_multiple_of(size) {
            return Err(capfault(cx.pc, CapFault::UnalignedCapAccess, Some(vaddr)));
        }
        cap.check_access(vaddr, size, Perms::LOAD)
            .map_err(|f| capfault(cx.pc, f, Some(vaddr)))?;
        let pa = cpu.translate_cached(cx.vm, cx.id, vaddr, Access::Read, cx.pc)?;
        cpu.mem_access(pa, AccessKind::Load);
        let loaded = cx.vm.load_cap(cx.id, vaddr).map_err(|e| TrapInfo {
            cause: TrapCause::Vm(e),
            pc: cx.pc,
            vaddr: Some(vaddr),
        })?;
        let value = match loaded {
            Some(c) => {
                if cap.perms().contains(Perms::LOAD_CAP) {
                    c
                } else {
                    // Loading through a no-LOAD_CAP capability strips the
                    // tag.
                    c.clear_tag()
                }
            }
            None => {
                let raw =
                    cpu.data_read(cx.vm, cx.id, &cap, vaddr, Width::D, false, true, cx.pc)?;
                Capability::null(cap.format()).with_addr(raw)
            }
        };
        cx.rf.wc(cd, value);
        Ok(None)
    }
    op_csc: Instr::Csc { cs, cb, off } => |cpu, cx| {
        let cap = cx.rf.c(cb);
        let value = cx.rf.c(cs);
        let vaddr = cap.addr().wrapping_add(off as u64);
        let size = cap.format().in_memory_size();
        if !vaddr.is_multiple_of(size) {
            return Err(capfault(cx.pc, CapFault::UnalignedCapAccess, Some(vaddr)));
        }
        cap.check_access(vaddr, size, Perms::STORE)
            .map_err(|f| capfault(cx.pc, f, Some(vaddr)))?;
        if value.tag() {
            if !cap.perms().contains(Perms::STORE_CAP) {
                return Err(capfault(cx.pc, CapFault::PermitStoreCapViolation, Some(vaddr)));
            }
            if !value.perms().contains(Perms::GLOBAL)
                && !cap.perms().contains(Perms::STORE_LOCAL_CAP)
            {
                return Err(capfault(
                    cx.pc,
                    CapFault::PermitStoreLocalCapViolation,
                    Some(vaddr),
                ));
            }
        }
        let pa = cpu.translate_cached(cx.vm, cx.id, vaddr, Access::Write, cx.pc)?;
        cpu.mem_access(pa, AccessKind::Store);
        cx.vm.store_cap(cx.id, vaddr, value).map_err(|e| TrapInfo {
            cause: TrapCause::Vm(e),
            pc: cx.pc,
            vaddr: Some(vaddr),
        })?;
        Ok(None)
    }
    op_cgetaddr: Instr::CGetAddr { rd, cb } => |_cpu, cx| {
        cx.rf.w(rd, cx.rf.c(cb).addr());
        Ok(None)
    }
    op_cgetbase: Instr::CGetBase { rd, cb } => |_cpu, cx| {
        cx.rf.w(rd, cx.rf.c(cb).base());
        Ok(None)
    }
    op_cgetlen: Instr::CGetLen { rd, cb } => |_cpu, cx| {
        cx.rf.w(rd, cx.rf.c(cb).length());
        Ok(None)
    }
    op_cgetperm: Instr::CGetPerm { rd, cb } => |_cpu, cx| {
        cx.rf.w(rd, u64::from(cx.rf.c(cb).perms().bits()));
        Ok(None)
    }
    op_cgettag: Instr::CGetTag { rd, cb } => |_cpu, cx| {
        cx.rf.w(rd, u64::from(cx.rf.c(cb).tag()));
        Ok(None)
    }
    op_cgetoffset: Instr::CGetOffset { rd, cb } => |_cpu, cx| {
        cx.rf.w(rd, cx.rf.c(cb).offset());
        Ok(None)
    }
    op_cgettype: Instr::CGetType { rd, cb } => |_cpu, cx| {
        cx.rf.w(
            rd,
            cx.rf.c(cb).otype().map_or(u64::MAX, |t| u64::from(t.value())),
        );
        Ok(None)
    }
    op_csetaddr: Instr::CSetAddr { cd, cb, rs } => |_cpu, cx| {
        cx.rf.wc(cd, cx.rf.c(cb).with_addr(cx.rf.r(rs)));
        Ok(None)
    }
    op_cincoffset: Instr::CIncOffset { cd, cb, rs } => |_cpu, cx| {
        cx.rf.wc(cd, cx.rf.c(cb).inc_addr(cx.rf.r(rs) as i64));
        Ok(None)
    }
    op_cincoffsetimm: Instr::CIncOffsetImm { cd, cb, imm } => |_cpu, cx| {
        cx.rf.wc(cd, cx.rf.c(cb).inc_addr(imm));
        Ok(None)
    }
    op_csetbounds: Instr::CSetBounds { cd, cb, rs } => |cpu, cx| {
        let c = cx
            .rf
            .c(cb)
            .set_bounds(cx.rf.r(rs), false)
            .map_err(|f| capfault(cx.pc, f, None))?;
        cpu.trace.record(&c);
        cx.rf.wc(cd, c);
        Ok(None)
    }
    op_csetboundsimm: Instr::CSetBoundsImm { cd, cb, imm } => |cpu, cx| {
        let c = cx
            .rf
            .c(cb)
            .set_bounds(imm, false)
            .map_err(|f| capfault(cx.pc, f, None))?;
        cpu.trace.record(&c);
        cx.rf.wc(cd, c);
        Ok(None)
    }
    op_csetboundsexact: Instr::CSetBoundsExact { cd, cb, rs } => |cpu, cx| {
        let c = cx
            .rf
            .c(cb)
            .set_bounds(cx.rf.r(rs), true)
            .map_err(|f| capfault(cx.pc, f, None))?;
        cpu.trace.record(&c);
        cx.rf.wc(cd, c);
        Ok(None)
    }
    op_candperm: Instr::CAndPerm { cd, cb, rs } => |cpu, cx| {
        let c = cx
            .rf
            .c(cb)
            .and_perms(Perms::from_bits_truncate(cx.rf.r(rs) as u32));
        cpu.trace.record(&c);
        cx.rf.wc(cd, c);
        Ok(None)
    }
    op_ccleartag: Instr::CClearTag { cd, cb } => |_cpu, cx| {
        cx.rf.wc(cd, cx.rf.c(cb).clear_tag());
        Ok(None)
    }
    op_cmove: Instr::CMove { cd, cb } => |_cpu, cx| {
        cx.rf.wc(cd, cx.rf.c(cb));
        Ok(None)
    }
    op_crrl: Instr::CRrl { rd, rs } => |_cpu, cx| {
        cx.rf
            .w(rd, cx.rf.pcc.format().representable_length(cx.rf.r(rs)));
        Ok(None)
    }
    op_cram: Instr::CRam { rd, rs } => |_cpu, cx| {
        cx.rf
            .w(rd, cx.rf.pcc.format().representable_alignment_mask(cx.rf.r(rs)));
        Ok(None)
    }
    op_csub: Instr::CSub { rd, cb, ct } => |_cpu, cx| {
        cx.rf
            .w(rd, cx.rf.c(cb).addr().wrapping_sub(cx.rf.c(ct).addr()));
        Ok(None)
    }
    op_cfromptr: Instr::CFromPtr { cd, cb, rs } => |cpu, cx| {
        let v = cx.rf.r(rs);
        let c = if v == 0 {
            Capability::null(cx.rf.pcc.format())
        } else {
            cx.rf.c(cb).with_addr(v)
        };
        cpu.trace.record(&c);
        cx.rf.wc(cd, c);
        Ok(None)
    }
    op_ctoptr: Instr::CToPtr { rd, cb, ct } => |_cpu, cx| {
        let c = cx.rf.c(cb);
        let _ = ct;
        cx.rf.w(rd, if c.tag() { c.addr() } else { 0 });
        Ok(None)
    }
    op_cseal: Instr::CSeal { cd, cs, ct } => |_cpu, cx| {
        let c = cx
            .rf
            .c(cs)
            .seal(&cx.rf.c(ct))
            .map_err(|f| capfault(cx.pc, f, None))?;
        cx.rf.wc(cd, c);
        Ok(None)
    }
    op_cunseal: Instr::CUnseal { cd, cs, ct } => |_cpu, cx| {
        let c = cx
            .rf
            .c(cs)
            .unseal(&cx.rf.c(ct))
            .map_err(|f| capfault(cx.pc, f, None))?;
        cx.rf.wc(cd, c);
        Ok(None)
    }
    op_ctestsubset: Instr::CTestSubset { rd, cb, ct } => |_cpu, cx| {
        let a = cx.rf.c(cb);
        let b = cx.rf.c(ct);
        cx.rf.w(rd, u64::from(a.tag() && b.tag() && b.is_subset_of(&a)));
        Ok(None)
    }
    op_cjr: Instr::CJr { cb } => |_cpu, cx| {
        let t = cx.rf.c(cb);
        t.check_access(t.addr(), 4, Perms::EXECUTE)
            .map_err(|f| capfault(cx.pc, f, Some(t.addr())))?;
        cx.rf.pcc = t;
        cx.next = t.addr();
        Ok(None)
    }
    op_cjalr: Instr::CJalr { cd, cb } => |_cpu, cx| {
        let t = cx.rf.c(cb);
        t.check_access(t.addr(), 4, Perms::EXECUTE)
            .map_err(|f| capfault(cx.pc, f, Some(t.addr())))?;
        cx.rf.wc(cd, cx.rf.pcc.with_addr(cx.next));
        cx.rf.pcc = t;
        cx.next = t.addr();
        Ok(None)
    }
    op_cgetpcc: Instr::CGetPcc { cd } => |_cpu, cx| {
        cx.rf.wc(cd, cx.rf.pcc.with_addr(cx.pc));
        Ok(None)
    }
    op_cgetddc: Instr::CGetDdc { cd } => |_cpu, cx| {
        cx.rf.wc(cd, cx.rf.ddc);
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_isa::{creg, ireg};

    /// One exemplar per variant, in declaration order. The compiler cannot
    /// enforce completeness of a value list, so this doubles as the check
    /// that [`dispatch_index`] assigns every variant a distinct,
    /// contiguous slot.
    fn exemplars() -> Vec<Instr> {
        let rd = ireg::T0;
        let rs = ireg::T1;
        let rt = ireg::T2;
        let base = ireg::T3;
        let cd = creg::ptr(0);
        let cb = creg::ptr(1);
        let cs = creg::ptr(2);
        let ct = creg::ptr(3);
        vec![
            Instr::Li { rd, imm: 0 },
            Instr::Move { rd, rs },
            Instr::Add { rd, rs, rt },
            Instr::Sub { rd, rs, rt },
            Instr::Mul { rd, rs, rt },
            Instr::DivU { rd, rs, rt },
            Instr::DivS { rd, rs, rt },
            Instr::RemU { rd, rs, rt },
            Instr::And { rd, rs, rt },
            Instr::Or { rd, rs, rt },
            Instr::Xor { rd, rs, rt },
            Instr::Nor { rd, rs, rt },
            Instr::Sllv { rd, rs, rt },
            Instr::Srlv { rd, rs, rt },
            Instr::Srav { rd, rs, rt },
            Instr::Slt { rd, rs, rt },
            Instr::Sltu { rd, rs, rt },
            Instr::AddI { rd, rs, imm: 0 },
            Instr::AndI { rd, rs, imm: 0 },
            Instr::OrI { rd, rs, imm: 0 },
            Instr::XorI { rd, rs, imm: 0 },
            Instr::SllI { rd, rs, sh: 0 },
            Instr::SrlI { rd, rs, sh: 0 },
            Instr::SraI { rd, rs, sh: 0 },
            Instr::SltI { rd, rs, imm: 0 },
            Instr::SltuI { rd, rs, imm: 0 },
            Instr::Beq { rs, rt, target: 0 },
            Instr::Bne { rs, rt, target: 0 },
            Instr::Blez { rs, target: 0 },
            Instr::Bgtz { rs, target: 0 },
            Instr::Bltz { rs, target: 0 },
            Instr::Bgez { rs, target: 0 },
            Instr::J { target: 0 },
            Instr::Jal { target: 0 },
            Instr::Jr { rs },
            Instr::Jalr { rd, rs },
            Instr::Syscall,
            Instr::Break,
            Instr::Nop,
            Instr::Load {
                rd,
                base,
                off: 0,
                w: Width::D,
                signed: false,
            },
            Instr::Store {
                rs,
                base,
                off: 0,
                w: Width::D,
            },
            Instr::CLoad {
                rd,
                cb,
                off: 0,
                w: Width::D,
                signed: false,
            },
            Instr::CStore {
                rs,
                cb,
                off: 0,
                w: Width::D,
            },
            Instr::Clc { cd, cb, off: 0 },
            Instr::Csc { cs, cb, off: 0 },
            Instr::CGetAddr { rd, cb },
            Instr::CGetBase { rd, cb },
            Instr::CGetLen { rd, cb },
            Instr::CGetPerm { rd, cb },
            Instr::CGetTag { rd, cb },
            Instr::CGetOffset { rd, cb },
            Instr::CGetType { rd, cb },
            Instr::CSetAddr { cd, cb, rs },
            Instr::CIncOffset { cd, cb, rs },
            Instr::CIncOffsetImm { cd, cb, imm: 0 },
            Instr::CSetBounds { cd, cb, rs },
            Instr::CSetBoundsImm { cd, cb, imm: 0 },
            Instr::CSetBoundsExact { cd, cb, rs },
            Instr::CAndPerm { cd, cb, rs },
            Instr::CClearTag { cd, cb },
            Instr::CMove { cd, cb },
            Instr::CRrl { rd, rs },
            Instr::CRam { rd, rs },
            Instr::CSub { rd, cb, ct },
            Instr::CFromPtr { cd, cb, rs },
            Instr::CToPtr { rd, cb, ct },
            Instr::CSeal { cd, cs, ct },
            Instr::CUnseal { cd, cs, ct },
            Instr::CTestSubset { rd, cb, ct },
            Instr::CJr { cb },
            Instr::CJalr { cd, cb },
            Instr::CGetPcc { cd },
            Instr::CGetDdc { cd },
        ]
    }

    #[test]
    fn every_variant_gets_a_distinct_contiguous_slot() {
        let all = exemplars();
        assert_eq!(all.len(), OP_TABLE.len(), "exemplar list out of date");
        for (i, instr) in all.iter().enumerate() {
            assert_eq!(
                usize::from(dispatch_index(instr)),
                i,
                "dispatch order diverged at {instr:?}"
            );
        }
    }
}
