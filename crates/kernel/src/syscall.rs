//! The system-call dispatcher: the CheriABI kernel/user boundary (§4).

use crate::abi::{AbiMode, Errno, Sys};
use crate::costs;
use crate::kernel::{Kernel, Pipe, UserRef};
use crate::process::{ExitStatus, FileDesc, KqEntry, Pid, ProcState, Process, WaitReason};
use cheri_cap::{CapSource, Capability, Perms};
use cheri_isa::{creg, ireg};
use cheri_vm::{Backing, Prot};

/// Non-value outcomes of a syscall.
pub(crate) enum SysFlow {
    /// Fail with errno.
    Err(Errno),
    /// Block and retry when the condition holds.
    Block(WaitReason),
    /// The process exited inside the call.
    Exited,
}

impl From<Errno> for SysFlow {
    fn from(e: Errno) -> SysFlow {
        SysFlow::Err(e)
    }
}

type SysRet = Result<u64, SysFlow>;

fn err(e: Errno) -> SysFlow {
    SysFlow::Err(e)
}

fn uref_add(uref: UserRef, off: u64) -> UserRef {
    match uref {
        UserRef::Cap(c) => UserRef::Cap(c.inc_addr(off as i64)),
        UserRef::Addr(a) => UserRef::Addr(a.wrapping_add(off)),
    }
}

impl Kernel {
    pub(crate) fn handle_syscall(&mut self, pid: Pid) {
        let num = self.process(pid).regs.r(ireg::V0);
        // Runtime services (malloc/free/realloc) are userspace library
        // calls in reality; they pay only their own modelled cost, not the
        // kernel trap overhead.
        let is_runtime = matches!(
            Sys::from_number(num),
            Some(Sys::RtMalloc | Sys::RtFree | Sys::RtRealloc)
        );
        self.cpu
            .charge(0, if is_runtime { 12 } else { costs::SYSCALL_BASE });
        // Fault plane: transient syscall errors. `exit` and `sigreturn` are
        // never interrupted (neither is restartable).
        if let Some(sys) = Sys::from_number(num) {
            if !matches!(sys, Sys::Exit | Sys::Sigreturn) {
                self.syscall_faults.calls += 1;
                let calls = self.syscall_faults.calls;
                if Some(calls) == self.syscall_faults.spec.eintr_at {
                    // EINTR with kernel restart semantics: rewind pc to the
                    // syscall instruction and requeue; the retried call is
                    // transparent to the guest.
                    self.syscall_faults.eintr_injected += 1;
                    let p = self.process_mut(pid);
                    p.regs.pc = p.regs.pc.wrapping_sub(4);
                    self.requeue(pid);
                    return;
                }
                if Some(calls) == self.syscall_faults.spec.enomem_at {
                    // ENOMEM is guest-visible: delivered as the errno.
                    self.syscall_faults.enomem_injected += 1;
                    self.process_mut(pid)
                        .regs
                        .w(ireg::V0, Errno::ENOMEM.as_ret());
                    self.requeue(pid);
                    return;
                }
            }
        }
        let result: SysRet = match Sys::from_number(num) {
            None => Err(err(Errno::ENOSYS)),
            Some(sys) => {
                self.bump_syscall(name_of(sys));
                match sys {
                    Sys::Exit => {
                        let code = self.user_val(pid, 0) as i64;
                        self.terminate(pid, ExitStatus::Code(code));
                        Err(SysFlow::Exited)
                    }
                    Sys::Write => self.sys_write(pid),
                    Sys::Read => self.sys_read(pid),
                    Sys::Open => self.sys_open(pid),
                    Sys::Close => self.sys_close(pid),
                    Sys::Pipe => self.sys_pipe(pid),
                    Sys::Getpid => Ok(pid.0),
                    Sys::Fork => self.sys_fork(pid),
                    Sys::Waitpid => self.sys_waitpid(pid),
                    Sys::Mmap => self.sys_mmap(pid),
                    Sys::Munmap => self.sys_munmap(pid),
                    Sys::Shmget => self.sys_shmget(pid),
                    Sys::Shmat => self.sys_shmat(pid),
                    Sys::Shmdt => self.sys_shmdt(pid),
                    Sys::Sigaction => self.sys_sigaction(pid),
                    Sys::Sigreturn => {
                        if self.sigreturn(pid) {
                            self.requeue(pid);
                            return;
                        }
                        self.terminate(pid, ExitStatus::Signaled(crate::signal::SIGPROT));
                        Err(SysFlow::Exited)
                    }
                    Sys::Kill => self.sys_kill(pid),
                    Sys::Select => self.sys_select(pid),
                    Sys::KeventRegister => self.sys_kevent_register(pid),
                    Sys::KeventWait => self.sys_kevent_wait(pid),
                    Sys::Ptrace => self.sys_ptrace(pid).map_err(err),
                    // "We have excluded sbrk as a matter of principle" (§4).
                    Sys::Sbrk => Err(err(Errno::ENOSYS)),
                    Sys::Ioctl => self.sys_ioctl(pid),
                    Sys::Sysctl => self.sys_sysctl(pid),
                    Sys::Unlink => self.sys_unlink(pid),
                    Sys::Swapctl => self.sys_swapctl(pid),
                    Sys::RtMalloc => self.sys_rt_malloc(pid),
                    Sys::RtFree => self.sys_rt_free(pid),
                    Sys::RtRealloc => self.sys_rt_realloc(pid),
                    Sys::RtSetTemporal => {
                        let on = self.user_val(pid, 0) != 0;
                        self.process_mut(pid).allocator.set_temporal(on);
                        Ok(0)
                    }
                    Sys::RtRevoke => self.sys_rt_revoke(pid),
                    Sys::Mprotect => self.sys_mprotect(pid),
                    // The deterministic guest clock: identical across jobs,
                    // shards and execution modes, so enqueue→reply latency
                    // stamps are reproducible to the cycle.
                    Sys::Cycles => Ok(self.cpu.stats.cycles),
                }
            }
        };
        match result {
            Ok(v) => {
                self.process_mut(pid).regs.w(ireg::V0, v);
                self.requeue(pid);
            }
            Err(SysFlow::Err(e)) => {
                self.process_mut(pid).regs.w(ireg::V0, e.as_ret());
                self.requeue(pid);
            }
            Err(SysFlow::Block(reason)) => self.block(pid, reason),
            Err(SysFlow::Exited) => {}
        }
    }

    fn requeue(&mut self, pid: Pid) {
        if matches!(self.process(pid).state, ProcState::Runnable) && !self.runq.contains(&pid) {
            self.runq.push_back(pid);
        }
    }

    /// Sets the capability return value (`$c3`) for pointer-returning
    /// syscalls under CheriABI, and records the derivation.
    fn set_ret_cap(&mut self, pid: Pid, cap: Capability) {
        self.cpu.trace.record(&cap);
        if self.process(pid).abi == AbiMode::CheriAbi {
            self.process_mut(pid).regs.wc(creg::C3, cap);
        }
    }

    // ------------------------------------------------------------------
    // Files, pipes, console
    // ------------------------------------------------------------------

    fn sys_write(&mut self, pid: Pid) -> SysRet {
        let fd = self.user_val(pid, 0);
        let buf = self.user_ref(pid, 1);
        let len = self.user_val(pid, 2);
        let data = self.copyin(pid, buf, len).map_err(err)?;
        match self.process(pid).fd(fd).cloned() {
            Some(FileDesc::Console) => {
                self.process_mut(pid).console.extend_from_slice(&data);
                Ok(len)
            }
            Some(FileDesc::PipeWrite(id)) => {
                let p = self.pipes.get_mut(&id).ok_or(err(Errno::EBADF))?;
                if p.readers == 0 {
                    return Err(err(Errno::EINVAL)); // EPIPE-ish
                }
                // Bounded buffer: a full pipe blocks the writer until a
                // reader drains space; a partially full one takes what
                // fits and reports the short count (POSIX semantics).
                let space = p.space();
                if space == 0 {
                    return Err(SysFlow::Block(WaitReason::PipeWritable(id)));
                }
                let n = space.min(data.len());
                p.buf.extend(data[..n].iter());
                Ok(n as u64)
            }
            Some(FileDesc::File {
                path,
                pos,
                writable,
            }) => {
                if !writable {
                    return Err(err(Errno::EPERM));
                }
                let file = self.memfs.entry(path.clone()).or_default();
                let end = pos as usize + data.len();
                if file.len() < end {
                    file.resize(end, 0);
                }
                file[pos as usize..end].copy_from_slice(&data);
                if let Some(Some(FileDesc::File { pos: p, .. })) =
                    self.process_mut(pid).fds.get_mut(fd as usize)
                {
                    *p += len;
                }
                Ok(len)
            }
            Some(FileDesc::PipeRead(_)) | None => Err(err(Errno::EBADF)),
        }
    }

    fn sys_read(&mut self, pid: Pid) -> SysRet {
        let fd = self.user_val(pid, 0);
        let buf = self.user_ref(pid, 1);
        let len = self.user_val(pid, 2);
        match self.process(pid).fd(fd).cloned() {
            Some(FileDesc::Console) => Ok(0),
            Some(FileDesc::PipeRead(id)) => {
                let p = self.pipes.get(&id).ok_or(err(Errno::EBADF))?;
                if p.buf.is_empty() {
                    if p.writers == 0 {
                        return Ok(0); // EOF
                    }
                    return Err(SysFlow::Block(WaitReason::PipeReadable(id)));
                }
                let n = (p.buf.len() as u64).min(len);
                let p = self.pipes.get_mut(&id).ok_or(err(Errno::EBADF))?;
                let data: Vec<u8> = p.buf.drain(..n as usize).collect();
                self.copyout(pid, buf, &data).map_err(err)?;
                Ok(n)
            }
            Some(FileDesc::File { path, pos, .. }) => {
                let file = self.memfs.get(&path).ok_or(err(Errno::ENOENT))?;
                let avail = (file.len() as u64).saturating_sub(pos);
                let n = avail.min(len);
                let data = file[pos as usize..(pos + n) as usize].to_vec();
                self.copyout(pid, buf, &data).map_err(err)?;
                if let Some(Some(FileDesc::File { pos: p, .. })) =
                    self.process_mut(pid).fds.get_mut(fd as usize)
                {
                    *p += n;
                }
                Ok(n)
            }
            Some(FileDesc::PipeWrite(_)) | None => Err(err(Errno::EBADF)),
        }
    }

    fn sys_open(&mut self, pid: Pid) -> SysRet {
        const O_WRONLY: u64 = 1;
        const O_CREAT: u64 = 2;
        const O_TRUNC: u64 = 4;
        let path_ref = self.user_ref(pid, 0);
        let flags = self.user_val(pid, 1);
        let path = self.copyinstr(pid, path_ref, 4096).map_err(err)?;
        let exists = self.memfs.contains_key(&path);
        if !exists && flags & O_CREAT == 0 {
            return Err(err(Errno::ENOENT));
        }
        if !exists || flags & O_TRUNC != 0 {
            self.memfs.insert(path.clone(), Vec::new());
        }
        let fd = self.process_mut(pid).install_fd(FileDesc::File {
            path,
            pos: 0,
            writable: flags & O_WRONLY != 0,
        });
        Ok(fd)
    }

    fn sys_close(&mut self, pid: Pid) -> SysRet {
        let fd = self.user_val(pid, 0);
        let slot = self
            .process_mut(pid)
            .fds
            .get_mut(fd as usize)
            .and_then(Option::take)
            .ok_or(err(Errno::EBADF))?;
        self.drop_fd(slot);
        Ok(0)
    }

    fn sys_pipe(&mut self, pid: Pid) -> SysRet {
        let out = self.user_ref(pid, 0);
        let id = self.next_pipe;
        self.next_pipe += 1;
        self.pipes.insert(
            id,
            Pipe {
                buf: Default::default(),
                capacity: self.config.pipe_capacity,
                readers: 1,
                writers: 1,
            },
        );
        let rfd = self.process_mut(pid).install_fd(FileDesc::PipeRead(id));
        let wfd = self.process_mut(pid).install_fd(FileDesc::PipeWrite(id));
        let mut bytes = [0u8; 8];
        bytes[..4].copy_from_slice(&(rfd as u32).to_le_bytes());
        bytes[4..].copy_from_slice(&(wfd as u32).to_le_bytes());
        self.copyout(pid, out, &bytes).map_err(err)?;
        Ok(0)
    }

    // ------------------------------------------------------------------
    // Processes
    // ------------------------------------------------------------------

    fn sys_fork(&mut self, pid: Pid) -> SysRet {
        let child_space = self
            .vm
            .fork_space(self.process(pid).space)
            .map_err(|_| err(Errno::ENOMEM))?;
        // COW made previously-writable parent pages read-shared;
        // fork_space bumped the translation epoch, so any stale write
        // translation dies on the next access.
        let pages = self.vm.space(child_space).pages.len() as u64;
        let child_pid = Pid(self.next_pid);
        self.next_pid += 1;
        let parent = self.process(pid);
        let mut regs = parent.regs.clone();
        regs.w(ireg::V0, 0); // child returns 0
        let child = Process {
            pid: child_pid,
            parent: Some(pid),
            abi: parent.abi,
            space: child_space,
            principal: parent.principal,
            regs,
            state: ProcState::Runnable,
            allocator: parent.allocator.retarget(child_space),
            fds: parent.fds.clone(),
            sighandlers: parent.sighandlers.clone(),
            pending_signals: Default::default(),
            signal_frames: parent.signal_frames.clone(),
            console: Vec::new(),
            loaded: parent.loaded.clone(),
            trampoline_pc: parent.trampoline_pc,
            kq: Vec::new(),
            children: Vec::new(),
            zombies: Vec::new(),
            traced_by: None,
            swap_retry: None,
            instr_budget: parent.instr_budget,
            cycles: 0,
            asan: parent.asan,
            stack_top: parent.stack_top,
            stack_size: parent.stack_size,
        };
        // Bump pipe refcounts for inherited descriptors.
        for fdesc in child.fds.iter().flatten() {
            match fdesc {
                FileDesc::PipeRead(id) => {
                    if let Some(p) = self.pipes.get_mut(id) {
                        p.readers += 1;
                    }
                }
                FileDesc::PipeWrite(id) => {
                    if let Some(p) = self.pipes.get_mut(id) {
                        p.writers += 1;
                    }
                }
                _ => {}
            }
        }
        let parent_space = self.process(pid).space;
        self.cpu.clone_code(parent_space, child_space);
        self.procs.insert(child_pid, child);
        self.process_mut(pid).children.push(child_pid);
        self.runq.push_back(child_pid);
        // Cost model: base + per-page COW marking, with the CheriABI
        // capability-context surcharge (§5.2: fork 3.4% slower).
        let mut cycles = costs::FORK_BASE + pages * costs::FORK_PER_PAGE;
        if self.process(pid).abi == AbiMode::CheriAbi {
            cycles += costs::FORK_CHERI_EXTRA + pages * costs::FORK_CHERI_PER_PAGE;
        }
        self.cpu.charge(cycles / 2, cycles);
        Ok(child_pid.0)
    }

    fn sys_waitpid(&mut self, pid: Pid) -> SysRet {
        let which = self.user_val(pid, 0);
        let target = if which == 0 { None } else { Some(Pid(which)) };
        let p = self.process_mut(pid);
        let idx = p.zombies.iter().position(|(z, _)| match target {
            Some(t) => *z == t,
            None => true,
        });
        if let Some(i) = idx {
            let (zpid, status) = p.zombies.remove(i);
            // Encode the status in the classic (code << 8) | signal form.
            let enc = match status {
                ExitStatus::Code(c) => ((c as u64) & 0xff) << 8,
                ExitStatus::Signaled(s) => u64::from(s),
                ExitStatus::Fault(_) => u64::from(crate::signal::SIGPROT),
                ExitStatus::SanitizerAbort => 6,
                ExitStatus::BudgetExhausted => 0xff,
            };
            let _ = zpid;
            return Ok(enc);
        }
        if p.children.is_empty() {
            return Err(err(Errno::ECHILD));
        }
        Err(SysFlow::Block(WaitReason::Child(target)))
    }

    fn sys_kill(&mut self, pid: Pid) -> SysRet {
        let target = Pid(self.user_val(pid, 0));
        let sig = self.user_val(pid, 1) as u8;
        if !self.procs.contains_key(&target) {
            return Err(err(Errno::ESRCH));
        }
        let t = self.process_mut(target);
        if matches!(t.state, ProcState::Exited(_)) {
            return Err(err(Errno::ESRCH));
        }
        t.pending_signals.push_back(sig);
        if matches!(t.state, ProcState::Blocked(r) if r != WaitReason::Traced) {
            t.state = ProcState::Runnable;
        }
        if !self.runq.contains(&target) {
            self.runq.push_back(target);
        }
        Ok(0)
    }

    fn sys_sigaction(&mut self, pid: Pid) -> SysRet {
        let sig = self.user_val(pid, 0) as u8;
        let handler = self.user_ref(pid, 1);
        let p = self.process_mut(pid);
        if handler.is_null() {
            p.sighandlers.remove(&sig);
        } else {
            p.sighandlers.insert(sig, handler.addr());
        }
        Ok(0)
    }

    // ------------------------------------------------------------------
    // Memory management (§4 "Virtual-address management APIs")
    // ------------------------------------------------------------------

    fn sys_mmap(&mut self, pid: Pid) -> SysRet {
        const MAP_FIXED: u64 = 1;
        let hint = self.user_ref(pid, 0);
        let len = self.user_val(pid, 1);
        let prot_bits = self.user_val(pid, 2);
        let flags = self.user_val(pid, 3);
        if len == 0 {
            return Err(err(Errno::EINVAL));
        }
        let mut prot = Prot::NONE;
        if prot_bits & 1 != 0 {
            prot = prot.union(Prot::READ);
        }
        if prot_bits & 2 != 0 {
            prot = prot.union(Prot::WRITE);
        }
        if prot_bits & 4 != 0 {
            prot = prot.union(Prot::EXEC);
        }
        let (space, abi, hardened) = {
            let p = self.process(pid);
            (p.space, p.abi, p.allocator.hardened())
        };
        let fixed = flags & MAP_FIXED != 0;
        let hint_cap = match hint {
            UserRef::Cap(c) if c.tag() => Some(c),
            _ => None,
        };
        let start = if fixed {
            let addr = hint.addr();
            let may_replace = hint_cap
                .map(|c| {
                    c.perms().contains(Perms::VMMAP)
                        && c.check_access(addr, len, Perms::NONE).is_ok()
                })
                .unwrap_or(false);
            if self.vm.space(space).is_range_mapped(addr, len) {
                if abi == AbiMode::CheriAbi && !may_replace {
                    if hardened {
                        // Hardened membrane: clamped re-derivation. The
                        // fixed request would replace a mapping the caller
                        // holds no VMMAP authority over; instead of EPROT,
                        // re-derive it as a kernel-placed mapping and
                        // record the repair. Nothing is replaced.
                        self.process_mut(pid).allocator.note_repair();
                        self.charge_allocator(pid);
                        let start = self
                            .vm
                            .map(space, None, len, prot, Backing::Zero, "mmap")
                            .map_err(|_| err(Errno::ENOMEM))?;
                        let ret = self
                            .vm
                            .space(space)
                            .root
                            .with_addr(start)
                            .set_bounds(len.div_ceil(4096) * 4096, false)
                            .map_err(|_| err(Errno::EINVAL))?
                            .and_perms(prot.as_cap_perms())
                            .with_source(CapSource::Syscall);
                        self.set_ret_cap(pid, ret);
                        return Ok(start);
                    }
                    // "if the caller requests a fixed mapping, we allow it
                    // only if it would not replace an existing mapping."
                    return Err(err(Errno::EPROT));
                }
                self.vm
                    .unmap(space, addr, len.div_ceil(4096) * 4096)
                    .map_err(|_| err(Errno::EINVAL))?;
            }
            self.vm
                .map(space, Some(addr), len, prot, Backing::Zero, "mmap")
                .map_err(|_| err(Errno::ENOMEM))?
        } else {
            self.vm
                .map(space, None, len, prot, Backing::Zero, "mmap")
                .map_err(|_| err(Errno::ENOMEM))?
        };
        // Derive the returned capability: from the hint capability when one
        // was supplied ("the returned capability is derived from it,
        // preserving provenance"), else from the space root.
        let source_cap = match hint_cap {
            Some(c) if c.check_access(start, len, Perms::NONE).is_ok() => c,
            _ => self.vm.space(space).root,
        };
        let ret = source_cap
            .with_addr(start)
            .set_bounds(len.div_ceil(4096) * 4096, false)
            .map_err(|_| err(Errno::EINVAL))?
            .and_perms(prot.as_cap_perms())
            .with_source(CapSource::Syscall);
        self.set_ret_cap(pid, ret);
        Ok(start)
    }

    fn sys_munmap(&mut self, pid: Pid) -> SysRet {
        let target = self.user_ref(pid, 0);
        let len = self.user_val(pid, 1);
        let (space, abi) = {
            let p = self.process(pid);
            (p.space, p.abi)
        };
        if abi == AbiMode::CheriAbi {
            // "We also require the vmmap permission to be present on
            // capabilities passed to munmap and shmdt."
            let UserRef::Cap(c) = target else {
                return Err(err(Errno::EPROT));
            };
            if !c.tag() || !c.perms().contains(Perms::VMMAP) {
                return Err(err(Errno::EPROT));
            }
            if c.check_access(c.addr(), len, Perms::NONE).is_err() {
                return Err(err(Errno::EPROT));
            }
        }
        self.vm
            .unmap(space, target.addr(), len.div_ceil(4096) * 4096)
            .map_err(|_| err(Errno::EINVAL))?;
        Ok(0)
    }

    fn sys_shmget(&mut self, pid: Pid) -> SysRet {
        let key = self.user_val(pid, 0);
        let len = self.user_val(pid, 1);
        let _ = pid;
        if let Some(&seg) = self.shm.get(&key) {
            return Ok(seg);
        }
        let seg = self
            .vm
            .create_shared_seg(len)
            .map_err(|_| err(Errno::ENOMEM))?;
        self.shm.insert(key, seg);
        Ok(seg)
    }

    fn sys_shmat(&mut self, pid: Pid) -> SysRet {
        let seg = self.user_val(pid, 0);
        let hint = self.user_ref(pid, 1);
        let (space, abi) = {
            let p = self.process(pid);
            (p.space, p.abi)
        };
        let len = self.vm.seg_len(seg).map_err(|_| err(Errno::EINVAL))?;
        let fixed = !hint.is_null();
        if fixed && abi == AbiMode::CheriAbi {
            // "With shmat, a fixed address is supported. If the fixed
            // address is a valid capability, we require that it have the
            // vmmap user-defined capability permission."
            let UserRef::Cap(c) = hint else {
                return Err(err(Errno::EPROT));
            };
            if !c.tag() || !c.perms().contains(Perms::VMMAP) {
                return Err(err(Errno::EPROT));
            }
        }
        let start = self
            .vm
            .map(
                space,
                fixed.then(|| hint.addr()),
                len,
                Prot::rw(),
                Backing::Shared { seg },
                "shm",
            )
            .map_err(|_| err(Errno::ENOMEM))?;
        let ret = self
            .vm
            .space(space)
            .root
            .with_addr(start)
            .set_bounds(len.div_ceil(4096) * 4096, false)
            .map_err(|_| err(Errno::EINVAL))?
            .and_perms(Prot::rw().as_cap_perms())
            .with_source(CapSource::Syscall);
        self.set_ret_cap(pid, ret);
        Ok(start)
    }

    fn sys_shmdt(&mut self, pid: Pid) -> SysRet {
        let target = self.user_ref(pid, 0);
        let (space, abi) = {
            let p = self.process(pid);
            (p.space, p.abi)
        };
        if abi == AbiMode::CheriAbi {
            let UserRef::Cap(c) = target else {
                return Err(err(Errno::EPROT));
            };
            if !c.tag() || !c.perms().contains(Perms::VMMAP) {
                return Err(err(Errno::EPROT));
            }
        }
        let m = self
            .vm
            .space(space)
            .mapping_at(target.addr())
            .filter(|m| matches!(m.backing, Backing::Shared { .. }))
            .map(|m| (m.start, m.len))
            .ok_or(err(Errno::EINVAL))?;
        self.vm
            .unmap(space, m.0, m.1)
            .map_err(|_| err(Errno::EINVAL))?;
        Ok(0)
    }

    fn sys_swapctl(&mut self, pid: Pid) -> SysRet {
        let n = self.user_val(pid, 0) as usize;
        let space = self.process(pid).space;
        let evicted = self
            .vm
            .swap_out_space(space, n)
            .map_err(|_| err(Errno::EINVAL))?;
        Ok(evicted as u64)
    }

    // ------------------------------------------------------------------
    // select / kevent
    // ------------------------------------------------------------------

    fn sys_select(&mut self, pid: Pid) -> SysRet {
        let _nfds = self.user_val(pid, 0);
        let readp = self.user_ref(pid, 1);
        let writep = self.user_ref(pid, 2);
        let exceptp = self.user_ref(pid, 3);
        let timeoutp = self.user_ref(pid, 4);
        self.cpu.charge(costs::SELECT_BASE / 4, costs::SELECT_BASE);
        let read_in = if readp.is_null() {
            0
        } else {
            let b = self.copyin(pid, readp, 8).map_err(err)?;
            self.cpu.charge(0, costs::SELECT_PER_SET);
            u64::from_le_bytes(b.try_into().map_err(|_| err(Errno::EFAULT))?)
        };
        let write_in = if writep.is_null() {
            0
        } else {
            let b = self.copyin(pid, writep, 8).map_err(err)?;
            self.cpu.charge(0, costs::SELECT_PER_SET);
            u64::from_le_bytes(b.try_into().map_err(|_| err(Errno::EFAULT))?)
        };
        if !exceptp.is_null() {
            let _ = self.copyin(pid, exceptp, 8).map_err(err)?;
            self.cpu.charge(0, costs::SELECT_PER_SET);
        }
        let mut read_out = 0u64;
        for fd in 0..64 {
            if read_in >> fd & 1 == 1 && self.fd_readable(pid, fd) {
                read_out |= 1 << fd;
            }
        }
        let mut write_out = 0u64;
        for fd in 0..64 {
            if write_in >> fd & 1 == 1 {
                if let Some(FileDesc::PipeWrite(_) | FileDesc::Console | FileDesc::File { .. }) =
                    self.process(pid).fd(fd)
                {
                    write_out |= 1 << fd;
                }
            }
        }
        let ready = read_out.count_ones() as u64 + write_out.count_ones() as u64;
        if ready == 0 && timeoutp.is_null() && read_in != 0 {
            return Err(SysFlow::Block(WaitReason::Select(read_in)));
        }
        if !readp.is_null() {
            self.copyout(pid, readp, &read_out.to_le_bytes())
                .map_err(err)?;
        }
        if !writep.is_null() {
            self.copyout(pid, writep, &write_out.to_le_bytes())
                .map_err(err)?;
        }
        Ok(ready)
    }

    fn sys_kevent_register(&mut self, pid: Pid) -> SysRet {
        let ident = self.user_val(pid, 0);
        let udata = self.user_ref(pid, 1);
        // "A few system calls take pointers and store them in kernel data
        // structures for later return ... we have modified the kernel
        // structures to store capabilities."
        let udata_cap = match udata {
            UserRef::Cap(c) => c,
            UserRef::Addr(a) => Capability::null(self.config.cap_fmt).with_addr(a),
        };
        self.process_mut(pid).kq.push(KqEntry {
            ident,
            udata: udata_cap,
            fired: false,
        });
        Ok(0)
    }

    fn sys_kevent_wait(&mut self, pid: Pid) -> SysRet {
        let out = self.user_ref(pid, 0);
        let max = self.user_val(pid, 1);
        let abi = self.process(pid).abi;
        let stride: u64 = match abi {
            AbiMode::CheriAbi => 32,
            AbiMode::Mips64 => 16,
        };
        let ready: Vec<KqEntry> = self
            .process(pid)
            .kq
            .iter()
            .filter(|e| e.fired || self.fd_readable(pid, e.ident))
            .take(max as usize)
            .copied()
            .collect();
        if ready.is_empty() {
            if self.process(pid).kq.is_empty() {
                return Err(err(Errno::EINVAL));
            }
            return Err(SysFlow::Block(WaitReason::Kevent));
        }
        for (i, e) in ready.iter().enumerate() {
            let rec = uref_add(out, i as u64 * stride);
            self.copyout(pid, rec, &e.ident.to_le_bytes())
                .map_err(err)?;
            match abi {
                AbiMode::CheriAbi => {
                    // Capability-preserving return of the user's udata
                    // pointer: tag survives the round trip.
                    self.copyout_cap(pid, uref_add(out, i as u64 * stride + 16), e.udata)
                        .map_err(err)?;
                }
                AbiMode::Mips64 => {
                    self.copyout(
                        pid,
                        uref_add(out, i as u64 * stride + 8),
                        &e.udata.addr().to_le_bytes(),
                    )
                    .map_err(err)?;
                }
            }
        }
        Ok(ready.len() as u64)
    }

    // ------------------------------------------------------------------
    // Management interfaces (ioctl / sysctl, §4)
    // ------------------------------------------------------------------

    fn sys_ioctl(&mut self, pid: Pid) -> SysRet {
        let _fd = self.user_val(pid, 0);
        let cmd = self.user_val(pid, 1);
        let arg = self.user_ref(pid, 2);
        match cmd {
            // GET_IFDATA: the kernel fills a 64-byte struct. An undersized
            // user buffer faults under CheriABI (the dhclient bug of §5.4)
            // instead of silently overwriting adjacent process memory.
            1 => {
                let mut data = [0u8; 64];
                data[..8].copy_from_slice(&0x1234_5678u64.to_le_bytes());
                self.copyout(pid, arg, &data).map_err(err)?;
                Ok(0)
            }
            // SET_PARAM: 32-byte struct copyin.
            2 => {
                let _ = self.copyin(pid, arg, 32).map_err(err)?;
                Ok(0)
            }
            // KINFO_PTR: a management interface that used to export kernel
            // pointers; "we have altered them to expose virtual addresses
            // rather than kernel capabilities" — 8 bytes, never tagged.
            3 => {
                let kva = 0xffff_8000_dead_beefu64;
                self.copyout(pid, arg, &kva.to_le_bytes()).map_err(err)?;
                Ok(0)
            }
            _ => Err(err(Errno::EINVAL)),
        }
    }

    fn sys_sysctl(&mut self, pid: Pid) -> SysRet {
        let id = self.user_val(pid, 0);
        let oldp = self.user_ref(pid, 1);
        let oldlenp = self.user_ref(pid, 2);
        let value: Vec<u8> = match id {
            1 => b"CheriBSD-sim\0".to_vec(),
            2 => 42u64.to_le_bytes().to_vec(),
            _ => return Err(err(Errno::ENOENT)),
        };
        let lenbuf = self.copyin(pid, oldlenp, 8).map_err(err)?;
        let maxlen = u64::from_le_bytes(lenbuf.try_into().map_err(|_| err(Errno::EFAULT))?);
        let n = maxlen.min(value.len() as u64);
        if !oldp.is_null() {
            self.copyout(pid, oldp, &value[..n as usize]).map_err(err)?;
        }
        self.copyout(pid, oldlenp, &(value.len() as u64).to_le_bytes())
            .map_err(err)?;
        Ok(0)
    }

    fn sys_unlink(&mut self, pid: Pid) -> SysRet {
        let path_ref = self.user_ref(pid, 0);
        let path = self.copyinstr(pid, path_ref, 4096).map_err(err)?;
        self.memfs
            .remove(&path)
            .map(|_| 0)
            .ok_or(err(Errno::ENOENT))
    }

    // ------------------------------------------------------------------
    // Runtime services: the userspace allocator (see DESIGN.md §3)
    // ------------------------------------------------------------------

    fn sys_rt_malloc(&mut self, pid: Pid) -> SysRet {
        let len = self.user_val(pid, 0);
        let space_ok = {
            let p = self.procs.get_mut(&pid).ok_or(err(Errno::ESRCH))?;
            p.allocator.malloc(&mut self.vm, len)
        };
        self.charge_allocator(pid);
        match space_ok {
            Ok(cap) => {
                self.set_ret_cap(pid, cap);
                Ok(cap.base())
            }
            Err(_) => Err(err(Errno::ENOMEM)),
        }
    }

    fn sys_rt_free(&mut self, pid: Pid) -> SysRet {
        let target = self.user_ref(pid, 0);
        let (res, hardened) = {
            let p = self.procs.get_mut(&pid).ok_or(err(Errno::ESRCH))?;
            let r = match target {
                UserRef::Cap(c) => p.allocator.free(&mut self.vm, &c),
                UserRef::Addr(a) => p.allocator.free_addr(&mut self.vm, a),
            };
            (r, p.allocator.hardened())
        };
        // Hardened membrane: a double free (or free of a stale base) is
        // deterministically repaired — absorbed with evidence — instead of
        // surfacing EINVAL. Capability violations (untagged/sealed) remain
        // denials under both modes: they are forgeries, not ledger races.
        let res = match res {
            Err(cheri_alloc::AllocError::BadFree) if hardened => {
                self.process_mut(pid).allocator.note_repair();
                Ok(())
            }
            other => other,
        };
        self.charge_allocator(pid);
        res.map(|()| 0).map_err(|_| err(Errno::EINVAL))
    }

    fn sys_rt_realloc(&mut self, pid: Pid) -> SysRet {
        let target = self.user_ref(pid, 0);
        let new_len = self.user_val(pid, 1);
        let (res, hardened) = {
            let p = self.procs.get_mut(&pid).ok_or(err(Errno::ESRCH))?;
            let r = match target {
                UserRef::Cap(c) => p.allocator.realloc(&mut self.vm, &c, new_len),
                UserRef::Addr(a) => {
                    // Legacy realloc: rebuild a pseudo-capability for lookup.
                    let space_root = self.vm.space(p.space).root;
                    p.allocator
                        .realloc(&mut self.vm, &space_root.with_addr(a), new_len)
                }
            };
            (r, p.allocator.hardened())
        };
        // Hardened membrane: realloc of a stale base repairs to a plain
        // allocation of the new size (the old contents are gone; the old
        // region stays quarantined) rather than failing the caller.
        let res = match res {
            Err(cheri_alloc::AllocError::BadFree) if hardened => {
                let p = self.procs.get_mut(&pid).ok_or(err(Errno::ESRCH))?;
                p.allocator.note_repair();
                p.allocator.malloc(&mut self.vm, new_len)
            }
            other => other,
        };
        self.charge_allocator(pid);
        match res {
            Ok(cap) => {
                self.set_ret_cap(pid, cap);
                Ok(cap.base())
            }
            Err(_) => Err(err(Errno::EINVAL)),
        }
    }
}

impl Kernel {
    /// `mprotect(addr, len, prot)`: under CheriABI the capability must
    /// carry `VMMAP` and cover the range, mirroring the munmap rule.
    fn sys_mprotect(&mut self, pid: Pid) -> SysRet {
        let target = self.user_ref(pid, 0);
        let len = self.user_val(pid, 1);
        let prot_bits = self.user_val(pid, 2);
        let mut prot = Prot::NONE;
        if prot_bits & 1 != 0 {
            prot = prot.union(Prot::READ);
        }
        if prot_bits & 2 != 0 {
            prot = prot.union(Prot::WRITE);
        }
        if prot_bits & 4 != 0 {
            prot = prot.union(Prot::EXEC);
        }
        let (space, abi) = {
            let p = self.process(pid);
            (p.space, p.abi)
        };
        if abi == AbiMode::CheriAbi {
            let UserRef::Cap(c) = target else {
                return Err(err(Errno::EPROT));
            };
            if !c.tag() || !c.perms().contains(Perms::VMMAP) {
                return Err(err(Errno::EPROT));
            }
            if c.check_access(c.addr(), len, Perms::NONE).is_err() {
                return Err(err(Errno::EPROT));
            }
        }
        self.vm
            .protect(space, target.addr(), len.div_ceil(4096) * 4096, prot)
            .map_err(|_| err(Errno::EINVAL))?;
        Ok(0)
    }

    /// Temporal-safety revocation sweep: revokes stale capabilities in the
    /// process's memory (via the allocator) and in its saved register file,
    /// then recycles the quarantine. Returns the number revoked.
    fn sys_rt_revoke(&mut self, pid: Pid) -> SysRet {
        let ranges = {
            let p = self.procs.get_mut(&pid).ok_or(err(Errno::ESRCH))?;
            p.allocator.quarantined_ranges()
        };
        let res = {
            let p = self.procs.get_mut(&pid).ok_or(err(Errno::ESRCH))?;
            p.allocator.revoke(&mut self.vm)
        };
        self.charge_allocator(pid);
        let (mut revoked, _recycled) = res.map_err(|_| err(Errno::ENOMEM))?;
        // Sweep the saved register file too: stale capabilities die
        // everywhere, not just in memory.
        let hits = |c: &Capability| {
            c.tag()
                && ranges
                    .iter()
                    .any(|&(b, l)| (c.base() as u128) < (b + l) as u128 && c.top() > b as u128)
        };
        let regs = &mut self.process_mut(pid).regs;
        for i in 1..32u8 {
            let r = cheri_isa::CReg(i);
            let c = regs.c(r);
            if hits(&c) {
                regs.wc(r, c.clear_tag());
                revoked += 1;
            }
        }
        Ok(revoked)
    }
}

fn name_of(sys: Sys) -> &'static str {
    match sys {
        Sys::Exit => "exit",
        Sys::Write => "write",
        Sys::Read => "read",
        Sys::Open => "open",
        Sys::Close => "close",
        Sys::Pipe => "pipe",
        Sys::Getpid => "getpid",
        Sys::Fork => "fork",
        Sys::Waitpid => "waitpid",
        Sys::Mmap => "mmap",
        Sys::Munmap => "munmap",
        Sys::Shmget => "shmget",
        Sys::Shmat => "shmat",
        Sys::Shmdt => "shmdt",
        Sys::Sigaction => "sigaction",
        Sys::Sigreturn => "sigreturn",
        Sys::Kill => "kill",
        Sys::Select => "select",
        Sys::KeventRegister => "kevent_register",
        Sys::KeventWait => "kevent_wait",
        Sys::Ptrace => "ptrace",
        Sys::Sbrk => "sbrk",
        Sys::Ioctl => "ioctl",
        Sys::Sysctl => "sysctl",
        Sys::Unlink => "unlink",
        Sys::Swapctl => "swapctl",
        Sys::RtMalloc => "rt_malloc",
        Sys::RtFree => "rt_free",
        Sys::RtRealloc => "rt_realloc",
        Sys::RtSetTemporal => "rt_set_temporal",
        Sys::RtRevoke => "rt_revoke",
        Sys::Mprotect => "mprotect",
        Sys::Cycles => "cycles",
    }
}
