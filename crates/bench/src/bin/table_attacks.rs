//! The **attack-outcome table**: every adversarial-corpus family run under
//! three ABI columns — legacy `mips64`, strict CheriABI (`purecap`) and the
//! hardened membrane (`purecap-hardened`) — with each cell scored by the
//! attack's own victim/canary protocol (`Defeated` / `Degraded` /
//! `Escaped`, see `cheri_corpus::attacks`).
//!
//! The binary is **self-enforcing**: it exits non-zero when any cell fails
//! to produce a verdict (host panic, load failure, divergence), when any
//! family escapes the hardened membrane, or when *no* family escapes
//! mips64 (the table would no longer be measuring an attack surface).
//! `--weaken-quarantine` disables the hardened quarantine so CI can prove
//! the enforcement trips: a weakened run MUST fail.
//!
//! Hardened cells also print the membrane's evidence counters (`repairs`,
//! `swept_caps`, `quarantine_bytes`) — deterministic, so the `--json`
//! output is byte-pinnable as a golden.

use cheri_bench::cli::{self, json_escape};
use cheri_corpus::attacks::{attack_suite, verdict, Verdict};
use cheri_corpus::suite::opts_for;
use cheri_kernel::AbiMode;
use cheriabi::harness::{MembraneMode, RunSpec};
use cheriabi::spec::ProgramSpec;

/// Instruction budget per attack (the swap family pushes pages around).
const ATTACK_BUDGET: u64 = 20_000_000;

/// The three table columns.
fn columns() -> [(&'static str, AbiMode, MembraneMode); 3] {
    [
        ("mips64", AbiMode::Mips64, MembraneMode::Strict),
        ("purecap", AbiMode::CheriAbi, MembraneMode::Strict),
        (
            "purecap-hardened",
            AbiMode::CheriAbi,
            MembraneMode::Hardened,
        ),
    ]
}

fn main() {
    // One local flag on top of the shared set.
    let mut weaken = false;
    let mut rest = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--weaken-quarantine" {
            weaken = true;
        } else {
            rest.push(arg);
        }
    }
    if rest.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", cli::USAGE);
        println!(
            "  --weaken-quarantine  self-test: disable the hardened quarantine so\n                 \
             reuse-based UAF escapes again (this run MUST exit non-zero)"
        );
        std::process::exit(0);
    }
    let opts = match cli::parse_args(rest) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let cases = attack_suite();
    let mut specs = Vec::new();
    for case in &cases {
        for (column, abi, mode) in columns() {
            let mut spec = RunSpec::new(
                format!("{}@{column}", case.name),
                ProgramSpec::Corpus {
                    case: case.name.clone(),
                },
                opts_for(abi),
                abi,
            )
            .with_budget(ATTACK_BUDGET)
            .with_abi_mode(mode);
            if weaken && mode == MembraneMode::Hardened {
                spec = spec.with_weaken_quarantine(true);
            }
            specs.push(spec);
        }
    }

    let Some(reports) = cli::run_specs(&cheri_bench::registry(), &specs, &opts) else {
        return;
    };

    let mut failures: Vec<String> = Vec::new();
    let mut mips_escapes = 0usize;
    if !opts.json {
        println!("Attack outcomes: adversarial corpus x ABI column");
        println!(
            "{:<16} {:>10} {:>10} {:>18}  evidence (hardened)",
            "family", "mips64", "purecap", "purecap-hardened"
        );
    }
    for (i, case) in cases.iter().enumerate() {
        let mut row = Vec::new();
        for (j, (column, _, mode)) in columns().into_iter().enumerate() {
            let report = &reports[i * 3 + j];
            let Some(v) = verdict(&report.outcome) else {
                failures.push(format!(
                    "{}@{column}: no verdict ({:?})",
                    case.name, report.outcome
                ));
                row.push(("-".to_string(), None));
                continue;
            };
            match (mode, v, column) {
                (MembraneMode::Hardened, Verdict::Escaped, _) => failures.push(format!(
                    "{}@{column}: escaped the hardened membrane",
                    case.name
                )),
                (_, Verdict::Escaped, "mips64") => mips_escapes += 1,
                _ => {}
            }
            row.push((v.to_string(), report.membrane));
            if opts.json {
                let evidence = match report.membrane {
                    Some(ev) => format!(
                        ",\"repairs\":{},\"swept_caps\":{},\"quarantine_bytes\":{}",
                        ev.repairs, ev.swept_caps, ev.quarantine_bytes
                    ),
                    None => String::new(),
                };
                println!(
                    "{{\"table\":\"table_attacks\",\"family\":\"{}\",\"column\":\"{column}\",\"verdict\":\"{v}\",\"goal\":\"{}\"{evidence}}}",
                    json_escape(case.family),
                    json_escape(case.goal)
                );
            }
        }
        if !opts.json {
            let evidence = row
                .iter()
                .find_map(|(_, m)| *m)
                .map(|ev| {
                    format!(
                        "repairs={} swept={} quarantined={}B",
                        ev.repairs, ev.swept_caps, ev.quarantine_bytes
                    )
                })
                .unwrap_or_default();
            println!(
                "{:<16} {:>10} {:>10} {:>18}  {}",
                case.family, row[0].0, row[1].0, row[2].0, evidence
            );
        }
    }
    if mips_escapes == 0 {
        failures.push("no family escaped mips64: the corpus is not attacking anything".to_string());
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("table_attacks: FAIL: {f}");
        }
        std::process::exit(1);
    }
    if !opts.json {
        println!();
        println!(
            "self-enforced: every family Defeated/Degraded under purecap-hardened,\n\
             {mips_escapes} families Escaped under mips64; a --weaken-quarantine run must fail."
        );
    }
}
