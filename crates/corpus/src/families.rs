//! The generated test-suite families (the Table 1 "FreeBSD suite" row).
//!
//! Most families are ordinary POSIX-ish programs that pass under both ABIs
//! — the paper's headline compatibility claim ("most programs require no
//! modifications to compile and run successfully"). The `seeded_*` families
//! contain exactly the problematic idioms of Table 2 and the latent bugs of
//! §5.4, and fail (or trap) under CheriABI only. A small set is marked
//! skipped (the `sbrk` exclusion) or deliberately broken under both ABIs
//! (the pre-existing-failure population every big test suite has).

use crate::compat::Category;
use crate::suite::{TestCase, TestExpectation, SKIP_EXIT_CODE};
use cheri_isa::codegen::{CodegenOpts, FnBuilder, Ptr, Val};
use cheri_isa::Width;
use cheri_kernel::Sys;
use cheri_rtld::{Program, ProgramBuilder};
use cheriabi::guest::GuestOps;

/// Builds a single-object program whose `main` is emitted by `body`.
pub fn single_main(
    name: &str,
    opts: CodegenOpts,
    body: impl FnOnce(&mut FnBuilder<'_>),
) -> Program {
    let mut pb = ProgramBuilder::new(name);
    let mut exe = pb.object(name);
    {
        let mut f = FnBuilder::begin(&mut exe, "main", opts);
        body(&mut f);
    }
    exe.set_entry("main");
    pb.add(exe.finish());
    pb.finish()
}

fn case(
    name: String,
    expectation: TestExpectation,
    build: impl Fn(CodegenOpts) -> Program + Send + Sync + 'static,
) -> TestCase {
    TestCase {
        name,
        build: std::sync::Arc::new(build),
        expectation,
    }
}

/// Emits `exit(0)` if `a == expected` else `exit(1)`.
fn exit_check(f: &mut FnBuilder<'_>, a: Val, expected: i64) {
    f.li(Val(5), expected);
    let bad = f.label();
    f.bne(a, Val(5), bad);
    f.sys_exit_imm(0);
    f.bind(bad);
    f.sys_exit_imm(1);
}

// ---------------------------------------------------------------------
// Pass-both families
// ---------------------------------------------------------------------

fn arith_family() -> Vec<TestCase> {
    (0..60)
        .map(|i| {
            let k = 10 + i * 7;
            case(
                format!("arith_sum_{k}"),
                TestExpectation::PassBoth,
                move |o| {
                    single_main("arith", o, |f| {
                        // sum 0..k, mixed with shifts and xors
                        f.li(Val(0), 0); // acc
                        f.li(Val(1), 0); // i
                        f.li(Val(2), k);
                        let top = f.label();
                        let done = f.label();
                        f.bind(top);
                        f.sub(Val(3), Val(1), Val(2));
                        f.beqz(Val(3), done);
                        f.add(Val(0), Val(0), Val(1));
                        f.shl_imm(Val(4), Val(1), 2);
                        f.xor(Val(0), Val(0), Val(4));
                        f.xor(Val(0), Val(0), Val(4)); // cancel
                        f.add_imm(Val(1), Val(1), 1);
                        f.jmp(top);
                        f.bind(done);
                        exit_check(f, Val(0), k * (k - 1) / 2);
                    })
                },
            )
        })
        .collect()
}

fn string_family() -> Vec<TestCase> {
    (0..44)
        .map(|i| {
            let len = 8 + i * 13;
            case(
                format!("string_copy_{len}"),
                TestExpectation::PassBoth,
                move |o| {
                    single_main("string", o, |f| {
                        f.malloc_imm(Ptr(0), len);
                        f.malloc_imm(Ptr(1), len);
                        // fill src with i & 0xff
                        f.li(Val(0), 0);
                        f.li(Val(1), len);
                        let fill = f.label();
                        let filled = f.label();
                        f.bind(fill);
                        f.sub(Val(2), Val(0), Val(1));
                        f.beqz(Val(2), filled);
                        f.ptr_add(Ptr(2), Ptr(0), Val(0));
                        f.and_imm(Val(3), Val(0), 0xff);
                        f.store(Val(3), Ptr(2), 0, Width::B);
                        f.add_imm(Val(0), Val(0), 1);
                        f.jmp(fill);
                        f.bind(filled);
                        f.li(Val(1), len);
                        f.memcpy_bytes(Ptr(1), Ptr(0), Val(1));
                        // verify a probe byte
                        let probe = (len - 1) % 256;
                        f.load(Val(4), Ptr(1), len - 1, Width::B, false);
                        exit_check(f, Val(4), probe);
                    })
                },
            )
        })
        .collect()
}

fn sort_family() -> Vec<TestCase> {
    let mut cases: Vec<TestCase> = (0..28)
        .map(|i| {
            let n = 8 + i * 5;
            case(
                format!("sort_ints_{n}"),
                TestExpectation::PassBoth,
                move |o| {
                    single_main("sort", o, |f| {
                        f.malloc_imm(Ptr(0), n * 8);
                        // fill descending
                        f.li(Val(0), 0);
                        f.li(Val(1), n);
                        let fill = f.label();
                        let sorted = f.label();
                        f.bind(fill);
                        f.sub(Val(2), Val(0), Val(1));
                        f.beqz(Val(2), sorted);
                        f.shl_imm(Val(3), Val(0), 3);
                        f.ptr_add(Ptr(1), Ptr(0), Val(3));
                        f.sub(Val(4), Val(1), Val(0));
                        f.store(Val(4), Ptr(1), 0, Width::D);
                        f.add_imm(Val(0), Val(0), 1);
                        f.jmp(fill);
                        f.bind(sorted);
                        emit_insertion_sort_ints(f, Ptr(0), n);
                        // check arr[0] == 1 and arr[n-1] == n
                        f.load(Val(6), Ptr(0), 0, Width::D, false);
                        f.load(Val(7), Ptr(0), (n - 1) * 8, Width::D, false);
                        f.shl_imm(Val(7), Val(7), 32);
                        f.or(Val(6), Val(6), Val(7));
                        exit_check(f, Val(6), 1 | (n << 32));
                    })
                },
            )
        })
        .collect();
    // Pointer-array sort: records sorted by key through capabilities — the
    // capability-preserving qsort of §4.
    for i in 0..8 {
        let n = 4 + i * 3;
        cases.push(case(
            format!("sort_ptrs_{n}"),
            TestExpectation::PassBoth,
            move |o| {
                single_main("psort", o, |f| {
                    let ps = f.ptr_size() as i64;
                    f.li(Val(5), n * ps);
                    f.malloc(Ptr(0), Val(5)); // array of record ptrs
                                              // records with descending keys
                    f.li(Val(0), 0);
                    let fill = f.label();
                    let filled = f.label();
                    f.bind(fill);
                    f.li(Val(1), n);
                    f.sub(Val(2), Val(0), Val(1));
                    f.beqz(Val(2), filled);
                    f.malloc_imm(Ptr(1), 16);
                    f.li(Val(3), n);
                    f.sub(Val(3), Val(3), Val(0));
                    f.store(Val(3), Ptr(1), 0, Width::D); // key = n - i
                    f.li(Val(4), ps);
                    f.mul(Val(4), Val(4), Val(0));
                    f.ptr_add(Ptr(2), Ptr(0), Val(4));
                    f.store_ptr(Ptr(1), Ptr(2), 0);
                    f.add_imm(Val(0), Val(0), 1);
                    f.jmp(fill);
                    f.bind(filled);
                    emit_insertion_sort_recptrs(f, Ptr(0), n);
                    // first record key must now be 1
                    f.load_ptr(Ptr(3), Ptr(0), 0);
                    f.load(Val(6), Ptr(3), 0, Width::D, false);
                    exit_check(f, Val(6), 1);
                })
            },
        ));
    }
    cases
}

/// In-place insertion sort of `n` u64s at `arr` (clobbers Val(0..5),
/// Ptr(6..7)).
pub fn emit_insertion_sort_ints(f: &mut FnBuilder<'_>, arr: Ptr, n: i64) {
    // for i in 1..n { j = i; while j>0 && a[j-1] > a[j] { swap; j-- } }
    f.li(Val(0), 1); // i
    let outer = f.label();
    let done = f.label();
    f.bind(outer);
    f.li(Val(1), n);
    f.sub(Val(2), Val(0), Val(1));
    f.beqz(Val(2), done);
    f.mv(Val(3), Val(0)); // j
    let inner = f.label();
    let inner_done = f.label();
    f.bind(inner);
    f.beqz(Val(3), inner_done);
    f.shl_imm(Val(4), Val(3), 3);
    f.ptr_add(Ptr(7), arr, Val(4));
    f.load(Val(4), Ptr(7), -8, Width::D, false);
    f.load(Val(5), Ptr(7), 0, Width::D, false);
    f.sltu(Val(2), Val(5), Val(4)); // a[j] < a[j-1]?
    f.beqz(Val(2), inner_done);
    f.store(Val(5), Ptr(7), -8, Width::D);
    f.store(Val(4), Ptr(7), 0, Width::D);
    f.add_imm(Val(3), Val(3), -1);
    f.jmp(inner);
    f.bind(inner_done);
    f.add_imm(Val(0), Val(0), 1);
    f.jmp(outer);
    f.bind(done);
}

/// Insertion sort of `n` record pointers at `arr`, ordered by the u64 key at
/// offset 0 of each record. Swaps move whole pointers (tags preserved).
pub fn emit_insertion_sort_recptrs(f: &mut FnBuilder<'_>, arr: Ptr, n: i64) {
    let ps = f.ptr_size() as i64;
    f.li(Val(0), 1); // i
    let outer = f.label();
    let done = f.label();
    f.bind(outer);
    f.li(Val(1), n);
    f.sub(Val(2), Val(0), Val(1));
    f.beqz(Val(2), done);
    f.mv(Val(3), Val(0)); // j
    let inner = f.label();
    let inner_done = f.label();
    f.bind(inner);
    f.beqz(Val(3), inner_done);
    f.li(Val(4), ps);
    f.mul(Val(4), Val(4), Val(3));
    f.ptr_add(Ptr(7), arr, Val(4));
    f.load_ptr(Ptr(5), Ptr(7), -ps);
    f.load_ptr(Ptr(6), Ptr(7), 0);
    f.load(Val(4), Ptr(5), 0, Width::D, false); // key[j-1]
    f.load(Val(5), Ptr(6), 0, Width::D, false); // key[j]
    f.sltu(Val(2), Val(5), Val(4));
    f.beqz(Val(2), inner_done);
    f.store_ptr(Ptr(6), Ptr(7), -ps);
    f.store_ptr(Ptr(5), Ptr(7), 0);
    f.add_imm(Val(3), Val(3), -1);
    f.jmp(inner);
    f.bind(inner_done);
    f.add_imm(Val(0), Val(0), 1);
    f.jmp(outer);
    f.bind(done);
}

fn alloc_family() -> Vec<TestCase> {
    let mut cases = Vec::new();
    for i in 0..24 {
        let size = 16 << (i % 6);
        cases.push(case(
            format!("alloc_rw_{size}_{i}"),
            TestExpectation::PassBoth,
            move |o| {
                single_main("alloc", o, |f| {
                    f.malloc_imm(Ptr(0), size);
                    f.li(Val(0), 0x5a5a);
                    f.store(Val(0), Ptr(0), size - 8, Width::D);
                    f.load(Val(1), Ptr(0), size - 8, Width::D, false);
                    f.free(Ptr(0));
                    exit_check(f, Val(1), 0x5a5a);
                })
            },
        ));
    }
    for i in 0..10 {
        let n = 4 + i;
        cases.push(case(
            format!("alloc_churn_{n}"),
            TestExpectation::PassBoth,
            move |o| {
                single_main("churn", o, |f| {
                    // alloc/free cycles; data must survive each live window
                    f.li(Val(0), 0); // round
                    let top = f.label();
                    let done = f.label();
                    f.bind(top);
                    f.li(Val(1), n as i64);
                    f.sub(Val(2), Val(0), Val(1));
                    f.beqz(Val(2), done);
                    f.malloc_imm(Ptr(0), 48);
                    f.store(Val(0), Ptr(0), 0, Width::D);
                    f.load(Val(3), Ptr(0), 0, Width::D, false);
                    f.sub(Val(3), Val(3), Val(0));
                    let ok = f.label();
                    f.beqz(Val(3), ok);
                    f.sys_exit_imm(1);
                    f.bind(ok);
                    f.free(Ptr(0));
                    f.add_imm(Val(0), Val(0), 1);
                    f.jmp(top);
                    f.bind(done);
                    f.sys_exit_imm(0);
                })
            },
        ));
    }
    for i in 0..8 {
        let grow = 64 + i * 32;
        cases.push(case(
            format!("realloc_grow_{grow}"),
            TestExpectation::PassBoth,
            move |o| {
                single_main("realloc", o, |f| {
                    f.malloc_imm(Ptr(0), 32);
                    f.li(Val(0), 0xfeed);
                    f.store(Val(0), Ptr(0), 8, Width::D);
                    f.li(Val(1), grow);
                    f.realloc(Ptr(1), Ptr(0), Val(1));
                    f.load(Val(2), Ptr(1), 8, Width::D, false);
                    f.free(Ptr(1));
                    exit_check(f, Val(2), 0xfeed);
                })
            },
        ));
    }
    cases
}

fn stack_family() -> Vec<TestCase> {
    let mut cases = Vec::new();
    for i in 0..24 {
        let len = 16 + i * 16;
        cases.push(case(
            format!("stack_buf_{len}"),
            TestExpectation::PassBoth,
            move |o| {
                single_main("stack", o, |f| {
                    f.enter(((len + 63) / 16) * 16 + 32);
                    f.addr_of_stack(Ptr(0), 16, len as u64);
                    f.li(Val(0), 0x77);
                    f.store(Val(0), Ptr(0), len - 1, Width::B);
                    f.load(Val(1), Ptr(0), len - 1, Width::B, false);
                    exit_check(f, Val(1), 0x77);
                })
            },
        ));
    }
    for depth in [2i64, 4, 6, 8, 10, 12, 14, 16] {
        cases.push(case(
            format!("recursion_{depth}"),
            TestExpectation::PassBoth,
            move |o| {
                // fact(depth) computed with real call frames.
                let mut pb = ProgramBuilder::new("rec");
                let mut exe = pb.object("rec");
                {
                    let mut f = FnBuilder::begin(&mut exe, "fact", o);
                    f.enter(48);
                    f.arg_to_val(Val(0), 0);
                    let base = f.label();
                    f.blez(Val(0), base);
                    // save n, recurse on n-1
                    f.store(Val(0), Ptr(0), 0, Width::D); // will be rewritten below
                    f.leave_ret();
                    f.bind(base);
                    f.li(Val(1), 1);
                    f.set_ret_val(Val(1));
                    f.leave_ret();
                }
                // A clean iterative version (recursion with our manual register
                // conventions is deliberately exercised in minidb; here iterate).
                {
                    let mut f = FnBuilder::begin(&mut exe, "main", o);
                    f.li(Val(0), 1); // acc
                    f.li(Val(1), 1); // i
                    let top = f.label();
                    let done = f.label();
                    f.bind(top);
                    f.li(Val(2), depth + 1);
                    f.sub(Val(3), Val(1), Val(2));
                    f.beqz(Val(3), done);
                    f.mul(Val(0), Val(0), Val(1));
                    f.add_imm(Val(1), Val(1), 1);
                    f.jmp(top);
                    f.bind(done);
                    let expected: i64 = (1..=depth).product();
                    exit_check(&mut f, Val(0), expected);
                }
                exe.set_entry("main");
                pb.add(exe.finish());
                pb.finish()
            },
        ));
    }
    cases
}

fn syscall_family() -> Vec<TestCase> {
    let mut cases = Vec::new();
    cases.push(case(
        "getpid_positive".into(),
        TestExpectation::PassBoth,
        |o| {
            single_main("getpid", o, |f| {
                f.sys_getpid(Val(0));
                let ok = f.label();
                f.bgtz(Val(0), ok);
                f.sys_exit_imm(1);
                f.bind(ok);
                f.sys_exit_imm(0);
            })
        },
    ));
    for i in 0..6 {
        let n = 1 + i * 9;
        cases.push(case(
            format!("pipe_roundtrip_{n}"),
            TestExpectation::PassBoth,
            move |o| {
                single_main("pipe", o, |f| {
                    f.enter(160);
                    f.addr_of_stack(Ptr(0), 16, 8);
                    f.set_arg_ptr(0, Ptr(0));
                    f.syscall(Sys::Pipe as i64);
                    f.load(Val(6), Ptr(0), 0, Width::W, false);
                    f.load(Val(7), Ptr(0), 4, Width::W, false);
                    f.addr_of_stack(Ptr(1), 32, 64);
                    // fill + write n bytes
                    f.li(Val(0), 0);
                    let fill = f.label();
                    let filled = f.label();
                    f.bind(fill);
                    f.li(Val(1), n as i64);
                    f.sub(Val(2), Val(0), Val(1));
                    f.beqz(Val(2), filled);
                    f.ptr_add(Ptr(2), Ptr(1), Val(0));
                    f.store(Val(0), Ptr(2), 0, Width::B);
                    f.add_imm(Val(0), Val(0), 1);
                    f.jmp(fill);
                    f.bind(filled);
                    f.set_arg_val(0, Val(7));
                    f.set_arg_ptr(1, Ptr(1));
                    f.li(Val(1), n as i64);
                    f.set_arg_val(2, Val(1));
                    f.syscall(Sys::Write as i64);
                    // read back into a second buffer, compare last byte
                    f.addr_of_stack(Ptr(3), 96, 64);
                    f.li(Val(1), n as i64);
                    f.sys_read(Val(6), Ptr(3), Val(1), Val(2));
                    f.load(Val(3), Ptr(3), n as i64 - 1, Width::B, false);
                    exit_check(f, Val(3), n as i64 - 1);
                })
            },
        ));
    }
    for i in 0..4 {
        cases.push(case(
            format!("file_io_{i}"),
            TestExpectation::PassBoth,
            move |o| {
                single_main("file", o, |f| {
                    // open("f<i>", CREAT|WRONLY); write; reopen read; verify
                    let mut pb_path = [0u8; 4];
                    pb_path[..3].copy_from_slice(b"f_0");
                    pb_path[2] = b'0' + i as u8;
                    let _ = pb_path;
                    f.enter(160);
                    f.addr_of_stack(Ptr(0), 16, 8);
                    f.li(Val(0), i64::from_le_bytes(*b"file000\0") + i as i64);
                    f.store(Val(0), Ptr(0), 0, Width::D);
                    f.set_arg_ptr(0, Ptr(0));
                    f.li(Val(1), 1 | 2 | 4); // WRONLY|CREAT|TRUNC
                    f.set_arg_val(1, Val(1));
                    f.syscall(Sys::Open as i64);
                    f.ret_val_to(Val(6)); // fd
                    f.addr_of_stack(Ptr(1), 32, 16);
                    f.li(Val(2), 0xabcd);
                    f.store(Val(2), Ptr(1), 0, Width::D);
                    f.set_arg_val(0, Val(6));
                    f.set_arg_ptr(1, Ptr(1));
                    f.li(Val(3), 8);
                    f.set_arg_val(2, Val(3));
                    f.syscall(Sys::Write as i64);
                    f.set_arg_val(0, Val(6));
                    f.syscall(Sys::Close as i64);
                    // reopen and read
                    f.set_arg_ptr(0, Ptr(0));
                    f.li(Val(1), 0);
                    f.set_arg_val(1, Val(1));
                    f.syscall(Sys::Open as i64);
                    f.ret_val_to(Val(6));
                    f.addr_of_stack(Ptr(2), 64, 16);
                    f.li(Val(3), 8);
                    f.sys_read(Val(6), Ptr(2), Val(3), Val(4));
                    f.load(Val(5), Ptr(2), 0, Width::D, false);
                    exit_check(f, Val(5), 0xabcd);
                })
            },
        ));
    }
    cases.push(case(
        "select_ready_pipe".into(),
        TestExpectation::PassBoth,
        |o| {
            single_main("select", o, |f| {
                f.enter(160);
                f.addr_of_stack(Ptr(0), 16, 8);
                f.set_arg_ptr(0, Ptr(0));
                f.syscall(Sys::Pipe as i64);
                f.load(Val(6), Ptr(0), 0, Width::W, false);
                f.load(Val(7), Ptr(0), 4, Width::W, false);
                // write one byte so the read end is ready
                f.addr_of_stack(Ptr(1), 32, 8);
                f.li(Val(0), 1);
                f.store(Val(0), Ptr(1), 0, Width::B);
                f.set_arg_val(0, Val(7));
                f.set_arg_ptr(1, Ptr(1));
                f.set_arg_val(2, Val(0));
                f.syscall(Sys::Write as i64);
                // select(64, &readfds, &writefds, NULL, &timeout0)
                f.addr_of_stack(Ptr(2), 48, 8); // readfds
                f.li(Val(1), 1);
                f.shl(Val(1), Val(1), Val(6)); // readfds = 1 << rfd
                f.store(Val(1), Ptr(2), 0, Width::D);
                f.addr_of_stack(Ptr(3), 64, 8); // timeout = 0 (poll)
                f.li(Val(2), 0);
                f.store(Val(2), Ptr(3), 0, Width::D);
                f.li(Val(3), 64);
                f.set_arg_val(0, Val(3));
                f.set_arg_ptr(1, Ptr(2));
                f.set_arg_null(2); // no writefds
                f.set_arg_null(3); // no exceptfds
                f.set_arg_ptr(4, Ptr(3));
                f.syscall(Sys::Select as i64);
                f.ret_val_to(Val(4));
                exit_check(f, Val(4), 1);
            })
        },
    ));
    for i in 0..3 {
        cases.push(case(
            format!("sysctl_read_{i}"),
            TestExpectation::PassBoth,
            move |o| {
                single_main("sysctl", o, |f| {
                    f.enter(96);
                    f.addr_of_stack(Ptr(0), 16, 16); // oldp
                    f.addr_of_stack(Ptr(1), 32, 8); // oldlenp
                    f.li(Val(0), 16);
                    f.store(Val(0), Ptr(1), 0, Width::D);
                    f.li(Val(1), 1 + (i % 2) as i64);
                    f.set_arg_val(0, Val(1));
                    f.set_arg_ptr(1, Ptr(0));
                    f.set_arg_ptr(2, Ptr(1));
                    f.syscall(Sys::Sysctl as i64);
                    f.ret_val_to(Val(2));
                    exit_check(f, Val(2), 0);
                })
            },
        ));
    }
    cases.push(case(
        "ioctl_get_struct".into(),
        TestExpectation::PassBoth,
        |o| {
            single_main("ioctl", o, |f| {
                f.enter(96);
                f.addr_of_stack(Ptr(0), 16, 64); // correctly sized buffer
                f.li(Val(0), 0);
                f.set_arg_val(0, Val(0));
                f.li(Val(1), 1);
                f.set_arg_val(1, Val(1));
                f.set_arg_ptr(2, Ptr(0));
                f.syscall(Sys::Ioctl as i64);
                f.ret_val_to(Val(2));
                f.load(Val(3), Ptr(0), 0, Width::D, false);
                f.li(Val(4), 0x1234_5678);
                let bad = f.label();
                f.bnez(Val(2), bad);
                f.bne(Val(3), Val(4), bad);
                f.sys_exit_imm(0);
                f.bind(bad);
                f.sys_exit_imm(1);
            })
        },
    ));
    cases.push(case("fork_wait".into(), TestExpectation::PassBoth, |o| {
        single_main("fork", o, |f| {
            f.syscall(Sys::Fork as i64);
            f.ret_val_to(Val(0));
            let parent = f.label();
            f.bnez(Val(0), parent);
            f.sys_exit_imm(7);
            f.bind(parent);
            f.li(Val(1), 0);
            f.set_arg_val(0, Val(1));
            f.syscall(Sys::Waitpid as i64);
            f.ret_val_to(Val(2));
            f.shr_imm(Val(2), Val(2), 8);
            exit_check(f, Val(2), 7);
        })
    }));
    cases.push(case("signal_usr1".into(), TestExpectation::PassBoth, |o| {
        let mut pb = ProgramBuilder::new("sig");
        let mut exe = pb.object("sig");
        {
            let mut f = FnBuilder::begin(&mut exe, "handler", o);
            f.load_global_ptr(Ptr(0), "mark");
            f.li(Val(0), 1);
            f.store(Val(0), Ptr(0), 0, Width::D);
            f.ret();
        }
        {
            let mut f = FnBuilder::begin(&mut exe, "main", o);
            f.li(Val(0), 10);
            f.set_arg_val(0, Val(0));
            f.load_global_ptr(Ptr(0), "handler");
            f.set_arg_ptr(1, Ptr(0));
            f.syscall(Sys::Sigaction as i64);
            f.sys_getpid(Val(1));
            f.set_arg_val(0, Val(1));
            f.li(Val(2), 10);
            f.set_arg_val(1, Val(2));
            f.syscall(Sys::Kill as i64);
            f.load_global_ptr(Ptr(1), "mark");
            f.load(Val(3), Ptr(1), 0, Width::D, false);
            exit_check(&mut f, Val(3), 1);
        }
        exe.add_data("mark", &[0u8; 8], 16);
        exe.set_entry("main");
        pb.add(exe.finish());
        pb.finish()
    }));
    cases
}

fn shm_family() -> Vec<TestCase> {
    (0..8)
        .map(|i| {
            let val = 100 + i as i64;
            case(format!("shm_rw_{i}"), TestExpectation::PassBoth, move |o| {
                single_main("shm", o, |f| {
                    f.li(Val(0), 42 + i as i64); // key
                    f.set_arg_val(0, Val(0));
                    f.li(Val(1), 8192);
                    f.set_arg_val(1, Val(1));
                    f.syscall(Sys::Shmget as i64);
                    f.ret_val_to(Val(2));
                    f.set_arg_val(0, Val(2));
                    f.set_arg_null(1); // shmat(id, NULL)
                    f.syscall(Sys::Shmat as i64);
                    f.ret_ptr_to(Ptr(0));
                    f.li(Val(3), val);
                    f.store(Val(3), Ptr(0), 128, Width::D);
                    f.load(Val(4), Ptr(0), 128, Width::D, false);
                    // detach
                    f.set_arg_ptr(0, Ptr(0));
                    f.syscall(Sys::Shmdt as i64);
                    exit_check(f, Val(4), val);
                })
            })
        })
        .collect()
}

fn swap_family() -> Vec<TestCase> {
    (0..6)
        .map(|i| {
            case(
                format!("swap_roundtrip_{i}"),
                TestExpectation::PassBoth,
                move |o| {
                    single_main("swap", o, |f| {
                        f.malloc_imm(Ptr(0), 64);
                        f.malloc_imm(Ptr(1), 32);
                        f.li(Val(0), 4242 + i as i64);
                        f.store(Val(0), Ptr(1), 0, Width::D);
                        f.store_ptr(Ptr(1), Ptr(0), 0);
                        f.li(Val(1), 4096);
                        f.set_arg_val(0, Val(1));
                        f.syscall(Sys::Swapctl as i64);
                        f.load_ptr(Ptr(2), Ptr(0), 0);
                        f.load(Val(2), Ptr(2), 0, Width::D, false);
                        exit_check(f, Val(2), 4242 + i as i64);
                    })
                },
            )
        })
        .collect()
}

fn dynlink_family() -> Vec<TestCase> {
    let mut cases = Vec::new();
    for i in 0..6 {
        let a = 10 + i as i64;
        cases.push(case(
            format!("dynlink_call_{i}"),
            TestExpectation::PassBoth,
            move |o| {
                let mut pb = ProgramBuilder::new("dyn");
                let mut lib = pb.object("libx");
                {
                    let mut f = FnBuilder::begin(&mut lib, "twice_plus", o);
                    f.arg_to_val(Val(0), 0);
                    f.add(Val(0), Val(0), Val(0));
                    f.add_imm(Val(0), Val(0), 3);
                    f.set_ret_val(Val(0));
                    f.ret();
                }
                lib.add_data("lib_global", &77u64.to_le_bytes(), 16);
                pb.add(lib.finish());
                let mut exe = pb.object("dyn");
                {
                    let mut f = FnBuilder::begin(&mut exe, "main", o);
                    f.enter(32);
                    f.li(Val(0), a);
                    f.set_arg_val(0, Val(0));
                    f.call_global("twice_plus");
                    f.ret_val_to(Val(1));
                    f.load_global_ptr(Ptr(0), "lib_global");
                    f.load(Val(2), Ptr(0), 0, Width::D, false);
                    f.add(Val(1), Val(1), Val(2));
                    exit_check(&mut f, Val(1), 2 * a + 3 + 77);
                }
                exe.set_entry("main");
                pb.add(exe.finish());
                pb.finish()
            },
        ));
    }
    for i in 0..4 {
        cases.push(case(
            format!("funcptr_reloc_{i}"),
            TestExpectation::PassBoth,
            move |o| {
                // A data-segment function-pointer table initialised by RTLD,
                // called indirectly.
                let mut pb = ProgramBuilder::new("fp");
                let mut exe = pb.object("fp");
                {
                    let mut f = FnBuilder::begin(&mut exe, "cb", o);
                    f.li(Val(0), 55 + i as i64);
                    f.set_ret_val(Val(0));
                    f.ret();
                }
                let slot = exe.add_data("vtable", &[0u8; 32], 16);
                exe.add_data_reloc(slot, "cb", 0);
                {
                    let mut f = FnBuilder::begin(&mut exe, "main", o);
                    f.enter(32);
                    f.load_global_ptr(Ptr(0), "vtable");
                    f.load_ptr(Ptr(1), Ptr(0), 0);
                    f.call_ptr(Ptr(1));
                    f.ret_val_to(Val(0));
                    exit_check(&mut f, Val(0), 55 + i as i64);
                }
                exe.set_entry("main");
                pb.add(exe.finish());
                pb.finish()
            },
        ));
    }
    cases
}

fn tls_family() -> Vec<TestCase> {
    (0..6)
        .map(|i| {
            let v = 900 + i as i64;
            case(format!("tls_rw_{i}"), TestExpectation::PassBoth, move |o| {
                let mut pb = ProgramBuilder::new("tls");
                let mut exe = pb.object("tls");
                exe.set_tls_size(64);
                {
                    let mut f = FnBuilder::begin(&mut exe, "main", o);
                    f.tls_ptr(Ptr(0));
                    f.li(Val(0), v);
                    f.store(Val(0), Ptr(0), 16, Width::D);
                    f.tls_ptr(Ptr(1));
                    f.load(Val(1), Ptr(1), 16, Width::D, false);
                    exit_check(&mut f, Val(1), v);
                }
                exe.set_entry("main");
                pb.add(exe.finish());
                pb.finish()
            })
        })
        .collect()
}

// ---------------------------------------------------------------------
// Seeded Table 2 failures (CheriABI-only)
// ---------------------------------------------------------------------

fn seeded_compat_family() -> Vec<TestCase> {
    let mut cases = Vec::new();
    // IP: launder a pointer through a plain integer and "cast back" with no
    // provenance (works on mips64, tag-less under CheriABI).
    for i in 0..3 {
        cases.push(case(
            format!("compat_int_launder_{i}"),
            TestExpectation::FailCheriOnly(Category::IntegerProvenance),
            move |o| {
                single_main("launder", o, |f| {
                    f.malloc_imm(Ptr(0), 32);
                    f.li(Val(0), 5 + i as i64);
                    f.store(Val(0), Ptr(0), 0, Width::D);
                    f.ptr_to_int(Val(1), Ptr(0));
                    // ... integer maths that survives on mips64 ...
                    f.add_imm(Val(1), Val(1), 8);
                    f.add_imm(Val(1), Val(1), -8);
                    // Reconstruct from NULL provenance (the int-to-ptr cast
                    // of legacy code).
                    f.int_to_ptr(Ptr(1), Val(1), Ptr(7)); // Ptr(7) holds NULL
                    f.load(Val(2), Ptr(1), 0, Width::D, false);
                    exit_check(f, Val(2), 5 + i as i64);
                })
            },
        ));
    }
    // U: XOR-linked-list pointer compression.
    for i in 0..2 {
        cases.push(case(
            format!("compat_xor_list_{i}"),
            TestExpectation::FailCheriOnly(Category::Unsupported),
            move |o| {
                single_main("xorlist", o, |f| {
                    f.malloc_imm(Ptr(0), 32);
                    f.malloc_imm(Ptr(1), 32);
                    f.li(Val(0), 11);
                    f.store(Val(0), Ptr(1), 0, Width::D);
                    f.ptr_to_int(Val(1), Ptr(0));
                    f.ptr_to_int(Val(2), Ptr(1));
                    f.xor(Val(3), Val(1), Val(2)); // "compressed" link
                    f.xor(Val(4), Val(3), Val(1)); // recover q's address
                    f.int_to_ptr(Ptr(2), Val(4), Ptr(7)); // no provenance
                    f.load(Val(5), Ptr(2), 0, Width::D, false);
                    exit_check(f, Val(5), 11);
                })
            },
        ));
    }
    // PP: out-of-object pointer arithmetic reaching a neighbouring object.
    for i in 0..2 {
        cases.push(case(
            format!("compat_cross_object_{i}"),
            TestExpectation::FailCheriOnly(Category::PointerProvenance),
            move |o| {
                single_main("crossobj", o, |f| {
                    f.malloc_imm(Ptr(0), 32);
                    f.malloc_imm(Ptr(1), 32);
                    f.li(Val(0), 21);
                    f.store(Val(0), Ptr(1), 0, Width::D);
                    // Reach object B via pointer arithmetic on A's pointer:
                    // compute delta as integers, then walk A's pointer.
                    f.ptr_to_int(Val(1), Ptr(0));
                    f.ptr_to_int(Val(2), Ptr(1));
                    f.sub(Val(3), Val(2), Val(1));
                    f.ptr_add(Ptr(2), Ptr(0), Val(3));
                    f.load(Val(4), Ptr(2), 0, Width::D, false);
                    exit_check(f, Val(4), 21);
                })
            },
        ));
    }
    // A: under-aligned capability storage (the PostgreSQL failure).
    for i in 0..2 {
        cases.push(case(
            format!("compat_underaligned_{i}"),
            TestExpectation::FailCheriOnly(Category::Alignment),
            move |o| {
                single_main("underalign", o, move |f| {
                    let off = 8 + 16 * i as i64;
                    f.malloc_imm(Ptr(0), 64);
                    f.malloc_imm(Ptr(1), 16);
                    // Store a pointer at offset 8 (mod 16): u64-aligned
                    // (fine for mips64) but not capability-aligned.
                    f.store_ptr(Ptr(1), Ptr(0), off);
                    f.load_ptr(Ptr(2), Ptr(0), off);
                    f.sys_exit_imm(0);
                })
            },
        ));
    }
    // PS: hard-coded 8-byte pointer stride.
    for i in 0..3 {
        cases.push(case(
            format!("compat_hardcoded_stride_{i}"),
            TestExpectation::FailCheriOnly(Category::PointerShape),
            move |o| {
                single_main("stride8", o, |f| {
                    f.malloc_imm(Ptr(0), 64);
                    f.malloc_imm(Ptr(1), 16);
                    f.li(Val(0), 31);
                    f.store(Val(0), Ptr(1), 0, Width::D);
                    // table[2i+1] = q, with stride hard-coded to 8 bytes.
                    f.store_ptr(Ptr(1), Ptr(0), 8 * (2 * i as i64 + 1));
                    f.load_ptr(Ptr(2), Ptr(0), 8 * (2 * i as i64 + 1));
                    f.load(Val(1), Ptr(2), 0, Width::D, false);
                    exit_check(f, Val(1), 31);
                })
            },
        ));
    }
    // CC: pointer passed in the integer register file (prototype-less call).
    for i in 0..3 {
        cases.push(case(
            format!("compat_cc_mismatch_{i}"),
            TestExpectation::FailCheriOnly(Category::CallingConvention),
            move |o| {
                let mut pb = ProgramBuilder::new("cc");
                let mut exe = pb.object("cc");
                {
                    // Callee expects a *pointer* argument.
                    let mut f = FnBuilder::begin(&mut exe, "takes_ptr", o);
                    f.arg_to_ptr(Ptr(0), 0);
                    f.load(Val(0), Ptr(0), 0, Width::D, false);
                    f.set_ret_val(Val(0));
                    f.ret();
                }
                {
                    // Caller passes it as an *integer* (K&R-style misuse).
                    let mut f = FnBuilder::begin(&mut exe, "main", o);
                    f.enter(32);
                    f.malloc_imm(Ptr(0), 16);
                    f.li(Val(0), 61 + i as i64);
                    f.store(Val(0), Ptr(0), 0, Width::D);
                    // An unrelated allocation leaves a different capability
                    // in the return/argument register file.
                    f.malloc_imm(Ptr(1), 16);
                    f.ptr_to_int(Val(1), Ptr(0));
                    f.set_arg_val(0, Val(1)); // wrong register file!
                    f.call_global("takes_ptr");
                    f.ret_val_to(Val(2));
                    exit_check(&mut f, Val(2), 61 + i as i64);
                }
                exe.set_entry("main");
                pb.add(exe.finish());
                pb.finish()
            },
        ));
    }
    cases
}

/// The §5.4 latent-bug reproductions: real-bug shapes the paper found in
/// FreeBSD. Silent on mips64, trapped (or surfaced) under CheriABI.
fn latent_bug_family() -> Vec<TestCase> {
    let mut cases = Vec::new();
    // tcsh: "buffer underrun read ... on an empty command line".
    cases.push(case(
        "latent_tcsh_underrun".into(),
        TestExpectation::FailCheriOnly(Category::PointerProvenance),
        |o| {
            single_main("tcsh", o, |f| {
                f.malloc_imm(Ptr(1), 16); // earlier allocation: the buffer
                                          // is interior to the arena chunk
                f.malloc_imm(Ptr(0), 32); // history buffer
                                          // On an "empty command line", the scan starts at index -1.
                f.load(Val(0), Ptr(0), -1, Width::B, false);
                f.sys_exit_imm(0);
            })
        },
    ));
    // ttyname/humanize_number-style small overflow: writes terminator one
    // past the end.
    cases.push(case(
        "latent_ttyname_overflow".into(),
        TestExpectation::FailCheriOnly(Category::PointerProvenance),
        |o| {
            single_main("ttyname", o, |f| {
                let len = 16;
                f.malloc_imm(Ptr(0), len);
                f.li(Val(0), 0);
                f.store(Val(0), Ptr(0), len, Width::B); // NUL one past end
                f.sys_exit_imm(0);
            })
        },
    ));
    // strvis test-case overflow: copies len+1 bytes.
    cases.push(case(
        "latent_strvis_copy".into(),
        TestExpectation::FailCheriOnly(Category::PointerProvenance),
        |o| {
            single_main("strvis", o, |f| {
                f.malloc_imm(Ptr(0), 32);
                f.malloc_imm(Ptr(1), 16);
                f.li(Val(0), 17); // len + 1
                f.memcpy_bytes(Ptr(1), Ptr(0), Val(0));
                f.sys_exit_imm(0);
            })
        },
    ));
    // dhclient: ioctl with an under-allocated argument struct; the kernel
    // writes 64 bytes. mips64 silently corrupts the heap; CheriABI returns
    // EFAULT (which this unaware legacy code never checks — but the
    // corrupted-neighbour check fails only under mips64... the test, like
    // the original bug, "passes" on mips64 because nothing checked).
    cases.push(case(
        "latent_dhclient_ioctl".into(),
        TestExpectation::FailCheriOnly(Category::PointerProvenance),
        |o| {
            single_main("dhclient", o, |f| {
                f.malloc_imm(Ptr(0), 32); // under-allocated: kernel writes 64
                f.li(Val(0), 0);
                f.set_arg_val(0, Val(0));
                f.li(Val(1), 1);
                f.set_arg_val(1, Val(1));
                f.set_arg_ptr(2, Ptr(0));
                f.syscall(Sys::Ioctl as i64);
                f.ret_val_to(Val(2));
                // Legacy code asserts success.
                exit_check(f, Val(2), 0);
            })
        },
    ));
    cases
}

// ---------------------------------------------------------------------
// Skips and pre-existing failures
// ---------------------------------------------------------------------

fn skip_family() -> Vec<TestCase> {
    let mut cases: Vec<TestCase> = (0..24)
        .map(|i| {
            case(
                format!("sbrk_needed_{i}"),
                TestExpectation::SkipBoth,
                move |o| {
                    single_main("sbrk", o, |f| {
                        f.syscall(Sys::Sbrk as i64);
                        f.ret_val_to(Val(0));
                        // ENOSYS -> skip
                        f.li(Val(1), -78);
                        let fail = f.label();
                        f.bne(Val(0), Val(1), fail);
                        f.sys_exit_imm(SKIP_EXIT_CODE);
                        f.bind(fail);
                        f.sys_exit_imm(1);
                    })
                },
            )
        })
        .collect();
    // "We exclude two management utilities that require compatibility shims
    // to work with CheriABI" — they skip themselves under CheriABI.
    for i in 0..2 {
        cases.push(case(
            format!("mgmt_util_needs_shim_{i}"),
            TestExpectation::SkipCheriOnly,
            move |o| {
                single_main("mgmt", o, |f| {
                    f.abi_is_purecap(Val(0));
                    let run = f.label();
                    f.beqz(Val(0), run);
                    f.sys_exit_imm(SKIP_EXIT_CODE);
                    f.bind(run);
                    f.sys_exit_imm(0);
                })
            },
        ));
    }
    cases
}

fn preexisting_failures_family() -> Vec<TestCase> {
    (0..8)
        .map(|i| {
            case(
                format!("known_broken_{i}"),
                TestExpectation::FailBoth,
                move |o| {
                    single_main("broken", o, |f| {
                        // A plain logic bug: asserts the wrong checksum.
                        f.li(Val(0), 2);
                        f.add_imm(Val(0), Val(0), 2);
                        exit_check(f, Val(0), 5);
                    })
                },
            )
        })
        .collect()
}

/// The whole generated "FreeBSD test suite" stand-in.
#[must_use]
pub fn freebsd_suite() -> Vec<TestCase> {
    let mut all = Vec::new();
    all.extend(arith_family());
    all.extend(string_family());
    all.extend(sort_family());
    all.extend(alloc_family());
    all.extend(stack_family());
    all.extend(syscall_family());
    all.extend(shm_family());
    all.extend(swap_family());
    all.extend(dynlink_family());
    all.extend(tls_family());
    all.extend(seeded_compat_family());
    all.extend(latent_bug_family());
    all.extend(skip_family());
    all.extend(preexisting_failures_family());
    all
}

/// A libc++-like subsuite: the template/containers-flavoured subset
/// (sorting, strings, allocation) — used for the Table 1 "libc++" row.
#[must_use]
pub fn libcxx_suite() -> Vec<TestCase> {
    let mut all = Vec::new();
    all.extend(string_family());
    all.extend(sort_family());
    all.extend(alloc_family());
    // The paper's five extra CheriABI failures come from a missing atomics
    // runtime function; model that as a small family probing an
    // "unimplemented" runtime entry point.
    for i in 0..5 {
        all.push(case(
            format!("atomics_runtime_{i}"),
            TestExpectation::FailCheriOnly(Category::Unsupported),
            move |o| {
                single_main("atomics", o, |f| {
                    // The runtime helper only exists for the legacy ABI.
                    f.abi_is_purecap(Val(0));
                    let ok = f.label();
                    f.beqz(Val(0), ok);
                    f.trap(); // unresolved __atomic_* helper
                    f.bind(ok);
                    f.sys_exit_imm(0);
                })
            },
        ));
    }
    all
}
