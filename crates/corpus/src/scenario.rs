//! The scenario plane's guest program: a multi-tenant minidb server under
//! concurrent client load.
//!
//! One `main` process creates two pipes per client (requests in, replies
//! out), forks a server linked against the same `libdb` the `initdb`
//! macro-benchmark uses, forks `clients` client processes, and reaps them
//! all. Each client issues `queries` requests — an 8-byte
//! `[op: u32][key: u32]` message — and blocks for the server's 8-byte
//! reply before issuing the next one, stamping the enqueue→reply latency
//! of every request in deterministic guest cycles (`Sys::Cycles`). The
//! stamps are flushed to the client's console as little-endian `u64`s,
//! where `System::run_scenario` harvests them into percentiles.
//!
//! Everything interesting happens in the kernel: requests and replies ride
//! *blocking* pipes (readers sleep on empty buffers, writers sleep on full
//! ones — run the scenario with a small `KernelConfig::pipe_capacity` and
//! every message forces partial writes and wake/block churn), the server's
//! `db_put` path mallocs a capability-carrying record per request, and the
//! optional swap-pressure mode forces pages to the swap device every
//! round, so replies land only after tag-preserving swap-ins.
//!
//! Process-tree shape is fixed by construction: only `main` forks, server
//! first, then clients in index order — so the spawned pid `p` implies
//! server `p+1` and client `i` at `p+2+i`, which is the contract
//! `System::run_scenario` harvests latencies by.

use crate::minidb::{add_libdb, call_get, call_put};
use cheri_isa::codegen::{CodegenOpts, FnBuilder, Ptr, Val};
use cheri_isa::{Label, Width};
use cheri_kernel::Sys;
use cheri_rtld::{Program, ProgramBuilder};
use cheriabi::guest::GuestOps;

/// Hash-table capacity the server creates. Must stay well above
/// [`KEY_SPACE`]: `db_put` probes forever on a full table.
const TABLE_CAP: i64 = 128;

/// Keys are drawn from `0..KEY_SPACE` (a power of two, so the client can
/// mask instead of dividing).
const KEY_SPACE: i64 = 32;

/// Request/reply message size in bytes.
const MSG: i64 = 8;

/// Frame offset of the fd table in `main` (16 bytes per client:
/// `[req_r: u32][req_w: u32][rep_r: u32][rep_w: u32]`).
const FD0: i64 = 16;

/// Builds the scenario program. `mix` selects the per-request operation:
/// `"get"`, `"put"`, or `"mixed"` (an LCG bit, different per client and
/// per seed). `swap_pressure` makes the server evict pages to the swap
/// device after every round of replies.
#[must_use]
pub fn build(
    opts: CodegenOpts,
    seed: u64,
    clients: u64,
    queries: u64,
    mix: &str,
    swap_pressure: bool,
) -> Program {
    let n = clients as i64;
    let q = queries as i64;
    let mix = match mix {
        "put" => 1u8,
        "mixed" => 2,
        _ => 0, // "get"
    };
    let mut pb = ProgramBuilder::new("scenario");
    add_libdb(&mut pb, opts);
    let mut exe = pb.object("scenario");
    {
        let mut f = FnBuilder::begin(&mut exe, "scenario_client", opts);
        emit_client(&mut f, q, mix, seed);
    }
    {
        let mut f = FnBuilder::begin(&mut exe, "scenario_server", opts);
        emit_server(&mut f, n, q, swap_pressure);
    }
    {
        let mut f = FnBuilder::begin(&mut exe, "main", opts);
        emit_main(&mut f, n);
    }
    exe.set_entry("main");
    pb.add(exe.finish());
    pb.finish()
}

/// Emits a loop writing exactly `len` bytes from `buf` to the runtime fd
/// in `fd`, advancing past partial writes (a small pipe buffer reports
/// short counts and blocks the writer when full). Jumps to `abort` on any
/// error (negative return: reader gone, injected errno) or a zero-byte
/// write. Clobbers `Val(0..=2)` and `Ptr(4)`; `fd` and `buf` must not
/// alias those.
fn emit_write_all(f: &mut FnBuilder<'_>, fd: Val, buf: Ptr, len: i64, abort: Label) {
    let top = f.label();
    let done = f.label();
    f.li(Val(0), 0); // bytes sent
    f.bind(top);
    f.li(Val(2), len);
    f.sub(Val(2), Val(2), Val(0));
    f.beqz(Val(2), done);
    f.ptr_add(Ptr(4), buf, Val(0));
    f.set_arg_val(0, fd);
    f.set_arg_ptr(1, Ptr(4));
    f.set_arg_val(2, Val(2));
    f.syscall(Sys::Write as i64);
    f.ret_val_to(Val(1));
    f.bltz(Val(1), abort);
    f.beqz(Val(1), abort);
    f.add(Val(0), Val(0), Val(1));
    f.jmp(top);
    f.bind(done);
}

/// Emits a loop reading exactly `len` bytes into `buf` from the runtime fd
/// in `fd` (blocking on an empty pipe). Jumps to `abort` on error or EOF.
/// Clobbers `Val(0..=2)` and `Ptr(4)`; `fd` and `buf` must not alias
/// those.
fn emit_read_exact(f: &mut FnBuilder<'_>, fd: Val, buf: Ptr, len: i64, abort: Label) {
    let top = f.label();
    let done = f.label();
    f.li(Val(0), 0); // bytes received
    f.bind(top);
    f.li(Val(2), len);
    f.sub(Val(2), Val(2), Val(0));
    f.beqz(Val(2), done);
    f.ptr_add(Ptr(4), buf, Val(0));
    f.set_arg_val(0, fd);
    f.set_arg_ptr(1, Ptr(4));
    f.set_arg_val(2, Val(2));
    f.syscall(Sys::Read as i64);
    f.ret_val_to(Val(1));
    f.bltz(Val(1), abort);
    f.beqz(Val(1), abort); // EOF mid-message
    f.add(Val(0), Val(0), Val(1));
    f.jmp(top);
    f.bind(done);
}

/// `scenario_client(req_w, rep_r, idx)`: the request loop. Keeps all state
/// in registers (no calls, and temporaries survive syscalls), stamping
/// each request with `Sys::Cycles` before the write and after the reply.
/// On any pipe error it stops early and flushes only the stamps it has —
/// the harness counts those as completed and the rest as degraded.
fn emit_client(f: &mut FnBuilder<'_>, queries: i64, mix: u8, seed: u64) {
    f.enter(48);
    f.arg_to_val(Val(7), 0); // request-pipe write fd
    f.arg_to_val(Val(6), 1); // reply-pipe read fd
    f.arg_to_val(Val(0), 2); // client index
    f.malloc_imm(Ptr(0), queries * MSG); // latency stamps
                                         // Per-client LCG state, perturbed by the case seed so different seeds
                                         // walk different key streams (and thus different probe lengths).
    f.li(Val(1), 1_000_003);
    f.mul(Val(5), Val(0), Val(1));
    f.add_imm(Val(5), Val(5), 12_345 + (seed % 1024) as i64);
    f.addr_of_stack(Ptr(1), 16, MSG as u64); // message buffer
    f.li(Val(3), 0); // completed requests
    let q_top = f.label();
    let finish = f.label();
    f.bind(q_top);
    f.li(Val(0), queries);
    f.sub(Val(0), Val(3), Val(0));
    f.beqz(Val(0), finish);
    // state = (state * 1103515245 + 12345) & 0x7fffffff
    f.li(Val(0), 1_103_515_245);
    f.mul(Val(5), Val(5), Val(0));
    f.add_imm(Val(5), Val(5), 12_345);
    f.li(Val(0), 0x7fff_ffff);
    f.and(Val(5), Val(5), Val(0));
    f.and_imm(Val(1), Val(5), (KEY_SPACE - 1) as u64); // key
    match mix {
        0 => f.li(Val(2), 0),
        1 => f.li(Val(2), 1),
        _ => {
            // Mixed: one LCG bit away from the key bits.
            f.shr_imm(Val(2), Val(5), 5);
            f.and_imm(Val(2), Val(2), 1);
        }
    }
    f.store(Val(2), Ptr(1), 0, Width::W); // op
    f.store(Val(1), Ptr(1), 4, Width::W); // key
    f.syscall(Sys::Cycles as i64); // enqueue stamp
    f.ret_val_to(Val(4));
    emit_write_all(f, Val(7), Ptr(1), MSG, finish);
    emit_read_exact(f, Val(6), Ptr(1), MSG, finish);
    f.syscall(Sys::Cycles as i64); // reply stamp
    f.ret_val_to(Val(0));
    f.sub(Val(0), Val(0), Val(4));
    f.shl_imm(Val(1), Val(3), 3);
    f.ptr_add(Ptr(2), Ptr(0), Val(1));
    f.store(Val(0), Ptr(2), 0, Width::D);
    f.add_imm(Val(3), Val(3), 1);
    f.jmp(q_top);
    f.bind(finish);
    // Flush the stamps (completed requests only) to the console as raw
    // little-endian u64s; run_scenario decodes them from the raw bytes.
    f.li(Val(0), 1);
    f.set_arg_val(0, Val(0));
    f.set_arg_ptr(1, Ptr(0));
    f.shl_imm(Val(1), Val(3), 3);
    f.set_arg_val(2, Val(1));
    f.syscall(Sys::Write as i64);
    f.leave_ret();
}

/// `scenario_server(fdtab)`: creates the table, then serves `queries`
/// rounds of one request per client, in client order. Loop state lives in
/// stack slots (the `db_*` calls preserve no registers); fds are re-read
/// from the fd table each time they're needed.
fn emit_server(f: &mut FnBuilder<'_>, clients: i64, queries: i64, swap_pressure: bool) {
    // Frame: fdtab spill @16, table spill @32, round @48, client @56,
    // message buffer @64, saved key @72.
    f.enter(96);
    f.arg_to_ptr(Ptr(0), 0);
    f.spill_ptr(Ptr(0), 16);
    f.li(Val(0), TABLE_CAP);
    f.set_arg_val(0, Val(0));
    f.call_global("db_create");
    f.ret_ptr_to(Ptr(1));
    f.spill_ptr(Ptr(1), 32);
    f.addr_of_stack(Ptr(6), 48, 8);
    f.li(Val(0), 0);
    f.store(Val(0), Ptr(6), 0, Width::D); // round = 0
    let r_top = f.label();
    let finish = f.label();
    let i_top = f.label();
    let i_done = f.label();
    f.bind(r_top);
    f.addr_of_stack(Ptr(6), 48, 8);
    f.load(Val(0), Ptr(6), 0, Width::D, false);
    f.li(Val(1), queries);
    f.sub(Val(1), Val(0), Val(1));
    f.beqz(Val(1), finish);
    f.addr_of_stack(Ptr(6), 56, 8);
    f.li(Val(0), 0);
    f.store(Val(0), Ptr(6), 0, Width::D); // client = 0
    f.bind(i_top);
    f.addr_of_stack(Ptr(6), 56, 8);
    f.load(Val(0), Ptr(6), 0, Width::D, false);
    f.li(Val(1), clients);
    f.sub(Val(1), Val(0), Val(1));
    f.beqz(Val(1), i_done);
    // Request fd: fdtab[client].req_r.
    f.reload_ptr(Ptr(0), 16);
    f.shl_imm(Val(1), Val(0), 4);
    f.ptr_add(Ptr(2), Ptr(0), Val(1));
    f.load(Val(6), Ptr(2), 0, Width::W, false);
    f.addr_of_stack(Ptr(3), 64, MSG as u64);
    emit_read_exact(f, Val(6), Ptr(3), MSG, finish);
    f.load(Val(0), Ptr(3), 0, Width::W, false); // op
    f.load(Val(1), Ptr(3), 4, Width::W, false); // key
    f.addr_of_stack(Ptr(6), 72, 8);
    f.store(Val(1), Ptr(6), 0, Width::D); // save key across the call
    let do_get = f.label();
    let reply = f.label();
    f.beqz(Val(0), do_get);
    // put(key, key + 100); reply with the stored value.
    f.add_imm(Val(2), Val(1), 100);
    f.reload_ptr(Ptr(1), 32);
    call_put(f, Ptr(1), Val(1), Val(2));
    f.addr_of_stack(Ptr(6), 72, 8);
    f.load(Val(1), Ptr(6), 0, Width::D, false);
    f.add_imm(Val(2), Val(1), 100);
    f.jmp(reply);
    f.bind(do_get);
    // get(key); reply with the value found (-1 when missing).
    f.reload_ptr(Ptr(1), 32);
    call_get(f, Ptr(1), Val(1), Val(2));
    f.bind(reply);
    f.addr_of_stack(Ptr(3), 64, MSG as u64);
    f.store(Val(2), Ptr(3), 0, Width::D);
    // Reply fd: fdtab[client].rep_w, re-derived after the db_* calls.
    f.reload_ptr(Ptr(0), 16);
    f.addr_of_stack(Ptr(6), 56, 8);
    f.load(Val(0), Ptr(6), 0, Width::D, false);
    f.shl_imm(Val(1), Val(0), 4);
    f.ptr_add(Ptr(2), Ptr(0), Val(1));
    f.load(Val(6), Ptr(2), 12, Width::W, false);
    emit_write_all(f, Val(6), Ptr(3), MSG, finish);
    f.addr_of_stack(Ptr(6), 56, 8);
    f.load(Val(0), Ptr(6), 0, Width::D, false);
    f.add_imm(Val(0), Val(0), 1);
    f.store(Val(0), Ptr(6), 0, Width::D); // client += 1
    f.jmp(i_top);
    f.bind(i_done);
    if swap_pressure {
        // Force pages out every round: the next round's table probes and
        // record reads fault them back through the tag-preserving swap
        // path while clients sit blocked on their reply pipes.
        f.li(Val(0), 2);
        f.set_arg_val(0, Val(0));
        f.syscall(Sys::Swapctl as i64);
    }
    f.addr_of_stack(Ptr(6), 48, 8);
    f.load(Val(0), Ptr(6), 0, Width::D, false);
    f.add_imm(Val(0), Val(0), 1);
    f.store(Val(0), Ptr(6), 0, Width::D); // round += 1
    f.jmp(r_top);
    f.bind(finish);
    f.leave_ret();
}

/// `main`: create all pipes up front, fork the server, fork the clients,
/// reap everything. Creating every pipe before any fork means all
/// processes inherit all ends — termination is by counted rounds, not
/// EOF — and only `main` forks, so pids are deterministic.
fn emit_main(f: &mut FnBuilder<'_>, clients: i64) {
    f.enter(32 + 16 * clients);
    for i in 0..clients {
        // Request pipe: [req_r][req_w] at fdtab[i] + 0.
        f.addr_of_stack(Ptr(0), FD0 + 16 * i, 8);
        f.set_arg_ptr(0, Ptr(0));
        f.syscall(Sys::Pipe as i64);
        // Reply pipe: [rep_r][rep_w] at fdtab[i] + 8.
        f.addr_of_stack(Ptr(0), FD0 + 16 * i + 8, 8);
        f.set_arg_ptr(0, Ptr(0));
        f.syscall(Sys::Pipe as i64);
    }
    // Server first (pid = main + 1).
    f.syscall(Sys::Fork as i64);
    f.ret_val_to(Val(0));
    let after_server = f.label();
    f.bnez(Val(0), after_server);
    f.addr_of_stack(Ptr(0), FD0, (16 * clients) as u64);
    f.set_arg_ptr(0, Ptr(0));
    f.call_global("scenario_server");
    f.sys_exit_imm(0);
    f.bind(after_server);
    // Clients in index order (client i = main + 2 + i).
    for i in 0..clients {
        f.syscall(Sys::Fork as i64);
        f.ret_val_to(Val(0));
        let after = f.label();
        f.bnez(Val(0), after);
        f.addr_of_stack(Ptr(0), FD0 + 16 * i, 16);
        f.load(Val(1), Ptr(0), 4, Width::W, false); // req_w
        f.load(Val(2), Ptr(0), 8, Width::W, false); // rep_r
        f.set_arg_val(0, Val(1));
        f.set_arg_val(1, Val(2));
        f.li(Val(3), i);
        f.set_arg_val(2, Val(3));
        f.call_global("scenario_client");
        f.sys_exit_imm(0);
        f.bind(after);
    }
    for _ in 0..=clients {
        f.li(Val(1), 0);
        f.set_arg_val(0, Val(1));
        f.syscall(Sys::Waitpid as i64);
    }
    f.sys_exit_imm(0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::opts_for;
    use cheri_kernel::KernelConfig;
    use cheriabi::{AbiMode, ExitStatus, SpawnOpts, System};

    fn run(abi: AbiMode, config: KernelConfig, clients: u64, queries: u64, mix: &str) {
        let program = build(opts_for(abi), 7, clients, queries, mix, false);
        let mut sys = System::with_config(config);
        let run = sys
            .run_scenario(&program, &SpawnOpts::new(abi), clients)
            .expect("loads");
        assert_eq!(run.status, ExitStatus::Code(0), "{abi} {mix}");
        assert_eq!(run.deadlock, None, "{abi} {mix}");
        assert_eq!(
            run.latencies.len() as u64,
            clients * queries,
            "{abi} {mix}: every request must stamp a latency"
        );
        assert!(run.latencies.iter().all(|&l| l > 0), "{abi} {mix}");
    }

    #[test]
    fn scenario_completes_under_both_abis() {
        for abi in [AbiMode::Mips64, AbiMode::CheriAbi] {
            run(abi, KernelConfig::default(), 2, 4, "mixed");
        }
    }

    #[test]
    fn scenario_survives_tiny_pipes() {
        // A 6-byte pipe forces every 8-byte message through partial
        // writes and writer blocking; results must be unaffected.
        let config = KernelConfig {
            pipe_capacity: 6,
            ..KernelConfig::default()
        };
        for abi in [AbiMode::Mips64, AbiMode::CheriAbi] {
            run(abi, config, 3, 4, "put");
        }
    }

    #[test]
    fn swap_pressure_scenario_completes() {
        let program = build(CodegenOpts::purecap(), 3, 2, 6, "mixed", true);
        let mut sys = System::new();
        let run = sys
            .run_scenario(&program, &SpawnOpts::new(AbiMode::CheriAbi), 2)
            .expect("loads");
        assert_eq!(run.status, ExitStatus::Code(0));
        assert_eq!(run.latencies.len(), 12);
    }
}
