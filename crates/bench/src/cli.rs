//! Shared command-line handling for the evaluation binaries.
//!
//! Every table/figure binary accepts the same two flags:
//!
//! * `--jobs N` — number of harness workers (default: all available
//!   cores). Results are identical at any level; `--jobs 1` is the exact
//!   sequential path.
//! * `--json` — emit one machine-readable JSON line per result row
//!   instead of the human-readable table.

use std::fmt::Write as _;

/// Parsed common options.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BenchOpts {
    /// Harness worker count.
    pub jobs: usize,
    /// Emit JSON report lines instead of the human table.
    pub json: bool,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            jobs: cheriabi::harness::available_parallelism(),
            json: false,
        }
    }
}

/// Parses `--jobs N` / `--json` / `--help` from an argument list (without
/// the program name). Returns an error message on anything unrecognised.
pub fn parse_args(args: impl IntoIterator<Item = String>) -> Result<BenchOpts, String> {
    let mut opts = BenchOpts::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--jobs" | "-j" => {
                let value = iter.next().ok_or("--jobs needs a value")?;
                let jobs: usize = value
                    .parse()
                    .map_err(|_| format!("--jobs: not a number: {value}"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                opts.jobs = jobs;
            }
            "--json" => opts.json = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument: {other}\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// Usage text shared by the binaries.
pub const USAGE: &str = "options:\n  --jobs N   harness workers (default: all cores)\n  --json     machine-readable output, one JSON line per row";

/// Parses the process arguments; prints the usage text and exits 0 on
/// `--help`, exits 2 on anything unrecognised.
#[must_use]
pub fn parse_env() -> BenchOpts {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        std::process::exit(0);
    }
    match parse_args(args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

/// Escapes a string for inclusion in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` for a JSON line: finite values print plainly, the
/// rest (overheads can divide by zero misses) become `null`.
#[must_use]
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn parses_jobs_and_json() {
        let opts = parse_args(args(&["--jobs", "4", "--json"])).expect("parses");
        assert_eq!(opts.jobs, 4);
        assert!(opts.json);
        let defaults = parse_args(args(&[])).expect("parses");
        assert!(defaults.jobs >= 1);
        assert!(!defaults.json);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(args(&["--jobs"])).is_err());
        assert!(parse_args(args(&["--jobs", "zero"])).is_err());
        assert!(parse_args(args(&["--jobs", "0"])).is_err());
        assert!(parse_args(args(&["--frobnicate"])).is_err());
    }

    #[test]
    fn escapes_json_strings() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.25), "1.2500");
    }
}
