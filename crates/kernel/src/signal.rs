//! Signal delivery and return (Figure 2, right panel).
//!
//! "Signal delivery is similar to context switching, except that the
//! register state is copied to the signal stack for modification. Access
//! to, and manipulation of, saved capability state by the signal handler
//! preserves the architectural capability chain." — §3.
//!
//! The frame is written with *capability stores*, so every saved register
//! keeps its tag; `sigreturn` reloads them the same way. The handler is
//! entered through a function capability bounded to its object, and returns
//! through the trampoline page mapped by `execve`.

use crate::costs;
use crate::kernel::Kernel;
use crate::process::{ExitStatus, Pid};
use cheri_cap::{CapSource, Capability, Perms};
use cheri_isa::{creg, ireg};

/// Signal numbers used by the simulation.
pub type Signal = u8;

/// CheriBSD's capability-fault signal.
pub const SIGPROT: Signal = 34;

/// Bus error: delivered when a swap-device I/O error persists past the
/// kernel's single retry (the fault plane's graceful-degradation contract).
pub const SIGBUS: Signal = 10;

/// Number of bytes a signal frame occupies: 32 capability registers + PCC +
/// DDC (16 bytes each, stored as capabilities) + 32 GPRs + pc (8 bytes
/// each).
pub const SIGFRAME_SIZE: u64 = (32 + 2) * 16 + 33 * 8 + 8; // padded to 16 below

const fn frame_size_aligned() -> u64 {
    (SIGFRAME_SIZE + 15) & !15
}

impl Kernel {
    /// Delivers the first pending signal of `pid`, if any. A process whose
    /// signal frame cannot be written (unmapped stack, swap I/O failure)
    /// is terminated with that signal rather than panicking the kernel.
    pub(crate) fn deliver_pending_signal(&mut self, pid: Pid) {
        let Some(sig) = self.process_mut(pid).pending_signals.pop_front() else {
            return;
        };
        if self.deliver_signal_inner(pid, sig).is_none() {
            self.terminate(pid, ExitStatus::Signaled(sig));
        }
    }

    /// The fallible body of signal delivery; `None` means the frame could
    /// not be constructed and the caller must kill the process.
    fn deliver_signal_inner(&mut self, pid: Pid, sig: crate::signal::Signal) -> Option<()> {
        let handler = *self.process(pid).sighandlers.get(&sig)?;
        self.stats.signals_delivered += 1;
        self.cpu.charge(200, costs::SIGNAL_DELIVERY);

        let (space, regs, abi) = {
            let p = self.process(pid);
            (p.space, p.regs.clone(), p.abi)
        };
        // Locate the signal frame below the current stack pointer.
        let sp = match abi {
            crate::abi::AbiMode::CheriAbi => regs.c(creg::CSP).addr(),
            crate::abi::AbiMode::Mips64 => regs.r(ireg::SP),
        };
        let frame = (sp - frame_size_aligned() - 32) & !15;

        // Save capability registers (tags preserved), then PCC and DDC.
        let mut off = frame;
        let store = |k: &mut Kernel, off: u64, c: Capability| -> Option<()> {
            k.vm.store_cap(space, off, c).ok()
        };
        for i in 0..32u8 {
            store(self, off, regs.c(cheri_isa::CReg(i)))?;
            off += 16;
        }
        store(self, off, regs.pcc)?;
        off += 16;
        store(self, off, regs.ddc)?;
        off += 16;
        for i in 0..32u8 {
            self.vm
                .write_u64(space, off, regs.r(cheri_isa::IReg(i)))
                .ok()?;
            off += 8;
        }
        self.vm.write_u64(space, off, regs.pc).ok()?;

        // Enter the handler.
        let root = self.vm.space(space).root;
        let (tramp, handler_obj) = {
            let p = self.process_mut(pid);
            p.signal_frames.push(frame);
            let obj = p
                .loaded
                .objects
                .iter()
                .find(|o| handler >= o.text_base && handler < o.text_base + o.text_len)
                .map(|o| (o.text_base, o.text_len));
            (p.trampoline_pc, obj)
        };
        // Return capability: tightly bounded to the trampoline page.
        let tramp_cap = root
            .with_addr(tramp)
            .set_bounds(16, false)
            .ok()?
            .and_perms(Perms::user_code())
            .with_source(CapSource::Signal);
        if abi == crate::abi::AbiMode::CheriAbi {
            self.cpu.trace.record(&tramp_cap);
        }
        let regs = &mut self.process_mut(pid).regs;
        regs.w(ireg::A0, u64::from(sig));
        regs.pc = handler;
        match abi {
            crate::abi::AbiMode::CheriAbi => {
                // Handler PCC: bounded to the handler's object.
                if let Some((tb, tl)) = handler_obj {
                    regs.pcc = root
                        .with_addr(tb)
                        .set_bounds(tl, false)
                        .ok()?
                        .with_addr(handler)
                        .and_perms(Perms::user_code());
                }
                // New stack pointer below the frame.
                let new_sp = regs.c(creg::CSP).with_addr(frame - 64);
                regs.wc(creg::CSP, new_sp);
                regs.wc(creg::CRA, tramp_cap);
            }
            crate::abi::AbiMode::Mips64 => {
                regs.w(ireg::SP, frame - 64);
                regs.w(ireg::RA, tramp);
            }
        }
        Some(())
    }

    /// `sigreturn`: restores the register state saved by signal delivery.
    /// Returns `false` if there is no frame to return to (the process is
    /// then killed).
    pub(crate) fn sigreturn(&mut self, pid: Pid) -> bool {
        let Some(frame) = self.process_mut(pid).signal_frames.pop() else {
            return false;
        };
        let space = self.process(pid).space;
        let fmt = self.config.cap_fmt;
        let mut off = frame;
        let mut caps = [Capability::null(fmt); 32];
        for slot in caps.iter_mut() {
            // An unreadable frame (stack unmapped behind our back, swap
            // I/O failure) aborts the return; the caller kills the process.
            let Ok(loaded) = self.vm.load_cap(space, off) else {
                return false;
            };
            *slot = loaded.unwrap_or_else(|| {
                let raw = self.vm.read_u64(space, off).unwrap_or(0);
                Capability::null(fmt).with_addr(raw)
            });
            off += 16;
        }
        let Ok(pcc_slot) = self.vm.load_cap(space, off) else {
            return false;
        };
        let pcc = pcc_slot.unwrap_or(Capability::null(fmt));
        off += 16;
        let Ok(ddc_slot) = self.vm.load_cap(space, off) else {
            return false;
        };
        let ddc = ddc_slot.unwrap_or(Capability::null(fmt));
        off += 16;
        let mut gpr = [0u64; 32];
        for g in gpr.iter_mut() {
            let Ok(v) = self.vm.read_u64(space, off) else {
                return false;
            };
            *g = v;
            off += 8;
        }
        let Ok(pc) = self.vm.read_u64(space, off) else {
            return false;
        };
        let p = self.process_mut(pid);
        p.regs.caps = caps;
        p.regs.pcc = pcc;
        p.regs.ddc = ddc;
        p.regs.gpr = gpr;
        p.regs.pc = pc;
        self.cpu.charge(150, costs::SIGNAL_DELIVERY / 2);
        true
    }
}
