//! The VM subsystem: translation, demand paging, COW, shared segments and
//! tag-preserving swap.

use crate::space::{AddressSpace, AsId, Backing, Mapping, PageState, Prot, USER_TOP};
use cheri_cap::{CapFormat, Capability, PrincipalId};
use cheri_mem::{FrameId, PAddr, PhysMem, FRAME_SIZE};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Kind of memory access being translated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// Data load.
    Read,
    /// Data store.
    Write,
    /// Instruction fetch.
    Exec,
}

impl Access {
    fn required_prot(self) -> Prot {
        match self {
            Access::Read => Prot::READ,
            Access::Write => Prot::WRITE,
            Access::Exec => Prot::EXEC,
        }
    }
}

/// Faults and errors raised by the VM subsystem.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum VmError {
    /// No mapping covers the address.
    Unmapped(u64),
    /// The mapping's protection forbids the access.
    Protection(u64),
    /// Physical memory exhausted and nothing could be evicted.
    OutOfMemory,
    /// Unknown address space.
    NoSuchSpace,
    /// Unknown shared segment.
    NoSuchSegment,
    /// A fixed-address mapping collides with an existing mapping.
    MappingExists(u64),
    /// Address or length not page-aligned.
    BadAlignment(u64),
    /// The requested range exceeds the user address range.
    BadRange(u64),
    /// The swap device failed to read or write the slot backing this
    /// address. Transient: the kernel retries once, then delivers SIGBUS.
    SwapIo(u64),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Unmapped(a) => write!(f, "unmapped address {a:#x}"),
            VmError::Protection(a) => write!(f, "protection violation at {a:#x}"),
            VmError::OutOfMemory => write!(f, "out of physical memory"),
            VmError::NoSuchSpace => write!(f, "no such address space"),
            VmError::NoSuchSegment => write!(f, "no such shared segment"),
            VmError::MappingExists(a) => write!(f, "mapping exists at {a:#x}"),
            VmError::BadAlignment(a) => write!(f, "bad alignment {a:#x}"),
            VmError::BadRange(a) => write!(f, "address {a:#x} outside user range"),
            VmError::SwapIo(a) => write!(f, "swap I/O error at {a:#x}"),
        }
    }
}

impl Error for VmError {}

/// Counters exposed for the syscall micro-benchmarks and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Demand faults serviced (zero-fill + image + swap).
    pub faults: u64,
    /// Pages brought back from swap.
    pub swap_ins: u64,
    /// Pages evicted to swap.
    pub swap_outs: u64,
    /// Capabilities rederived during swap-in.
    pub caps_rederived: u64,
    /// Capabilities found unrederivable during swap-in (left untagged).
    pub caps_refused: u64,
    /// Capabilities whose owning mapping vanished while the page sat in
    /// swap: left untagged at swap-in and reported here rather than being
    /// silently folded into `caps_refused`.
    pub caps_orphaned: u64,
    /// Capabilities killed by a revocation sweep ([`Vm::revoke_ranges`]):
    /// resident tags cleared plus swap-slot entries dropped. Deliberately
    /// separate from `caps_orphaned` — sweeping is the hardened membrane
    /// acting, orphaning is the swap rederivation plane refusing; the two
    /// must not alias in reports.
    pub caps_swept: u64,
    /// COW resolutions (page copies).
    pub cow_copies: u64,
}

/// A scheduled swap-device I/O failure: the `at`-th read (swap-in) or
/// write (swap-out) attempt fails, and so do the following `count - 1`
/// attempts of the same kind. Deterministic against a fixed access stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct SwapFaultSpec {
    /// 1-based swap-in attempt at which reads start failing.
    pub read_fail_at: Option<u64>,
    /// How many consecutive swap-in attempts fail (0 treated as 1).
    pub read_fail_count: u32,
    /// 1-based swap-out attempt at which writes start failing.
    pub write_fail_at: Option<u64>,
    /// How many consecutive swap-out attempts fail (0 treated as 1).
    pub write_fail_count: u32,
}

/// Swap-device injector state and counters.
#[derive(Clone, Debug, Default)]
pub struct SwapFaults {
    spec: SwapFaultSpec,
    /// Swap-in attempts observed (including failed ones).
    pub reads: u64,
    /// Swap-out attempts observed (including failed ones).
    pub writes: u64,
    /// Injected swap-in failures.
    pub read_errors: u64,
    /// Injected swap-out failures.
    pub write_errors: u64,
}

impl SwapFaults {
    fn fail_read(&mut self) -> bool {
        self.reads += 1;
        let Some(at) = self.spec.read_fail_at else {
            return false;
        };
        let n = u64::from(self.spec.read_fail_count.max(1));
        if self.reads >= at && self.reads < at + n {
            self.read_errors += 1;
            true
        } else {
            false
        }
    }

    fn fail_write(&mut self) -> bool {
        self.writes += 1;
        let Some(at) = self.spec.write_fail_at else {
            return false;
        };
        let n = u64::from(self.spec.write_fail_count.max(1));
        if self.writes >= at && self.writes < at + n {
            self.write_errors += 1;
            true
        } else {
            false
        }
    }
}

#[derive(Clone)]
struct SwapSlot {
    data: Vec<u8>,
    /// Saved capabilities, tag-free, with their in-page byte offsets — the
    /// "tag bit vector in memory / tag-free capability in swap" of Fig. 2.
    caps: Vec<(u64, Capability)>,
}

struct SharedSeg {
    frames: Vec<FrameId>,
    len: u64,
    refs: usize,
}

/// The machine-wide virtual-memory subsystem.
pub struct Vm {
    /// Tagged physical memory.
    pub phys: PhysMem,
    /// Paging statistics.
    pub stats: VmStats,
    spaces: HashMap<AsId, AddressSpace>,
    next_as: u64,
    swap: Vec<Option<SwapSlot>>,
    shared: HashMap<u64, SharedSeg>,
    next_seg: u64,
    frame_refs: HashMap<FrameId, usize>,
    swap_faults: SwapFaults,
    /// Monotone translation epoch: bumped by every operation that can
    /// change an established virtual→physical translation (map, unmap,
    /// mprotect, fork COW re-marking, COW resolution, swap in/out, space
    /// teardown, shared-segment destruction). Translation caches compare
    /// their saved epoch against [`Vm::epoch`] and self-invalidate on
    /// mismatch; see DESIGN.md "The TLB and the translation epoch".
    epoch: u64,
}

impl fmt::Debug for Vm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Vm{{spaces={}, {:?}, swap_slots={}}}",
            self.spaces.len(),
            self.phys,
            self.swap.iter().filter(|s| s.is_some()).count()
        )
    }
}

impl Vm {
    /// Creates a VM subsystem with `num_frames` physical frames.
    #[must_use]
    pub fn new(num_frames: usize) -> Vm {
        Vm {
            phys: PhysMem::new(num_frames),
            stats: VmStats::default(),
            spaces: HashMap::new(),
            next_as: 1,
            swap: Vec::new(),
            shared: HashMap::new(),
            next_seg: 1,
            frame_refs: HashMap::new(),
            swap_faults: SwapFaults::default(),
            epoch: 0,
        }
    }

    /// Arms the swap-device fault injector.
    pub fn arm_swap_faults(&mut self, spec: SwapFaultSpec) {
        self.swap_faults.spec = spec;
    }

    /// Swap-device injector state and counters.
    #[must_use]
    pub fn swap_faults(&self) -> &SwapFaults {
        &self.swap_faults
    }

    /// Current translation epoch.
    ///
    /// The epoch is bumped whenever *any* established translation may have
    /// changed. A cache that recorded `epoch()` at fill time may keep serving
    /// a translation only while `epoch()` still returns the same value.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Records that established translations may have changed. Called from
    /// every mutation path (map/unmap/protect, fork COW re-marking, COW
    /// resolution, swap in/out, teardown) — never from pure demand faults,
    /// which only add translations for pages no cache can have seen.
    fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    // ------------------------------------------------------------------
    // Address-space lifecycle
    // ------------------------------------------------------------------

    /// Creates an empty address space for `principal`.
    pub fn create_space(&mut self, principal: PrincipalId, fmt: CapFormat) -> AsId {
        let id = AsId(self.next_as);
        self.next_as += 1;
        self.spaces
            .insert(id, AddressSpace::new(id, principal, fmt));
        id
    }

    /// Read access to a space.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id — space ids are kernel-internal and their
    /// lifetime is managed by the process table.
    #[must_use]
    pub fn space(&self, id: AsId) -> &AddressSpace {
        self.spaces.get(&id).expect("unknown address space")
    }

    /// Mutable access to a space.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    pub fn space_mut(&mut self, id: AsId) -> &mut AddressSpace {
        self.spaces.get_mut(&id).expect("unknown address space")
    }

    /// Destroys a space, releasing frames, swap slots and shared-segment
    /// references.
    pub fn destroy_space(&mut self, id: AsId) {
        let Some(space) = self.spaces.remove(&id) else {
            return;
        };
        for (_, st) in space.pages {
            match st {
                PageState::Resident { frame, .. } => self.release_frame(frame),
                PageState::Swapped { slot } => self.swap[slot as usize] = None,
            }
        }
        for m in space.maps.values() {
            if let Backing::Shared { seg } = m.backing {
                self.release_seg(seg);
            }
        }
        // Frames owned by the space were released above: any translation a
        // cache still holds for this space id is now dangling.
        self.bump_epoch();
    }

    /// Clones `parent` into a new space sharing all private pages
    /// copy-on-write — the `fork` path. The child inherits the parent's
    /// principal (principals are per `execve` lineage; see DESIGN.md).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::NoSuchSpace`] for an unknown parent.
    pub fn fork_space(&mut self, parent: AsId) -> Result<AsId, VmError> {
        let id = AsId(self.next_as);
        self.next_as += 1;
        let (principal, fmt) = {
            let p = self.spaces.get(&parent).ok_or(VmError::NoSuchSpace)?;
            (p.principal, p.root.format())
        };
        let mut child = AddressSpace::new(id, principal, fmt);
        let parent_sp = self.spaces.get_mut(&parent).ok_or(VmError::NoSuchSpace)?;
        child.maps = parent_sp.maps.clone();
        child.mmap_hint = parent_sp.mmap_hint;
        child.root = parent_sp.root;
        // Decide per-page sharing.
        let mut child_pages = HashMap::new();
        let mut new_swap_slots: Vec<(u64, SwapSlot)> = Vec::new();
        for (&vpn, st) in parent_sp.pages.iter_mut() {
            let mapping_shared = {
                let va = vpn * FRAME_SIZE;
                matches!(
                    child.maps.range(..=va).next_back().map(|(_, m)| &m.backing),
                    Some(Backing::Shared { .. })
                )
            };
            match *st {
                PageState::Resident { frame, cow } => {
                    let child_cow = !mapping_shared;
                    if !mapping_shared {
                        *st = PageState::Resident { frame, cow: true };
                    }
                    child_pages.insert(
                        vpn,
                        PageState::Resident {
                            frame,
                            cow: child_cow && !mapping_shared || cow && mapping_shared,
                        },
                    );
                    *self.frame_refs.entry(frame).or_insert(1) += 1;
                }
                PageState::Swapped { slot } => {
                    new_swap_slots
                        .push((vpn, self.swap[slot as usize].clone().expect("live slot")));
                }
            }
        }
        for m in child.maps.values() {
            if let Backing::Shared { seg } = m.backing {
                if let Some(s) = self.shared.get_mut(&seg) {
                    s.refs += 1;
                }
            }
        }
        for (vpn, slot) in new_swap_slots {
            let idx = self.push_swap_slot(slot);
            child_pages.insert(vpn, PageState::Swapped { slot: idx });
        }
        child.pages = child_pages;
        self.spaces.insert(id, child);
        // Previously-writable parent pages were just re-marked COW: a cached
        // write translation for the parent would bypass the copy.
        self.bump_epoch();
        Ok(id)
    }

    // ------------------------------------------------------------------
    // Mapping management
    // ------------------------------------------------------------------

    /// Establishes a mapping. With `fixed = Some(va)` the mapping is placed
    /// exactly there and must not collide; otherwise a free region at or
    /// after the mmap hint is chosen. Returns the start address.
    ///
    /// # Errors
    ///
    /// [`VmError::BadAlignment`], [`VmError::BadRange`],
    /// [`VmError::MappingExists`] or [`VmError::OutOfMemory`].
    pub fn map(
        &mut self,
        id: AsId,
        fixed: Option<u64>,
        len: u64,
        prot: Prot,
        backing: Backing,
        label: &'static str,
    ) -> Result<u64, VmError> {
        if len == 0 {
            return Err(VmError::BadRange(0));
        }
        let len = len.div_ceil(FRAME_SIZE) * FRAME_SIZE;
        if let Backing::Shared { seg } = backing {
            if !self.shared.contains_key(&seg) {
                return Err(VmError::NoSuchSegment);
            }
        }
        let space = self.spaces.get_mut(&id).ok_or(VmError::NoSuchSpace)?;
        let start = match fixed {
            Some(va) => {
                if va % FRAME_SIZE != 0 {
                    return Err(VmError::BadAlignment(va));
                }
                if va.saturating_add(len) > USER_TOP {
                    return Err(VmError::BadRange(va));
                }
                if space.is_range_mapped(va, len) {
                    return Err(VmError::MappingExists(va));
                }
                va
            }
            None => space.find_free(len).ok_or(VmError::OutOfMemory)?,
        };
        space.maps.insert(
            start,
            Mapping {
                start,
                len,
                prot,
                backing: backing.clone(),
                label,
            },
        );
        if fixed.is_none() {
            space.mmap_hint = start + len;
        }
        if let Backing::Shared { seg } = backing {
            self.shared.get_mut(&seg).expect("checked above").refs += 1;
        }
        self.bump_epoch();
        Ok(start)
    }

    /// Removes all mappings overlapping `[start, start+len)`, splitting
    /// partially covered ones, and releases the pages in range.
    ///
    /// # Errors
    ///
    /// [`VmError::BadAlignment`] on unaligned arguments.
    pub fn unmap(&mut self, id: AsId, start: u64, len: u64) -> Result<(), VmError> {
        if !start.is_multiple_of(FRAME_SIZE) || !len.is_multiple_of(FRAME_SIZE) || len == 0 {
            return Err(VmError::BadAlignment(start));
        }
        let end = start + len;
        let space = self.spaces.get_mut(&id).ok_or(VmError::NoSuchSpace)?;
        // Split/trim overlapping mappings.
        let overlapping: Vec<u64> = space
            .maps
            .values()
            .filter(|m| m.start < end && start < m.end())
            .map(|m| m.start)
            .collect();
        let mut released_segs = Vec::new();
        for mstart in overlapping {
            let m = space.maps.remove(&mstart).expect("present");
            if let Backing::Shared { seg } = m.backing {
                released_segs.push(seg);
            }
            // Left remainder.
            if m.start < start {
                let left = Mapping {
                    start: m.start,
                    len: start - m.start,
                    prot: m.prot,
                    backing: m.backing.clone(),
                    label: m.label,
                };
                if let Backing::Shared { seg } = left.backing {
                    if let Some(s) = self.shared.get_mut(&seg) {
                        s.refs += 1;
                    }
                }
                space.maps.insert(left.start, left);
            }
            // Right remainder.
            if m.end() > end {
                let right = Mapping {
                    start: end,
                    len: m.end() - end,
                    prot: m.prot,
                    backing: match &m.backing {
                        Backing::Image { data, offset } => Backing::Image {
                            data: data.clone(),
                            offset: offset + (end - m.start),
                        },
                        other => other.clone(),
                    },
                    label: m.label,
                };
                if let Backing::Shared { seg } = right.backing {
                    if let Some(s) = self.shared.get_mut(&seg) {
                        s.refs += 1;
                    }
                }
                space.maps.insert(right.start, right);
            }
        }
        // Release pages.
        let vpns: Vec<u64> = (start / FRAME_SIZE..end / FRAME_SIZE).collect();
        let mut to_release = Vec::new();
        for vpn in vpns {
            if let Some(st) = space.pages.remove(&vpn) {
                match st {
                    PageState::Resident { frame, .. } => to_release.push(frame),
                    PageState::Swapped { slot } => self.swap[slot as usize] = None,
                }
            }
        }
        for f in to_release {
            self.release_frame(f);
        }
        for seg in released_segs {
            self.release_seg(seg);
        }
        self.bump_epoch();
        Ok(())
    }

    /// Changes the protection of all mappings fully covering
    /// `[start, start+len)`, splitting partially covered ones. Page
    /// contents and residency are untouched.
    ///
    /// # Errors
    ///
    /// [`VmError::BadAlignment`] on unaligned arguments or
    /// [`VmError::Unmapped`] if part of the range has no mapping.
    pub fn protect(&mut self, id: AsId, start: u64, len: u64, prot: Prot) -> Result<(), VmError> {
        if !start.is_multiple_of(FRAME_SIZE) || !len.is_multiple_of(FRAME_SIZE) || len == 0 {
            return Err(VmError::BadAlignment(start));
        }
        let end = start + len;
        // Verify full coverage first.
        let mut cursor = start;
        while cursor < end {
            let space = self.spaces.get(&id).ok_or(VmError::NoSuchSpace)?;
            let m = space.mapping_at(cursor).ok_or(VmError::Unmapped(cursor))?;
            cursor = m.end();
        }
        // Split at the boundaries, then retag protections. Shared-segment
        // refcount adjustments are deferred until the space borrow ends.
        let mut seg_deltas: Vec<(u64, i64)> = Vec::new();
        {
            let space = self.spaces.get_mut(&id).ok_or(VmError::NoSuchSpace)?;
            let overlapping: Vec<u64> = space
                .maps
                .values()
                .filter(|m| m.start < end && start < m.end())
                .map(|m| m.start)
                .collect();
            for mstart in overlapping {
                let m = space.maps.remove(&mstart).expect("present");
                let mut pieces = Vec::new();
                if m.start < start {
                    pieces.push((m.start, start - m.start, m.prot));
                }
                let mid_start = m.start.max(start);
                let mid_end = m.end().min(end);
                pieces.push((mid_start, mid_end - mid_start, prot));
                if m.end() > end {
                    pieces.push((end, m.end() - end, m.prot));
                }
                for (pstart, plen, pprot) in pieces {
                    let backing = match &m.backing {
                        Backing::Image { data, offset } => Backing::Image {
                            data: data.clone(),
                            offset: offset + (pstart - m.start),
                        },
                        other => other.clone(),
                    };
                    if let Backing::Shared { seg } = backing {
                        seg_deltas.push((seg, 1));
                    }
                    space.maps.insert(
                        pstart,
                        Mapping {
                            start: pstart,
                            len: plen,
                            prot: pprot,
                            backing,
                            label: m.label,
                        },
                    );
                }
                if let Backing::Shared { seg } = m.backing {
                    seg_deltas.push((seg, -1));
                }
            }
        }
        for (seg, delta) in seg_deltas {
            if delta > 0 {
                if let Some(s) = self.shared.get_mut(&seg) {
                    s.refs += 1;
                }
            } else {
                self.release_seg(seg);
            }
        }
        // A cached translation carries the access rights it was probed with;
        // revoking a right must force the next access back through the
        // protection check above.
        self.bump_epoch();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Shared segments (shmget/shmat substrate)
    // ------------------------------------------------------------------

    /// Creates a shared segment of `len` bytes (eagerly backed).
    ///
    /// # Errors
    ///
    /// [`VmError::OutOfMemory`] if frames cannot be allocated.
    pub fn create_shared_seg(&mut self, len: u64) -> Result<u64, VmError> {
        let pages = len.div_ceil(FRAME_SIZE);
        let mut frames = Vec::new();
        for _ in 0..pages {
            match self.phys.alloc_frame() {
                Some(f) => {
                    self.frame_refs.insert(f, 1);
                    frames.push(f);
                }
                None => {
                    for f in frames {
                        self.release_frame(f);
                    }
                    return Err(VmError::OutOfMemory);
                }
            }
        }
        let id = self.next_seg;
        self.next_seg += 1;
        self.shared.insert(
            id,
            SharedSeg {
                frames,
                len,
                refs: 1,
            },
        );
        Ok(id)
    }

    /// Drops the creator's reference on a segment (destroyed when the last
    /// attach goes away).
    pub fn release_seg(&mut self, seg: u64) {
        let destroy = match self.shared.get_mut(&seg) {
            Some(s) => {
                s.refs -= 1;
                s.refs == 0
            }
            None => false,
        };
        if destroy {
            let s = self.shared.remove(&seg).expect("present");
            for f in s.frames {
                self.release_frame(f);
            }
            self.bump_epoch();
        }
    }

    /// Length of a shared segment.
    ///
    /// # Errors
    ///
    /// [`VmError::NoSuchSegment`] for an unknown segment.
    pub fn seg_len(&self, seg: u64) -> Result<u64, VmError> {
        self.shared
            .get(&seg)
            .map(|s| s.len)
            .ok_or(VmError::NoSuchSegment)
    }

    // ------------------------------------------------------------------
    // Translation and demand paging
    // ------------------------------------------------------------------

    /// Non-faulting translation fast path: succeeds only when the page is
    /// already resident and the access needs no VM work at all (no demand
    /// fault, no swap-in, no COW resolution). Takes `&self`, touches no
    /// statistics and has no side effects, so callers may consult it — or a
    /// cache built on top of it — any number of times without perturbing
    /// guest-visible behaviour.
    #[must_use]
    pub fn lookup(&self, id: AsId, vaddr: u64, access: Access) -> Option<PAddr> {
        let space = self.spaces.get(&id)?;
        let mapping = space.mapping_at(vaddr)?;
        if !mapping.prot.allows(access.required_prot()) {
            return None;
        }
        match space.pages.get(&(vaddr / FRAME_SIZE)) {
            Some(&PageState::Resident { frame, cow }) if !(cow && access == Access::Write) => {
                Some(PAddr::new(frame, vaddr % FRAME_SIZE))
            }
            _ => None,
        }
    }

    /// Translates `vaddr` for `access`, faulting pages in and resolving COW
    /// as needed. Returns the physical address.
    ///
    /// # Errors
    ///
    /// [`VmError::Unmapped`], [`VmError::Protection`] or
    /// [`VmError::OutOfMemory`].
    pub fn translate(&mut self, id: AsId, vaddr: u64, access: Access) -> Result<PAddr, VmError> {
        if let Some(pa) = self.lookup(id, vaddr, access) {
            return Ok(pa);
        }
        self.translate_slow(id, vaddr, access)
    }

    /// Faulting slow path behind [`Vm::translate`]: resolves the mapping,
    /// checks protection, and performs whatever VM work the page needs.
    /// May bump the translation epoch (COW resolution, swap-in).
    fn translate_slow(&mut self, id: AsId, vaddr: u64, access: Access) -> Result<PAddr, VmError> {
        let vpn = vaddr / FRAME_SIZE;
        let off = vaddr % FRAME_SIZE;
        let space = self.spaces.get_mut(&id).ok_or(VmError::NoSuchSpace)?;
        let mapping = space.mapping_at(vaddr).ok_or(VmError::Unmapped(vaddr))?;
        if !mapping.prot.allows(access.required_prot()) {
            return Err(VmError::Protection(vaddr));
        }
        let backing = mapping.backing.clone();
        let mstart = mapping.start;
        let state = space.pages.get(&vpn).copied();
        let frame = match state {
            Some(PageState::Resident { frame, cow: false }) => frame,
            Some(PageState::Resident { frame, cow: true }) => {
                if access == Access::Write {
                    self.resolve_cow(id, vpn, frame)?
                } else {
                    frame
                }
            }
            Some(PageState::Swapped { slot }) => self.swap_in(id, vpn, slot)?,
            None => self.fault_in(id, vpn, &backing, mstart)?,
        };
        Ok(PAddr::new(frame, off))
    }

    fn alloc_frame_tracked(&mut self) -> Result<FrameId, VmError> {
        let f = self.phys.alloc_frame().ok_or(VmError::OutOfMemory)?;
        self.frame_refs.insert(f, 1);
        Ok(f)
    }

    fn release_frame(&mut self, f: FrameId) {
        let refs = self.frame_refs.get_mut(&f).expect("untracked frame");
        *refs -= 1;
        if *refs == 0 {
            self.frame_refs.remove(&f);
            self.phys.free_frame(f);
        }
    }

    fn fault_in(
        &mut self,
        id: AsId,
        vpn: u64,
        backing: &Backing,
        mstart: u64,
    ) -> Result<FrameId, VmError> {
        self.stats.faults += 1;
        let frame = match backing {
            Backing::Zero => self.alloc_frame_tracked()?,
            Backing::Image { data, offset } => {
                let frame = self.alloc_frame_tracked()?;
                let page_off_in_mapping = vpn * FRAME_SIZE - mstart;
                let src_start = (offset + page_off_in_mapping) as usize;
                if src_start < data.len() {
                    let n = (data.len() - src_start).min(FRAME_SIZE as usize);
                    let mut page = vec![0u8; FRAME_SIZE as usize];
                    page[..n].copy_from_slice(&data[src_start..src_start + n]);
                    self.phys.set_frame_data(frame, &page).expect("fresh frame");
                }
                frame
            }
            Backing::Shared { seg } => {
                let s = self.shared.get(seg).ok_or(VmError::NoSuchSegment)?;
                let idx = ((vpn * FRAME_SIZE - mstart) / FRAME_SIZE) as usize;
                let f = *s.frames.get(idx).ok_or(VmError::NoSuchSegment)?;
                *self.frame_refs.get_mut(&f).expect("seg frame tracked") += 1;
                f
            }
        };
        let cow = false;
        self.space_mut(id)
            .pages
            .insert(vpn, PageState::Resident { frame, cow });
        Ok(frame)
    }

    fn resolve_cow(&mut self, id: AsId, vpn: u64, frame: FrameId) -> Result<FrameId, VmError> {
        let refs = *self.frame_refs.get(&frame).expect("tracked");
        if refs == 1 {
            // Sole owner: just drop the COW marking.
            self.space_mut(id)
                .pages
                .insert(vpn, PageState::Resident { frame, cow: false });
            self.bump_epoch();
            return Ok(frame);
        }
        let new = self.alloc_frame_tracked()?;
        // Capability-preserving page copy: tags travel with the data.
        self.phys
            .copy_frame_with_tags(frame, new)
            .expect("both frames live");
        self.release_frame(frame);
        self.stats.cow_copies += 1;
        self.space_mut(id).pages.insert(
            vpn,
            PageState::Resident {
                frame: new,
                cow: false,
            },
        );
        // Read translations for this page still point at the old shared
        // frame; the writer must not keep reading stale data through them.
        self.bump_epoch();
        Ok(new)
    }

    // ------------------------------------------------------------------
    // Swap
    // ------------------------------------------------------------------

    fn push_swap_slot(&mut self, slot: SwapSlot) -> u64 {
        if let Some(i) = self.swap.iter().position(|s| s.is_none()) {
            self.swap[i] = Some(slot);
            i as u64
        } else {
            self.swap.push(Some(slot));
            self.swap.len() as u64 - 1
        }
    }

    /// Evicts the page containing `vaddr` to swap: the page's capabilities
    /// are scanned and recorded *untagged* alongside the data (swap does not
    /// preserve tags), then the frame is freed. Pages shared with other
    /// spaces (COW refs > 1, shared segments) are skipped.
    ///
    /// Returns `true` if the page was evicted.
    ///
    /// # Errors
    ///
    /// [`VmError::NoSuchSpace`] for an unknown space.
    pub fn swap_out(&mut self, id: AsId, vaddr: u64) -> Result<bool, VmError> {
        let vpn = vaddr / FRAME_SIZE;
        let space = self.spaces.get(&id).ok_or(VmError::NoSuchSpace)?;
        let Some(&PageState::Resident { frame, .. }) = space.pages.get(&vpn) else {
            return Ok(false);
        };
        if self.frame_refs.get(&frame).copied().unwrap_or(0) != 1 {
            return Ok(false);
        }
        if let Some(m) = space.mapping_at(vpn * FRAME_SIZE) {
            if matches!(m.backing, Backing::Shared { .. }) {
                return Ok(false);
            }
        }
        // Injected swap-device write error: nothing has been mutated yet,
        // so the page simply stays resident and the caller may retry.
        if self.swap_faults.fail_write() {
            return Err(VmError::SwapIo(vpn * FRAME_SIZE));
        }
        let data = self.phys.frame_data(frame).expect("live frame");
        let caps = self
            .phys
            .scan_caps(frame)
            .expect("live frame")
            .into_iter()
            .map(|(off, c)| (off, c.clear_tag()))
            .collect();
        let slot = self.push_swap_slot(SwapSlot { data, caps });
        self.release_frame(frame);
        self.space_mut(id)
            .pages
            .insert(vpn, PageState::Swapped { slot });
        self.stats.swap_outs += 1;
        // The frame just freed may be reused immediately; any cached
        // translation for this page is dangling.
        self.bump_epoch();
        Ok(true)
    }

    /// Evicts up to `max` private resident pages of a space; returns how
    /// many were evicted. Used by tests and by the kernel's pageout path.
    ///
    /// # Errors
    ///
    /// [`VmError::NoSuchSpace`] for an unknown space.
    pub fn swap_out_space(&mut self, id: AsId, max: usize) -> Result<usize, VmError> {
        let mut vpns: Vec<u64> = {
            let space = self.spaces.get(&id).ok_or(VmError::NoSuchSpace)?;
            space
                .pages
                .iter()
                .filter(|(_, st)| matches!(st, PageState::Resident { .. }))
                .map(|(&vpn, _)| vpn)
                .collect()
        };
        // The page table is a HashMap; evict in address order rather than
        // (seeded, per-process) iteration order so that *which* pages a
        // bounded pageout takes — and every fault count and cycle total
        // downstream of it — is identical across runs and shards.
        vpns.sort_unstable();
        let mut n = 0;
        for vpn in vpns {
            if n >= max {
                break;
            }
            match self.swap_out(id, vpn * FRAME_SIZE) {
                Ok(true) => n += 1,
                Ok(false) => {}
                // Transient swap-device write error: retry the page once,
                // then skip it — bounded pageout degrades instead of
                // failing. The skip is visible in the swap-fault counters.
                Err(VmError::SwapIo(_)) => match self.swap_out(id, vpn * FRAME_SIZE) {
                    Ok(true) => n += 1,
                    Ok(false) | Err(VmError::SwapIo(_)) => {}
                    Err(e) => return Err(e),
                },
                Err(e) => return Err(e),
            }
        }
        Ok(n)
    }

    /// Revocation sweep over space `id`: kills every capability pointing
    /// into one of `ranges` (`(base, len)` pairs — typically an
    /// allocator's quarantine list), wherever it lives. Resident pages
    /// have the hit tags cleared in place; pages sitting in swap have the
    /// hit entries dropped from the slot's saved-capability list, so
    /// swap-in cannot rederive a revoked capability later. Every kill
    /// bumps [`VmStats::caps_swept`].
    ///
    /// Returns `(capabilities swept, pages scanned)`.
    ///
    /// # Errors
    ///
    /// [`VmError::NoSuchSpace`] for an unknown space.
    pub fn revoke_ranges(
        &mut self,
        id: AsId,
        ranges: &[(u64, u64)],
    ) -> Result<(u64, u64), VmError> {
        if ranges.is_empty() {
            return Ok((0, 0));
        }
        let hit = |cap: &Capability| {
            ranges.iter().any(|&(b, l)| {
                (cap.base() as u128) < (b as u128 + l as u128) && cap.top() > b.into()
            })
        };
        let mut pages: Vec<PageState> = self
            .spaces
            .get(&id)
            .ok_or(VmError::NoSuchSpace)?
            .pages
            .values()
            .copied()
            .collect();
        // The page table is a HashMap; fix the walk order so sweep costs
        // (and any counter downstream) are identical across runs.
        pages.sort_unstable_by_key(|st| match st {
            PageState::Resident { frame, .. } => (0, u64::from(frame.0)),
            PageState::Swapped { slot } => (1, *slot),
        });
        let mut swept = 0u64;
        for st in &pages {
            match st {
                PageState::Resident { frame, .. } => {
                    let caps = self.phys.scan_caps(*frame).expect("live frame");
                    for (off, cap) in caps {
                        if hit(&cap) {
                            self.phys
                                .store_cap(PAddr::new(*frame, off), cap.clear_tag())
                                .expect("aligned by scan");
                            swept += 1;
                        }
                    }
                }
                PageState::Swapped { slot } => {
                    let s = self.swap[*slot as usize].as_mut().expect("live swap slot");
                    let before = s.caps.len();
                    s.caps.retain(|(_, cap)| !hit(cap));
                    swept += (before - s.caps.len()) as u64;
                }
            }
        }
        self.stats.caps_swept += swept;
        Ok((swept, pages.len() as u64))
    }

    fn swap_in(&mut self, id: AsId, vpn: u64, slot: u64) -> Result<FrameId, VmError> {
        // Injected swap-device read error: checked before the slot is
        // consumed or a frame allocated, so a retry re-enters this path
        // with the slot still live.
        if self.swap_faults.fail_read() {
            return Err(VmError::SwapIo(vpn * FRAME_SIZE));
        }
        self.stats.faults += 1;
        self.stats.swap_ins += 1;
        let frame = self.alloc_frame_tracked()?;
        let s = self.swap[slot as usize].take().expect("live swap slot");
        self.phys
            .set_frame_data(frame, &s.data)
            .expect("fresh frame");
        // Rederive each saved capability from the space's root: tags return
        // only for capabilities whose authority the principal actually has.
        let root = self.space(id).root;
        for (off, saved) in s.caps {
            // A capability whose owning mapping was unmapped while the page
            // sat in swap must not come back tagged: report it instead of
            // folding it into the authority-refusal count.
            if self.space(id).mapping_at(saved.base()).is_none() {
                self.stats.caps_orphaned += 1;
                continue;
            }
            match saved.rederive(&root) {
                Ok(c) => {
                    self.phys
                        .store_cap(PAddr::new(frame, off), c)
                        .expect("aligned by scan");
                    self.stats.caps_rederived += 1;
                }
                Err(_) => {
                    self.stats.caps_refused += 1;
                }
            }
        }
        self.space_mut(id)
            .pages
            .insert(vpn, PageState::Resident { frame, cow: false });
        self.bump_epoch();
        Ok(frame)
    }

    // ------------------------------------------------------------------
    // Byte / capability accessors (used by the CPU and the kernel)
    // ------------------------------------------------------------------

    /// Reads bytes, splitting the access at page boundaries.
    ///
    /// # Errors
    ///
    /// Any translation fault for a touched page.
    pub fn read_bytes(&mut self, id: AsId, vaddr: u64, buf: &mut [u8]) -> Result<(), VmError> {
        let mut done = 0usize;
        while done < buf.len() {
            let va = vaddr + done as u64;
            let in_page = (FRAME_SIZE - va % FRAME_SIZE) as usize;
            let n = in_page.min(buf.len() - done);
            let pa = self.translate(id, va, Access::Read)?;
            self.phys
                .read_bytes(pa, &mut buf[done..done + n])
                .expect("translated frame");
            done += n;
        }
        Ok(())
    }

    /// Writes bytes, splitting at page boundaries; clears tags of touched
    /// granules.
    ///
    /// # Errors
    ///
    /// Any translation fault for a touched page.
    pub fn write_bytes(&mut self, id: AsId, vaddr: u64, buf: &[u8]) -> Result<(), VmError> {
        let mut done = 0usize;
        while done < buf.len() {
            let va = vaddr + done as u64;
            let in_page = (FRAME_SIZE - va % FRAME_SIZE) as usize;
            let n = in_page.min(buf.len() - done);
            let pa = self.translate(id, va, Access::Write)?;
            self.phys
                .write_bytes(pa, &buf[done..done + n])
                .expect("translated frame");
            done += n;
        }
        Ok(())
    }

    /// Reads a little-endian u64 (need not be aligned).
    ///
    /// # Errors
    ///
    /// Any translation fault.
    pub fn read_u64(&mut self, id: AsId, vaddr: u64) -> Result<u64, VmError> {
        let mut b = [0u8; 8];
        self.read_bytes(id, vaddr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian u64.
    ///
    /// # Errors
    ///
    /// Any translation fault.
    pub fn write_u64(&mut self, id: AsId, vaddr: u64, v: u64) -> Result<(), VmError> {
        self.write_bytes(id, vaddr, &v.to_le_bytes())
    }

    /// Loads the capability at 16-byte-aligned `vaddr`; `None` when the
    /// granule's tag is clear.
    ///
    /// # Errors
    ///
    /// Any translation fault.
    pub fn load_cap(&mut self, id: AsId, vaddr: u64) -> Result<Option<Capability>, VmError> {
        let pa = self.translate(id, vaddr, Access::Read)?;
        // Every capability-width load funnels through here (CPU CLC and
        // kernel copy paths alike): let the fault plane count loads that
        // observe a still-tagged corrupted granule.
        self.phys.note_cap_load(pa);
        Ok(self.phys.load_cap(pa).expect("translated frame"))
    }

    /// Stores a capability at aligned `vaddr` (tag follows `cap.tag()`).
    ///
    /// # Errors
    ///
    /// Any translation fault.
    pub fn store_cap(&mut self, id: AsId, vaddr: u64, cap: Capability) -> Result<(), VmError> {
        let pa = self.translate(id, vaddr, Access::Write)?;
        self.phys.store_cap(pa, cap).expect("translated frame");
        Ok(())
    }

    /// Reads bytes without any side effect at all: built on [`Vm::lookup`],
    /// so it never faults a page in, never bumps the epoch, and touches no
    /// statistics. Splits at page boundaries. Returns `None` when any
    /// touched page is not resident and readable — the lockstep shadow
    /// treats that as "the fast machine must have faulted here too".
    #[must_use]
    pub fn peek_bytes(&self, id: AsId, vaddr: u64, buf: &mut [u8]) -> Option<()> {
        let mut done = 0usize;
        while done < buf.len() {
            let va = vaddr + done as u64;
            let in_page = (FRAME_SIZE - va % FRAME_SIZE) as usize;
            let n = in_page.min(buf.len() - done);
            let pa = self.lookup(id, va, Access::Read)?;
            self.phys
                .read_bytes(pa, &mut buf[done..done + n])
                .expect("resident frame");
            done += n;
        }
        Some(())
    }

    /// Loads the capability granule at aligned `vaddr` without side
    /// effects: no demand fault, no statistics, and — unlike
    /// [`Vm::load_cap`] — no capability-load note for the fault plane, so
    /// a shadow observation can never trip a fault trigger the real access
    /// would not have tripped. `None` when the page is not resident and
    /// readable; `Some(None)` when the granule's tag is clear.
    #[must_use]
    pub fn peek_cap(&self, id: AsId, vaddr: u64) -> Option<Option<Capability>> {
        let pa = self.lookup(id, vaddr, Access::Read)?;
        Some(self.phys.load_cap(pa).expect("resident frame"))
    }

    /// Creates a fresh root-capability format probe: which format spaces
    /// use is decided by the kernel at boot.
    #[must_use]
    pub fn space_format(&self, id: AsId) -> CapFormat {
        self.space(id).root.format()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_cap::{CapSource, Perms};
    use std::sync::Arc;

    fn setup() -> (Vm, AsId) {
        let mut vm = Vm::new(64);
        let id = vm.create_space(PrincipalId::from_raw(1), CapFormat::C128);
        (vm, id)
    }

    #[test]
    fn demand_zero_and_rw() {
        let (mut vm, id) = setup();
        let base = vm
            .map(id, None, 8192, Prot::rw(), Backing::Zero, "anon")
            .unwrap();
        vm.write_u64(id, base + 100, 42).unwrap();
        assert_eq!(vm.read_u64(id, base + 100).unwrap(), 42);
        assert_eq!(vm.stats.faults, 1);
        assert_eq!(vm.read_u64(id, base + 4096).unwrap(), 0);
        assert_eq!(vm.stats.faults, 2);
    }

    #[test]
    fn peeks_observe_without_perturbing() {
        let (mut vm, id) = setup();
        let base = vm
            .map(id, None, 8192, Prot::rw(), Backing::Zero, "anon")
            .unwrap();
        // Nothing resident yet: peeks refuse rather than fault in.
        let mut b = [0u8; 8];
        assert_eq!(vm.peek_bytes(id, base, &mut b), None);
        assert_eq!(vm.peek_cap(id, base), None);
        vm.write_u64(id, base + 8, 0xfeed).unwrap();
        let root = vm.space(id).root;
        vm.store_cap(id, base + 16, root).unwrap();
        let stats_before = vm.stats;
        let epoch_before = vm.epoch();
        let notes_before = vm.phys.faults().corrupt_cap_loads;
        assert!(vm.peek_bytes(id, base + 8, &mut b).is_some());
        assert_eq!(u64::from_le_bytes(b), 0xfeed);
        assert_eq!(vm.peek_cap(id, base + 16), Some(Some(root)));
        assert_eq!(vm.peek_cap(id, base + 8 * 4), Some(None), "untagged");
        // Page two is still unfaulted and the peek must not change that.
        assert_eq!(vm.peek_bytes(id, base + 4096, &mut b), None);
        assert_eq!(vm.stats, stats_before, "no VM statistics touched");
        assert_eq!(vm.epoch(), epoch_before, "no epoch bump");
        assert_eq!(
            vm.phys.faults().corrupt_cap_loads,
            notes_before,
            "no capability-load notes for the fault plane"
        );
    }

    #[test]
    fn unmapped_and_protection_faults() {
        let (mut vm, id) = setup();
        assert_eq!(vm.read_u64(id, 0x1234), Err(VmError::Unmapped(0x1234)));
        let base = vm
            .map(id, None, 4096, Prot::READ, Backing::Zero, "ro")
            .unwrap();
        assert_eq!(vm.write_u64(id, base, 1), Err(VmError::Protection(base)));
    }

    #[test]
    fn image_backing_populates_pages() {
        let (mut vm, id) = setup();
        let mut img = vec![0u8; 5000];
        img[0] = 0xaa;
        img[4999] = 0xbb;
        let base = vm
            .map(
                id,
                Some(0x10000),
                8192,
                Prot::rx(),
                Backing::Image {
                    data: Arc::new(img),
                    offset: 0,
                },
                "text",
            )
            .unwrap();
        let mut b = [0u8; 1];
        vm.read_bytes(id, base, &mut b).unwrap();
        assert_eq!(b[0], 0xaa);
        vm.read_bytes(id, base + 4999, &mut b).unwrap();
        assert_eq!(b[0], 0xbb);
        vm.read_bytes(id, base + 5001, &mut b).unwrap();
        assert_eq!(b[0], 0, "beyond template is zero");
    }

    #[test]
    fn fixed_mapping_collision_detected() {
        let (mut vm, id) = setup();
        vm.map(id, Some(0x20000), 4096, Prot::rw(), Backing::Zero, "a")
            .unwrap();
        assert_eq!(
            vm.map(id, Some(0x20000), 4096, Prot::rw(), Backing::Zero, "b"),
            Err(VmError::MappingExists(0x20000))
        );
    }

    #[test]
    fn unmap_splits_mappings() {
        let (mut vm, id) = setup();
        let base = vm
            .map(
                id,
                Some(0x30000),
                3 * 4096,
                Prot::rw(),
                Backing::Zero,
                "big",
            )
            .unwrap();
        vm.write_u64(id, base, 1).unwrap();
        vm.write_u64(id, base + 4096, 2).unwrap();
        vm.write_u64(id, base + 8192, 3).unwrap();
        vm.unmap(id, base + 4096, 4096).unwrap();
        assert_eq!(vm.read_u64(id, base).unwrap(), 1);
        assert_eq!(vm.read_u64(id, base + 8192).unwrap(), 3);
        assert_eq!(
            vm.read_u64(id, base + 4096),
            Err(VmError::Unmapped(base + 4096))
        );
    }

    #[test]
    fn cow_after_fork_preserves_tags_and_isolation() {
        let (mut vm, id) = setup();
        let base = vm
            .map(id, None, 4096, Prot::rw(), Backing::Zero, "anon")
            .unwrap();
        let space_root = vm.space(id).root;
        let cap = space_root.with_addr(base).set_bounds(64, true).unwrap();
        vm.store_cap(id, base, cap).unwrap();
        vm.write_u64(id, base + 64, 7).unwrap();

        let child = vm.fork_space(id).unwrap();
        // Child sees the capability (with its tag) and the data.
        assert_eq!(vm.load_cap(child, base).unwrap(), Some(cap));
        assert_eq!(vm.read_u64(child, base + 64).unwrap(), 7);
        // Child writes: COW copy, tags preserved on the copied page.
        vm.write_u64(child, base + 64, 8).unwrap();
        assert_eq!(vm.stats.cow_copies, 1);
        assert_eq!(
            vm.load_cap(child, base).unwrap(),
            Some(cap),
            "tag survived the copy"
        );
        // Parent unchanged.
        assert_eq!(vm.read_u64(id, base + 64).unwrap(), 7);
        assert_eq!(vm.read_u64(child, base + 64).unwrap(), 8);
    }

    #[test]
    fn swap_roundtrip_rederives_capabilities() {
        let (mut vm, id) = setup();
        let base = vm
            .map(id, None, 4096, Prot::rw(), Backing::Zero, "anon")
            .unwrap();
        let root = vm.space(id).root;
        let cap = root
            .with_addr(base)
            .set_bounds(128, true)
            .unwrap()
            .and_perms(Perms::user_data())
            .with_source(CapSource::Malloc);
        vm.store_cap(id, base + 16, cap).unwrap();
        vm.write_u64(id, base + 200, 99).unwrap();

        assert!(vm.swap_out(id, base).unwrap());
        assert_eq!(vm.stats.swap_outs, 1);
        // Touch the page: swap-in + rederivation.
        assert_eq!(vm.read_u64(id, base + 200).unwrap(), 99);
        assert_eq!(vm.stats.swap_ins, 1);
        let restored = vm.load_cap(id, base + 16).unwrap().expect("tag restored");
        assert_eq!(restored.base(), cap.base());
        assert_eq!(restored.top(), cap.top());
        assert_eq!(restored.perms(), cap.perms());
        assert_eq!(restored.addr(), cap.addr());
        assert!(restored.tag());
        assert_eq!(vm.stats.caps_rederived, 1);
    }

    #[test]
    fn swap_in_refuses_excess_authority() {
        // A capability whose perms exceed the space root (e.g. SYSTEM_REGS)
        // must NOT regain its tag at swap-in.
        let (mut vm, id) = setup();
        let base = vm
            .map(id, None, 4096, Prot::rw(), Backing::Zero, "anon")
            .unwrap();
        let kroot = Capability::root(CapFormat::C128, PrincipalId::KERNEL, CapSource::Boot);
        let evil = kroot.with_addr(base).set_bounds(64, true).unwrap(); // retains SYSTEM_REGS
        vm.store_cap(id, base, evil).unwrap();
        assert!(vm.swap_out(id, base).unwrap());
        assert_eq!(
            vm.load_cap(id, base).unwrap(),
            None,
            "tag must not be rederived"
        );
        assert_eq!(vm.stats.caps_refused, 1);
    }

    #[test]
    fn shared_segment_visible_across_spaces() {
        let mut vm = Vm::new(64);
        let a = vm.create_space(PrincipalId::from_raw(1), CapFormat::C128);
        let b = vm.create_space(PrincipalId::from_raw(2), CapFormat::C128);
        let seg = vm.create_shared_seg(4096).unwrap();
        let va = vm
            .map(a, None, 4096, Prot::rw(), Backing::Shared { seg }, "shm")
            .unwrap();
        let vb = vm
            .map(b, None, 4096, Prot::rw(), Backing::Shared { seg }, "shm")
            .unwrap();
        vm.write_u64(a, va + 8, 1234).unwrap();
        assert_eq!(vm.read_u64(b, vb + 8).unwrap(), 1234);
        // Shared pages are never swapped by the private-page path.
        assert!(!vm.swap_out(a, va).unwrap());
    }

    #[test]
    fn destroy_space_releases_frames() {
        let (mut vm, id) = setup();
        let base = vm
            .map(id, None, 8192, Prot::rw(), Backing::Zero, "anon")
            .unwrap();
        vm.write_u64(id, base, 1).unwrap();
        vm.write_u64(id, base + 4096, 1).unwrap();
        let before = vm.phys.allocated_frames();
        assert_eq!(before, 2);
        vm.destroy_space(id);
        assert_eq!(vm.phys.allocated_frames(), 0);
    }

    #[test]
    fn fork_shares_frames_until_write() {
        let (mut vm, id) = setup();
        let base = vm
            .map(id, None, 4096, Prot::rw(), Backing::Zero, "anon")
            .unwrap();
        vm.write_u64(id, base, 5).unwrap();
        let frames_before = vm.phys.allocated_frames();
        let child = vm.fork_space(id).unwrap();
        assert_eq!(vm.phys.allocated_frames(), frames_before, "no copy yet");
        assert_eq!(vm.read_u64(child, base).unwrap(), 5);
        assert_eq!(
            vm.phys.allocated_frames(),
            frames_before,
            "reads stay shared"
        );
        vm.write_u64(id, base, 6).unwrap();
        assert_eq!(
            vm.phys.allocated_frames(),
            frames_before + 1,
            "writer copied"
        );
        assert_eq!(vm.read_u64(child, base).unwrap(), 5);
    }

    #[test]
    fn epoch_bumps_on_every_mapping_mutation() {
        let (mut vm, id) = setup();
        let mut last = vm.epoch();
        let base = vm
            .map(id, None, 8192, Prot::rw(), Backing::Zero, "anon")
            .unwrap();
        assert!(vm.epoch() > last, "map must bump the epoch");
        last = vm.epoch();
        vm.write_u64(id, base, 1).unwrap();
        assert_eq!(vm.epoch(), last, "pure demand fault must not bump");
        let child = vm.fork_space(id).unwrap();
        assert!(vm.epoch() > last, "fork_space must bump the epoch");
        last = vm.epoch();
        vm.write_u64(id, base, 2).unwrap();
        assert!(vm.epoch() > last, "COW resolution must bump the epoch");
        last = vm.epoch();
        vm.protect(id, base, 4096, Prot::READ).unwrap();
        assert!(vm.epoch() > last, "protect must bump the epoch");
        last = vm.epoch();
        vm.destroy_space(child);
        assert!(vm.epoch() > last, "destroy_space must bump the epoch");
        last = vm.epoch();
        // Fault the second page in privately, then push it through a swap
        // round trip.
        vm.write_u64(id, base + 4096, 3).unwrap();
        assert_eq!(vm.epoch(), last, "pure demand fault must not bump");
        assert!(vm.swap_out(id, base + 4096).unwrap());
        assert!(vm.epoch() > last, "swap_out must bump the epoch");
        last = vm.epoch();
        assert_eq!(vm.read_u64(id, base + 4096).unwrap(), 3);
        assert!(vm.epoch() > last, "swap_in must bump the epoch");
        last = vm.epoch();
        vm.unmap(id, base + 4096, 4096).unwrap();
        assert!(vm.epoch() > last, "unmap must bump the epoch");
    }

    #[test]
    fn swap_in_reports_orphaned_caps_when_mapping_vanished() {
        let (mut vm, id) = setup();
        let holder = vm
            .map(id, Some(0x40000), 4096, Prot::rw(), Backing::Zero, "holder")
            .unwrap();
        let target = vm
            .map(id, Some(0x50000), 4096, Prot::rw(), Backing::Zero, "target")
            .unwrap();
        let root = vm.space(id).root;
        let cap = root
            .with_addr(target)
            .set_bounds(64, true)
            .unwrap()
            .and_perms(Perms::user_data())
            .with_source(CapSource::Malloc);
        vm.store_cap(id, holder + 16, cap).unwrap();
        assert!(vm.swap_out(id, holder).unwrap());
        // The mapping owning the capability's memory vanishes while the
        // holder page sits in swap.
        vm.unmap(id, target, 4096).unwrap();
        assert_eq!(
            vm.load_cap(id, holder + 16).unwrap(),
            None,
            "orphaned capability must come back untagged"
        );
        assert_eq!(vm.stats.caps_orphaned, 1, "orphan reported, not dropped");
        assert_eq!(vm.stats.caps_refused, 0);
        assert_eq!(vm.stats.caps_rederived, 0);
        assert_eq!(
            vm.stats.caps_swept, 0,
            "no sweep ran; planes must not alias"
        );
    }

    #[test]
    fn revoke_ranges_sweeps_resident_and_swapped_holders() {
        let (mut vm, id) = setup();
        let holder = vm
            .map(id, Some(0x40000), 8192, Prot::rw(), Backing::Zero, "holder")
            .unwrap();
        let target = vm
            .map(id, Some(0x50000), 4096, Prot::rw(), Backing::Zero, "target")
            .unwrap();
        let root = vm.space(id).root;
        let cap = root
            .with_addr(target)
            .set_bounds(64, true)
            .unwrap()
            .and_perms(Perms::user_data())
            .with_source(CapSource::Malloc);
        // One stale holder stays resident, one goes through swap.
        vm.store_cap(id, holder + 16, cap).unwrap();
        vm.store_cap(id, holder + 4096 + 32, cap).unwrap();
        assert!(vm.swap_out(id, holder + 4096).unwrap());
        let (swept, _) = vm.revoke_ranges(id, &[(target, 64)]).unwrap();
        assert_eq!(swept, 2, "resident tag cleared and swap entry dropped");
        assert_eq!(vm.stats.caps_swept, 2);
        assert_eq!(
            vm.load_cap(id, holder + 16).unwrap(),
            None,
            "resident stale capability is dead"
        );
        assert_eq!(
            vm.load_cap(id, holder + 4096 + 32).unwrap(),
            None,
            "swap-in must not rederive a swept capability"
        );
        // The sweep is what killed the swapped holder — not the swap
        // rederivation plane: the target mapping still exists, so without
        // the sweep this would have come back tagged.
        assert_eq!(vm.stats.caps_orphaned, 0, "swept, not orphaned");
        assert_eq!(vm.stats.caps_rederived, 0);
        // Idempotence: a second sweep finds nothing left to kill.
        let (again, _) = vm.revoke_ranges(id, &[(target, 64)]).unwrap();
        assert_eq!(again, 0);
        assert_eq!(vm.stats.caps_swept, 2);
    }

    #[test]
    fn injected_swap_read_error_is_transient_and_retryable() {
        let (mut vm, id) = setup();
        let base = vm
            .map(id, None, 4096, Prot::rw(), Backing::Zero, "anon")
            .unwrap();
        vm.write_u64(id, base + 8, 77).unwrap();
        assert!(vm.swap_out(id, base).unwrap());
        vm.arm_swap_faults(SwapFaultSpec {
            read_fail_at: Some(1),
            read_fail_count: 1,
            ..SwapFaultSpec::default()
        });
        assert_eq!(
            vm.read_u64(id, base + 8),
            Err(VmError::SwapIo(base)),
            "first swap-in attempt fails"
        );
        assert_eq!(vm.swap_faults().read_errors, 1);
        // The slot was not consumed: the retry succeeds with the data intact.
        assert_eq!(vm.read_u64(id, base + 8).unwrap(), 77);
        assert_eq!(vm.stats.swap_ins, 1);
    }

    #[test]
    fn injected_swap_write_error_degrades_bounded_pageout() {
        let (mut vm, id) = setup();
        let base = vm
            .map(id, None, 2 * 4096, Prot::rw(), Backing::Zero, "anon")
            .unwrap();
        vm.write_u64(id, base, 1).unwrap();
        vm.write_u64(id, base + 4096, 2).unwrap();
        // Two consecutive write failures: the first page fails its initial
        // attempt and its retry, so it is skipped; the second page evicts.
        vm.arm_swap_faults(SwapFaultSpec {
            write_fail_at: Some(1),
            write_fail_count: 2,
            ..SwapFaultSpec::default()
        });
        let n = vm.swap_out_space(id, 8).unwrap();
        assert_eq!(n, 1, "one page skipped, one evicted");
        assert_eq!(vm.swap_faults().write_errors, 2);
        assert_eq!(vm.read_u64(id, base).unwrap(), 1, "skipped page intact");
        assert_eq!(vm.read_u64(id, base + 4096).unwrap(), 2);
    }

    #[test]
    fn lookup_is_side_effect_free_and_matches_translate() {
        let (mut vm, id) = setup();
        let base = vm
            .map(id, None, 4096, Prot::rw(), Backing::Zero, "anon")
            .unwrap();
        // Nothing resident yet: lookup must refuse rather than fault in.
        assert_eq!(vm.lookup(id, base, Access::Read), None);
        assert_eq!(vm.stats.faults, 0);
        let pa = vm.translate(id, base + 8, Access::Write).unwrap();
        assert_eq!(vm.lookup(id, base + 8, Access::Write), Some(pa));
        // A COW page is visible to reads but not writes via the fast path.
        vm.fork_space(id).unwrap();
        let faults = vm.stats.faults;
        let cows = vm.stats.cow_copies;
        let epoch = vm.epoch();
        for _ in 0..4 {
            assert!(vm.lookup(id, base, Access::Read).is_some());
            assert_eq!(vm.lookup(id, base, Access::Write), None);
        }
        assert_eq!(vm.stats.faults, faults, "lookup must not fault");
        assert_eq!(vm.stats.cow_copies, cows, "lookup must not resolve COW");
        assert_eq!(vm.epoch(), epoch, "lookup must not bump the epoch");
    }
}
