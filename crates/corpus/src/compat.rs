//! The Table 2 taxonomy: categories of source changes required by CheriABI.

use cheri_cap::CapFault;
use cheri_cpu::TrapCause;
use std::fmt;

/// The change categories of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// PP: pointer provenance — deriving a pointer to one object from a
    /// pointer to an unrelated object, passing pointers over IPC.
    PointerProvenance,
    /// IP: integer provenance — casting pointers through integer types
    /// other than `uintptr_t` and expecting pointers back.
    IntegerProvenance,
    /// M: monotonicity — code that assumes it can grow bounds or
    /// permissions.
    Monotonicity,
    /// PS: pointer shape — size/alignment changes from 128-bit pointers.
    PointerShape,
    /// I: pointer as integer — sentinel values like `(void *)-1`.
    PointerAsInt,
    /// VA: treating pointers as virtual addresses (general).
    VirtualAddress,
    /// BF: bit flags stashed in low pointer bits.
    BitFlags,
    /// H: hashing pointer values.
    Hashing,
    /// A: pointer alignment adjustment arithmetic.
    Alignment,
    /// CC: calling convention — variadic/prototype mismatches.
    CallingConvention,
    /// U: unsupported (XOR pointer tricks, `sbrk`, ...).
    Unsupported,
}

impl Category {
    /// All categories in Table 2 column order.
    pub const ALL: [Category; 11] = [
        Category::PointerProvenance,
        Category::IntegerProvenance,
        Category::Monotonicity,
        Category::PointerShape,
        Category::PointerAsInt,
        Category::VirtualAddress,
        Category::BitFlags,
        Category::Hashing,
        Category::Alignment,
        Category::CallingConvention,
        Category::Unsupported,
    ];

    /// The column header used in the paper.
    #[must_use]
    pub fn header(self) -> &'static str {
        match self {
            Category::PointerProvenance => "PP",
            Category::IntegerProvenance => "IP",
            Category::Monotonicity => "M",
            Category::PointerShape => "PS",
            Category::PointerAsInt => "I",
            Category::VirtualAddress => "VA",
            Category::BitFlags => "BF",
            Category::Hashing => "H",
            Category::Alignment => "A",
            Category::CallingConvention => "CC",
            Category::Unsupported => "U",
        }
    }

    /// Classifies a runtime trap into the category that *typically* causes
    /// it (the dynamic half of the Table 2 analysis: "we have generally
    /// found these through debugging").
    #[must_use]
    pub fn from_trap(cause: &TrapCause) -> Option<Category> {
        match cause {
            TrapCause::Cap(CapFault::TagViolation) => Some(Category::IntegerProvenance),
            TrapCause::Cap(CapFault::LengthViolation) => Some(Category::PointerProvenance),
            TrapCause::Cap(CapFault::MonotonicityViolation) => Some(Category::Monotonicity),
            TrapCause::Cap(CapFault::UnalignedCapAccess | CapFault::UnalignedDataAccess) => {
                Some(Category::Alignment)
            }
            TrapCause::Cap(CapFault::DdcNull) => Some(Category::Unsupported),
            TrapCause::Cap(_) => Some(Category::PointerProvenance),
            _ => None,
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.header())
    }
}

/// The Table 2 row a change belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Component {
    /// "BSD headers" — shared type/layout definitions.
    Headers,
    /// "BSD libraries" — libc-like runtime code.
    Libraries,
    /// "BSD programs" — application code.
    Programs,
    /// "BSD tests" — the test programs themselves.
    Tests,
}

impl Component {
    /// All components in Table 2 row order.
    pub const ALL: [Component; 4] = [
        Component::Headers,
        Component::Libraries,
        Component::Programs,
        Component::Tests,
    ];

    /// Row label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Component::Headers => "BSD headers",
            Component::Libraries => "BSD libraries",
            Component::Programs => "BSD programs",
            Component::Tests => "BSD tests",
        }
    }
}

/// One recorded porting change.
#[derive(Clone, Debug)]
pub struct ChangeRecord {
    /// Which layer of the simulated userspace needed the change.
    pub component: Component,
    /// Its Table 2 category.
    pub category: Category,
    /// What was changed (specific to this reproduction's code base).
    pub description: &'static str,
}

/// The static inventory: every CheriABI-motivated adaptation present in
/// this reproduction's runtime and corpus, in the same taxonomy as
/// Table 2. (The paper's absolute counts cover a vastly larger code base;
/// the point reproduced here is the *distribution* across categories.)
pub static STATIC_CHANGES: &[ChangeRecord] = &[
    // --- headers / layout ---
    ChangeRecord { component: Component::Headers, category: Category::PointerShape,
        description: "kevent record layout grows to 32 bytes so udata is a 16-aligned capability" },
    ChangeRecord { component: Component::Headers, category: Category::PointerShape,
        description: "argv/envv arrays use pointer-size slots (8 vs 16 bytes)" },
    ChangeRecord { component: Component::Headers, category: Category::PointerShape,
        description: "GOT slots are capability-sized under CheriABI" },
    ChangeRecord { component: Component::Headers, category: Category::Alignment,
        description: "pointer-holding globals require 16-byte alignment" },
    ChangeRecord { component: Component::Headers, category: Category::PointerAsInt,
        description: "MAP_FAILED-style sentinels replaced by errno returns" },
    // --- libraries (libc/allocator/RTLD equivalents) ---
    ChangeRecord { component: Component::Libraries, category: Category::PointerProvenance,
        description: "qsort/array moves copy pointer elements capability-preservingly" },
    ChangeRecord { component: Component::Libraries, category: Category::PointerProvenance,
        description: "free/realloc look up the allocator's internal capability instead of trusting the caller's" },
    ChangeRecord { component: Component::Libraries, category: Category::IntegerProvenance,
        description: "pointer round-trips use int_to_ptr with an explicit provenance source" },
    ChangeRecord { component: Component::Libraries, category: Category::Monotonicity,
        description: "allocator never re-widens a returned capability; realloc rederives internally" },
    ChangeRecord { component: Component::Libraries, category: Category::PointerShape,
        description: "malloc pads to CRRL and aligns to CRAM so compressed bounds are exact" },
    ChangeRecord { component: Component::Libraries, category: Category::Alignment,
        description: "TLS blocks rounded to capability alignment" },
    ChangeRecord { component: Component::Libraries, category: Category::Alignment,
        description: "signal frames laid out at 16-byte capability alignment" },
    ChangeRecord { component: Component::Libraries, category: Category::VirtualAddress,
        description: "management interfaces export virtual addresses, never kernel capabilities" },
    ChangeRecord { component: Component::Libraries, category: Category::BitFlags,
        description: "low-bit lock flags moved out of pointer words in the hash-table library" },
    ChangeRecord { component: Component::Libraries, category: Category::Hashing,
        description: "pointer hashing uses the extracted address, not the full capability bytes" },
    ChangeRecord { component: Component::Libraries, category: Category::CallingConvention,
        description: "pointer and integer arguments travel in different register files; wrappers fixed" },
    ChangeRecord { component: Component::Libraries, category: Category::CallingConvention,
        description: "variadic-style optional syscall arguments passed explicitly" },
    ChangeRecord { component: Component::Libraries, category: Category::Unsupported,
        description: "sbrk removed from the allocation path (mmap-only heap)" },
    // --- programs (minidb, workloads) ---
    ChangeRecord { component: Component::Programs, category: Category::PointerShape,
        description: "minidb record/table layouts computed from ptr_size(), not hard-coded 8" },
    ChangeRecord { component: Component::Programs, category: Category::IntegerProvenance,
        description: "minidb stores record references as pointers, not truncated integers" },
    ChangeRecord { component: Component::Programs, category: Category::PointerProvenance,
        description: "pointer-array workloads (patricia/dijkstra) keep node links as capabilities" },
    ChangeRecord { component: Component::Programs, category: Category::CallingConvention,
        description: "workload entry points declare pointer arguments in capability registers" },
    ChangeRecord { component: Component::Programs, category: Category::Hashing,
        description: "hash-join keys derived from record keys, not record addresses" },
    // --- tests ---
    ChangeRecord { component: Component::Tests, category: Category::PointerAsInt,
        description: "corpus checks compare errno returns instead of (void *)-1 sentinels" },
    ChangeRecord { component: Component::Tests, category: Category::Alignment,
        description: "test fixtures place capability-holding buffers at 16-byte offsets" },
    ChangeRecord { component: Component::Tests, category: Category::CallingConvention,
        description: "tests call functions through correctly-typed pointer arguments" },
    ChangeRecord { component: Component::Tests, category: Category::Unsupported,
        description: "sbrk-based tests skip under both ABIs" },
];

/// Cross-tabulates records into the Table 2 grid:
/// `counts[component][category]`.
#[must_use]
pub fn tabulate(records: &[ChangeRecord]) -> Vec<(Component, Vec<(Category, usize)>)> {
    Component::ALL
        .iter()
        .map(|comp| {
            let row = Category::ALL
                .iter()
                .map(|cat| {
                    let n = records
                        .iter()
                        .filter(|r| r.component == *comp && r.category == *cat)
                        .count();
                    (*cat, n)
                })
                .collect();
            (*comp, row)
        })
        .collect()
}

/// Renders the Table 2 grid.
#[must_use]
pub fn render_table(records: &[ChangeRecord]) -> String {
    let mut out = String::from("component      ");
    for c in Category::ALL {
        out.push_str(&format!("{:>4}", c.header()));
    }
    out.push('\n');
    for (comp, row) in tabulate(records) {
        out.push_str(&format!("{:<15}", comp.label()));
        for (_, n) in row {
            out.push_str(&format!("{n:>4}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_category_and_component_represented() {
        for cat in Category::ALL {
            assert!(
                STATIC_CHANGES.iter().any(|r| r.category == cat),
                "no inventory entry for {cat}"
            );
        }
        for comp in Component::ALL {
            assert!(STATIC_CHANGES.iter().any(|r| r.component == comp));
        }
    }

    #[test]
    fn tabulation_counts_match() {
        let grid = tabulate(STATIC_CHANGES);
        let total: usize = grid
            .iter()
            .flat_map(|(_, row)| row.iter().map(|(_, n)| n))
            .sum();
        assert_eq!(total, STATIC_CHANGES.len());
    }

    #[test]
    fn trap_classification() {
        use cheri_cap::CapFault;
        use cheri_cpu::TrapCause;
        assert_eq!(
            Category::from_trap(&TrapCause::Cap(CapFault::TagViolation)),
            Some(Category::IntegerProvenance)
        );
        assert_eq!(
            Category::from_trap(&TrapCause::Cap(CapFault::UnalignedCapAccess)),
            Some(Category::Alignment)
        );
    }

    #[test]
    fn render_contains_all_headers() {
        let t = render_table(STATIC_CHANGES);
        for c in Category::ALL {
            assert!(t.contains(c.header()));
        }
        assert!(t.contains("BSD libraries"));
    }
}
