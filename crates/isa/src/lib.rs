//! # cheri-isa — instruction set, assembler and two-ABI code generation
//!
//! The CheriABI paper's machine is CHERI-MIPS: 64-bit MIPS extended with a
//! capability register file and capability instructions (§2). This crate
//! defines the simulated equivalent:
//!
//! * [`Instr`] — the instruction set: legacy MIPS-style loads/stores that go
//!   through **DDC**, capability-relative loads/stores ([`Instr::CLoad`],
//!   [`Instr::Clc`], ...), and the capability-manipulation instructions
//!   (`CSetBounds`, `CAndPerm`, `CIncOffset`, `CRRL`/`CRAM`, ...).
//! * [`Assembler`] — labels, branches and symbol management for writing
//!   guest functions.
//! * [`Object`] — a loadable "ELF shared object": code, initialised data,
//!   symbols, a GOT, and data relocations for the run-time linker.
//! * [`codegen`] — the stand-in for the CHERI C compiler: a function-builder
//!   DSL that lowers pointer operations per [`codegen::Abi`]:
//!   - **`Mips64`** — pointers are integers, memory access via DDC (the
//!     paper's legacy SysV ABI processes);
//!   - **`PureCap`** — all pointers are capabilities; taking a reference to
//!     a stack object emits bounds-setting instructions, globals are reached
//!     through a capability GOT, and pointer spills are 16 bytes wide.
//!
//!   The codegen options also model the paper's two ablations: the
//!   large-immediate `CLC` extension (§5.2: initdb overhead 11% → 6.8%) and
//!   an AddressSanitizer-style instrumentation mode used as the software
//!   baseline in Tables 1 and 3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
pub mod codegen;
mod instr;
mod object;
mod regs;

pub use asm::{Assembler, Label};
pub use instr::{Instr, Width};
pub use object::{DataReloc, GotEntry, GotTable, Object, ObjectBuilder, SymKind, Symbol, SymbolId};
pub use regs::{creg, ireg, CReg, IReg};
