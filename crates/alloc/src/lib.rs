//! # cheri-alloc — the userspace allocator (jemalloc stand-in)
//!
//! CheriBSD's `malloc` is "a lightly modified version of JEMalloc" (§4):
//! it returns capabilities **bounded to the requested allocation**, with the
//! `VMMAP` permission stripped (so heap pointers cannot be used to remap the
//! memory under the allocator) and never executable. This crate reproduces
//! that capability flow over the simulated VM:
//!
//! * arenas are grown with anonymous `mmap`-style mappings whose
//!   capabilities carry [`cheri_cap::CapSource::Syscall`] provenance;
//! * allocation sizes are padded with CRRL and aligned with CRAM so that
//!   compressed bounds are **exact** — the paper's footnote-2 requirement
//!   that "memory allocators and stack layout must pad allocation sizes";
//! * returned capabilities are retagged [`cheri_cap::CapSource::Malloc`]
//!   (the Figure 5 "malloc" series);
//! * `free`/`realloc` use the *presented* capability only to look up the
//!   allocator's internal capability, which is then discarded or rederived
//!   (§3 "Memory allocation") — a forged or out-of-bounds pointer cannot
//!   free anything;
//! * an AddressSanitizer mode adds 16-byte redzones and poisons the shadow
//!   map, the software baseline of Tables 1 and 3.
//!
//! ## The allocation ledger and the hardened membrane
//!
//! All bookkeeping lives in an explicit [`Ledger`]: the live map, the
//! per-size-class free lists, and the quarantine. Two policies sit on top:
//!
//! * **strict** (the default) recycles a freed slot immediately — the
//!   ABI-conformant behaviour every Table 1/2 golden pins;
//! * **hardened** ([`Allocator::set_hardened`]) is the deterministic-repair
//!   membrane: frees are *quarantined* instead of recycled, and when the
//!   quarantine crosses a slot- or byte-threshold a revocation sweep
//!   ([`Allocator::revoke`]) walks the whole space — resident pages *and*
//!   swap slots, via [`cheri_vm::Vm::revoke_ranges`] — killing every
//!   capability derived from a freed region before its memory can be
//!   reused. Every repair action is recorded in auditable
//!   [`AllocEvidence`] counters that the kernel drains alongside cycle
//!   charges.
//!
//! Each operation accumulates a representative cycle cost in
//! [`Allocator::take_charges`], which the kernel drains into the CPU's
//! cycle counter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cheri_cap::{CapFault, CapSource, Capability, Perms};
use cheri_vm::{AsId, Backing, Prot, Vm, VmError};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Base of the AddressSanitizer shadow region (mirrors
/// `cheri_isa::codegen::ASAN_SHADOW_BASE`; duplicated to avoid a dependency
/// cycle and checked equal in the kernel's tests).
pub const ASAN_SHADOW_BASE: u64 = 0x2000_0000_0000;

/// Allocation failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AllocError {
    /// The heap could not grow.
    OutOfMemory,
    /// `free`/`realloc` called with a pointer that is not a live allocation
    /// base (or whose capability failed validation).
    BadFree,
    /// The presented capability was untagged or sealed.
    BadCapability(CapFault),
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory => write!(f, "out of memory"),
            AllocError::BadFree => write!(f, "invalid free"),
            AllocError::BadCapability(c) => write!(f, "bad capability: {c}"),
        }
    }
}

impl Error for AllocError {}

impl From<VmError> for AllocError {
    fn from(_: VmError) -> AllocError {
        AllocError::OutOfMemory
    }
}

/// Auditable evidence counters for the hardened membrane: every
/// deterministic repair leaves a trace here, so an attack-outcome table can
/// show not just *that* an exploit died but *what the membrane did*.
/// Deterministic by construction (no wall time, no addresses), so the
/// counters ride byte-identical report lines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct AllocEvidence {
    /// Deterministic repairs performed (absorbed double-frees, realloc
    /// fallbacks, clamped re-derivations).
    pub repairs: u64,
    /// Capabilities killed by revocation sweeps.
    pub swept_caps: u64,
    /// Cumulative bytes that entered quarantine (slot sizes).
    pub quarantine_bytes: u64,
}

impl AllocEvidence {
    /// Folds another evidence block into this one.
    pub fn absorb(&mut self, other: AllocEvidence) {
        self.repairs += other.repairs;
        self.swept_caps += other.swept_caps;
        self.quarantine_bytes += other.quarantine_bytes;
    }

    /// Whether any counter is non-zero.
    #[must_use]
    pub fn any(&self) -> bool {
        self.repairs != 0 || self.swept_caps != 0 || self.quarantine_bytes != 0
    }
}

/// One live allocation in the ledger.
#[derive(Clone, Copy, Debug)]
struct LedgerEntry {
    /// The allocator's internal capability for the padded region.
    cap: Capability,
    /// The user-requested length.
    req_len: u64,
    /// Padded (representable) length.
    padded: u64,
}

/// One freed-but-not-yet-reusable region awaiting a revocation sweep.
#[derive(Clone, Copy, Debug)]
struct QuarantineEntry {
    /// User-visible base (past the left redzone in asan mode).
    user_base: u64,
    /// Padded user length — the range a sweep revokes.
    padded: u64,
    /// Slot base (including redzones), what returns to the free list.
    slot_base: u64,
    /// Slot size class (including redzones).
    slot_size: u64,
}

/// The explicit allocation ledger: every byte the allocator has carved is
/// in exactly one of these maps — live, free, or quarantined.
#[derive(Clone, Default)]
struct Ledger {
    /// Live allocations by user base address.
    live: HashMap<u64, LedgerEntry>,
    /// Free lists per size class (slot size -> slot base addresses).
    free_lists: HashMap<u64, Vec<u64>>,
    /// Freed regions held back from reuse until the next sweep.
    quarantine: Vec<QuarantineEntry>,
    /// Bytes currently in quarantine (slot sizes).
    quarantined_bytes: u64,
}

impl Ledger {
    /// Pops a reusable slot of exactly `slot_size`, if one exists.
    fn reserve(&mut self, slot_size: u64) -> Option<u64> {
        self.free_lists.get_mut(&slot_size).and_then(Vec::pop)
    }

    /// Returns a slot to its free list.
    fn release(&mut self, slot_base: u64, slot_size: u64) {
        self.free_lists
            .entry(slot_size)
            .or_default()
            .push(slot_base);
    }

    /// Moves a freed slot into quarantine.
    fn sequester(&mut self, entry: QuarantineEntry) {
        self.quarantined_bytes += entry.slot_size;
        self.quarantine.push(entry);
    }

    /// Drains the quarantine back into the free lists (post-sweep), in
    /// quarantine order. Returns how many slots were recycled.
    fn recycle_quarantine(&mut self) -> u64 {
        let recycled = self.quarantine.len() as u64;
        for q in std::mem::take(&mut self.quarantine) {
            self.release(q.slot_base, q.slot_size);
        }
        self.quarantined_bytes = 0;
        recycled
    }
}

/// Allocation statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Frees.
    pub frees: u64,
    /// Bytes currently live (padded sizes).
    pub live_bytes: u64,
    /// Arena chunks mapped.
    pub chunks: u64,
}

/// The per-process allocator state.
#[derive(Clone)]
pub struct Allocator {
    space: AsId,
    asan: bool,
    /// The allocation ledger: live map, free lists, quarantine.
    ledger: Ledger,
    /// Current bump chunk: (cap, next offset, end offset).
    chunk: Option<(Capability, u64, u64)>,
    /// Guest-requested temporal-safety mode (`RtSetTemporal`): freed
    /// regions quarantine until an explicit `RtRevoke` sweep.
    temporal: bool,
    /// Kernel-armed hardened membrane: quarantine plus *automatic* sweeps
    /// at the `SWEEP_SLOTS`/`SWEEP_BYTES` thresholds, with evidence.
    hardened: bool,
    /// Test-only: disable the quarantine so freed slots recycle
    /// immediately even in hardened mode (reuse-after-free allowed). The
    /// escape hatch the attack-table self-test demands: with it armed, at
    /// least one `Defeated` verdict must flip to `Escaped`, proving the
    /// table actually measures the membrane. No real experiment sets it.
    weaken_quarantine: bool,
    /// Evidence accumulated since the last [`Allocator::take_evidence`].
    evidence: AllocEvidence,
    /// Accumulated runtime cost not yet charged to the CPU.
    pending_cycles: u64,
    pending_instrs: u64,
    /// Statistics.
    pub stats: AllocStats,
}

impl fmt::Debug for Allocator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Allocator{{space={:?}, {:?}}}", self.space, self.stats)
    }
}

const CHUNK_SIZE: u64 = 256 * 1024;
const REDZONE: u64 = 16;
/// Hardened-mode sweep thresholds: a revocation pass runs when the
/// quarantine reaches this many slots…
const SWEEP_SLOTS: usize = 32;
/// …or this many bytes, whichever comes first. Small enough that attack
/// probes exercise the sweep, large enough that ordinary churn amortises.
const SWEEP_BYTES: u64 = 16 * 1024;

impl Allocator {
    /// Creates the allocator for address space `space`.
    #[must_use]
    pub fn new(space: AsId, asan: bool) -> Allocator {
        Allocator {
            space,
            asan,
            ledger: Ledger::default(),
            chunk: None,
            temporal: false,
            hardened: false,
            weaken_quarantine: false,
            evidence: AllocEvidence::default(),
            pending_cycles: 0,
            pending_instrs: 0,
            stats: AllocStats::default(),
        }
    }

    /// Clones this allocator's state for a forked child whose address space
    /// is a COW copy of the parent's (identical heap layout, new space id).
    /// The membrane mode travels with the ledger; pending evidence does
    /// not (the parent's syscall already drained it, and a fresh child
    /// must not double-report).
    #[must_use]
    pub fn retarget(&self, space: AsId) -> Allocator {
        let mut a = self.clone();
        a.space = space;
        a.evidence = AllocEvidence::default();
        a
    }

    /// Enables/disables temporal-safety mode (quarantine + revocation, the
    /// paper's §6 "work on a CHERI-aware temporally-safe allocator is
    /// ongoing"). CHERI provides exactly the needed infrastructure:
    /// "atomic pointer updates and the precise identification of pointers".
    pub fn set_temporal(&mut self, on: bool) {
        self.temporal = on;
    }

    /// Whether temporal-safety mode is active.
    #[must_use]
    pub fn temporal(&self) -> bool {
        self.temporal
    }

    /// Arms the hardened membrane: quarantine instead of reuse, automatic
    /// revocation sweeps at the free thresholds, evidence counters. Set by
    /// the kernel at spawn; the mode is immutable for the process's life
    /// (fork inherits it through the clone).
    pub fn set_hardened(&mut self, on: bool) {
        self.hardened = on;
    }

    /// Whether the hardened membrane is armed.
    #[must_use]
    pub fn hardened(&self) -> bool {
        self.hardened
    }

    /// Test-only: see the field documentation.
    pub fn set_weaken_quarantine(&mut self, on: bool) {
        self.weaken_quarantine = on;
    }

    /// Whether the quarantine is active for frees right now.
    fn quarantine_active(&self) -> bool {
        (self.temporal || self.hardened) && !self.weaken_quarantine
    }

    /// Records one deterministic repair (used by the kernel's syscall
    /// membrane for absorbed double-frees and clamped re-derivations).
    pub fn note_repair(&mut self) {
        self.evidence.repairs += 1;
    }

    /// Drains the evidence accumulated since the last call, for the kernel
    /// to fold into its per-run membrane block.
    pub fn take_evidence(&mut self) -> AllocEvidence {
        std::mem::take(&mut self.evidence)
    }

    /// The regions currently in quarantine, as `(base, len)` pairs.
    #[must_use]
    pub fn quarantined_ranges(&self) -> Vec<(u64, u64)> {
        self.ledger
            .quarantine
            .iter()
            .map(|q| (q.user_base, q.padded))
            .collect()
    }

    /// Revocation sweep: kills every capability in the space — resident
    /// pages *and* pages sitting in swap, via [`Vm::revoke_ranges`] —
    /// derived from a quarantined region, then returns the quarantined
    /// slots to the free lists. Returns `(capabilities revoked, regions
    /// recycled)`.
    ///
    /// This is precise revocation in the style the paper's future-work
    /// section anticipates: tags make every pointer identifiable, so a
    /// sweep can kill all stale references before memory is reused.
    ///
    /// # Errors
    ///
    /// Propagates VM failures as [`AllocError::OutOfMemory`].
    pub fn revoke(&mut self, vm: &mut Vm) -> Result<(u64, u64), AllocError> {
        if self.ledger.quarantine.is_empty() {
            return Ok((0, 0));
        }
        let ranges = self.quarantined_ranges();
        let (swept, pages) = vm
            .revoke_ranges(self.space, &ranges)
            .map_err(|_| AllocError::OutOfMemory)?;
        self.charge(pages * 50 + 100);
        self.evidence.swept_caps += swept;
        let recycled = self.ledger.recycle_quarantine();
        Ok((swept, recycled))
    }

    /// Drains the accumulated (instructions, cycles) cost of allocator work
    /// so the kernel can charge it to the CPU.
    pub fn take_charges(&mut self) -> (u64, u64) {
        let out = (self.pending_instrs, self.pending_cycles);
        self.pending_instrs = 0;
        self.pending_cycles = 0;
        out
    }

    fn charge(&mut self, instrs: u64) {
        self.pending_instrs += instrs;
        // In-order core: roughly 1.2 cycles per runtime instruction.
        self.pending_cycles += instrs + instrs / 5;
    }

    /// The padded size class for a request (CRRL plus a capability-size
    /// floor, so every slot can hold aligned capabilities).
    #[must_use]
    pub fn padded_size(&self, vm: &Vm, len: u64) -> u64 {
        let fmt = vm.space_format(self.space);
        let unit = fmt.in_memory_size().max(16);
        let len = len.max(1).div_ceil(unit) * unit;
        fmt.representable_length(len)
    }

    /// Allocates `len` bytes; returns a capability bounded to the padded
    /// request with `VMMAP` and `EXECUTE` stripped and `Malloc` provenance.
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] if the heap cannot grow.
    pub fn malloc(&mut self, vm: &mut Vm, len: u64) -> Result<Capability, AllocError> {
        self.charge(60);
        let padded = self.padded_size(vm, len);
        let with_rz = if self.asan {
            padded + 2 * REDZONE
        } else {
            padded
        };
        let base = match self.ledger.reserve(with_rz) {
            Some(b) => b,
            None => self.carve(vm, with_rz)?,
        };
        let user_base = if self.asan { base + REDZONE } else { base };
        let root = vm.space(self.space).root;
        // "We install bounds matching the requested allocation before
        // return" (§4): the capability is bounded to the *request*, not the
        // slot; only representability (CRRL) can force it wider.
        let req = len.max(1);
        let cap = root
            .with_addr(user_base)
            .set_bounds(req, true)
            .or_else(|_| {
                root.with_addr(user_base)
                    .set_bounds(vm.space_format(self.space).representable_length(req), true)
            })
            .map_err(AllocError::BadCapability)?
            .and_perms(Perms::user_data() - Perms::VMMAP)
            .with_source(CapSource::Malloc);
        self.ledger.live.insert(
            user_base,
            LedgerEntry {
                cap,
                req_len: len,
                padded,
            },
        );
        self.stats.allocs += 1;
        self.stats.live_bytes += padded;
        if self.asan {
            self.poison(vm, base, REDZONE, 0xfa)?; // left redzone
            self.unpoison_object(vm, user_base, len)?;
            self.poison(vm, user_base + padded, REDZONE, 0xfb)?; // right
            self.charge(40);
        }
        Ok(cap)
    }

    fn carve(&mut self, vm: &mut Vm, size: u64) -> Result<u64, AllocError> {
        // Align the carve point so compressed bounds of `size` are exact
        // and capability stores within the slot are aligned.
        let fmt = vm.space_format(self.space);
        let unit = fmt.in_memory_size().max(16);
        let mask = fmt.representable_alignment_mask(size) & !(unit - 1);
        loop {
            if let Some((cap, next, end)) = &mut self.chunk {
                let aligned = (*next + !mask) & mask;
                if aligned + size <= *end {
                    *next = aligned + size;
                    let base = cap.base() + aligned;
                    return Ok(base);
                }
            }
            // Grow: "each allocator maintains a set of architectural
            // capabilities to regions allocated by mmap" (§3).
            self.charge(300);
            let want = CHUNK_SIZE.max(size.next_power_of_two());
            let start = vm.map(self.space, None, want, Prot::rw(), Backing::Zero, "heap")?;
            if self.asan {
                // Real ASan keeps unallocated arena memory poisoned; fresh
                // chunks start fully poisoned and malloc unpoisons objects.
                self.poison(vm, start, want, 0xfa)?;
                self.charge(want / 256);
            }
            let root = vm.space(self.space).root;
            let chunk_cap = root
                .with_addr(start)
                .set_bounds(want, false)
                .map_err(AllocError::BadCapability)?
                .and_perms(Prot::rw().as_cap_perms())
                .with_source(CapSource::Syscall);
            self.stats.chunks += 1;
            self.chunk = Some((chunk_cap, 0, want));
        }
    }

    /// Frees an allocation. Under CheriABI the caller presents its
    /// capability: it must be tagged, unsealed, and point at the base of a
    /// live allocation; the allocator then discards its internal capability.
    ///
    /// # Errors
    ///
    /// [`AllocError::BadCapability`] for untagged/sealed capabilities,
    /// [`AllocError::BadFree`] for pointers that are not live bases.
    pub fn free(&mut self, vm: &mut Vm, user_cap: &Capability) -> Result<(), AllocError> {
        if !user_cap.tag() {
            return Err(AllocError::BadCapability(CapFault::TagViolation));
        }
        if user_cap.is_sealed() {
            return Err(AllocError::BadCapability(CapFault::SealViolation));
        }
        self.free_addr(vm, user_cap.addr())
    }

    /// Legacy-ABI free: only an address is presented.
    ///
    /// # Errors
    ///
    /// [`AllocError::BadFree`] if `addr` is not a live allocation base.
    pub fn free_addr(&mut self, vm: &mut Vm, addr: u64) -> Result<(), AllocError> {
        self.charge(40);
        let meta = self.ledger.live.remove(&addr).ok_or(AllocError::BadFree)?;
        let with_rz = if self.asan {
            meta.padded + 2 * REDZONE
        } else {
            meta.padded
        };
        let slot_base = if self.asan { addr - REDZONE } else { addr };
        if self.asan {
            self.poison(vm, addr, meta.padded, 0xfd)?; // freed-memory poison
            self.charge(20);
        }
        if self.quarantine_active() {
            // Quarantine until a revocation sweep: the slot cannot be
            // reused while stale capabilities to it may still be live.
            self.ledger.sequester(QuarantineEntry {
                user_base: addr,
                padded: meta.padded,
                slot_base,
                slot_size: with_rz,
            });
            self.evidence.quarantine_bytes += with_rz;
        } else {
            self.ledger.release(slot_base, with_rz);
        }
        self.stats.frees += 1;
        self.stats.live_bytes -= meta.padded;
        // The hardened membrane sweeps on its own once the quarantine is
        // heavy enough; temporal mode waits for an explicit RtRevoke.
        if self.hardened
            && self.quarantine_active()
            && (self.ledger.quarantine.len() >= SWEEP_SLOTS
                || self.ledger.quarantined_bytes >= SWEEP_BYTES)
        {
            self.revoke(vm)?;
        }
        Ok(())
    }

    /// Reallocates: allocates the new size, copies `min(old, new)` bytes
    /// **capability-preservingly** (16-byte granules move as tagged loads
    /// and stores), frees the old region, and returns the new capability
    /// rederived from the allocator's internal state.
    ///
    /// # Errors
    ///
    /// As for [`Allocator::malloc`] and [`Allocator::free`].
    pub fn realloc(
        &mut self,
        vm: &mut Vm,
        user_cap: &Capability,
        new_len: u64,
    ) -> Result<Capability, AllocError> {
        if !user_cap.tag() {
            return Err(AllocError::BadCapability(CapFault::TagViolation));
        }
        let old = *self
            .ledger
            .live
            .get(&user_cap.addr())
            .ok_or(AllocError::BadFree)?;
        let new_cap = self.malloc(vm, new_len)?;
        let n = old.req_len.min(new_len);
        self.charge(n / 8 + 20);
        // Tag-preserving copy, granule by granule.
        let mut off = 0;
        while off + 16 <= n {
            match vm.load_cap(self.space, old.cap.base() + off)? {
                Some(c) => vm.store_cap(self.space, new_cap.base() + off, c)?,
                None => {
                    let mut buf = [0u8; 16];
                    vm.read_bytes(self.space, old.cap.base() + off, &mut buf)?;
                    vm.write_bytes(self.space, new_cap.base() + off, &buf)?;
                }
            }
            off += 16;
        }
        if off < n {
            let mut buf = vec![0u8; (n - off) as usize];
            vm.read_bytes(self.space, old.cap.base() + off, &mut buf)?;
            vm.write_bytes(self.space, new_cap.base() + off, &buf)?;
        }
        self.free_addr(vm, old.cap.base())?;
        Ok(new_cap)
    }

    /// Looks up the live allocation containing `addr` (diagnostics).
    #[must_use]
    pub fn allocation_at(&self, addr: u64) -> Option<(u64, u64)> {
        self.ledger
            .live
            .iter()
            .find(|(base, m)| addr >= **base && addr < **base + m.padded)
            .map(|(base, m)| (*base, m.req_len))
    }

    // ---- asan shadow helpers ----

    fn poison(&mut self, vm: &mut Vm, start: u64, len: u64, val: u8) -> Result<(), AllocError> {
        let s0 = ASAN_SHADOW_BASE + start / 8;
        let s1 = ASAN_SHADOW_BASE + (start + len) / 8;
        let buf = vec![val; (s1 - s0) as usize];
        vm.write_bytes(self.space, s0, &buf)?;
        Ok(())
    }

    fn unpoison_object(&mut self, vm: &mut Vm, start: u64, len: u64) -> Result<(), AllocError> {
        debug_assert_eq!(start % 8, 0);
        let full = len / 8;
        let buf = vec![0u8; full as usize];
        vm.write_bytes(self.space, ASAN_SHADOW_BASE + start / 8, &buf)?;
        if !len.is_multiple_of(8) {
            vm.write_bytes(
                self.space,
                ASAN_SHADOW_BASE + start / 8 + full,
                &[(len % 8) as u8],
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_cap::{CapFormat, PrincipalId};

    fn setup(asan: bool) -> (Vm, Allocator) {
        let mut vm = Vm::new(1024);
        let id = vm.create_space(PrincipalId::from_raw(1), CapFormat::C128);
        if asan {
            // Kernel maps the (lazily populated) shadow region covering the
            // whole low user range for asan processes.
            vm.map(
                id,
                Some(ASAN_SHADOW_BASE),
                1 << 41,
                Prot::rw(),
                Backing::Zero,
                "shadow",
            )
            .unwrap();
        }
        (vm, Allocator::new(id, asan))
    }

    #[test]
    fn malloc_returns_bounded_unmappable_cap() {
        let (mut vm, mut a) = setup(false);
        let c = a.malloc(&mut vm, 100).unwrap();
        assert!(c.tag());
        assert_eq!(c.length(), 100, "bounds match the request exactly");
        assert!(!c.perms().contains(Perms::VMMAP));
        assert!(!c.perms().contains(Perms::EXECUTE));
        assert!(c.perms().contains(Perms::LOAD | Perms::STORE));
        assert_eq!(c.provenance().source, CapSource::Malloc);
        assert!(c.check_access(c.base() + 99, 1, Perms::LOAD).is_ok());
        assert!(c.check_access(c.base() + 100, 1, Perms::LOAD).is_err());
    }

    #[test]
    fn large_allocations_have_exact_compressed_bounds() {
        let (mut vm, mut a) = setup(false);
        for len in [100u64, 5000, 70_000, (1 << 20) + 7] {
            let c = a.malloc(&mut vm, len).unwrap();
            assert!(c.length() >= len);
            assert_eq!(c.base() % 16, 0);
            // Bounds are the request, or its CRRL rounding when the
            // compressed format cannot represent it exactly.
            assert!(c.length() <= a.padded_size(&vm, len), "len={len}");
        }
    }

    #[test]
    fn free_requires_live_base() {
        let (mut vm, mut a) = setup(false);
        let c = a.malloc(&mut vm, 64).unwrap();
        // Interior pointer is rejected.
        assert_eq!(a.free(&mut vm, &c.inc_addr(8)), Err(AllocError::BadFree));
        // Untagged pointer is rejected.
        assert_eq!(
            a.free(&mut vm, &c.clear_tag()),
            Err(AllocError::BadCapability(CapFault::TagViolation))
        );
        assert!(a.free(&mut vm, &c).is_ok());
        // Double free rejected.
        assert_eq!(a.free(&mut vm, &c), Err(AllocError::BadFree));
    }

    #[test]
    fn freed_memory_is_recycled() {
        let (mut vm, mut a) = setup(false);
        let c1 = a.malloc(&mut vm, 64).unwrap();
        let b1 = c1.base();
        a.free(&mut vm, &c1).unwrap();
        let c2 = a.malloc(&mut vm, 64).unwrap();
        assert_eq!(c2.base(), b1, "same size class reuses the slot");
    }

    #[test]
    fn realloc_preserves_data_and_tags() {
        let (mut vm, mut a) = setup(false);
        let c = a.malloc(&mut vm, 64).unwrap();
        vm.write_u64(a.space, c.base(), 0x1122).unwrap();
        let inner = a.malloc(&mut vm, 16).unwrap();
        vm.store_cap(a.space, c.base() + 16, inner).unwrap();
        let bigger = a.realloc(&mut vm, &c, 256).unwrap();
        assert_eq!(vm.read_u64(a.space, bigger.base()).unwrap(), 0x1122);
        let moved = vm.load_cap(a.space, bigger.base() + 16).unwrap();
        assert_eq!(moved, Some(inner), "capability moved with its tag");
        assert!(bigger.length() >= 256);
    }

    #[test]
    fn asan_mode_poisons_redzones() {
        let (mut vm, mut a) = setup(true);
        let space = a.space;
        let c = a.malloc(&mut vm, 24).unwrap();
        let shadow = move |vm: &mut Vm, addr: u64| {
            let mut b = [0u8; 1];
            vm.read_bytes(space, ASAN_SHADOW_BASE + addr / 8, &mut b)
                .unwrap();
            b[0]
        };
        assert_eq!(shadow(&mut vm, c.base() - 8), 0xfa, "left redzone");
        assert_eq!(shadow(&mut vm, c.base()), 0, "object valid");
        assert_eq!(shadow(&mut vm, c.base() + 32), 0xfb, "right redzone");
        a.free(&mut vm, &c).unwrap();
        assert_eq!(shadow(&mut vm, c.base()), 0xfd, "freed poison");
    }

    #[test]
    fn charges_accumulate_and_drain() {
        let (mut vm, mut a) = setup(false);
        let _ = a.malloc(&mut vm, 64).unwrap();
        let (i, c) = a.take_charges();
        assert!(i > 0 && c >= i);
        assert_eq!(a.take_charges(), (0, 0));
    }

    // ---- the hardened membrane ----

    #[test]
    fn hardened_quarantines_then_reuses_only_after_sweep() {
        let (mut vm, mut a) = setup(false);
        a.set_hardened(true);
        let c1 = a.malloc(&mut vm, 64).unwrap();
        let b1 = c1.base();
        a.free(&mut vm, &c1).unwrap();
        // Quarantined, not on a free list: the next allocation must come
        // from fresh arena memory.
        let c2 = a.malloc(&mut vm, 64).unwrap();
        assert_ne!(c2.base(), b1, "quarantine blocks reuse before a sweep");
        assert_eq!(a.quarantined_ranges(), vec![(b1, 64)]);
        // After an explicit sweep the slot is reusable again.
        a.revoke(&mut vm).unwrap();
        let c3 = a.malloc(&mut vm, 64).unwrap();
        assert_eq!(c3.base(), b1, "sweep recycles the quarantined slot");
    }

    #[test]
    fn sweep_is_idempotent() {
        let (mut vm, mut a) = setup(false);
        a.set_hardened(true);
        let holder = a.malloc(&mut vm, 32).unwrap();
        let victim = a.malloc(&mut vm, 64).unwrap();
        vm.store_cap(a.space, holder.base(), victim).unwrap();
        a.free(&mut vm, &victim).unwrap();
        let (swept, recycled) = a.revoke(&mut vm).unwrap();
        assert_eq!((swept, recycled), (1, 1), "stale holder killed once");
        let (swept2, recycled2) = a.revoke(&mut vm).unwrap();
        assert_eq!((swept2, recycled2), (0, 0), "second sweep is a no-op");
        assert_eq!(a.take_evidence().swept_caps, 1);
    }

    #[test]
    fn hardened_autosweeps_at_byte_threshold() {
        let (mut vm, mut a) = setup(false);
        a.set_hardened(true);
        let holder = a.malloc(&mut vm, 32).unwrap();
        let victim = a.malloc(&mut vm, 512).unwrap();
        vm.store_cap(a.space, holder.base(), victim).unwrap();
        a.free(&mut vm, &victim).unwrap();
        // Churn enough bytes through quarantine to cross SWEEP_BYTES; the
        // membrane must sweep on its own, killing the stale holder cap.
        for _ in 0..(SWEEP_BYTES / 512 + 1) {
            let t = a.malloc(&mut vm, 512).unwrap();
            a.free(&mut vm, &t).unwrap();
        }
        assert_eq!(
            vm.load_cap(a.space, holder.base()).unwrap(),
            None,
            "auto-sweep revoked the stale capability"
        );
        let ev = a.take_evidence();
        assert!(ev.swept_caps >= 1, "sweep evidence recorded: {ev:?}");
        assert!(ev.quarantine_bytes > SWEEP_BYTES);
        assert_eq!(ev.repairs, 0);
    }

    #[test]
    fn weaken_quarantine_allows_reuse_after_free() {
        let (mut vm, mut a) = setup(false);
        a.set_hardened(true);
        a.set_weaken_quarantine(true);
        let c1 = a.malloc(&mut vm, 64).unwrap();
        let b1 = c1.base();
        a.free(&mut vm, &c1).unwrap();
        let c2 = a.malloc(&mut vm, 64).unwrap();
        assert_eq!(c2.base(), b1, "weakened membrane recycles immediately");
        assert_eq!(a.take_evidence(), AllocEvidence::default());
    }

    #[test]
    fn temporal_mode_quarantines_without_autosweep() {
        let (mut vm, mut a) = setup(false);
        a.set_temporal(true);
        let caps: Vec<Capability> = (0..SWEEP_SLOTS as u64 + 4)
            .map(|_| a.malloc(&mut vm, 512).unwrap())
            .collect();
        for c in &caps {
            a.free(&mut vm, c).unwrap();
        }
        // Past both thresholds, yet temporal mode waits for RtRevoke.
        assert_eq!(
            a.quarantined_ranges().len(),
            caps.len(),
            "no automatic sweep outside hardened mode"
        );
        let (_, recycled) = a.revoke(&mut vm).unwrap();
        assert_eq!(recycled, caps.len() as u64);
    }

    #[test]
    fn evidence_drains_once() {
        let (mut vm, mut a) = setup(false);
        a.set_hardened(true);
        let c = a.malloc(&mut vm, 64).unwrap();
        a.free(&mut vm, &c).unwrap();
        a.note_repair();
        let ev = a.take_evidence();
        assert_eq!(ev.repairs, 1);
        assert_eq!(ev.quarantine_bytes, 64);
        assert_eq!(a.take_evidence(), AllocEvidence::default());
    }
}
