//! Regenerates the **§5.2 system-call micro-benchmarks**: per-call cycle
//! costs under both ABIs. The paper reports deltas "from 3.4% slower for
//! fork, to 9.8% faster for select" (the select win comes from the legacy
//! kernel having to construct capabilities from four integer pointer
//! arguments).

use cheri_bench::cli::{self, json_escape, json_f64};
use cheri_bench::micro_benchmarks;
use cheri_isa::codegen::CodegenOpts;
use cheri_kernel::{AbiMode, ExitStatus};
use cheriabi::harness::{CaseOutcome, CaseReport, RunSpec};
use cheriabi::spec::ProgramSpec;

fn cycles(report: &CaseReport) -> f64 {
    match &report.outcome {
        CaseOutcome::Exited(ExitStatus::Code(0)) => report.metrics.cycles as f64,
        other => panic!(
            "{}: micro-benchmark stopped abnormally: {other}",
            report.name
        ),
    }
}

fn main() {
    let opts = cli::parse_env();
    let micros = micro_benchmarks();
    // Calibrate loop overhead away by measuring two iteration counts per
    // ABI: four specs per micro-benchmark, one harness session in all.
    let mut specs = Vec::with_capacity(micros.len() * 4);
    for (name, _, iters) in &micros {
        for (label, codegen, abi) in [
            ("mips64", CodegenOpts::mips64(), AbiMode::Mips64),
            ("cheriabi", CodegenOpts::purecap(), AbiMode::CheriAbi),
        ] {
            for iter_count in [*iters / 2, *iters] {
                specs.push(RunSpec::new(
                    format!("micro-{name}-{label}-i{iter_count}"),
                    ProgramSpec::Micro {
                        kind: (*name).to_string(),
                        iters: iter_count,
                    },
                    codegen,
                    abi,
                ));
            }
        }
    }
    let Some(reports) = cli::run_specs(&cheri_bench::registry(), &specs, &opts) else {
        return;
    };
    if !opts.json {
        println!("Syscall micro-benchmarks: cycles per call");
        println!(
            "{:<10} {:>14} {:>14} {:>9}",
            "syscall", "mips64", "cheriabi", "delta"
        );
    }
    for (i, (name, _, iters)) in micros.iter().enumerate() {
        let per_call = |lo: &CaseReport, hi: &CaseReport| {
            (cycles(hi) - cycles(lo)) / (*iters - *iters / 2) as f64
        };
        let m = per_call(&reports[i * 4], &reports[i * 4 + 1]);
        let c = per_call(&reports[i * 4 + 2], &reports[i * 4 + 3]);
        let delta = (c / m - 1.0) * 100.0;
        if opts.json {
            println!(
                "{{\"experiment\":\"syscall_micro\",\"syscall\":\"{}\",\"mips64_cycles_per_call\":{},\"cheriabi_cycles_per_call\":{},\"delta_pct\":{}}}",
                json_escape(name),
                json_f64(m),
                json_f64(c),
                json_f64(delta)
            );
        } else {
            println!("{:<10} {:>14.0} {:>14.0} {:>+8.1}%", name, m, c, delta);
        }
    }
    if opts.json {
        return;
    }
    println!();
    println!(
        "Paper (§5.2): \"performance impact varies from 3.4% slower for\n\
         fork, to 9.8% faster for select\"."
    );
}
