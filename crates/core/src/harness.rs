//! The unified parallel execution harness.
//!
//! Every experiment in this reproduction — Table 1's corpus cases, Table 3's
//! case × variant × config matrix, Figure 4's multi-trial workload sweeps,
//! the cache-size sweep — boils down to the same operation: *build a guest
//! program, run it in a fresh [`System`], record what happened*. Each case
//! runs in its own isolated kernel with no shared mutable state, so the
//! whole battery is embarrassingly parallel.
//!
//! This module factors that operation out once:
//!
//! * [`RunSpec`] — one case: a program builder plus the ABI, codegen
//!   options, instruction budget, deterministic seed and (optionally) a
//!   kernel/cache configuration override;
//! * [`CaseReport`] — what happened: the outcome (exit status, load error,
//!   or isolated panic), the performance counters of the run, and wall
//!   time;
//! * [`Harness`] — the executor: fans a slice of specs across a
//!   `std::thread` worker pool sharing one atomic work index, then
//!   reassembles the reports **in submission order**, so every aggregate
//!   computed from them is bit-identical to a sequential run.
//!
//! Determinism contract: a [`RunSpec`] fully determines its
//! [`CaseReport`] (minus wall time) because each case gets a fresh
//! `Kernel`. `Harness::new(1)` and `Harness::new(n)` therefore return
//! reports that differ only in `wall`, which no aggregation consumes.

use crate::{Metrics, System};
use cheri_isa::codegen::CodegenOpts;
use cheri_kernel::{AbiMode, ExitStatus, KernelConfig, SpawnOpts};
use cheri_mem::{CacheConfig, CacheHierarchy};
use cheri_rtld::Program;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A shareable guest-program builder: codegen options plus an input seed in,
/// program out. Builders must be `Send + Sync` because specs are executed
/// from worker threads; every builder in this repository already is.
pub type BuildFn = Arc<dyn Fn(CodegenOpts, u64) -> Program + Send + Sync>;

/// Everything needed to run one case.
#[derive(Clone)]
pub struct RunSpec {
    /// Display name (used in reports and `--json` lines).
    pub name: String,
    /// Builds the guest program.
    pub build: BuildFn,
    /// Codegen options handed to the builder.
    pub opts: CodegenOpts,
    /// Process ABI to run under.
    pub abi: AbiMode,
    /// Run with the AddressSanitizer runtime (shadow region mapped,
    /// `break` = sanitizer abort).
    pub asan: bool,
    /// Per-process instruction budget (`None` = kernel default).
    pub instr_budget: Option<u64>,
    /// Deterministic input seed handed to the builder.
    pub seed: u64,
    /// Kernel configuration for the fresh kernel this case runs in.
    pub config: KernelConfig,
    /// Optional shared-L2 capacity override in bytes (the cache-sweep
    /// experiment); L1 geometry and line size stay at the paper's defaults.
    pub l2_size: Option<u64>,
}

impl fmt::Debug for RunSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunSpec")
            .field("name", &self.name)
            .field("abi", &self.abi)
            .field("asan", &self.asan)
            .field("instr_budget", &self.instr_budget)
            .field("seed", &self.seed)
            .field("l2_size", &self.l2_size)
            .finish_non_exhaustive()
    }
}

impl RunSpec {
    /// A spec with the default kernel configuration, no budget override, no
    /// sanitizer and seed 0.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        build: BuildFn,
        opts: CodegenOpts,
        abi: AbiMode,
    ) -> RunSpec {
        RunSpec {
            name: name.into(),
            build,
            opts,
            abi,
            asan: false,
            instr_budget: None,
            seed: 0,
            config: KernelConfig::default(),
            l2_size: None,
        }
    }

    /// Sets the input seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> RunSpec {
        self.seed = seed;
        self
    }

    /// Sets the instruction budget.
    #[must_use]
    pub fn with_budget(mut self, budget: u64) -> RunSpec {
        self.instr_budget = Some(budget);
        self
    }

    /// Enables the AddressSanitizer runtime.
    #[must_use]
    pub fn with_asan(mut self, asan: bool) -> RunSpec {
        self.asan = asan;
        self
    }

    /// Overrides the kernel configuration.
    #[must_use]
    pub fn with_config(mut self, config: KernelConfig) -> RunSpec {
        self.config = config;
        self
    }

    /// Overrides the shared-L2 capacity (bytes).
    #[must_use]
    pub fn with_l2_size(mut self, bytes: u64) -> RunSpec {
        self.l2_size = Some(bytes);
        self
    }
}

/// How a case concluded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CaseOutcome {
    /// The guest ran to an exit status (including faults and budget
    /// exhaustion — those are *results*, not harness errors).
    Exited(ExitStatus),
    /// The program failed to load; the error is preserved as text.
    LoadFailed(String),
    /// Building or running the case panicked; the panic is confined to the
    /// case's worker and reported here instead of killing the run.
    Panicked(String),
}

impl CaseOutcome {
    /// The exit status, if the guest actually ran.
    #[must_use]
    pub fn exit_status(&self) -> Option<ExitStatus> {
        match self {
            CaseOutcome::Exited(status) => Some(*status),
            _ => None,
        }
    }
}

impl fmt::Display for CaseOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaseOutcome::Exited(status) => write!(f, "{status:?}"),
            CaseOutcome::LoadFailed(e) => write!(f, "load failed: {e}"),
            CaseOutcome::Panicked(e) => write!(f, "panicked: {e}"),
        }
    }
}

/// The result of one executed [`RunSpec`].
#[derive(Clone, Debug)]
pub struct CaseReport {
    /// Spec name.
    pub name: String,
    /// Spec seed.
    pub seed: u64,
    /// What happened.
    pub outcome: CaseOutcome,
    /// Guest console output (empty unless the guest wrote).
    pub console: String,
    /// Counters consumed by the run (zero when the program never ran).
    pub metrics: Metrics,
    /// Host wall-clock time spent on the case (build + run). The only
    /// nondeterministic field; no aggregate consumes it.
    pub wall: Duration,
}

/// Executes one spec in a fresh kernel, confining panics to the report.
#[must_use]
pub fn execute_spec(spec: &RunSpec) -> CaseReport {
    let start = Instant::now();
    let run = catch_unwind(AssertUnwindSafe(|| {
        let program = (spec.build)(spec.opts, spec.seed);
        let mut sys = System::with_config(spec.config);
        if let Some(l2) = spec.l2_size {
            sys.kernel.cpu.caches = CacheHierarchy::new(
                CacheConfig::l1_default(),
                CacheConfig {
                    size: l2,
                    line: 64,
                    ways: 8,
                },
            );
        }
        let mut opts = SpawnOpts::new(spec.abi);
        opts.asan = spec.asan;
        opts.instr_budget = spec.instr_budget;
        sys.measure(&program, &opts)
    }));
    let wall = start.elapsed();
    let (outcome, console, metrics) = match run {
        Ok(Ok((status, console, metrics))) => (CaseOutcome::Exited(status), console, metrics),
        Ok(Err(load)) => (
            CaseOutcome::LoadFailed(load.to_string()),
            String::new(),
            Metrics::default(),
        ),
        Err(payload) => (
            CaseOutcome::Panicked(panic_message(payload.as_ref())),
            String::new(),
            Metrics::default(),
        ),
    };
    CaseReport {
        name: spec.name.clone(),
        seed: spec.seed,
        outcome,
        console,
        metrics,
        wall,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The parallel executor.
#[derive(Clone, Copy, Debug)]
pub struct Harness {
    jobs: usize,
}

impl Default for Harness {
    fn default() -> Self {
        Harness::auto()
    }
}

impl Harness {
    /// A harness running `jobs` cases concurrently (clamped to ≥ 1).
    #[must_use]
    pub fn new(jobs: usize) -> Harness {
        Harness { jobs: jobs.max(1) }
    }

    /// A harness using all available cores.
    #[must_use]
    pub fn auto() -> Harness {
        Harness::new(available_parallelism())
    }

    /// Configured worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Executes every spec and returns the reports in submission order.
    ///
    /// With one job (or one spec) this runs inline on the calling thread —
    /// the exact sequential path. Otherwise `jobs` workers pull case
    /// indices from a shared atomic counter; each case still runs in its
    /// own fresh kernel, so scheduling order cannot affect any report.
    #[must_use]
    pub fn run(&self, specs: &[RunSpec]) -> Vec<CaseReport> {
        let workers = self.jobs.min(specs.len());
        if workers <= 1 {
            return specs.iter().map(execute_spec).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<CaseReport>>> =
            specs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = specs.get(idx) else { break };
                    let report = execute_spec(spec);
                    *slots[idx].lock().expect("slot lock poisoned") = Some(report);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock poisoned")
                    .expect("every index claimed exactly once")
            })
            .collect()
    }
}

/// The number of hardware threads available to this process (≥ 1).
#[must_use]
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guest::GuestOps;
    use cheri_isa::codegen::{FnBuilder, Val};
    use cheri_rtld::ProgramBuilder;

    fn exit_with_seed_spec(name: &str, seed: u64) -> RunSpec {
        let build: BuildFn = Arc::new(|opts, seed| {
            let mut pb = ProgramBuilder::new("h");
            let mut exe = pb.object("h");
            {
                let mut f = FnBuilder::begin(&mut exe, "main", opts);
                f.li(Val(0), (seed % 64) as i64);
                f.sys_exit(Val(0));
            }
            exe.set_entry("main");
            pb.add(exe.finish());
            pb.finish()
        });
        RunSpec::new(name, build, CodegenOpts::purecap(), AbiMode::CheriAbi).with_seed(seed)
    }

    #[test]
    fn reports_come_back_in_submission_order() {
        let specs: Vec<RunSpec> = (0..24)
            .map(|i| exit_with_seed_spec(&format!("case-{i}"), i))
            .collect();
        let reports = Harness::new(8).run(&specs);
        assert_eq!(reports.len(), specs.len());
        for (i, report) in reports.iter().enumerate() {
            assert_eq!(report.name, format!("case-{i}"));
            assert_eq!(
                report.outcome,
                CaseOutcome::Exited(ExitStatus::Code(i as i64 % 64))
            );
        }
    }

    #[test]
    fn parallel_reports_match_sequential_reports() {
        let specs: Vec<RunSpec> = (0..16)
            .map(|i| exit_with_seed_spec(&format!("case-{i}"), i * 7))
            .collect();
        let seq = Harness::new(1).run(&specs);
        let par = Harness::new(8).run(&specs);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.console, b.console);
        }
    }

    #[test]
    fn a_panicking_case_is_isolated_to_its_own_report() {
        let mut specs: Vec<RunSpec> = (0..6)
            .map(|i| exit_with_seed_spec(&format!("ok-{i}"), i))
            .collect();
        let build: BuildFn = Arc::new(|_, _| panic!("builder exploded"));
        specs.insert(
            3,
            RunSpec::new("boom", build, CodegenOpts::purecap(), AbiMode::CheriAbi),
        );
        let reports = Harness::new(4).run(&specs);
        assert_eq!(reports.len(), 7);
        assert_eq!(
            reports[3].outcome,
            CaseOutcome::Panicked("builder exploded".to_string())
        );
        for (i, report) in reports.iter().enumerate() {
            if i != 3 {
                assert!(matches!(
                    report.outcome,
                    CaseOutcome::Exited(ExitStatus::Code(_))
                ));
            }
        }
    }

    #[test]
    fn load_errors_become_reports_not_panics() {
        let build: BuildFn = Arc::new(|_, _| {
            let mut pb = ProgramBuilder::new("empty");
            let mut exe = pb.object("empty");
            exe.set_entry("missing");
            pb.add(exe.finish());
            pb.finish()
        });
        let spec = RunSpec::new("no-entry", build, CodegenOpts::purecap(), AbiMode::CheriAbi);
        let report = execute_spec(&spec);
        assert!(
            matches!(report.outcome, CaseOutcome::LoadFailed(_)),
            "got {:?}",
            report.outcome
        );
    }
}
