//! # cheri-sem — the shared architectural step semantics
//!
//! The per-instruction semantics of the simulated CHERI-MIPS core, as a
//! *pure* layer: every handler in [`ops`] is generic over a minimal
//! [`MemoryPort`]/[`TrapPort`] surface and depends only on the capability
//! algebra (`cheri-cap`) and the instruction set (`cheri-isa`). Two
//! machines consume it:
//!
//! * the superblock fast path in `cheri-cpu`, which plugs in its TLB,
//!   decode-once regions and batched cache-event ring behind the port
//!   traits; and
//! * the deliberately simple reference interpreter (also in `cheri-cpu`),
//!   which plugs in direct VM walks and exact cache accounting — no TLB,
//!   no regions, no re-entry cache, no event batching.
//!
//! Because both machines execute the *same* handler bodies, any observable
//! difference between them is a bug in the machinery around the semantics,
//! not in the semantics themselves — exactly the property the `--oracle`
//! harness mode checks (see DESIGN.md, "The oracle plane").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod effects;
pub mod ops;
mod regfile;

pub use effects::{eff, RegEffects, RegSet};
pub use regfile::RegFile;

use cheri_cap::{CapFault, Capability, Perms};
use cheri_isa::Width;

/// Why a step left the run loop (the architectural exits; traps travel as
/// the port's fault type instead).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SemExit {
    /// The guest executed `syscall`; `rf.pc` already points at the next
    /// instruction, the syscall number is in `$v0`.
    Syscall,
    /// The guest executed `break` (abort / sanitizer trap); `rf.pc` still
    /// points at the `break` itself.
    Break,
}

/// What one instruction produces: `Ok(None)` to continue, `Ok(Some(exit))`
/// to leave the run loop, `Err(fault)` on a trap (with `rf.pc` still at
/// the faulting instruction).
pub type OpResult<F> = Result<Option<SemExit>, F>;

/// Per-instruction execution context handed to op handlers: the register
/// file, the instruction's own `pc`, the fall-through successor in `next`
/// (handlers overwrite it to branch), and the enclosing code region's
/// start for resolving static branch targets.
pub struct StepCtx<'a> {
    /// Architectural register file.
    pub rf: &'a mut RegFile,
    /// Address of the executing instruction.
    pub pc: u64,
    /// Successor address; `pc + 4` unless a handler branches.
    pub next: u64,
    /// Start address of the enclosing code region.
    pub rstart: u64,
}

/// Trap construction and accounting: the non-memory half of what a machine
/// lends the step semantics.
pub trait TrapPort {
    /// The machine's trap representation (e.g. `TrapInfo` in `cheri-cpu`).
    type Fault;

    /// Builds the machine's fault value for a failed capability check at
    /// `pc`, optionally naming the data address involved.
    fn cap_fault(&mut self, pc: u64, fault: CapFault, vaddr: Option<u64>) -> Self::Fault;

    /// Charges extra cycles (legacy unaligned-access fix-up cost).
    fn charge_cycles(&mut self, _cycles: u64) {}

    /// Counts one retired `syscall` instruction.
    fn count_syscall(&mut self) {}

    /// Records a bounds/permission-deriving instruction retiring (the
    /// Figure 5 derivation trace).
    fn record_derivation(&mut self, _cap: &Capability) {}

    /// Test-only semantic weakening: when true, `csetbounds` (register
    /// form) skips the monotonicity check. Exists solely so the oracle
    /// self-test can prove divergences are detected; every real machine
    /// except the deliberately weakened fast path returns false.
    fn weaken_sem(&self) -> bool {
        false
    }
}

/// The memory surface a machine lends the step semantics. All addresses
/// are virtual; implementations perform translation, cache-event
/// accounting and the actual byte/granule transfer. Capability checks
/// (bounds, permissions, alignment) stay on the semantics side.
pub trait MemoryPort: TrapPort {
    /// Reads `size` bytes at `vaddr`, little-endian into the low bytes of
    /// the result. No capability checks; `pc` is for fault attribution.
    ///
    /// # Errors
    ///
    /// Translation or access failure, as the machine's fault type.
    fn read_raw(&mut self, vaddr: u64, size: u64, pc: u64) -> Result<u64, Self::Fault>;

    /// Writes the low `size` bytes of `value` at `vaddr`, little-endian.
    ///
    /// # Errors
    ///
    /// Translation or access failure, as the machine's fault type.
    fn write_raw(&mut self, vaddr: u64, size: u64, value: u64, pc: u64) -> Result<(), Self::Fault>;

    /// Reads one capability granule at `vaddr` (already alignment- and
    /// bounds-checked): `Some` if the granule holds a tagged capability,
    /// `None` if it holds plain data.
    ///
    /// # Errors
    ///
    /// Translation or access failure, as the machine's fault type.
    fn read_granule(&mut self, vaddr: u64, pc: u64) -> Result<Option<Capability>, Self::Fault>;

    /// Stores `value` into the capability granule at `vaddr` (already
    /// alignment-, bounds- and store-permission-checked).
    ///
    /// # Errors
    ///
    /// Translation or access failure, as the machine's fault type.
    fn write_granule(&mut self, vaddr: u64, value: Capability, pc: u64) -> Result<(), Self::Fault>;
}

/// Checked data read: alignment (when required), `LOAD` bounds/permission
/// check against `cap`, raw read, sign extension.
///
/// # Errors
///
/// Capability faults from the checks, or the port's translation/access
/// fault.
pub fn data_read<P: MemoryPort>(
    p: &mut P,
    cap: &Capability,
    vaddr: u64,
    w: Width,
    signed: bool,
    aligned_required: bool,
    pc: u64,
) -> Result<u64, P::Fault> {
    let size = w.bytes();
    if aligned_required && !vaddr.is_multiple_of(size) {
        return Err(p.cap_fault(pc, CapFault::UnalignedDataAccess, Some(vaddr)));
    }
    cap.check_access(vaddr, size, Perms::LOAD)
        .map_err(|f| p.cap_fault(pc, f, Some(vaddr)))?;
    let raw = p.read_raw(vaddr, size, pc)?;
    Ok(if signed {
        match w {
            Width::B => raw as u8 as i8 as i64 as u64,
            Width::H => raw as u16 as i16 as i64 as u64,
            Width::W => raw as u32 as i32 as i64 as u64,
            Width::D => raw,
        }
    } else {
        raw
    })
}

/// Checked data write: alignment (when required), `STORE` bounds/permission
/// check against `cap`, raw write.
///
/// # Errors
///
/// Capability faults from the checks, or the port's translation/access
/// fault.
pub fn data_write<P: MemoryPort>(
    p: &mut P,
    cap: &Capability,
    vaddr: u64,
    w: Width,
    value: u64,
    aligned_required: bool,
    pc: u64,
) -> Result<(), P::Fault> {
    let size = w.bytes();
    if aligned_required && !vaddr.is_multiple_of(size) {
        return Err(p.cap_fault(pc, CapFault::UnalignedDataAccess, Some(vaddr)));
    }
    cap.check_access(vaddr, size, Perms::STORE)
        .map_err(|f| p.cap_fault(pc, f, Some(vaddr)))?;
    p.write_raw(vaddr, size, value, pc)
}

/// The authorizing capability for a legacy (non-capability) access: DDC,
/// which is NULL under CheriABI so every legacy access traps.
///
/// # Errors
///
/// [`CapFault::DdcNull`] (as the port's fault type) when DDC is untagged.
pub fn legacy_cap<P: TrapPort>(p: &mut P, rf: &RegFile, pc: u64) -> Result<Capability, P::Fault> {
    if !rf.ddc.tag() {
        Err(p.cap_fault(pc, CapFault::DdcNull, None))
    } else {
        Ok(rf.ddc)
    }
}
