//! `execve`: process creation and the Figure 1 startup protocol.
//!
//! "When a process address space is replaced by execve, the kernel
//! establishes new memory mappings ... It subdivides the previously created
//! userspace capability into one for each mapped object (text, data, stack,
//! arguments, etc)." — §3. For CheriABI processes, every pointer installed
//! into the initial stack (argv/envv entries, the argument arrays
//! themselves) is a bounded capability, and registers receive the code,
//! stack and argument capabilities; DDC is NULL. Legacy processes get the
//! same layout with integer pointers and an address-space-wide DDC.

use crate::abi::AbiMode;
use crate::kernel::Kernel;
use crate::process::{FileDesc, Pid, ProcState, Process};
use cheri_alloc::Allocator;
use cheri_cap::{CapSource, Capability, Perms};
use cheri_cpu::{DecodedRegion, RegFile};
use cheri_isa::{creg, ireg, Instr};
use cheri_rtld::{LoadError, Program};
use cheri_vm::{Backing, Prot, VmError};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Base address of the signal-return trampoline page ("a read-only shared
/// page mapped by execve", §4).
pub const TRAMPOLINE_BASE: u64 = 0x8000;

/// Options for [`Kernel::spawn`].
#[derive(Clone, Debug)]
pub struct SpawnOpts {
    /// Process ABI.
    pub abi: AbiMode,
    /// Command-line arguments (argv[0] is conventionally the program name).
    pub args: Vec<String>,
    /// Environment strings (`KEY=value`).
    pub env: Vec<String>,
    /// Whether the binary was built with sanitizer instrumentation (maps
    /// the shadow region and interprets `break` as a sanitizer abort).
    pub asan: bool,
    /// Stack size in bytes.
    pub stack_size: u64,
    /// Per-process instruction budget (`None` = kernel default).
    pub instr_budget: Option<u64>,
    /// Arms the hardened membrane on the process's allocator: frees
    /// quarantine instead of recycling, revocation sweeps run at the free
    /// thresholds, and kernel-side denials become deterministic repairs
    /// with evidence counters. Strict (`false`) is the paper's baseline.
    pub hardened: bool,
    /// Test-only: disables the hardened quarantine (reuse-after-free
    /// allowed) so the attack table can prove it measures the membrane.
    pub weaken_quarantine: bool,
}

impl SpawnOpts {
    /// Defaults for the given ABI.
    #[must_use]
    pub fn new(abi: AbiMode) -> SpawnOpts {
        SpawnOpts {
            abi,
            args: vec!["prog".to_string()],
            env: Vec::new(),
            asan: false,
            stack_size: 1 << 20,
            instr_budget: None,
            hardened: false,
            weaken_quarantine: false,
        }
    }
}

impl Kernel {
    /// Creates a process running `program` — the `execve` path.
    ///
    /// # Errors
    ///
    /// Propagates linker failures ([`LoadError`]).
    pub fn spawn(&mut self, program: &Program, opts: &SpawnOpts) -> Result<Pid, LoadError> {
        self.stats.spawns += 1;
        // Fresh principal per address-space creation (§3).
        let principal = self.principals.fresh();
        let space = self.vm.create_space(principal, self.config.cap_fmt);
        let root = self.vm.space(space).root;
        let fmt = self.config.cap_fmt;
        let ptr_size = match opts.abi {
            AbiMode::CheriAbi => fmt.in_memory_size(),
            AbiMode::Mips64 => 8,
        };

        // Trampoline page: `li v0, SIGRETURN; syscall`, mapped read-only
        // executable below the text cursor.
        let tramp_code = vec![
            Instr::Li {
                rd: ireg::V0,
                imm: crate::abi::Sys::Sigreturn as i64,
            },
            Instr::Syscall,
        ];
        let tramp_bytes: Vec<u8> = (0..tramp_code.len() as u32)
            .flat_map(u32::to_le_bytes)
            .collect();
        self.vm.map(
            space,
            Some(TRAMPOLINE_BASE),
            4096,
            Prot::rx(),
            Backing::Image {
                data: Arc::new(tramp_bytes),
                offset: 0,
            },
            "trampoline",
        )?;
        self.cpu
            .register_region(space, DecodedRegion::decode(TRAMPOLINE_BASE, &tramp_code));

        // Load objects, GOT, TLS (text/data mappings + derivations).
        let trace = &mut self.cpu.trace;
        let loaded = cheri_rtld::load(
            &mut self.vm,
            space,
            program,
            opts.abi.codegen_abi(),
            ptr_size,
            |c| trace.record(c),
        )?;
        for obj in &loaded.objects {
            self.cpu
                .register_region(space, DecodedRegion::decode(obj.text_base, &obj.code));
        }
        let (li, lc) = loaded.startup_cost;
        self.cpu.charge(li, lc);

        // Sanitizer shadow region.
        if opts.asan {
            self.vm.map(
                space,
                Some(cheri_isa::codegen::ASAN_SHADOW_BASE),
                1 << 41,
                Prot::rw(),
                Backing::Zero,
                "shadow",
            )?;
        }

        // Stack.
        let stack_top = 0x7fff_f000u64;
        let stack_size = opts.stack_size.div_ceil(4096) * 4096;
        let stack_base = stack_top - stack_size;
        self.vm.map(
            space,
            Some(stack_base),
            stack_size,
            Prot::rw(),
            Backing::Zero,
            "stack",
        )?;

        // ---- Figure 1: arguments, environment, aux arrays ----
        let mut cursor = stack_top;
        // Stack writes are fallible (a fault-injected swap error can reach
        // even the exec path): failures surface as LoadError, not panics.
        let mut place_str = |vm: &mut cheri_vm::Vm, s: &str| -> Result<u64, LoadError> {
            let bytes = s.as_bytes();
            cursor -= bytes.len() as u64 + 1;
            vm.write_bytes(space, cursor, bytes)?;
            vm.write_bytes(space, cursor + bytes.len() as u64, &[0])?;
            Ok(cursor)
        };
        let arg_addrs: Vec<(u64, u64)> = opts
            .args
            .iter()
            .map(|a| Ok((place_str(&mut self.vm, a)?, a.len() as u64 + 1)))
            .collect::<Result<_, LoadError>>()?;
        let env_addrs: Vec<(u64, u64)> = opts
            .env
            .iter()
            .map(|e| Ok((place_str(&mut self.vm, e)?, e.len() as u64 + 1)))
            .collect::<Result<_, LoadError>>()?;
        cursor &= !15; // align for the pointer arrays

        // envv[] then argv[] (each NULL-terminated), pointers as bounded
        // capabilities under CheriABI.
        let mut write_ptr_array = |vm: &mut cheri_vm::Vm,
                                   trace: &mut cheri_cpu::DerivationTrace,
                                   addrs: &[(u64, u64)]|
         -> Result<u64, LoadError> {
            let slots = addrs.len() as u64 + 1;
            cursor -= slots * ptr_size;
            cursor &= !(ptr_size - 1);
            let base = cursor;
            for (i, (addr, len)) in addrs.iter().enumerate() {
                let slot = base + i as u64 * ptr_size;
                match opts.abi {
                    AbiMode::CheriAbi => {
                        let cap = root
                            .with_addr(*addr)
                            .set_bounds(*len, false)
                            .map_err(|_| LoadError::Vm(VmError::BadRange(*addr)))?
                            .and_perms(Perms::user_data() - Perms::VMMAP)
                            .with_source(CapSource::Exec);
                        trace.record(&cap);
                        vm.store_cap(space, slot, cap)?;
                    }
                    AbiMode::Mips64 => {
                        vm.write_u64(space, slot, *addr)?;
                    }
                }
            }
            // NULL terminator is already zero (demand-zero stack).
            Ok(base)
        };
        let envv_base = write_ptr_array(&mut self.vm, &mut self.cpu.trace, &env_addrs)?;
        let argv_base = write_ptr_array(&mut self.vm, &mut self.cpu.trace, &arg_addrs)?;
        let _ = envv_base;

        // Register state.
        let mut regs = RegFile::new(fmt);
        regs.pcc = loaded.entry_pcc;
        regs.pc = loaded.entry_pc;
        self.cpu.trace.record(&regs.pcc);
        regs.w(ireg::A0, opts.args.len() as u64);
        let sp = (argv_base - 64) & !(ptr_size.max(16) - 1);
        match opts.abi {
            AbiMode::CheriAbi => {
                // DDC = NULL: "eliminating legacy MIPS loads and stores".
                regs.ddc = Capability::null(fmt);
                let stack_cap = root
                    .with_addr(stack_base)
                    .set_bounds(stack_size, false)
                    .map_err(|_| LoadError::Vm(VmError::BadRange(stack_base)))?
                    .and_perms(Perms::user_data() - Perms::VMMAP)
                    .with_addr(sp)
                    .with_source(CapSource::Stack);
                self.cpu.trace.record(&stack_cap);
                regs.wc(creg::CSP, stack_cap);
                let argv_cap = root
                    .with_addr(argv_base)
                    .set_bounds((arg_addrs.len() as u64 + 1) * ptr_size, false)
                    .map_err(|_| LoadError::Vm(VmError::BadRange(argv_base)))?
                    .and_perms(Perms::user_data() - Perms::VMMAP)
                    .with_source(CapSource::Exec);
                self.cpu.trace.record(&argv_cap);
                regs.wc(creg::arg(1), argv_cap);
                regs.wc(creg::CGP, loaded.got_cap);
                if let Some(tls) = loaded
                    .objects
                    .iter()
                    .find_map(|o| loaded.tls_caps.get(&o.name))
                {
                    regs.wc(creg::CTLS, *tls);
                }
            }
            AbiMode::Mips64 => {
                regs.ddc = root.with_source(CapSource::Exec);
                // Legacy PCC spans the space (checked only by the MMU).
                regs.pcc = root
                    .with_addr(loaded.entry_pc)
                    .and_perms(Perms::user_code());
                regs.w(ireg::SP, sp);
                regs.w(ireg::A1, argv_base);
                regs.w(ireg::GP, loaded.got_cap.addr());
            }
        }

        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let process = Process {
            pid,
            parent: None,
            abi: opts.abi,
            space,
            principal,
            regs,
            state: ProcState::Runnable,
            allocator: {
                let mut a = Allocator::new(space, opts.asan);
                a.set_hardened(opts.hardened);
                a.set_weaken_quarantine(opts.weaken_quarantine);
                a
            },
            fds: vec![
                Some(FileDesc::Console),
                Some(FileDesc::Console),
                Some(FileDesc::Console),
            ],
            sighandlers: HashMap::new(),
            pending_signals: VecDeque::new(),
            signal_frames: Vec::new(),
            console: Vec::new(),
            loaded,
            trampoline_pc: TRAMPOLINE_BASE,
            kq: Vec::new(),
            children: Vec::new(),
            zombies: Vec::new(),
            traced_by: None,
            swap_retry: None,
            instr_budget: opts
                .instr_budget
                .unwrap_or(self.config.default_instr_budget),
            cycles: 0,
            asan: opts.asan,
            stack_top,
            stack_size,
        };
        self.procs.insert(pid, process);
        self.runq.push_back(pid);
        Ok(pid)
    }

    /// Convenience: spawns `program`, runs the scheduler until it exits,
    /// and returns its exit status and console output.
    ///
    /// # Errors
    ///
    /// Propagates spawn failures; a run that exhausts the global budget
    /// reports [`crate::process::ExitStatus::BudgetExhausted`].
    pub fn run_program(
        &mut self,
        program: &Program,
        opts: &SpawnOpts,
    ) -> Result<(crate::process::ExitStatus, String), LoadError> {
        let pid = self.spawn(program, opts)?;
        let budget = self.process(pid).instr_budget;
        self.run(budget);
        let status = self
            .exit_status(pid)
            .unwrap_or(crate::process::ExitStatus::BudgetExhausted);
        let console = self.process(pid).console_string();
        Ok((status, console))
    }
}
