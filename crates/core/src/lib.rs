//! # cheriabi — the public facade of the CheriABI reproduction
//!
//! This crate ties the substrate crates together into the system the paper
//! describes and evaluates:
//!
//! * [`System`] — a booted machine: CPU + VM + CheriBSD-like kernel,
//!   running guest programs under the legacy **mips64** ABI or under
//!   **CheriABI** (every pointer a capability, DDC = NULL);
//! * [`guest`] — ergonomic helpers for writing guest programs against the
//!   simulated libc/syscall surface;
//! * [`trace`] — the §5.5 abstract-capability reconstruction: turning the
//!   CPU's derivation trace into Figure 5's cumulative
//!   capability-count-vs-bounds-size distribution, per source;
//! * [`verify`] — the abstract-capability invariant checker: every tagged
//!   capability reachable by a process (registers and private memory) must
//!   belong to that process's principal (DESIGN.md invariant I4);
//! * [`fault`] — the seeded, deterministic fault-injection plane:
//!   physical-memory bit-flips, swap-device I/O errors and transient
//!   syscall errors, armed per-case so corruption provably lands as a
//!   clean capability fault, never a host panic.
//!
//! ```
//! use cheriabi::{System, guest::GuestOps};
//! use cheriabi::{AbiMode, ExitStatus, SpawnOpts};
//! use cheri_isa::codegen::{CodegenOpts, FnBuilder, Val};
//! use cheri_rtld::ProgramBuilder;
//!
//! let mut pb = ProgramBuilder::new("answer");
//! let mut exe = pb.object("answer");
//! {
//!     let mut f = FnBuilder::begin(&mut exe, "main", CodegenOpts::purecap());
//!     f.li(Val(0), 42);
//!     f.sys_exit(Val(0));
//! }
//! exe.set_entry("main");
//! pb.add(exe.finish());
//! let program = pb.finish();
//!
//! let mut sys = System::new();
//! let (status, _console) = sys
//!     .kernel
//!     .run_program(&program, &SpawnOpts::new(AbiMode::CheriAbi))
//!     .unwrap();
//! assert_eq!(status, ExitStatus::Code(42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod debug;
pub mod fault;
pub mod fleet;
pub mod guest;
pub mod harness;
pub mod json;
pub mod spec;
pub mod trace;
pub mod verify;

use cheri_kernel::{Kernel, KernelConfig};

pub use cheri_cap::{CapFault, CapFormat, CapSource, Capability, Perms, PrincipalId};
pub use cheri_cpu::{CpuStats, TrapCause};
pub use cheri_kernel::{
    AbiMode, Errno, ExitStatus, Pid, PtraceOp, RunOutcome, SpawnOpts, Sys, SIGPROT,
};
pub use cheri_mem::MemStats;
pub use cheri_rtld::{Program, ProgramBuilder};

/// Metrics snapshot for one measured run (the Figure 4 quantities).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Metrics {
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles (pipeline + memory stalls + kernel charges).
    pub cycles: u64,
    /// L2 cache misses.
    pub l2_misses: u64,
    /// Syscalls performed.
    pub syscalls: u64,
}

impl Metrics {
    /// Ratio of this run's metric to a baseline, as `(self / base)`.
    #[must_use]
    pub fn overhead_vs(&self, base: &Metrics) -> MetricOverheads {
        fn ratio(a: u64, b: u64) -> f64 {
            if b == 0 {
                1.0
            } else {
                a as f64 / b as f64
            }
        }
        MetricOverheads {
            instructions: ratio(self.instructions, base.instructions),
            cycles: ratio(self.cycles, base.cycles),
            l2_misses: ratio(self.l2_misses, base.l2_misses),
        }
    }
}

/// Ratios relative to a baseline run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MetricOverheads {
    /// Instruction ratio.
    pub instructions: f64,
    /// Cycle ratio.
    pub cycles: f64,
    /// L2-miss ratio.
    pub l2_misses: f64,
}

/// What one scenario run produced (see [`System::run_scenario`]).
#[derive(Clone, Debug)]
pub struct ScenarioRun {
    /// Exit status of the scenario's main process.
    pub status: ExitStatus,
    /// Main-process console output (clients write binary stamps to their
    /// own consoles, harvested separately into `latencies`).
    pub console: String,
    /// Metrics consumed by the whole process tree.
    pub metrics: Metrics,
    /// Blocked-process diagnostics if the scheduler declared deadlock.
    pub deadlock: Option<String>,
    /// Per-request enqueue→reply latencies in guest cycles, concatenated
    /// client by client in pid order.
    pub latencies: Vec<u64>,
}

/// A booted machine.
pub struct System {
    /// The kernel (owns the CPU and VM).
    pub kernel: Kernel,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "System{{{:?}}}", self.kernel)
    }
}

impl Default for System {
    fn default() -> Self {
        System::new()
    }
}

impl System {
    /// Boots with the default configuration (128-bit capabilities, 64 MiB
    /// of physical memory, kernel capability discipline on).
    #[must_use]
    pub fn new() -> System {
        System {
            kernel: Kernel::new(KernelConfig::default()),
        }
    }

    /// Boots with an explicit configuration.
    #[must_use]
    pub fn with_config(config: KernelConfig) -> System {
        System {
            kernel: Kernel::new(config),
        }
    }

    /// Runs `program` and returns its exit status, console output and the
    /// metrics consumed by the run (counters are snapshotted around it).
    ///
    /// # Errors
    ///
    /// Propagates load failures.
    pub fn measure(
        &mut self,
        program: &Program,
        opts: &SpawnOpts,
    ) -> Result<(ExitStatus, String, Metrics), cheri_rtld::LoadError> {
        let c0 = self.kernel.cpu.stats;
        let m0 = self.kernel.cpu.caches.stats();
        let (status, console) = self.kernel.run_program(program, opts)?;
        let c1 = self.kernel.cpu.stats;
        let m1 = self.kernel.cpu.caches.stats();
        Ok((
            status,
            console,
            Metrics {
                instructions: c1.instret - c0.instret,
                cycles: c1.cycles - c0.cycles,
                l2_misses: m1.l2_misses - m0.l2_misses,
                syscalls: c1.syscalls - c0.syscalls,
            },
        ))
    }

    /// Runs a multi-tenant scenario program (`ProgramSpec::Scenario`
    /// lowerings) and harvests its per-request latency stamps.
    ///
    /// The program's process tree is fixed by construction: the spawned
    /// process (`main`) forks the server first and then each client in
    /// order, so the clients occupy pids `main + 2 .. main + 2 + clients`.
    /// Each client writes its latency array — one little-endian `u64` of
    /// guest cycles per completed request — to its console fd, which this
    /// method decodes from the *raw* console bytes (the lossy UTF-8 view
    /// would corrupt the binary stamps).
    ///
    /// # Errors
    ///
    /// Propagates load failures.
    pub fn run_scenario(
        &mut self,
        program: &Program,
        opts: &SpawnOpts,
        clients: u64,
    ) -> Result<ScenarioRun, cheri_rtld::LoadError> {
        // Mid-run `Sys::Cycles` stamps must agree between the superblock
        // fast path and the single-step interpreter, so make batched
        // cache-event charging exact (same requirement as the fault plane).
        self.kernel.cpu.set_exact_mem_events(true);
        let c0 = self.kernel.cpu.stats;
        let m0 = self.kernel.cpu.caches.stats();
        let main = self.kernel.spawn(program, opts)?;
        let budget = self.kernel.process(main).instr_budget;
        let outcome = self.kernel.run(budget);
        let deadlock = (outcome == RunOutcome::Deadlock).then(|| self.kernel.blocked_diagnostics());
        let status = self
            .kernel
            .exit_status(main)
            .unwrap_or(ExitStatus::BudgetExhausted);
        let console = self.kernel.process(main).console_string();
        let c1 = self.kernel.cpu.stats;
        let m1 = self.kernel.cpu.caches.stats();
        let mut latencies = Vec::new();
        for i in 0..clients {
            let Some(client) = self.kernel.try_process(Pid(main.0 + 2 + i)) else {
                continue;
            };
            latencies.extend(
                client
                    .console
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk"))),
            );
        }
        Ok(ScenarioRun {
            status,
            console,
            metrics: Metrics {
                instructions: c1.instret - c0.instret,
                cycles: c1.cycles - c0.cycles,
                l2_misses: m1.l2_misses - m0.l2_misses,
                syscalls: c1.syscalls - c0.syscalls,
            },
            deadlock,
            latencies,
        })
    }

    /// Enables capability-derivation tracing (Figure 5).
    pub fn enable_tracing(&mut self) {
        self.kernel.cpu.trace.enabled = true;
    }

    /// The collected derivation events as a size distribution.
    #[must_use]
    pub fn capability_histogram(&self) -> trace::SizeCdf {
        trace::SizeCdf::from_events(self.kernel.cpu.trace.events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guest::GuestOps;
    use cheri_isa::codegen::{CodegenOpts, FnBuilder, Val};

    #[test]
    fn measure_reports_positive_metrics() {
        let mut pb = ProgramBuilder::new("m");
        let mut exe = pb.object("m");
        {
            let mut f = FnBuilder::begin(&mut exe, "main", CodegenOpts::purecap());
            f.li(Val(0), 0);
            f.sys_exit(Val(0));
        }
        exe.set_entry("main");
        pb.add(exe.finish());
        let program = pb.finish();
        let mut sys = System::new();
        let (status, _, m) = sys
            .measure(&program, &SpawnOpts::new(AbiMode::CheriAbi))
            .unwrap();
        assert_eq!(status, ExitStatus::Code(0));
        assert!(m.instructions >= 3);
        assert!(m.cycles > m.instructions);
        assert_eq!(m.syscalls, 1);
    }

    #[test]
    fn overhead_ratios() {
        let a = Metrics {
            instructions: 110,
            cycles: 220,
            l2_misses: 10,
            syscalls: 0,
        };
        let b = Metrics {
            instructions: 100,
            cycles: 200,
            l2_misses: 10,
            syscalls: 0,
        };
        let o = a.overhead_vs(&b);
        assert!((o.instructions - 1.1).abs() < 1e-9);
        assert!((o.cycles - 1.1).abs() < 1e-9);
        assert!((o.l2_misses - 1.0).abs() < 1e-9);
    }
}
