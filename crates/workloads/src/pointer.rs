//! Pointer-intensive workload kernels: the Figure 4 population where the
//! pure-capability ABI pays for its doubled pointer size (cache footprint)
//! and bounds-setting instructions.

use crate::single;
use cheri_isa::codegen::{CodegenOpts, Ptr, Val};
use cheri_isa::Width;
use cheri_rtld::Program;
use cheriabi::guest::{emit_insertion_sort_recptrs, emit_lcg_step, GuestOps};

/// auto-qsort: sort an array of record pointers by key (the paper's qsort
/// preserves capabilities when swapping elements, §4).
pub fn qsort(opts: CodegenOpts, seed: u64) -> Program {
    single("qsort", opts, move |f| {
        let n = 200i64;
        let ps = f.ptr_size() as i64;
        f.li(Val(5), n * ps);
        f.malloc(Ptr(0), Val(5));
        // records with LCG keys
        f.li(Val(6), seed as i64 | 1); // lcg state (Val(7) is clobbered)
        f.li(Val(0), 0);
        let fill = f.label();
        let filled = f.label();
        f.bind(fill);
        f.li(Val(1), n);
        f.sub(Val(1), Val(0), Val(1));
        f.beqz(Val(1), filled);
        f.malloc_imm(Ptr(1), 16);
        emit_lcg_step(f, Val(6));
        f.store(Val(6), Ptr(1), 0, Width::D);
        f.store(Val(0), Ptr(1), 8, Width::D);
        f.li(Val(2), ps);
        f.mul(Val(2), Val(2), Val(0));
        f.ptr_add(Ptr(2), Ptr(0), Val(2));
        f.store_ptr(Ptr(1), Ptr(2), 0);
        f.add_imm(Val(0), Val(0), 1);
        f.jmp(fill);
        f.bind(filled);
        emit_insertion_sort_recptrs(f, Ptr(0), n);
        // checksum: key[0] + key[n-1] + key[n/2]
        f.li(Val(6), 0);
        for idx in [0i64, n - 1, n / 2] {
            f.load_ptr(Ptr(3), Ptr(0), idx * ps);
            f.load(Val(1), Ptr(3), 0, Width::D, false);
            f.add(Val(6), Val(6), Val(1));
        }
        f.and_imm(Val(6), Val(6), 0x3f);
        f.sys_exit(Val(6));
    })
}

/// network-dijkstra: O(n^2) single-source shortest paths on an adjacency
/// matrix.
pub fn dijkstra(opts: CodegenOpts, seed: u64) -> Program {
    single("dijkstra", opts, move |f| {
        let n = 40i64;
        f.malloc_imm(Ptr(0), n * n * 8); // adj
        f.malloc_imm(Ptr(1), n * 8); // dist
        f.malloc_imm(Ptr(2), n); // visited
                                 // adj[i][j] = lcg % 15 + 1
        f.li(Val(6), seed as i64 | 1);
        f.li(Val(0), 0);
        let fill = f.label();
        let filled = f.label();
        f.bind(fill);
        f.li(Val(1), n * n);
        f.sub(Val(1), Val(0), Val(1));
        f.beqz(Val(1), filled);
        emit_lcg_step(f, Val(6));
        f.li(Val(1), 15);
        f.remu(Val(1), Val(6), Val(1));
        f.add_imm(Val(1), Val(1), 1);
        f.shl_imm(Val(2), Val(0), 3);
        f.ptr_add(Ptr(3), Ptr(0), Val(2));
        f.store(Val(1), Ptr(3), 0, Width::D);
        f.add_imm(Val(0), Val(0), 1);
        f.jmp(fill);
        f.bind(filled);
        // dist[i] = INF (except 0), visited = 0
        f.li(Val(0), 0);
        let init = f.label();
        let inited = f.label();
        f.bind(init);
        f.li(Val(1), n);
        f.sub(Val(1), Val(0), Val(1));
        f.beqz(Val(1), inited);
        f.li(Val(1), 1 << 40);
        f.shl_imm(Val(2), Val(0), 3);
        f.ptr_add(Ptr(3), Ptr(1), Val(2));
        f.store(Val(1), Ptr(3), 0, Width::D);
        f.ptr_add(Ptr(4), Ptr(2), Val(0));
        f.li(Val(1), 0);
        f.store(Val(1), Ptr(4), 0, Width::B);
        f.add_imm(Val(0), Val(0), 1);
        f.jmp(init);
        f.bind(inited);
        f.li(Val(1), 0);
        f.store(Val(1), Ptr(1), 0, Width::D); // dist[0] = 0
                                              // main loop: n rounds of (pick min unvisited, relax row)
        f.li(Val(0), 0); // round
        let r_top = f.label();
        let r_done = f.label();
        f.bind(r_top);
        f.li(Val(1), n);
        f.sub(Val(1), Val(0), Val(1));
        f.beqz(Val(1), r_done);
        // pick u = argmin dist among unvisited
        f.li(Val(1), -1); // u
        f.li(Val(2), 1 << 41); // best
        f.li(Val(3), 0); // j
        let p_top = f.label();
        let p_done = f.label();
        f.bind(p_top);
        f.li(Val(4), n);
        f.sub(Val(4), Val(3), Val(4));
        f.beqz(Val(4), p_done);
        let p_skip = f.label();
        f.ptr_add(Ptr(4), Ptr(2), Val(3));
        f.load(Val(4), Ptr(4), 0, Width::B, false);
        f.bnez(Val(4), p_skip);
        f.shl_imm(Val(4), Val(3), 3);
        f.ptr_add(Ptr(3), Ptr(1), Val(4));
        f.load(Val(4), Ptr(3), 0, Width::D, false);
        f.sltu(Val(5), Val(4), Val(2));
        f.beqz(Val(5), p_skip);
        f.mv(Val(2), Val(4));
        f.mv(Val(1), Val(3));
        f.bind(p_skip);
        f.add_imm(Val(3), Val(3), 1);
        f.jmp(p_top);
        f.bind(p_done);
        f.bltz(Val(1), r_done); // all visited
                                // visited[u] = 1
        f.ptr_add(Ptr(4), Ptr(2), Val(1));
        f.li(Val(3), 1);
        f.store(Val(3), Ptr(4), 0, Width::B);
        // relax: dist[j] = min(dist[j], dist[u] + adj[u][j])
        f.li(Val(3), 0);
        let x_top = f.label();
        let x_done = f.label();
        f.bind(x_top);
        f.li(Val(4), n);
        f.sub(Val(4), Val(3), Val(4));
        f.beqz(Val(4), x_done);
        // adj[u*n + j]
        f.li(Val(4), n);
        f.mul(Val(4), Val(4), Val(1));
        f.add(Val(4), Val(4), Val(3));
        f.shl_imm(Val(4), Val(4), 3);
        f.ptr_add(Ptr(3), Ptr(0), Val(4));
        f.load(Val(4), Ptr(3), 0, Width::D, false);
        f.add(Val(4), Val(4), Val(2)); // cand = best + w
        f.shl_imm(Val(5), Val(3), 3);
        f.ptr_add(Ptr(3), Ptr(1), Val(5));
        f.load(Val(5), Ptr(3), 0, Width::D, false);
        let x_skip = f.label();
        f.sltu(Val(5), Val(4), Val(5));
        f.beqz(Val(5), x_skip);
        f.store(Val(4), Ptr(3), 0, Width::D);
        f.bind(x_skip);
        f.add_imm(Val(3), Val(3), 1);
        f.jmp(x_top);
        f.bind(x_done);
        f.add_imm(Val(0), Val(0), 1);
        f.jmp(r_top);
        f.bind(r_done);
        // checksum = sum dist
        f.li(Val(6), 0);
        f.li(Val(0), 0);
        let s_top = f.label();
        let s_done = f.label();
        f.bind(s_top);
        f.li(Val(1), n);
        f.sub(Val(1), Val(0), Val(1));
        f.beqz(Val(1), s_done);
        f.shl_imm(Val(1), Val(0), 3);
        f.ptr_add(Ptr(3), Ptr(1), Val(1));
        f.load(Val(1), Ptr(3), 0, Width::D, false);
        f.add(Val(6), Val(6), Val(1));
        f.add_imm(Val(0), Val(0), 1);
        f.jmp(s_top);
        f.bind(s_done);
        f.and_imm(Val(6), Val(6), 0x3f);
        f.sys_exit(Val(6));
    })
}

/// network-patricia: bitwise trie of heap nodes linked by pointers.
/// Node layout: `[key: u64][left: ptr][right: ptr]`.
pub fn patricia(opts: CodegenOpts, seed: u64) -> Program {
    single("patricia", opts, move |f| {
        let n = 240i64;
        let ps = f.ptr_size() as i64;
        // Header pads to the pointer alignment (16 for C128, 32 for C256).
        let hdr = ps.max(16);
        let node_size = hdr + 2 * ps;
        let left_off = hdr;
        let right_off = hdr + ps;
        // root node (key 0)
        f.malloc_imm(Ptr(0), node_size);
        f.li(Val(6), seed as i64 | 1);
        // insert loop
        f.li(Val(0), 0); // i
        let i_top = f.label();
        let i_done = f.label();
        f.bind(i_top);
        f.li(Val(1), n);
        f.sub(Val(1), Val(0), Val(1));
        f.beqz(Val(1), i_done);
        emit_lcg_step(f, Val(6));
        // walk 14 bits of the key from the root
        f.ptr_mv(Ptr(1), Ptr(0)); // cur
        f.li(Val(1), 0); // bit index
        let w_top = f.label();
        let w_done = f.label();
        f.bind(w_top);
        f.li(Val(2), 14);
        f.sub(Val(2), Val(1), Val(2));
        f.beqz(Val(2), w_done);
        f.shr(Val(2), Val(6), Val(1));
        f.and_imm(Val(2), Val(2), 1);
        // child_off = bit ? right : left
        let go_right = f.label();
        let have_off = f.label();
        f.bnez(Val(2), go_right);
        f.li(Val(3), left_off);
        f.jmp(have_off);
        f.bind(go_right);
        f.li(Val(3), right_off);
        f.bind(have_off);
        f.ptr_add(Ptr(2), Ptr(1), Val(3));
        f.load_ptr(Ptr(3), Ptr(2), 0);
        f.ptr_is_null(Val(4), Ptr(3));
        let descend = f.label();
        f.beqz(Val(4), descend);
        // allocate a new node, store key, link it
        f.malloc_imm(Ptr(4), node_size);
        f.store(Val(6), Ptr(4), 0, Width::D);
        f.store_ptr(Ptr(4), Ptr(2), 0);
        f.ptr_mv(Ptr(3), Ptr(4));
        f.bind(descend);
        f.ptr_mv(Ptr(1), Ptr(3));
        f.add_imm(Val(1), Val(1), 1);
        f.jmp(w_top);
        f.bind(w_done);
        f.add_imm(Val(0), Val(0), 1);
        f.jmp(i_top);
        f.bind(i_done);
        // lookup passes: re-walk the LCG sequence, sum keys found at depth
        f.li(Val(5), 0); // checksum accumulates in Val(5)
        for _pass in 0..3 {
            f.li(Val(6), seed as i64 | 1);
            f.li(Val(0), 0);
            let l_top = f.label();
            let l_done = f.label();
            f.bind(l_top);
            f.li(Val(1), n);
            f.sub(Val(1), Val(0), Val(1));
            f.beqz(Val(1), l_done);
            emit_lcg_step(f, Val(6));
            f.ptr_mv(Ptr(1), Ptr(0));
            f.li(Val(1), 0);
            let d_top = f.label();
            let d_done = f.label();
            f.bind(d_top);
            f.li(Val(2), 14);
            f.sub(Val(2), Val(1), Val(2));
            f.beqz(Val(2), d_done);
            f.shr(Val(2), Val(6), Val(1));
            f.and_imm(Val(2), Val(2), 1);
            let rgt = f.label();
            let off_ok = f.label();
            f.bnez(Val(2), rgt);
            f.li(Val(3), left_off);
            f.jmp(off_ok);
            f.bind(rgt);
            f.li(Val(3), right_off);
            f.bind(off_ok);
            f.ptr_add(Ptr(2), Ptr(1), Val(3));
            f.load_ptr(Ptr(3), Ptr(2), 0);
            f.ptr_is_null(Val(4), Ptr(3));
            f.bnez(Val(4), d_done);
            f.ptr_mv(Ptr(1), Ptr(3));
            f.add_imm(Val(1), Val(1), 1);
            f.jmp(d_top);
            f.bind(d_done);
            f.load(Val(2), Ptr(1), 0, Width::D, false);
            f.add(Val(5), Val(5), Val(2));
            f.add_imm(Val(0), Val(0), 1);
            f.jmp(l_top);
            f.bind(l_done);
        }
        f.and_imm(Val(5), Val(5), 0x3f);
        f.sys_exit(Val(5));
    })
}

/// spec2006-astar-ish: grid search keeping an open list of node pointers,
/// scanned for the best f-score each step.
pub fn astar(opts: CodegenOpts, seed: u64) -> Program {
    single("astar", opts, move |f| {
        let dim = 48i64;
        let ps = f.ptr_size() as i64;
        let max_open = 256i64;
        f.malloc_imm(Ptr(0), dim * dim); // cost grid
        f.li(Val(6), seed as i64 | 1);
        crate::kernels::emit_fill(f, Ptr(0), dim * dim, Val(6));
        f.malloc_imm(Ptr(1), max_open * ps); // open list (ptr array)
                                             // node: [pos u64][g u64][f u64] padded to 32
                                             // start node at pos 0
        f.malloc_imm(Ptr(2), 32);
        f.li(Val(0), 0);
        f.store(Val(0), Ptr(2), 0, Width::D);
        f.store(Val(0), Ptr(2), 8, Width::D);
        f.store_ptr(Ptr(2), Ptr(1), 0);
        f.li(Val(5), 1); // open count
        f.li(Val(6), 0); // checksum
        f.li(Val(0), 0); // step
        let s_top = f.label();
        let s_done = f.label();
        f.bind(s_top);
        f.li(Val(1), 300);
        f.sub(Val(1), Val(0), Val(1));
        f.beqz(Val(1), s_done);
        f.beqz(Val(5), s_done);
        // scan open list for min f
        f.li(Val(1), 0); // j
        f.li(Val(2), 0); // best index
        f.li(Val(3), 1 << 42); // best f
        let m_top = f.label();
        let m_done = f.label();
        f.bind(m_top);
        f.sub(Val(4), Val(1), Val(5));
        f.beqz(Val(4), m_done);
        f.li(Val(4), ps);
        f.mul(Val(4), Val(4), Val(1));
        f.ptr_add(Ptr(3), Ptr(1), Val(4));
        f.load_ptr(Ptr(4), Ptr(3), 0);
        f.load(Val(4), Ptr(4), 16, Width::D, false);
        let worse = f.label();
        f.sltu(Val(7), Val(4), Val(3));
        f.beqz(Val(7), worse);
        f.mv(Val(3), Val(4));
        f.mv(Val(2), Val(1));
        f.bind(worse);
        f.add_imm(Val(1), Val(1), 1);
        f.jmp(m_top);
        f.bind(m_done);
        // pop best: open[best] = open[count-1]; count -= 1
        f.li(Val(4), ps);
        f.mul(Val(4), Val(4), Val(2));
        f.ptr_add(Ptr(3), Ptr(1), Val(4));
        f.load_ptr(Ptr(5), Ptr(3), 0); // current node
        f.add_imm(Val(5), Val(5), -1);
        f.li(Val(4), ps);
        f.mul(Val(4), Val(4), Val(5));
        f.ptr_add(Ptr(4), Ptr(1), Val(4));
        f.load_ptr(Ptr(6), Ptr(4), 0);
        f.store_ptr(Ptr(6), Ptr(3), 0);
        // expand: pos' = pos + 1 and pos + dim (bounded)
        f.load(Val(1), Ptr(5), 0, Width::D, false); // pos
        f.load(Val(2), Ptr(5), 8, Width::D, false); // g
        f.add(Val(6), Val(6), Val(1)); // checksum += pos
        for delta in [1i64, dim] {
            let no = f.label();
            f.add_imm(Val(3), Val(1), delta);
            f.li(Val(4), dim * dim);
            f.slt(Val(4), Val(3), Val(4));
            f.beqz(Val(4), no);
            // room in the open list?
            f.li(Val(4), max_open);
            f.sub(Val(4), Val(5), Val(4));
            f.beqz(Val(4), no);
            // new node (malloc via Val(4): Val(5) holds the open count)
            f.li(Val(4), 32);
            f.malloc(Ptr(6), Val(4));
            f.store(Val(3), Ptr(6), 0, Width::D);
            // g' = g + grid[pos']
            f.ptr_add(Ptr(7), Ptr(0), Val(3));
            f.load(Val(4), Ptr(7), 0, Width::B, false);
            f.add(Val(4), Val(4), Val(2));
            f.store(Val(4), Ptr(6), 8, Width::D);
            // f' = g' + heuristic(remaining)
            f.li(Val(7), dim * dim);
            f.sub(Val(7), Val(7), Val(3));
            f.add(Val(4), Val(4), Val(7));
            f.store(Val(4), Ptr(6), 16, Width::D);
            // append
            f.li(Val(4), ps);
            f.mul(Val(4), Val(4), Val(5));
            f.ptr_add(Ptr(7), Ptr(1), Val(4));
            f.store_ptr(Ptr(6), Ptr(7), 0);
            f.add_imm(Val(5), Val(5), 1);
            f.bind(no);
        }
        f.add_imm(Val(0), Val(0), 1);
        f.jmp(s_top);
        f.bind(s_done);
        f.and_imm(Val(6), Val(6), 0x3f);
        f.sys_exit(Val(6));
    })
}

/// spec2006-xalancbmk-ish: build a pointer-linked document tree, then
/// repeatedly traverse it depth-first with an explicit pointer stack.
pub fn xalancbmk(opts: CodegenOpts, seed: u64) -> Program {
    single("xalancbmk", opts, move |f| {
        let n = 1200i64;
        let ps = f.ptr_size() as i64;
        let hdr = ps.max(16); // tag padded to pointer alignment
        let node_size = hdr + 2 * ps; // [tag][child][sibling]
        let child_off = hdr;
        let sibling_off = hdr + ps;
        // node index array so the builder can pick random parents
        f.malloc_imm(Ptr(1), n * ps);
        // root
        f.malloc_imm(Ptr(0), node_size);
        f.li(Val(0), 1);
        f.store(Val(0), Ptr(0), 0, Width::D);
        f.store_ptr(Ptr(0), Ptr(1), 0);
        f.li(Val(6), seed as i64 | 1);
        f.li(Val(0), 1); // node count
        let b_top = f.label();
        let b_done = f.label();
        f.bind(b_top);
        f.li(Val(1), n);
        f.sub(Val(1), Val(0), Val(1));
        f.beqz(Val(1), b_done);
        emit_lcg_step(f, Val(6));
        // parent = nodes[lcg % count]
        f.remu(Val(1), Val(6), Val(0));
        f.li(Val(2), ps);
        f.mul(Val(2), Val(2), Val(1));
        f.ptr_add(Ptr(2), Ptr(1), Val(2));
        f.load_ptr(Ptr(3), Ptr(2), 0); // parent
                                       // new node
        f.malloc_imm(Ptr(4), node_size);
        f.store(Val(6), Ptr(4), 0, Width::D); // tag = lcg
                                              // new.sibling = parent.child; parent.child = new
        f.load_ptr(Ptr(5), Ptr(3), child_off);
        f.store_ptr(Ptr(5), Ptr(4), sibling_off);
        f.store_ptr(Ptr(4), Ptr(3), child_off);
        // nodes[count] = new
        f.li(Val(2), ps);
        f.mul(Val(2), Val(2), Val(0));
        f.ptr_add(Ptr(2), Ptr(1), Val(2));
        f.store_ptr(Ptr(4), Ptr(2), 0);
        f.add_imm(Val(0), Val(0), 1);
        f.jmp(b_top);
        f.bind(b_done);
        // traversals: explicit DFS stack of node pointers
        f.malloc_imm(Ptr(2), (n + 8) * ps); // stack
        f.li(Val(5), 0); // checksum
        for _pass in 0..3 {
            // push root
            f.store_ptr(Ptr(0), Ptr(2), 0);
            f.li(Val(0), 1); // stack depth
            let t_top = f.label();
            let t_done = f.label();
            f.bind(t_top);
            f.beqz(Val(0), t_done);
            // pop
            f.add_imm(Val(0), Val(0), -1);
            f.li(Val(1), ps);
            f.mul(Val(1), Val(1), Val(0));
            f.ptr_add(Ptr(3), Ptr(2), Val(1));
            f.load_ptr(Ptr(4), Ptr(3), 0);
            // checksum ^= tag
            f.load(Val(2), Ptr(4), 0, Width::D, false);
            f.xor(Val(5), Val(5), Val(2));
            f.add_imm(Val(5), Val(5), 1);
            // push sibling then child
            for off in [sibling_off, child_off] {
                let none = f.label();
                f.ptr_add_imm(Ptr(5), Ptr(4), off);
                f.load_ptr(Ptr(6), Ptr(5), 0);
                f.ptr_is_null(Val(3), Ptr(6));
                f.bnez(Val(3), none);
                f.li(Val(1), ps);
                f.mul(Val(1), Val(1), Val(0));
                f.ptr_add(Ptr(7), Ptr(2), Val(1));
                f.store_ptr(Ptr(6), Ptr(7), 0);
                f.add_imm(Val(0), Val(0), 1);
                f.bind(none);
            }
            f.jmp(t_top);
            f.bind(t_done);
        }
        f.and_imm(Val(5), Val(5), 0x3f);
        f.sys_exit(Val(5));
    })
}
