//! Fault-plane kernel tests: injected swap-device I/O errors and transient
//! syscall errors must degrade gracefully — transparent retry, SIGBUS, or a
//! guest-visible errno — and never panic the host kernel.

use cheri_isa::codegen::{CodegenOpts, FnBuilder, Ptr, Val};
use cheri_isa::Width;
use cheri_kernel::{
    AbiMode, ExitStatus, Kernel, KernelConfig, SpawnOpts, Sys, SyscallFaultSpec, SIGBUS,
};
use cheri_rtld::{Program, ProgramBuilder};
use cheri_vm::SwapFaultSpec;

fn opts_for(abi: AbiMode) -> CodegenOpts {
    match abi {
        AbiMode::Mips64 => CodegenOpts::mips64(),
        AbiMode::CheriAbi => CodegenOpts::purecap(),
    }
}

fn program(abi: AbiMode, body: impl FnOnce(&mut FnBuilder<'_>)) -> Program {
    let mut pb = ProgramBuilder::new("test");
    let mut exe = pb.object("test");
    exe.add_data("buf", &[0u8; 64], 16);
    {
        let mut f = FnBuilder::begin(&mut exe, "main", opts_for(abi));
        body(&mut f);
    }
    exe.set_entry("main");
    pb.add(exe.finish());
    pb.finish()
}

fn both_abis() -> [AbiMode; 2] {
    [AbiMode::Mips64, AbiMode::CheriAbi]
}

/// Emits: store 77 to the global buffer, force everything to swap, load it
/// back and exit with the loaded value.
fn swap_roundtrip_body(f: &mut FnBuilder<'_>) {
    f.load_global_ptr(Ptr(0), "buf");
    f.li(Val(0), 77);
    f.store(Val(0), Ptr(0), 0, Width::D);
    f.li(Val(1), 4096);
    f.set_arg_val(0, Val(1));
    f.syscall(Sys::Swapctl as i64);
    f.load_global_ptr(Ptr(0), "buf");
    f.load(Val(2), Ptr(0), 0, Width::D, false);
    f.set_arg_val(0, Val(2));
    f.syscall(Sys::Exit as i64);
}

/// A single swap-read error is absorbed by the kernel's one retry: the
/// guest still sees its data and exits normally.
#[test]
fn transient_swap_read_error_is_retried_transparently() {
    for abi in both_abis() {
        let prog = program(abi, swap_roundtrip_body);
        let mut k = Kernel::new(KernelConfig::default());
        let pid = k.spawn(&prog, &SpawnOpts::new(abi)).expect("spawn");
        k.vm.arm_swap_faults(SwapFaultSpec {
            read_fail_at: Some(1),
            read_fail_count: 1,
            ..Default::default()
        });
        k.run(1_000_000_000);
        assert_eq!(k.exit_status(pid), Some(ExitStatus::Code(77)), "{abi}");
        assert_eq!(k.vm.swap_faults().read_errors, 1, "{abi}");
    }
}

/// A persistent swap-read error exhausts the single retry and the guest is
/// killed with SIGBUS — a clean degradation, never a host panic.
#[test]
fn persistent_swap_read_error_delivers_sigbus() {
    for abi in both_abis() {
        let prog = program(abi, swap_roundtrip_body);
        let mut k = Kernel::new(KernelConfig::default());
        let pid = k.spawn(&prog, &SpawnOpts::new(abi)).expect("spawn");
        k.vm.arm_swap_faults(SwapFaultSpec {
            read_fail_at: Some(1),
            read_fail_count: 1_000,
            ..Default::default()
        });
        k.run(1_000_000_000);
        assert_eq!(
            k.exit_status(pid),
            Some(ExitStatus::Signaled(SIGBUS)),
            "{abi}"
        );
        assert!(k.vm.swap_faults().read_errors >= 2, "{abi}");
    }
}

/// Swap-write errors during `swapctl` bound the page-out but never fail the
/// syscall: the affected pages simply stay resident.
#[test]
fn swap_write_errors_degrade_pageout_without_failing_guest() {
    for abi in both_abis() {
        let prog = program(abi, swap_roundtrip_body);
        let mut k = Kernel::new(KernelConfig::default());
        let pid = k.spawn(&prog, &SpawnOpts::new(abi)).expect("spawn");
        k.vm.arm_swap_faults(SwapFaultSpec {
            write_fail_at: Some(1),
            write_fail_count: 1_000_000,
            ..Default::default()
        });
        k.run(1_000_000_000);
        assert_eq!(k.exit_status(pid), Some(ExitStatus::Code(77)), "{abi}");
        assert!(k.vm.swap_faults().write_errors >= 2, "{abi}");
    }
}

/// Emits: getpid, move the return value into the exit code.
fn getpid_exit_body(f: &mut FnBuilder<'_>) {
    f.syscall(Sys::Getpid as i64);
    f.ret_val_to(Val(0));
    f.set_arg_val(0, Val(0));
    f.syscall(Sys::Exit as i64);
}

/// Injected EINTR restarts the call inside the kernel: invisible to the
/// guest, which still sees the real return value.
#[test]
fn injected_eintr_restarts_transparently() {
    for abi in both_abis() {
        let prog = program(abi, getpid_exit_body);
        let mut k = Kernel::new(KernelConfig::default());
        let pid = k.spawn(&prog, &SpawnOpts::new(abi)).expect("spawn");
        k.arm_syscall_faults(SyscallFaultSpec {
            eintr_at: Some(1),
            enomem_at: None,
        });
        k.run(1_000_000_000);
        assert_eq!(
            k.exit_status(pid),
            Some(ExitStatus::Code(pid.0 as i64)),
            "{abi}"
        );
        assert_eq!(k.syscall_faults().eintr_injected, 1, "{abi}");
    }
}

/// Injected ENOMEM is guest-visible as the errno return.
#[test]
fn injected_enomem_is_guest_visible() {
    for abi in both_abis() {
        let prog = program(abi, getpid_exit_body);
        let mut k = Kernel::new(KernelConfig::default());
        let pid = k.spawn(&prog, &SpawnOpts::new(abi)).expect("spawn");
        k.arm_syscall_faults(SyscallFaultSpec {
            eintr_at: None,
            enomem_at: Some(1),
        });
        k.run(1_000_000_000);
        assert_eq!(k.exit_status(pid), Some(ExitStatus::Code(-12)), "{abi}");
        assert_eq!(k.syscall_faults().enomem_injected, 1, "{abi}");
    }
}

/// `exit` is never interrupted: a pending injection aimed past the last
/// eligible call simply never fires.
#[test]
fn exit_is_never_interrupted() {
    for abi in both_abis() {
        let prog = program(abi, |f| {
            f.li(Val(0), 9);
            f.set_arg_val(0, Val(0));
            f.syscall(Sys::Exit as i64);
        });
        let mut k = Kernel::new(KernelConfig::default());
        let pid = k.spawn(&prog, &SpawnOpts::new(abi)).expect("spawn");
        k.arm_syscall_faults(SyscallFaultSpec {
            eintr_at: Some(1),
            enomem_at: Some(1),
        });
        k.run(1_000_000_000);
        assert_eq!(k.exit_status(pid), Some(ExitStatus::Code(9)), "{abi}");
        assert!(!k.syscall_faults().fired(), "{abi}");
    }
}
