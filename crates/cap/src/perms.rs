//! Capability permission bits.
//!
//! CHERI permissions gate what a capability may be used for. The set below
//! mirrors the CHERI-MIPS permission field used by CheriABI, including the
//! software-defined `VMMAP` permission that the paper's kernel requires on
//! capabilities passed to `munmap`/`shmdt` and fixed-address `mmap` (§4,
//! "Virtual-address management APIs").

use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign, Not, Sub};

/// A set of capability permissions.
///
/// `Perms` behaves like a bitset but only offers *monotonic* combinators to
/// the rest of the system: the capability type exposes intersection
/// (`CAndPerm`), never union.
///
/// ```
/// use cheri_cap::Perms;
/// let rw = Perms::LOAD | Perms::STORE;
/// assert!(rw.contains(Perms::LOAD));
/// assert!(!rw.contains(Perms::EXECUTE));
/// assert!(rw.is_subset_of(Perms::user_data()));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Perms(u32);

impl Perms {
    /// No permissions at all.
    pub const NONE: Perms = Perms(0);
    /// Capability may be shared across protection domains (global).
    pub const GLOBAL: Perms = Perms(1 << 0);
    /// Instructions may be fetched through this capability.
    pub const EXECUTE: Perms = Perms(1 << 1);
    /// Data may be loaded through this capability.
    pub const LOAD: Perms = Perms(1 << 2);
    /// Data may be stored through this capability.
    pub const STORE: Perms = Perms(1 << 3);
    /// Tagged capabilities may be loaded through this capability.
    pub const LOAD_CAP: Perms = Perms(1 << 4);
    /// Tagged capabilities may be stored through this capability.
    pub const STORE_CAP: Perms = Perms(1 << 5);
    /// Non-global ("local") capabilities may be stored through this one.
    pub const STORE_LOCAL_CAP: Perms = Perms(1 << 6);
    /// This capability may be used to seal others.
    pub const SEAL: Perms = Perms(1 << 7);
    /// This capability may be used with the CInvoke/CCall mechanism.
    pub const INVOKE: Perms = Perms(1 << 8);
    /// This capability may be used to unseal sealed capabilities.
    pub const UNSEAL: Perms = Perms(1 << 9);
    /// Access to privileged system registers (kernel only).
    pub const SYSTEM_REGS: Perms = Perms(1 << 10);
    /// Software-defined: holder may manage virtual-memory mappings covering
    /// the capability's bounds (`mmap(MAP_FIXED)`, `munmap`, `shmdt`).
    pub const VMMAP: Perms = Perms(1 << 15);
    /// Software-defined: capability originates from the kernel's direct map
    /// (never handed to userspace; used by invariant checks).
    pub const KERNEL_DIRECT: Perms = Perms(1 << 16);

    /// Every permission bit set; the authority of the reset-time root.
    pub const ALL: Perms = Perms(
        Perms::GLOBAL.0
            | Perms::EXECUTE.0
            | Perms::LOAD.0
            | Perms::STORE.0
            | Perms::LOAD_CAP.0
            | Perms::STORE_CAP.0
            | Perms::STORE_LOCAL_CAP.0
            | Perms::SEAL.0
            | Perms::INVOKE.0
            | Perms::UNSEAL.0
            | Perms::SYSTEM_REGS.0
            | Perms::VMMAP.0
            | Perms::KERNEL_DIRECT.0,
    );

    /// The permissions a CheriABI process receives on a read-write data
    /// mapping: load/store of both data and capabilities, plus `VMMAP` so the
    /// owner can unmap it.
    #[must_use]
    pub fn user_data() -> Perms {
        Perms::GLOBAL
            | Perms::LOAD
            | Perms::STORE
            | Perms::LOAD_CAP
            | Perms::STORE_CAP
            | Perms::STORE_LOCAL_CAP
            | Perms::VMMAP
    }

    /// The permissions placed on PCC and function pointers: fetch plus data
    /// load (PC-relative constant pools), never store.
    #[must_use]
    pub fn user_code() -> Perms {
        Perms::GLOBAL | Perms::EXECUTE | Perms::LOAD | Perms::LOAD_CAP
    }

    /// Read-only data (e.g. the signal-return trampoline page mapped by
    /// `execve`).
    #[must_use]
    pub fn user_rodata() -> Perms {
        Perms::GLOBAL | Perms::LOAD | Perms::LOAD_CAP
    }

    /// Returns `true` if every bit of `other` is present in `self`.
    #[must_use]
    pub fn contains(self, other: Perms) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns `true` if `self` is a (non-strict) subset of `other`.
    #[must_use]
    pub fn is_subset_of(self, other: Perms) -> bool {
        other.contains(self)
    }

    /// Returns `true` if no permission bit is set.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The raw bit pattern (stable across the simulation; used when
    /// serialising capabilities to swap metadata).
    #[must_use]
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Reconstructs a permission set from raw bits, masking unknown bits.
    #[must_use]
    pub fn from_bits_truncate(bits: u32) -> Perms {
        Perms(bits & Perms::ALL.0)
    }

    /// Intersection — the only combinator the architecture offers for
    /// deriving permissions (`CAndPerm`).
    #[must_use]
    pub fn intersection(self, other: Perms) -> Perms {
        Perms(self.0 & other.0)
    }

    /// Set difference, used when the runtime strips specific permissions
    /// (e.g. malloc removing `VMMAP` and `EXECUTE` from returned regions).
    #[must_use]
    pub fn difference(self, other: Perms) -> Perms {
        Perms(self.0 & !other.0)
    }
}

impl BitOr for Perms {
    type Output = Perms;
    fn bitor(self, rhs: Perms) -> Perms {
        Perms(self.0 | rhs.0)
    }
}

impl BitOrAssign for Perms {
    fn bitor_assign(&mut self, rhs: Perms) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for Perms {
    type Output = Perms;
    fn bitand(self, rhs: Perms) -> Perms {
        self.intersection(rhs)
    }
}

impl Sub for Perms {
    type Output = Perms;
    fn sub(self, rhs: Perms) -> Perms {
        self.difference(rhs)
    }
}

impl Not for Perms {
    type Output = Perms;
    fn not(self) -> Perms {
        Perms(!self.0 & Perms::ALL.0)
    }
}

impl fmt::Debug for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: &[(Perms, &str)] = &[
            (Perms::GLOBAL, "G"),
            (Perms::EXECUTE, "X"),
            (Perms::LOAD, "R"),
            (Perms::STORE, "W"),
            (Perms::LOAD_CAP, "r"),
            (Perms::STORE_CAP, "w"),
            (Perms::STORE_LOCAL_CAP, "l"),
            (Perms::SEAL, "S"),
            (Perms::INVOKE, "I"),
            (Perms::UNSEAL, "U"),
            (Perms::SYSTEM_REGS, "$"),
            (Perms::VMMAP, "M"),
            (Perms::KERNEL_DIRECT, "K"),
        ];
        write!(f, "Perms[")?;
        for (bit, name) in NAMES {
            if self.contains(*bit) {
                write!(f, "{name}")?;
            }
        }
        write!(f, "]")
    }
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_every_named_bit() {
        for p in [
            Perms::GLOBAL,
            Perms::EXECUTE,
            Perms::LOAD,
            Perms::STORE,
            Perms::LOAD_CAP,
            Perms::STORE_CAP,
            Perms::STORE_LOCAL_CAP,
            Perms::SEAL,
            Perms::INVOKE,
            Perms::UNSEAL,
            Perms::SYSTEM_REGS,
            Perms::VMMAP,
            Perms::KERNEL_DIRECT,
        ] {
            assert!(Perms::ALL.contains(p), "{p:?} missing from ALL");
        }
    }

    #[test]
    fn intersection_is_monotonic() {
        let a = Perms::user_data();
        let b = Perms::user_code();
        let i = a & b;
        assert!(i.is_subset_of(a));
        assert!(i.is_subset_of(b));
    }

    #[test]
    fn difference_removes_bits() {
        let p = Perms::user_data() - Perms::VMMAP;
        assert!(!p.contains(Perms::VMMAP));
        assert!(p.contains(Perms::LOAD));
    }

    #[test]
    fn user_data_has_vmmap_but_not_execute() {
        assert!(Perms::user_data().contains(Perms::VMMAP));
        assert!(!Perms::user_data().contains(Perms::EXECUTE));
    }

    #[test]
    fn user_code_cannot_store() {
        assert!(!Perms::user_code().contains(Perms::STORE));
        assert!(!Perms::user_code().contains(Perms::STORE_CAP));
    }

    #[test]
    fn bits_roundtrip() {
        let p = Perms::user_data();
        assert_eq!(Perms::from_bits_truncate(p.bits()), p);
        // Unknown bits are dropped.
        assert_eq!(Perms::from_bits_truncate(0xffff_ffff), Perms::ALL);
    }

    #[test]
    fn not_stays_within_known_bits() {
        let p = !Perms::NONE;
        assert_eq!(p, Perms::ALL);
        assert_eq!(!Perms::ALL, Perms::NONE);
    }

    #[test]
    fn debug_is_nonempty() {
        assert_eq!(format!("{:?}", Perms::NONE), "Perms[]");
        assert!(format!("{:?}", Perms::ALL).len() > 7);
    }
}
