//! `ptrace` debugging (§3 "Debugging", §4 "Debugging").
//!
//! "Two processes are involved in debugging — the debugger and the target —
//! and hence two different principal IDs. Abstract capabilities belong to
//! one or the other, and must not be propagated between them. The debugger
//! process may inspect capabilities from, or inject capabilities into, the
//! target memory or register file; these capabilities are derived from an
//! appropriate extant target or root architectural capability."
//!
//! Concretely:
//!
//! * **inspection** returns capability *fields* (address, base, length,
//!   permissions, tag) as plain integers — the debugger never receives a
//!   tagged capability for the target's address space;
//! * **injection** names the desired authority (base, length, permissions)
//!   and the kernel derives the capability from the **target's root**; a
//!   request exceeding the target's authority fails with `EPROT`.

use crate::abi::Errno;
use crate::kernel::Kernel;
use crate::process::{Pid, ProcState, WaitReason};
use cheri_cap::Perms;

/// `ptrace` request codes (`$a0` of the syscall).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u64)]
pub enum PtraceOp {
    /// Attach to a target pid; it stops at its next scheduling point.
    Attach = 1,
    /// Detach and resume the target.
    Detach = 2,
    /// Read 8 bytes of target memory.
    PeekData = 3,
    /// Write 8 bytes of target memory (tags in the granule are cleared —
    /// data pokes cannot forge capabilities).
    PokeData = 4,
    /// Read an integer register.
    GetReg = 5,
    /// Read a capability register's address field.
    GetCapAddr = 6,
    /// Read a capability register's base.
    GetCapBase = 7,
    /// Read a capability register's length.
    GetCapLen = 8,
    /// Read a capability register's permission bits.
    GetCapPerms = 9,
    /// Read a capability register's tag.
    GetCapTag = 10,
    /// Inject a capability into target memory, rederived from the target's
    /// root: `a2` = target store address, `a3` = base, `a4` = length,
    /// `a5` = permission bits.
    WriteCap = 11,
    /// Resume the target.
    Continue = 12,
}

impl PtraceOp {
    /// Decodes a request code.
    #[must_use]
    pub fn from_u64(v: u64) -> Option<PtraceOp> {
        Some(match v {
            1 => PtraceOp::Attach,
            2 => PtraceOp::Detach,
            3 => PtraceOp::PeekData,
            4 => PtraceOp::PokeData,
            5 => PtraceOp::GetReg,
            6 => PtraceOp::GetCapAddr,
            7 => PtraceOp::GetCapBase,
            8 => PtraceOp::GetCapLen,
            9 => PtraceOp::GetCapPerms,
            10 => PtraceOp::GetCapTag,
            11 => PtraceOp::WriteCap,
            12 => PtraceOp::Continue,
            _ => return None,
        })
    }
}

impl Kernel {
    /// Public entry point for driving `ptrace` requests from host-side test
    /// harnesses (arguments are read from the tracer's registers exactly as
    /// for the guest syscall).
    ///
    /// # Errors
    ///
    /// As for the guest syscall: `EINVAL`, `ESRCH`, `EPERM`, `EBUSY`,
    /// `EFAULT` or `EPROT`.
    pub fn sys_ptrace_public(&mut self, tracer: Pid) -> Result<u64, Errno> {
        self.sys_ptrace(tracer)
    }

    /// Implements the `ptrace` syscall for `tracer`.
    pub(crate) fn sys_ptrace(&mut self, tracer: Pid) -> Result<u64, Errno> {
        let op = PtraceOp::from_u64(self.user_val(tracer, 0)).ok_or(Errno::EINVAL)?;
        let target = Pid(self.user_val(tracer, 1));
        if !self.procs.contains_key(&target) || target == tracer {
            return Err(Errno::ESRCH);
        }
        // Except for Attach, the tracer must already be attached.
        if op != PtraceOp::Attach && self.process(target).traced_by != Some(tracer) {
            return Err(Errno::EPERM);
        }
        match op {
            PtraceOp::Attach => {
                if self.process(target).traced_by.is_some() {
                    return Err(Errno::EBUSY);
                }
                let t = self.process_mut(target);
                t.traced_by = Some(tracer);
                if matches!(t.state, ProcState::Runnable) {
                    t.state = ProcState::Blocked(WaitReason::Traced);
                }
                Ok(0)
            }
            PtraceOp::Detach => {
                let t = self.process_mut(target);
                t.traced_by = None;
                if matches!(t.state, ProcState::Blocked(WaitReason::Traced)) {
                    t.state = ProcState::Runnable;
                }
                if !self.runq.contains(&target) {
                    self.runq.push_back(target);
                }
                Ok(0)
            }
            PtraceOp::Continue => {
                let t = self.process_mut(target);
                if matches!(t.state, ProcState::Blocked(WaitReason::Traced)) {
                    t.state = ProcState::Runnable;
                    if !self.runq.contains(&target) {
                        self.runq.push_back(target);
                    }
                }
                Ok(0)
            }
            PtraceOp::PeekData => {
                let addr = self.user_val(tracer, 2);
                let space = self.process(target).space;
                self.vm.read_u64(space, addr).map_err(|_| Errno::EFAULT)
            }
            PtraceOp::PokeData => {
                let addr = self.user_val(tracer, 2);
                let val = self.user_val(tracer, 3);
                let space = self.process(target).space;
                self.vm
                    .write_u64(space, addr, val)
                    .map(|()| 0)
                    .map_err(|_| Errno::EFAULT)
            }
            PtraceOp::GetReg => {
                let r = self.user_val(tracer, 2) as u8;
                if r >= 32 {
                    return Err(Errno::EINVAL);
                }
                Ok(self.process(target).regs.r(cheri_isa::IReg(r)))
            }
            PtraceOp::GetCapAddr
            | PtraceOp::GetCapBase
            | PtraceOp::GetCapLen
            | PtraceOp::GetCapPerms
            | PtraceOp::GetCapTag => {
                let r = self.user_val(tracer, 2) as u8;
                if r >= 32 {
                    return Err(Errno::EINVAL);
                }
                let c = self.process(target).regs.c(cheri_isa::CReg(r));
                Ok(match op {
                    PtraceOp::GetCapAddr => c.addr(),
                    PtraceOp::GetCapBase => c.base(),
                    PtraceOp::GetCapLen => c.length(),
                    PtraceOp::GetCapPerms => u64::from(c.perms().bits()),
                    PtraceOp::GetCapTag => u64::from(c.tag()),
                    _ => unreachable!(),
                })
            }
            PtraceOp::WriteCap => {
                let store_at = self.user_val(tracer, 2);
                let base = self.user_val(tracer, 3);
                let len = self.user_val(tracer, 4);
                let perms = Perms::from_bits_truncate(self.user_val(tracer, 5) as u32);
                let space = self.process(target).space;
                let root = self.vm.space(space).root;
                // Derivation from the TARGET's root: the injected
                // capability carries the target's principal, and the
                // request must be within the target's authority.
                let cap = root
                    .with_addr(base)
                    .set_bounds(len, false)
                    .map_err(|_| Errno::EPROT)?
                    .and_perms(perms);
                if !perms.is_subset_of(root.perms()) {
                    return Err(Errno::EPROT);
                }
                let injected = cap.with_source(cheri_cap::CapSource::Debugger);
                self.vm
                    .store_cap(space, store_at, injected)
                    .map(|()| 0)
                    .map_err(|_| Errno::EFAULT)
            }
        }
    }
}
