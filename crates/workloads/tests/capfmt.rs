//! D1 ablation plumbing: the pointer-heavy workloads run correctly under
//! the 256-bit exact capability format, with the same results as C128 and
//! a visibly larger memory footprint.

use cheri_isa::codegen::CodegenOpts;
use cheri_kernel::{AbiMode, KernelConfig, SpawnOpts};
use cheriabi::{CapFormat, ExitStatus, System};

fn run(name: &str, opts: CodegenOpts, fmt: CapFormat) -> (ExitStatus, u64) {
    let w = cheri_workloads::all()
        .into_iter()
        .find(|w| w.name == name)
        .expect("registered");
    let program = (w.build)(opts, 7);
    let mut sys = System::with_config(KernelConfig {
        cap_fmt: fmt,
        ..KernelConfig::default()
    });
    let mut sopts = SpawnOpts::new(AbiMode::CheriAbi);
    sopts.instr_budget = Some(2_000_000_000);
    let (status, _c, m) = sys.measure(&program, &sopts).expect("loads");
    (status, m.l2_misses)
}

#[test]
fn c256_matches_c128_results_with_bigger_footprint() {
    for name in ["spec2006-xalancbmk", "network-patricia", "auto-qsort"] {
        let (s128, m128) = run(name, CodegenOpts::purecap(), CapFormat::C128);
        let (s256, m256) = run(name, CodegenOpts::purecap_c256(), CapFormat::C256);
        assert!(matches!(s128, ExitStatus::Code(_)), "{name}: {s128:?}");
        assert_eq!(s128, s256, "{name}: format changed the answer");
        assert!(
            m256 > m128,
            "{name}: 256-bit pointers must increase L2 misses ({m128} vs {m256})"
        );
    }
}
