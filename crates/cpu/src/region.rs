//! Decode-once code regions, pre-split into superblocks.
//!
//! A [`DecodedRegion`] is built exactly once per registration and then
//! shared immutably (`Arc`) between the per-space region map and the
//! core's resident block — registration, fork and fetch all stop copying
//! instruction vectors. Each instruction carries its pre-resolved dispatch
//! index into the flat op table (threaded dispatch) and its base cycle
//! cost, and the region records, for every instruction index, where the
//! straight-line run starting there ends: the *superblock* structure the
//! execute loop exploits to batch bounds checks and translations.

use crate::ops;
use cheri_isa::Instr;
use std::sync::Arc;

/// One pre-decoded instruction: the instruction itself plus everything the
/// hot loop would otherwise recompute per execution.
#[derive(Clone, Copy, Debug)]
pub(crate) struct DecodedInstr {
    /// The architectural instruction.
    pub instr: Instr,
    /// Pre-resolved index into [`ops::OP_TABLE`].
    pub op: u8,
    /// Pre-resolved [`Instr::base_cycles`] (fits in a byte for every op).
    pub base_cycles: u8,
}

/// An immutable, decode-once code region.
///
/// `block_last[i]` is the index of the last instruction of the superblock
/// containing `i`: the straight-line run from `i` extends through
/// `block_last[i]` inclusive, stopping at the first control-flow
/// instruction or just before the next *block leader* (any static branch
/// target), so no branch can ever jump into the middle of a run the
/// executor has already committed to.
#[derive(Debug)]
pub struct DecodedRegion {
    start: u64,
    end: u64,
    code: Vec<DecodedInstr>,
    block_last: Vec<u32>,
}

impl DecodedRegion {
    /// Decodes `code` (to be mapped at virtual address `start`) into a
    /// shareable region: dispatch indices resolved, base cycles cached,
    /// superblock boundaries computed at every static branch target and
    /// control-flow instruction.
    #[must_use]
    pub fn decode(start: u64, code: &[Instr]) -> Arc<DecodedRegion> {
        let n = code.len();
        let mut leader = vec![false; n + 1];
        if n > 0 {
            leader[0] = true;
        }
        for instr in code {
            if let Some(t) = instr.branch_target() {
                if (t as usize) < n {
                    leader[t as usize] = true;
                }
            }
        }
        let decoded = code
            .iter()
            .map(|&instr| DecodedInstr {
                instr,
                op: ops::dispatch_index(&instr),
                base_cycles: u8::try_from(instr.base_cycles()).expect("base cycles fit in u8"),
            })
            .collect();
        let mut block_last = vec![0u32; n];
        for i in (0..n).rev() {
            block_last[i] = if code[i].is_control() || i + 1 == n || leader[i + 1] {
                i as u32
            } else {
                block_last[i + 1]
            };
        }
        Arc::new(DecodedRegion {
            start,
            end: start + n as u64 * 4,
            code: decoded,
            block_last,
        })
    }

    /// First virtual address of the region.
    #[must_use]
    pub fn start(&self) -> u64 {
        self.start
    }

    /// One past the last virtual address of the region.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the region holds no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Whether `pc` falls inside the region.
    #[inline]
    pub(crate) fn contains(&self, pc: u64) -> bool {
        pc >= self.start && pc < self.end
    }

    /// Instruction index for an in-region `pc`.
    #[inline]
    pub(crate) fn index_of(&self, pc: u64) -> usize {
        ((pc - self.start) / 4) as usize
    }

    /// The decoded instruction at `idx`.
    #[inline]
    pub(crate) fn instr_at(&self, idx: usize) -> DecodedInstr {
        self.code[idx]
    }

    /// The decoded run of `n` instructions starting at `idx` — one bounds
    /// check for the whole superblock instead of one per instruction.
    #[inline]
    pub(crate) fn run(&self, idx: usize, n: usize) -> &[DecodedInstr] {
        &self.code[idx..idx + n]
    }

    /// Index of the last instruction of the superblock containing `idx`.
    #[inline]
    pub(crate) fn block_last(&self, idx: usize) -> usize {
        self.block_last[idx] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_isa::ireg;

    #[test]
    fn splits_at_branch_targets_and_terminators() {
        // 0: li ; 1: li ; 2: addi ; 3: bgtz ->2 ; 4: nop ; 5: syscall
        let code = vec![
            Instr::Li {
                rd: ireg::T0,
                imm: 1,
            },
            Instr::Li {
                rd: ireg::T1,
                imm: 2,
            },
            Instr::AddI {
                rd: ireg::T0,
                rs: ireg::T0,
                imm: -1,
            },
            Instr::Bgtz {
                rs: ireg::T0,
                target: 2,
            },
            Instr::Nop,
            Instr::Syscall,
        ];
        let r = DecodedRegion::decode(0x10000, &code);
        assert_eq!(r.start(), 0x10000);
        assert_eq!(r.end(), 0x10000 + 6 * 4);
        assert_eq!(r.len(), 6);
        // Index 2 is a branch target, so the run from 0 stops at 1.
        assert_eq!(r.block_last(0), 1);
        assert_eq!(r.block_last(1), 1);
        // The run from the leader at 2 extends through the branch at 3.
        assert_eq!(r.block_last(2), 3);
        assert_eq!(r.block_last(3), 3);
        // Syscall terminates its own run.
        assert_eq!(r.block_last(4), 5);
        assert_eq!(r.block_last(5), 5);
    }

    #[test]
    fn decoded_instrs_carry_dispatch_and_cycles() {
        let code = vec![
            Instr::Nop,
            Instr::Mul {
                rd: ireg::T0,
                rs: ireg::T1,
                rt: ireg::T2,
            },
        ];
        let r = DecodedRegion::decode(0, &code);
        assert_eq!(r.instr_at(0).instr, Instr::Nop);
        assert_eq!(u64::from(r.instr_at(1).base_cycles), code[1].base_cycles());
        assert_ne!(r.instr_at(0).op, r.instr_at(1).op);
    }

    #[test]
    fn out_of_range_targets_are_ignored() {
        let code = vec![Instr::J { target: 99 }];
        let r = DecodedRegion::decode(0, &code);
        assert_eq!(r.block_last(0), 0);
    }
}
