//! The CPU-side port of the shared step semantics, plus the flat op table.
//!
//! The per-instruction handler bodies live in [`cheri_sem::ops`] — this
//! module only supplies what the pure semantics cannot know about:
//! [`CpuPorts`] implements the [`MemoryPort`]/[`TrapPort`] surface on top
//! of the core's TLB, batched cache-event sink and derivation trace, and
//! `with_op_list!` instantiates the flat [`OP_TABLE`] for threaded
//! dispatch. The table is generated from the semantics crate's own
//! handler-name list, so it cannot drift out of sync with
//! [`dispatch_index`]: a handler's position in [`OP_TABLE`] is, by
//! construction, the index `dispatch_index` assigns to its pattern.

use crate::cpu::{Cpu, TrapCause, TrapInfo};
use cheri_cap::{CapFault, Capability};
use cheri_isa::Instr;
use cheri_mem::AccessKind;
use cheri_sem::{MemoryPort, SemExit, StepCtx, TrapPort};
use cheri_vm::{Access, AsId, Vm};

pub(crate) use cheri_sem::ops::dispatch_index;

/// What one instruction produces: `Ok(None)` to continue, `Ok(Some(exit))`
/// to leave the run loop, `Err(trap)` on a fault (with `rf.pc` still at
/// the faulting instruction).
pub(crate) type OpResult = Result<Option<SemExit>, TrapInfo>;

/// Handler signature shared by every slot of [`OP_TABLE`].
pub(crate) type OpFn = fn(&mut CpuPorts<'_, '_>, &mut StepCtx<'_>, Instr) -> OpResult;

/// The superblock machine's implementation of the semantics port traits:
/// translations go through the TLB, cache events through the (possibly
/// batched) event sink, derivations into the Figure 5 trace.
pub(crate) struct CpuPorts<'c, 'v> {
    /// The core (TLB, caches, counters, trace).
    pub cpu: &'c mut Cpu,
    /// Virtual memory of the executing address space.
    pub vm: &'v mut Vm,
    /// The executing address space.
    pub id: AsId,
}

impl TrapPort for CpuPorts<'_, '_> {
    type Fault = TrapInfo;

    fn cap_fault(&mut self, pc: u64, fault: CapFault, vaddr: Option<u64>) -> TrapInfo {
        TrapInfo {
            cause: TrapCause::Cap(fault),
            pc,
            vaddr,
        }
    }

    fn charge_cycles(&mut self, cycles: u64) {
        self.cpu.stats.cycles += cycles;
    }

    fn count_syscall(&mut self) {
        self.cpu.stats.syscalls += 1;
    }

    fn record_derivation(&mut self, cap: &Capability) {
        self.cpu.trace.record(cap);
    }

    fn weaken_sem(&self) -> bool {
        self.cpu.weaken_sem()
    }
}

impl MemoryPort for CpuPorts<'_, '_> {
    fn read_raw(&mut self, vaddr: u64, size: u64, pc: u64) -> Result<u64, TrapInfo> {
        let pa = self
            .cpu
            .translate_cached(self.vm, self.id, vaddr, Access::Read, pc)?;
        self.cpu.mem_access(pa, AccessKind::Load);
        let mut buf = [0u8; 8];
        self.vm
            .read_bytes(self.id, vaddr, &mut buf[..size as usize])
            .map_err(|e| TrapInfo {
                cause: TrapCause::Vm(e),
                pc,
                vaddr: Some(vaddr),
            })?;
        Ok(u64::from_le_bytes(buf))
    }

    fn write_raw(&mut self, vaddr: u64, size: u64, value: u64, pc: u64) -> Result<(), TrapInfo> {
        let pa = self
            .cpu
            .translate_cached(self.vm, self.id, vaddr, Access::Write, pc)?;
        self.cpu.mem_access(pa, AccessKind::Store);
        let bytes = value.to_le_bytes();
        self.vm
            .write_bytes(self.id, vaddr, &bytes[..size as usize])
            .map_err(|e| TrapInfo {
                cause: TrapCause::Vm(e),
                pc,
                vaddr: Some(vaddr),
            })
    }

    fn read_granule(&mut self, vaddr: u64, pc: u64) -> Result<Option<Capability>, TrapInfo> {
        let pa = self
            .cpu
            .translate_cached(self.vm, self.id, vaddr, Access::Read, pc)?;
        self.cpu.mem_access(pa, AccessKind::Load);
        self.vm.load_cap(self.id, vaddr).map_err(|e| TrapInfo {
            cause: TrapCause::Vm(e),
            pc,
            vaddr: Some(vaddr),
        })
    }

    fn write_granule(&mut self, vaddr: u64, value: Capability, pc: u64) -> Result<(), TrapInfo> {
        let pa = self
            .cpu
            .translate_cached(self.vm, self.id, vaddr, Access::Write, pc)?;
        self.cpu.mem_access(pa, AccessKind::Store);
        self.vm
            .store_cap(self.id, vaddr, value)
            .map_err(|e| TrapInfo {
                cause: TrapCause::Vm(e),
                pc,
                vaddr: Some(vaddr),
            })
    }
}

/// The reference interpreter's implementation of the semantics port
/// traits: every translation takes the full VM walk, every cache event is
/// replayed into the model immediately, and nothing is ever weakened. The
/// deliberately simple second consumer of `cheri-sem` — what the fast
/// machine is diffed against under `--oracle`.
pub(crate) struct RefPorts<'c, 'v> {
    /// The core (caches, counters, trace).
    pub cpu: &'c mut Cpu,
    /// Virtual memory of the executing address space.
    pub vm: &'v mut Vm,
    /// The executing address space.
    pub id: AsId,
}

impl RefPorts<'_, '_> {
    fn translate(&mut self, vaddr: u64, access: Access, pc: u64) -> Result<u64, TrapInfo> {
        self.vm
            .translate(self.id, vaddr, access)
            .map(|pa| pa.0)
            .map_err(|e| TrapInfo {
                cause: TrapCause::Vm(e),
                pc,
                vaddr: Some(vaddr),
            })
    }

    fn access(&mut self, pa: u64, kind: AccessKind) {
        self.cpu.stats.cycles += self.cpu.caches.access(pa, kind);
    }
}

impl TrapPort for RefPorts<'_, '_> {
    type Fault = TrapInfo;

    fn cap_fault(&mut self, pc: u64, fault: CapFault, vaddr: Option<u64>) -> TrapInfo {
        TrapInfo {
            cause: TrapCause::Cap(fault),
            pc,
            vaddr,
        }
    }

    fn charge_cycles(&mut self, cycles: u64) {
        self.cpu.stats.cycles += cycles;
    }

    fn count_syscall(&mut self) {
        self.cpu.stats.syscalls += 1;
    }

    fn record_derivation(&mut self, cap: &Capability) {
        self.cpu.trace.record(cap);
    }
}

impl MemoryPort for RefPorts<'_, '_> {
    fn read_raw(&mut self, vaddr: u64, size: u64, pc: u64) -> Result<u64, TrapInfo> {
        let pa = self.translate(vaddr, Access::Read, pc)?;
        self.access(pa, AccessKind::Load);
        let mut buf = [0u8; 8];
        self.vm
            .read_bytes(self.id, vaddr, &mut buf[..size as usize])
            .map_err(|e| TrapInfo {
                cause: TrapCause::Vm(e),
                pc,
                vaddr: Some(vaddr),
            })?;
        Ok(u64::from_le_bytes(buf))
    }

    fn write_raw(&mut self, vaddr: u64, size: u64, value: u64, pc: u64) -> Result<(), TrapInfo> {
        let pa = self.translate(vaddr, Access::Write, pc)?;
        self.access(pa, AccessKind::Store);
        let bytes = value.to_le_bytes();
        self.vm
            .write_bytes(self.id, vaddr, &bytes[..size as usize])
            .map_err(|e| TrapInfo {
                cause: TrapCause::Vm(e),
                pc,
                vaddr: Some(vaddr),
            })
    }

    fn read_granule(&mut self, vaddr: u64, pc: u64) -> Result<Option<Capability>, TrapInfo> {
        let pa = self.translate(vaddr, Access::Read, pc)?;
        self.access(pa, AccessKind::Load);
        self.vm.load_cap(self.id, vaddr).map_err(|e| TrapInfo {
            cause: TrapCause::Vm(e),
            pc,
            vaddr: Some(vaddr),
        })
    }

    fn write_granule(&mut self, vaddr: u64, value: Capability, pc: u64) -> Result<(), TrapInfo> {
        let pa = self.translate(vaddr, Access::Write, pc)?;
        self.access(pa, AccessKind::Store);
        self.vm
            .store_cap(self.id, vaddr, value)
            .map_err(|e| TrapInfo {
                cause: TrapCause::Vm(e),
                pc,
                vaddr: Some(vaddr),
            })
    }
}

macro_rules! define_table {
    ($($name:ident),+ $(,)?) => {
        /// Monomorphised handler entry points: one `fn` item per semantics
        /// handler, instantiated at `CpuPorts`, so the table below is a
        /// flat array of plain function pointers.
        mod wrappers {
            use super::*;
            $(
                pub(crate) fn $name(
                    p: &mut CpuPorts<'_, '_>,
                    cx: &mut StepCtx<'_>,
                    instr: Instr,
                ) -> OpResult {
                    cheri_sem::ops::$name(p, cx, instr)
                }
            )+
        }

        /// The flat dispatch table, indexed by [`dispatch_index`].
        pub(crate) static OP_TABLE: &[OpFn] = &[$(wrappers::$name),+];
    };
}

cheri_sem::with_op_list!(define_table);

#[cfg(test)]
mod tests {
    #[test]
    fn table_covers_every_handler() {
        assert_eq!(super::OP_TABLE.len(), cheri_sem::ops::OP_NAMES.len());
    }
}
