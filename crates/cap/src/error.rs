//! Capability fault causes, mirroring the CHERI exception cause register.

use std::error::Error;
use std::fmt;

/// The reason a capability operation or capability-mediated access trapped.
///
/// These map one-for-one onto CHERI-MIPS capability exception causes; the
/// simulated kernel converts them into the signal it delivers (`SIGPROT` in
/// CheriBSD, modelled here as a distinct process exit status), and the
/// compatibility study (Table 2) classifies them back into source-change
/// categories.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CapFault {
    /// The capability's tag was clear (provenance violation).
    TagViolation,
    /// The capability was sealed and the operation requires it unsealed.
    SealViolation,
    /// Object types did not match during unseal/invoke.
    TypeViolation,
    /// The access or derivation fell outside the capability's bounds.
    LengthViolation,
    /// Requested bounds were not exactly representable in the compressed
    /// format (`CSetBoundsExact`).
    RepresentabilityViolation,
    /// Attempt to widen bounds or permissions.
    MonotonicityViolation,
    /// `LOAD` permission missing.
    PermitLoadViolation,
    /// `STORE` permission missing.
    PermitStoreViolation,
    /// `EXECUTE` permission missing.
    PermitExecuteViolation,
    /// `LOAD_CAP` permission missing for a tagged load.
    PermitLoadCapViolation,
    /// `STORE_CAP` permission missing for a tagged store.
    PermitStoreCapViolation,
    /// Storing a local (non-global) capability without `STORE_LOCAL_CAP`.
    PermitStoreLocalCapViolation,
    /// `SEAL` permission missing on the sealing capability.
    PermitSealViolation,
    /// `UNSEAL` permission missing on the unsealing capability.
    PermitUnsealViolation,
    /// Access to system registers without `SYSTEM_REGS`.
    AccessSystemRegsViolation,
    /// Software-defined permission (e.g. `VMMAP`) missing; raised by the
    /// kernel rather than the hardware.
    UserPermViolation,
    /// A capability load or store at an address not aligned to the
    /// capability size.
    UnalignedCapAccess,
    /// Data access with size/alignment the ISA cannot perform.
    UnalignedDataAccess,
    /// An operation was attempted on the NULL / untagged DDC (CheriABI sets
    /// DDC to NULL, so every legacy load/store raises this).
    DdcNull,
}

impl CapFault {
    /// Short stable mnemonic used in traces and table output.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            CapFault::TagViolation => "tag",
            CapFault::SealViolation => "seal",
            CapFault::TypeViolation => "type",
            CapFault::LengthViolation => "length",
            CapFault::RepresentabilityViolation => "repr",
            CapFault::MonotonicityViolation => "monotonic",
            CapFault::PermitLoadViolation => "perm-load",
            CapFault::PermitStoreViolation => "perm-store",
            CapFault::PermitExecuteViolation => "perm-exec",
            CapFault::PermitLoadCapViolation => "perm-loadcap",
            CapFault::PermitStoreCapViolation => "perm-storecap",
            CapFault::PermitStoreLocalCapViolation => "perm-storelocal",
            CapFault::PermitSealViolation => "perm-seal",
            CapFault::PermitUnsealViolation => "perm-unseal",
            CapFault::AccessSystemRegsViolation => "perm-sysregs",
            CapFault::UserPermViolation => "perm-user",
            CapFault::UnalignedCapAccess => "align-cap",
            CapFault::UnalignedDataAccess => "align-data",
            CapFault::DdcNull => "ddc-null",
        }
    }

    /// Whether the fault indicates a *spatial* memory-safety violation (used
    /// by the BOdiagsuite scoring in Table 3).
    #[must_use]
    pub fn is_spatial(self) -> bool {
        matches!(
            self,
            CapFault::LengthViolation
                | CapFault::PermitLoadViolation
                | CapFault::PermitStoreViolation
                | CapFault::TagViolation
        )
    }
}

impl fmt::Display for CapFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "capability fault: {}", self.mnemonic())
    }
}

impl Error for CapFault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_are_unique() {
        let all = [
            CapFault::TagViolation,
            CapFault::SealViolation,
            CapFault::TypeViolation,
            CapFault::LengthViolation,
            CapFault::RepresentabilityViolation,
            CapFault::MonotonicityViolation,
            CapFault::PermitLoadViolation,
            CapFault::PermitStoreViolation,
            CapFault::PermitExecuteViolation,
            CapFault::PermitLoadCapViolation,
            CapFault::PermitStoreCapViolation,
            CapFault::PermitStoreLocalCapViolation,
            CapFault::PermitSealViolation,
            CapFault::PermitUnsealViolation,
            CapFault::AccessSystemRegsViolation,
            CapFault::UserPermViolation,
            CapFault::UnalignedCapAccess,
            CapFault::UnalignedDataAccess,
            CapFault::DdcNull,
        ];
        let mut seen = std::collections::HashSet::new();
        for f in all {
            assert!(
                seen.insert(f.mnemonic()),
                "duplicate mnemonic {}",
                f.mnemonic()
            );
        }
    }

    #[test]
    fn spatial_classification() {
        assert!(CapFault::LengthViolation.is_spatial());
        assert!(!CapFault::SealViolation.is_spatial());
    }

    #[test]
    fn display_mentions_cause() {
        assert_eq!(CapFault::DdcNull.to_string(), "capability fault: ddc-null");
    }
}
