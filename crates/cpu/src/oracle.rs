//! The lockstep oracle: a side-effect-free shadow of every dispatched
//! instruction.
//!
//! After the fast machine executes an instruction, the shadow re-executes
//! the *same* semantics handler (from [`cheri_sem::ops`]) against the
//! pre-instruction register file, with memory observed read-only through
//! the VM's peek interface — no faults taken, no statistics touched, no
//! cache events emitted. Any difference between the shadow's outcome and
//! the fast machine's (exit kind, successor pc, full register file, or
//! what a store actually left in memory) is recorded as a [`Divergence`].
//!
//! Because both sides run the same handler bodies, a clean run proves the
//! superblock machinery (TLB, decode-once regions, re-entry cache, event
//! batching) is observationally equivalent to plain semantics — and the
//! `--weaken-sem` self-test proves the comparison actually has teeth.

use cheri_cap::{CapFault, Capability};
use cheri_isa::Instr;
use cheri_sem::{MemoryPort, RegFile, SemExit, StepCtx, TrapPort};
use cheri_vm::{Access, AsId, Vm};

use crate::cpu::{TrapCause, TrapInfo};

/// A detected fast-vs-shadow divergence: the `--oracle` diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Address of the diverging instruction.
    pub pc: u64,
    /// Instructions retired (fast machine) when the divergence was seen.
    pub instret: u64,
    /// Human-readable description of what differed.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "divergence at pc={:#x} instret={}: {}",
            self.pc, self.instret, self.detail
        )
    }
}

/// Armed lockstep state on a [`crate::Cpu`].
pub(crate) struct LockstepState {
    /// Check cadence: every N retired instructions (1 = every step). Trap
    /// and run-exit boundaries are always checked regardless.
    pub every: u64,
    /// Steps until the next cadence-driven check.
    pub countdown: u64,
    /// Whether to verify store contents against memory after the fact.
    /// Disabled while a fault plan is armed: injected bit-flips corrupt
    /// granules behind the architecture's back, which is exactly the
    /// non-architectural behaviour the fault plane exists to create.
    pub verify_stores: bool,
    /// First divergence observed; checking stops once one is recorded.
    pub divergence: Option<Divergence>,
}

/// The shadow's trap representation: enough to match against the fast
/// machine's [`TrapInfo`] without the shadow having to reproduce the VM's
/// exact error (the shadow cannot fault pages in, so any non-resident
/// access maps to [`ShadowFault::Mem`]).
#[derive(Clone, Copy, Debug)]
enum ShadowFault {
    /// A capability check failed, with the data address involved.
    Cap(CapFault, Option<u64>),
    /// A memory access the shadow could not service read-only — the fast
    /// machine must have taken a VM fault at the same address.
    Mem(u64),
}

/// Read-only semantics port over the post-instruction VM: observes memory
/// via peeks, never mutates anything, never counts anything.
struct ShadowPorts<'v> {
    vm: &'v Vm,
    id: AsId,
    verify_stores: bool,
    store_mismatch: Option<String>,
}

impl TrapPort for ShadowPorts<'_> {
    type Fault = ShadowFault;

    fn cap_fault(&mut self, _pc: u64, fault: CapFault, vaddr: Option<u64>) -> ShadowFault {
        ShadowFault::Cap(fault, vaddr)
    }
}

impl MemoryPort for ShadowPorts<'_> {
    fn read_raw(&mut self, vaddr: u64, size: u64, _pc: u64) -> Result<u64, ShadowFault> {
        let mut buf = [0u8; 8];
        self.vm
            .peek_bytes(self.id, vaddr, &mut buf[..size as usize])
            .ok_or(ShadowFault::Mem(vaddr))?;
        Ok(u64::from_le_bytes(buf))
    }

    fn write_raw(
        &mut self,
        vaddr: u64,
        size: u64,
        value: u64,
        _pc: u64,
    ) -> Result<(), ShadowFault> {
        // The fast machine ran first: if the page is not writable now, its
        // store must have trapped (a successful store leaves the page
        // resident, COW-resolved and writable).
        if self.vm.lookup(self.id, vaddr, Access::Write).is_none() {
            return Err(ShadowFault::Mem(vaddr));
        }
        if self.verify_stores && self.store_mismatch.is_none() {
            let mut buf = [0u8; 8];
            match self
                .vm
                .peek_bytes(self.id, vaddr, &mut buf[..size as usize])
            {
                None => return Err(ShadowFault::Mem(vaddr)),
                Some(()) => {
                    let got = u64::from_le_bytes(buf);
                    let want = if size == 8 {
                        value
                    } else {
                        value & ((1u64 << (size * 8)) - 1)
                    };
                    if got != want {
                        self.store_mismatch = Some(format!(
                            "store of {size} bytes at {vaddr:#x}: memory holds {got:#x}, semantics wrote {want:#x}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    fn read_granule(&mut self, vaddr: u64, _pc: u64) -> Result<Option<Capability>, ShadowFault> {
        self.vm
            .peek_cap(self.id, vaddr)
            .ok_or(ShadowFault::Mem(vaddr))
    }

    fn write_granule(
        &mut self,
        vaddr: u64,
        value: Capability,
        _pc: u64,
    ) -> Result<(), ShadowFault> {
        if self.vm.lookup(self.id, vaddr, Access::Write).is_none() {
            return Err(ShadowFault::Mem(vaddr));
        }
        if self.verify_stores && self.store_mismatch.is_none() {
            match self.vm.peek_cap(self.id, vaddr) {
                None => return Err(ShadowFault::Mem(vaddr)),
                Some(stored) => {
                    if value.tag() {
                        if stored != Some(value) {
                            self.store_mismatch = Some(format!(
                                "capability store at {vaddr:#x} did not round-trip: memory holds {stored:?}, semantics stored {value:?}"
                            ));
                        }
                    } else if stored.is_some() {
                        self.store_mismatch = Some(format!(
                            "untagged capability store at {vaddr:#x} left the granule tagged"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Re-executes one instruction in the shadow and compares every observable
/// outcome against the fast machine's. Returns `Some(detail)` on mismatch.
///
/// `post`/`post_next` are the fast machine's register file and successor
/// address *after* the handler ran (pc not yet committed); `pre` is a clone
/// taken just before dispatch. `res` is the fast handler's raw result.
#[allow(clippy::too_many_arguments)]
pub(crate) fn check_step(
    vm: &Vm,
    id: AsId,
    pre: &RegFile,
    post: &RegFile,
    post_next: u64,
    pc: u64,
    rstart: u64,
    instr: Instr,
    res: &Result<Option<SemExit>, TrapInfo>,
    verify_stores: bool,
) -> Option<String> {
    let mut srf = pre.clone();
    let snext;
    let mut sp = ShadowPorts {
        vm,
        id,
        verify_stores,
        store_mismatch: None,
    };
    let sres = {
        let mut scx = StepCtx {
            rf: &mut srf,
            pc,
            next: pc.wrapping_add(4),
            rstart,
        };
        let r = cheri_sem::ops::step_instr(&mut sp, &mut scx, instr);
        snext = scx.next;
        r
    };
    match (res, sres) {
        (Ok(fast), Ok(shadow)) => {
            if *fast != shadow {
                return Some(format!("exit mismatch: fast {fast:?}, shadow {shadow:?}"));
            }
            if post_next != snext {
                return Some(format!(
                    "successor pc mismatch: fast {post_next:#x}, shadow {snext:#x}"
                ));
            }
            if let Some(m) = sp.store_mismatch {
                return Some(m);
            }
            if *post != srf {
                return Some(regfile_delta(post, &srf));
            }
            None
        }
        (Err(t), Err(sf)) => match sf {
            ShadowFault::Cap(fault, vaddr) => {
                if t.cause == TrapCause::Cap(fault) && t.vaddr == vaddr {
                    None
                } else {
                    Some(format!(
                        "trap mismatch: fast {t:?}, shadow capability fault {fault:?} at {vaddr:?}"
                    ))
                }
            }
            // The shadow cannot reproduce the VM's exact error kind, so any
            // VM-classified fast trap matches a shadow memory refusal.
            ShadowFault::Mem(va) => {
                if matches!(t.cause, TrapCause::Vm(_)) {
                    None
                } else {
                    Some(format!(
                        "trap mismatch: fast {t:?}, shadow memory fault at {va:#x}"
                    ))
                }
            }
        },
        (Ok(fast), Err(sf)) => Some(format!(
            "fast machine continued ({fast:?}) where the shadow faulted ({sf:?})"
        )),
        (Err(t), Ok(shadow)) => Some(format!(
            "fast machine trapped ({t:?}) where the shadow continued ({shadow:?})"
        )),
    }
}

/// Lists every architectural register that differs between the fast and
/// shadow post-states.
fn regfile_delta(fast: &RegFile, shadow: &RegFile) -> String {
    let mut diffs = Vec::new();
    for i in 0..32 {
        if fast.gpr[i] != shadow.gpr[i] {
            diffs.push(format!(
                "r{i}: fast {:#x}, shadow {:#x}",
                fast.gpr[i], shadow.gpr[i]
            ));
        }
    }
    for i in 0..32 {
        if fast.caps[i] != shadow.caps[i] {
            diffs.push(format!(
                "c{i}: fast {:?}, shadow {:?}",
                fast.caps[i], shadow.caps[i]
            ));
        }
    }
    if fast.pcc != shadow.pcc {
        diffs.push(format!("pcc: fast {:?}, shadow {:?}", fast.pcc, shadow.pcc));
    }
    if fast.ddc != shadow.ddc {
        diffs.push(format!("ddc: fast {:?}, shadow {:?}", fast.ddc, shadow.ddc));
    }
    if fast.pc != shadow.pc {
        diffs.push(format!("pc: fast {:#x}, shadow {:#x}", fast.pc, shadow.pc));
    }
    format!("register state diverged: {}", diffs.join("; "))
}
