//! Runs the full generated corpus under both ABIs and checks the Table 1
//! shape: CheriABI passes the overwhelming majority, fails exactly the
//! seeded compatibility idioms, and skips the `sbrk`/shim tests.

use cheri_corpus::families::{freebsd_suite, libcxx_suite};
use cheri_corpus::minidb::{build_initdb, initdb_expected_exit, pg_regress_suite};
use cheri_corpus::suite::{
    run_case, run_suite, run_suite_jobs, FailureKind, SuiteOutcome, TestCase,
};
use cheri_corpus::TestExpectation;
use cheri_isa::codegen::CodegenOpts;
use cheri_kernel::{AbiMode, ExitStatus, Kernel, KernelConfig, SpawnOpts};

/// Every test behaves exactly as its expectation declares, under both ABIs.
/// (This is the corpus's own self-check; the Table 1 binary only tallies.)
#[test]
fn freebsd_corpus_matches_expectations() {
    let cases = freebsd_suite();
    assert!(cases.len() >= 200, "corpus has {} cases", cases.len());
    for case in &cases {
        let m = run_case(case, AbiMode::Mips64);
        let c = run_case(case, AbiMode::CheriAbi);
        match case.expectation {
            TestExpectation::PassBoth => {
                assert_eq!(m, SuiteOutcome::Pass, "{} mips64", case.name);
                assert_eq!(c, SuiteOutcome::Pass, "{} cheriabi", case.name);
            }
            TestExpectation::FailCheriOnly(_) => {
                assert_eq!(m, SuiteOutcome::Pass, "{} mips64", case.name);
                assert!(
                    matches!(c, SuiteOutcome::Fail(_)),
                    "{} cheriabi: {c:?}",
                    case.name
                );
            }
            TestExpectation::FailBoth => {
                assert!(matches!(m, SuiteOutcome::Fail(_)), "{} mips64", case.name);
                assert!(matches!(c, SuiteOutcome::Fail(_)), "{} cheriabi", case.name);
            }
            TestExpectation::SkipBoth => {
                assert_eq!(m, SuiteOutcome::Skip, "{} mips64", case.name);
                assert_eq!(c, SuiteOutcome::Skip, "{} cheriabi", case.name);
            }
            TestExpectation::SkipCheriOnly => {
                assert_eq!(m, SuiteOutcome::Pass, "{} mips64", case.name);
                assert_eq!(c, SuiteOutcome::Skip, "{} cheriabi", case.name);
            }
        }
    }
}

/// Aggregate Table 1 shape for the FreeBSD-suite stand-in.
#[test]
fn freebsd_suite_shape() {
    let cases = freebsd_suite();
    let m = run_suite(&cases, AbiMode::Mips64);
    let c = run_suite(&cases, AbiMode::CheriAbi);
    assert_eq!(m.total(), c.total());
    // CheriABI passes fewer (the seeded idioms), skips slightly more.
    assert!(c.pass < m.pass);
    assert!(c.fail > m.fail);
    assert!(c.skip >= m.skip);
    // But still passes the overwhelming majority (paper: ~90%).
    assert!(c.pass * 10 >= c.total() * 8, "cheriabi pass rate: {c}");
}

/// pg_regress: 167 tests, 0 failures on mips64, exactly 16 under CheriABI
/// (8 pointer-size, 1 alignment, 7 packed-tuple), as in Table 1.
#[test]
fn pg_regress_shape() {
    let cases = pg_regress_suite();
    assert_eq!(cases.len(), 167);
    let m = run_suite(&cases, AbiMode::Mips64);
    assert_eq!(m.fail, 0, "mips64 failures: {:?}", m.failures);
    assert_eq!(m.pass, 167);
    let c = run_suite(&cases, AbiMode::CheriAbi);
    assert_eq!(c.fail, 16, "cheriabi failures: {:?}", c.failures);
    assert_eq!(c.pass, 150);
    assert_eq!(c.skip, 1);
}

/// The libc++-like subsuite: 5 extra CheriABI failures (atomics runtime).
#[test]
fn libcxx_suite_shape() {
    let cases = libcxx_suite();
    let m = run_suite(&cases, AbiMode::Mips64);
    let c = run_suite(&cases, AbiMode::CheriAbi);
    assert_eq!(m.fail, 0);
    assert_eq!(c.fail, 5, "failures: {:?}", c.failures);
}

/// The harness produces bit-identical aggregates at any worker count: one
/// worker and eight workers must agree on every tally *and* on the order
/// of the failure list (which feeds Table 2 classification).
#[test]
fn suite_results_are_identical_at_any_job_count() {
    let cases = freebsd_suite();
    for abi in [AbiMode::Mips64, AbiMode::CheriAbi] {
        let seq = run_suite_jobs(&cases, abi, 1);
        let par = run_suite_jobs(&cases, abi, 8);
        assert_eq!(seq, par, "{abi}: aggregates diverge across job counts");
    }
    // run_suite is the sequential path.
    assert_eq!(
        run_suite(&cases, AbiMode::CheriAbi),
        run_suite_jobs(&cases, AbiMode::CheriAbi, 8)
    );
}

/// A case whose lowering panics — here, a suite entry naming a program the
/// registry does not define — becomes a Fail report (its own failure
/// entry) without taking down the suite or any sibling case.
#[test]
fn panicking_case_is_a_fail_report() {
    let mut cases = freebsd_suite();
    cases.truncate(6);
    cases.insert(
        3,
        TestCase {
            name: "corpus-panics".to_string(),
            build: std::sync::Arc::new(|_| unreachable!("never looked up")),
            expectation: TestExpectation::FailBoth,
        },
    );
    let r = run_suite_jobs(&cases, AbiMode::Mips64, 4);
    assert_eq!(r.total(), 7);
    let kind = r
        .failures
        .iter()
        .find(|(name, _)| name == "corpus-panics")
        .map(|(_, kind)| kind.clone())
        .expect("panicking case reported as a failure");
    assert_eq!(
        kind,
        FailureKind::Panicked("no corpus case named `corpus-panics`".to_string())
    );
}

/// A case that exceeds its wall-clock deadline is scored as its own
/// failure kind instead of stalling a harness worker.
#[test]
fn deadline_miss_is_a_fail_report() {
    use cheri_corpus::suite::{registry, score, suite_from_reports};
    use cheriabi::harness::{Harness, RunSpec};
    use cheriabi::spec::ProgramSpec;
    use std::time::Duration;

    let spin = RunSpec::new(
        "spins-forever",
        ProgramSpec::Spin { iters: i64::MAX },
        CodegenOpts::mips64(),
        AbiMode::Mips64,
    )
    .with_budget(50_000_000)
    .with_deadline(Duration::from_millis(5));
    let reports = Harness::new(2).run(&registry(), &[spin]);
    assert_eq!(
        score(&reports[0].outcome),
        SuiteOutcome::Fail(FailureKind::Deadline)
    );
    let tally = suite_from_reports(&reports);
    assert_eq!(tally.fail, 1);
    assert_eq!(
        tally.failures,
        vec![("spins-forever".to_string(), FailureKind::Deadline)]
    );
}

/// initdb runs to completion with the same output under both ABIs (it is
/// the §5.2 macro-benchmark, so correctness parity matters).
#[test]
fn initdb_runs_identically_on_both_abis() {
    let records = 120;
    for (abi, opts) in [
        (AbiMode::Mips64, CodegenOpts::mips64()),
        (AbiMode::CheriAbi, CodegenOpts::purecap()),
    ] {
        let program = build_initdb(opts, records);
        let mut k = Kernel::new(KernelConfig::default());
        let (status, _) = k.run_program(&program, &SpawnOpts::new(abi)).unwrap();
        assert_eq!(
            status,
            ExitStatus::Code(initdb_expected_exit(records)),
            "{abi}"
        );
        // The catalog files were written.
        assert!(k.memfs.contains_key("catalog"), "{abi}");
        assert!(k.memfs.contains_key("pg_ctrl"), "{abi}");
        assert_eq!(k.memfs["catalog"].len(), 96 * 8, "{abi}");
        // Catalog keys are sorted ascending.
        let keys: Vec<u64> = k.memfs["catalog"]
            .chunks(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "{abi}: catalog index sorted");
    }
}

/// initdb under AddressSanitizer instrumentation still produces the right
/// answer (the §5.2 software baseline) — and pays for it in instructions.
#[test]
fn initdb_runs_under_asan() {
    let records = 120;
    let program = build_initdb(CodegenOpts::mips64_asan(), records);
    let mut k = Kernel::new(KernelConfig::default());
    let mut opts = SpawnOpts::new(AbiMode::Mips64);
    opts.asan = true;
    let (status, _) = k.run_program(&program, &opts).unwrap();
    assert_eq!(status, ExitStatus::Code(initdb_expected_exit(records)));
}
