//! Scenario-plane determinism: latency percentiles (and everything else in
//! the deterministic line format) must be byte-identical across worker
//! counts and across the superblock fast path vs. the single-step
//! interpreter.

use cheri_corpus::suite::{opts_for, registry};
use cheri_kernel::{AbiMode, KernelConfig};
use cheriabi::harness::{execute_spec, CaseOutcome, Harness, RunSpec};
use cheriabi::spec::ProgramSpec;
use cheriabi::ExitStatus;

fn scenario_specs() -> Vec<RunSpec> {
    let tight_pipes = KernelConfig {
        pipe_capacity: 6,
        ..KernelConfig::default()
    };
    let mut specs = Vec::new();
    for (abi, tag) in [(AbiMode::Mips64, "mips64"), (AbiMode::CheriAbi, "purecap")] {
        for (clients, queries) in [(1u64, 4u64), (3, 4)] {
            specs.push(
                RunSpec::new(
                    format!("scenario-{tag}-c{clients}"),
                    ProgramSpec::Scenario {
                        clients,
                        queries,
                        mix: "mixed".to_string(),
                        swap_pressure: false,
                    },
                    opts_for(abi),
                    abi,
                )
                .with_seed(11)
                .with_config(tight_pipes),
            );
        }
    }
    specs
}

#[test]
fn scenario_reports_identical_across_job_counts() {
    let registry = registry();
    let specs = scenario_specs();
    let one = Harness::new(1).run(&registry, &specs);
    let eight = Harness::new(8).run(&registry, &specs);
    for (a, b) in one.iter().zip(&eight) {
        assert_eq!(
            a.outcome,
            CaseOutcome::Exited(ExitStatus::Code(0)),
            "{}",
            a.name
        );
        assert!(a.scenario.is_some(), "{}: scenario stats present", a.name);
        assert_eq!(
            a.to_json_deterministic(0).to_string(),
            b.to_json_deterministic(0).to_string(),
            "{}: jobs=1 vs jobs=8",
            a.name
        );
    }
}

#[test]
fn scenario_percentiles_agree_between_execution_modes() {
    let registry = registry();
    for spec in scenario_specs() {
        let fast = execute_spec(&registry, &spec);
        let slow = execute_spec(&registry, &spec.clone().with_fast_path(false));
        assert_eq!(
            fast.to_json_deterministic(0).to_string(),
            slow.to_json_deterministic(0).to_string(),
            "{}: fast path vs single step",
            spec.name
        );
        let stats = fast.scenario.expect("stats");
        assert_eq!(stats.completed, stats.requests, "{}", spec.name);
        assert!(stats.p50 > 0 && stats.p50 <= stats.p95 && stats.p95 <= stats.p99);
    }
}

#[test]
fn scenario_latencies_are_seed_sensitive() {
    // Different seeds shift the key streams and so the probe lengths; the
    // percentiles should not be accidentally seed-blind.
    let registry = registry();
    let spec = |seed: u64| {
        RunSpec::new(
            "scenario-seeded".to_string(),
            ProgramSpec::Scenario {
                clients: 2,
                queries: 6,
                mix: "mixed".to_string(),
                swap_pressure: false,
            },
            opts_for(AbiMode::CheriAbi),
            AbiMode::CheriAbi,
        )
        .with_seed(seed)
    };
    let a = execute_spec(&registry, &spec(1));
    let b = execute_spec(&registry, &spec(2));
    let (sa, sb) = (a.scenario.expect("stats"), b.scenario.expect("stats"));
    assert_ne!((sa.p50, sa.p95, sa.p99), (sb.p50, sb.p95, sb.p99));
}
