//! Static per-op register/memory effects, declared beside each handler.
//!
//! Every entry in the `define_ops!` list in [`crate::ops`] carries a
//! [`RegEffects`] clause naming the integer registers the handler reads and
//! writes and whether it touches capability state, data memory, control
//! flow, or exits the run loop. The template compiler in `cheri-cpu` plans
//! register residency from these sets; because the clause lives on the same
//! macro entry as the handler body (the one body both the fast machine and
//! `RefInterp` execute), the metadata cannot drift from the semantics
//! without the drift-guard test in `ops` failing.

use cheri_isa::IReg;

/// Bitmask over the 32 integer registers.
pub type RegSet = u32;

/// The statically declared effects of one instruction handler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegEffects {
    /// Integer registers the handler may read (bit `i` = `$i`).
    pub int_reads: RegSet,
    /// Integer registers the handler may write (bit `i` = `$i`).
    pub int_writes: RegSet,
    /// Touches capability state: reads or writes a capability register,
    /// PCC or DDC — including handlers that can raise a capability fault
    /// from a derivation check.
    pub caps: bool,
    /// Performs a data-memory access (and can therefore trap on
    /// translation or bounds).
    pub mem: bool,
    /// May redirect control flow (branch, jump, run-loop exit).
    pub control: bool,
    /// Leaves the run loop (`syscall` / `break`).
    pub exit: bool,
}

impl RegEffects {
    /// No declared effects (the `nop` baseline every clause builds on).
    pub const NONE: RegEffects = RegEffects {
        int_reads: 0,
        int_writes: 0,
        caps: false,
        mem: false,
        control: false,
        exit: false,
    };

    /// Adds an integer-register read.
    #[must_use]
    pub const fn ri(mut self, r: IReg) -> RegEffects {
        self.int_reads |= 1 << r.0;
        self
    }

    /// Adds an integer-register write.
    #[must_use]
    pub const fn wi(mut self, r: IReg) -> RegEffects {
        self.int_writes |= 1 << r.0;
        self
    }

    /// Marks capability-state involvement.
    #[must_use]
    pub const fn caps(mut self) -> RegEffects {
        self.caps = true;
        self
    }

    /// Marks a data-memory access.
    #[must_use]
    pub const fn mem(mut self) -> RegEffects {
        self.mem = true;
        self
    }

    /// Marks possible control transfer.
    #[must_use]
    pub const fn ctl(mut self) -> RegEffects {
        self.control = true;
        self
    }

    /// Marks a run-loop exit (implies control transfer).
    #[must_use]
    pub const fn exit(mut self) -> RegEffects {
        self.exit = true;
        self.control = true;
        self
    }

    /// Whether the handler's whole effect is captured by the declared
    /// integer read/write sets plus (optionally) a control transfer — the
    /// precondition for compiling it into a register-resident template.
    /// Such a handler can never trap: it touches no memory and no
    /// capability state, so there is no check to fail.
    #[must_use]
    pub const fn is_pure_int(&self) -> bool {
        !self.caps && !self.mem && !self.exit
    }
}

/// Shorthand constructor for effects clauses: `eff().ri(rs).wi(rd)`.
#[must_use]
pub const fn eff() -> RegEffects {
    RegEffects::NONE
}
