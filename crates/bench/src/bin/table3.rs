//! Regenerates **Table 3**: BOdiagsuite detection counts for mips64,
//! CheriABI and AddressSanitizer at min / med / large overflow magnitudes.

use bodiagsuite::{all_cases, table3_from_reports, table3_specs};
use cheri_bench::cli::{self, json_escape};

fn main() {
    let opts = cli::parse_env();
    let cases = all_cases();
    let specs = table3_specs(&cases);
    let Some(reports) = cli::run_specs(&cheri_bench::registry(), &specs, &opts) else {
        return;
    };
    if !opts.json {
        println!(
            "Table 3: BOdiagsuite tests with detected errors (of {} total)",
            cases.len()
        );
    }
    let table = table3_from_reports(&cases, &reports);
    if opts.json {
        for (config, counts) in &table.detected {
            println!(
                "{{\"table\":\"table3\",\"config\":\"{}\",\"min\":{},\"med\":{},\"large\":{},\"total\":{}}}",
                config.label(),
                counts[0],
                counts[1],
                counts[2],
                cases.len()
            );
        }
        for (id, config, status) in &table.false_positives {
            println!(
                "{{\"table\":\"table3\",\"false_positive\":{{\"case\":{id},\"config\":\"{}\",\"status\":\"{}\"}}}}",
                config.label(),
                json_escape(&format!("{status:?}"))
            );
        }
        for (name, error) in &table.errors {
            println!(
                "{{\"table\":\"table3\",\"error\":{{\"case\":\"{}\",\"message\":\"{}\"}}}}",
                json_escape(name),
                json_escape(error)
            );
        }
        return;
    }
    println!("{table}");
    if !table.false_positives.is_empty() {
        println!(
            "FALSE POSITIVES (ok-variant failures): {:?}",
            table.false_positives
        );
    }
    if !table.errors.is_empty() {
        println!("ERRORS (runs without an exit status): {:?}", table.errors);
    }
    println!("Paper (Table 3):");
    println!("{:<10} {:>6} {:>6} {:>6}", "", "min", "med", "large");
    println!("{:<10} {:>6} {:>6} {:>6}", "mips64", 4, 8, 175);
    println!("{:<10} {:>6} {:>6} {:>6}", "cheriabi", 279, 289, 291);
    println!("{:<10} {:>6} {:>6} {:>6}", "asan", 276, 286, 286);
}
