//! Blocking-pipe semantics for the scenario plane: bounded buffers,
//! writer blocking and wake bookkeeping, deterministic wake ordering, and
//! EOF when the last writer exits (rather than explicitly closing).

use cheri_isa::codegen::{CodegenOpts, FnBuilder, Ptr, Val};
use cheri_isa::Width;
use cheri_kernel::{AbiMode, ExitStatus, Kernel, KernelConfig, RunOutcome, SpawnOpts, Sys};
use cheri_rtld::{Program, ProgramBuilder};

fn opts_for(abi: AbiMode) -> CodegenOpts {
    match abi {
        AbiMode::Mips64 => CodegenOpts::mips64(),
        AbiMode::CheriAbi => CodegenOpts::purecap(),
    }
}

fn program(abi: AbiMode, body: impl FnOnce(&mut FnBuilder<'_>)) -> Program {
    let mut pb = ProgramBuilder::new("pipes");
    let mut exe = pb.object("pipes");
    {
        let mut f = FnBuilder::begin(&mut exe, "main", opts_for(abi));
        body(&mut f);
    }
    exe.set_entry("main");
    pb.add(exe.finish());
    pb.finish()
}

/// Emits `pipe(&fds)` into the stack at offset 16; read fd in `Val(6)`,
/// write fd in `Val(7)`.
fn emit_pipe(f: &mut FnBuilder<'_>) {
    f.addr_of_stack(Ptr(0), 16, 8);
    f.set_arg_ptr(0, Ptr(0));
    f.syscall(Sys::Pipe as i64);
    f.load(Val(6), Ptr(0), 0, Width::W, false);
    f.load(Val(7), Ptr(0), 4, Width::W, false);
}

/// A write larger than the pipe buffer takes what fits and reports the
/// short count (POSIX partial-write semantics, not a truncation error).
#[test]
fn full_pipe_takes_a_partial_write() {
    let config = KernelConfig {
        pipe_capacity: 6,
        ..KernelConfig::default()
    };
    for abi in [AbiMode::Mips64, AbiMode::CheriAbi] {
        let mut k = Kernel::new(config);
        let prog = program(abi, |f| {
            f.enter(96);
            emit_pipe(f);
            f.addr_of_stack(Ptr(1), 32, 8);
            f.li(Val(1), 0x1122_3344_5566_7788u64 as i64);
            f.store(Val(1), Ptr(1), 0, Width::D);
            f.set_arg_val(0, Val(7));
            f.set_arg_ptr(1, Ptr(1));
            f.li(Val(2), 8);
            f.set_arg_val(2, Val(2));
            f.syscall(Sys::Write as i64);
            f.ret_val_to(Val(3)); // 6: only the free space was taken
            f.set_arg_val(0, Val(3));
            f.syscall(Sys::Exit as i64);
        });
        let (status, _) = k.run_program(&prog, &SpawnOpts::new(abi)).expect("loads");
        assert_eq!(status, ExitStatus::Code(6), "{abi}");
    }
}

/// A writer facing a full buffer blocks (no spinning, no error) until a
/// reader drains space, and the kernel counts the block and the wake.
#[test]
fn writer_blocks_on_full_pipe_until_reader_drains() {
    let config = KernelConfig {
        pipe_capacity: 4,
        ..KernelConfig::default()
    };
    for abi in [AbiMode::Mips64, AbiMode::CheriAbi] {
        let mut k = Kernel::new(config);
        let prog = program(abi, |f| {
            f.enter(128);
            emit_pipe(f);
            f.syscall(Sys::Fork as i64);
            f.ret_val_to(Val(0));
            let parent = f.label();
            f.bnez(Val(0), parent);
            // Child: spin long enough for the parent to fill the pipe and
            // block, then drain 4 bytes to wake it.
            f.li(Val(1), 0);
            let spin = f.label();
            f.bind(spin);
            f.add_imm(Val(1), Val(1), 1);
            f.li(Val(2), 20_000);
            f.sub(Val(3), Val(1), Val(2));
            f.bnez(Val(3), spin);
            f.addr_of_stack(Ptr(1), 32, 8);
            f.set_arg_val(0, Val(6));
            f.set_arg_ptr(1, Ptr(1));
            f.li(Val(2), 4);
            f.set_arg_val(2, Val(2));
            f.syscall(Sys::Read as i64);
            f.li(Val(0), 0);
            f.set_arg_val(0, Val(0));
            f.syscall(Sys::Exit as i64);
            // Parent: first write fills the buffer; the second has no
            // space and must block until the child reads.
            f.bind(parent);
            f.addr_of_stack(Ptr(1), 48, 8);
            f.set_arg_val(0, Val(7));
            f.set_arg_ptr(1, Ptr(1));
            f.li(Val(2), 4);
            f.set_arg_val(2, Val(2));
            f.syscall(Sys::Write as i64);
            f.set_arg_val(0, Val(7));
            f.set_arg_ptr(1, Ptr(1));
            f.li(Val(2), 4);
            f.set_arg_val(2, Val(2));
            f.syscall(Sys::Write as i64);
            f.ret_val_to(Val(3));
            f.set_arg_val(0, Val(3));
            f.syscall(Sys::Exit as i64);
        });
        let (status, _) = k.run_program(&prog, &SpawnOpts::new(abi)).expect("loads");
        assert_eq!(
            status,
            ExitStatus::Code(4),
            "{abi}: blocked write completes"
        );
        assert!(k.stats.blocks >= 1, "{abi}: the writer must have slept");
        assert!(k.stats.wakes >= 1, "{abi}: and been woken");
    }
}

/// Two readers blocked on the same pipe wake in pid order when data
/// arrives — the wake scan is sorted, not HashMap-ordered, so schedules
/// (and scenario latency stamps) are reproducible.
#[test]
fn blocked_readers_wake_in_pid_order() {
    for abi in [AbiMode::Mips64, AbiMode::CheriAbi] {
        let mut k = Kernel::new(KernelConfig::default());
        let prog = program(abi, |f| {
            f.enter(128);
            emit_pipe(f);
            // Fork two children; each blocks reading one byte and exits
            // with the byte it got.
            for _ in 0..2 {
                f.syscall(Sys::Fork as i64);
                f.ret_val_to(Val(0));
                let cont = f.label();
                f.bnez(Val(0), cont);
                f.addr_of_stack(Ptr(1), 32, 8);
                f.set_arg_val(0, Val(6));
                f.set_arg_ptr(1, Ptr(1));
                f.li(Val(2), 1);
                f.set_arg_val(2, Val(2));
                f.syscall(Sys::Read as i64);
                f.load(Val(3), Ptr(1), 0, Width::B, false);
                f.set_arg_val(0, Val(3));
                f.syscall(Sys::Exit as i64);
                f.bind(cont);
            }
            // Parent: spin until both children are asleep, then write two
            // bytes at once. The first-forked (lower-pid) child must wake
            // first and take byte 1; the second takes byte 2.
            f.li(Val(1), 0);
            let spin = f.label();
            f.bind(spin);
            f.add_imm(Val(1), Val(1), 1);
            f.li(Val(2), 20_000);
            f.sub(Val(3), Val(1), Val(2));
            f.bnez(Val(3), spin);
            f.addr_of_stack(Ptr(1), 48, 8);
            f.li(Val(2), 0x0201); // little-endian: byte 1 first, then 2
            f.store(Val(2), Ptr(1), 0, Width::H);
            f.set_arg_val(0, Val(7));
            f.set_arg_ptr(1, Ptr(1));
            f.li(Val(2), 2);
            f.set_arg_val(2, Val(2));
            f.syscall(Sys::Write as i64);
            // Reap in exit order: the first zombie must be the first
            // child with byte 1, the second the other with byte 2.
            f.li(Val(5), 0); // accumulated codes
            for _ in 0..2 {
                f.li(Val(1), 0);
                f.set_arg_val(0, Val(1));
                f.syscall(Sys::Waitpid as i64);
                f.ret_val_to(Val(2));
                f.shr_imm(Val(2), Val(2), 8); // exit code
                f.shl_imm(Val(5), Val(5), 4);
                f.add(Val(5), Val(5), Val(2));
            }
            f.set_arg_val(0, Val(5));
            f.syscall(Sys::Exit as i64);
        });
        let (status, _) = k.run_program(&prog, &SpawnOpts::new(abi)).expect("loads");
        assert_eq!(
            status,
            ExitStatus::Code(0x12),
            "{abi}: wake order is pid order"
        );
    }
}

/// When the last writing process *exits* (without closing), the reader
/// gets EOF: process teardown drops fds and the reader is woken.
#[test]
fn reader_gets_eof_when_writer_process_exits() {
    for abi in [AbiMode::Mips64, AbiMode::CheriAbi] {
        let mut k = Kernel::new(KernelConfig::default());
        let prog = program(abi, |f| {
            f.enter(128);
            emit_pipe(f);
            f.syscall(Sys::Fork as i64);
            f.ret_val_to(Val(0));
            let parent = f.label();
            f.bnez(Val(0), parent);
            // Child: write one byte and exit *without* closing anything.
            f.addr_of_stack(Ptr(1), 32, 8);
            f.li(Val(2), 0x5a);
            f.store(Val(2), Ptr(1), 0, Width::B);
            f.set_arg_val(0, Val(7));
            f.set_arg_ptr(1, Ptr(1));
            f.li(Val(2), 1);
            f.set_arg_val(2, Val(2));
            f.syscall(Sys::Write as i64);
            f.li(Val(0), 0);
            f.set_arg_val(0, Val(0));
            f.syscall(Sys::Exit as i64);
            // Parent: close its own write end, consume the byte, then
            // read again — once the child exits, writers hit zero and the
            // blocked read must resolve to EOF (0), not deadlock.
            f.bind(parent);
            f.set_arg_val(0, Val(7));
            f.syscall(Sys::Close as i64);
            f.addr_of_stack(Ptr(2), 48, 8);
            f.set_arg_val(0, Val(6));
            f.set_arg_ptr(1, Ptr(2));
            f.li(Val(1), 1);
            f.set_arg_val(2, Val(1));
            f.syscall(Sys::Read as i64);
            f.set_arg_val(0, Val(6));
            f.set_arg_ptr(1, Ptr(2));
            f.li(Val(1), 1);
            f.set_arg_val(2, Val(1));
            f.syscall(Sys::Read as i64);
            f.ret_val_to(Val(2)); // 0: EOF
            f.add_imm(Val(2), Val(2), 33);
            f.set_arg_val(0, Val(2));
            f.syscall(Sys::Exit as i64);
        });
        let (status, _) = k.run_program(&prog, &SpawnOpts::new(abi)).expect("loads");
        assert_eq!(status, ExitStatus::Code(33), "{abi}");
    }
}

/// Deadlocked pipe waits produce per-pid diagnostics naming each blocked
/// process and what it waits on.
#[test]
fn deadlock_diagnostics_name_the_blocked_pids() {
    let mut k = Kernel::new(KernelConfig::default());
    let prog = program(AbiMode::CheriAbi, |f| {
        f.enter(96);
        emit_pipe(f);
        // Read from a pipe nobody will ever write: guaranteed deadlock.
        f.addr_of_stack(Ptr(1), 32, 8);
        f.set_arg_val(0, Val(6));
        f.set_arg_ptr(1, Ptr(1));
        f.li(Val(1), 1);
        f.set_arg_val(2, Val(1));
        f.syscall(Sys::Read as i64);
        f.li(Val(0), 0);
        f.set_arg_val(0, Val(0));
        f.syscall(Sys::Exit as i64);
    });
    let pid = k
        .spawn(&prog, &SpawnOpts::new(AbiMode::CheriAbi))
        .expect("loads");
    assert_eq!(k.run(10_000_000), RunOutcome::Deadlock);
    let diag = k.blocked_diagnostics();
    assert!(
        diag.contains(&format!("{pid}: pipe-read(")),
        "diagnostics name the blocked reader: {diag}"
    );
}
