//! Aggregated memory-system statistics.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Counters accumulated by the cache hierarchy; the Figure 4 harness reads
/// `l2_misses` directly ("l2cache misses" series).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Instruction-fetch L1 hits.
    pub l1i_hits: u64,
    /// Instruction-fetch L1 misses.
    pub l1i_misses: u64,
    /// Data L1 hits.
    pub l1d_hits: u64,
    /// Data L1 misses.
    pub l1d_misses: u64,
    /// Shared L2 hits.
    pub l2_hits: u64,
    /// Shared L2 misses (DRAM accesses).
    pub l2_misses: u64,
    /// Total stall cycles charged by the memory system.
    pub stall_cycles: u64,
}

impl MemStats {
    /// Total data-side accesses observed.
    #[must_use]
    pub fn data_accesses(&self) -> u64 {
        self.l1d_hits + self.l1d_misses
    }

    /// L2 miss rate over all L2 lookups, in [0, 1].
    #[must_use]
    pub fn l2_miss_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_misses as f64 / total as f64
        }
    }
}

impl Add for MemStats {
    type Output = MemStats;
    fn add(self, o: MemStats) -> MemStats {
        MemStats {
            l1i_hits: self.l1i_hits + o.l1i_hits,
            l1i_misses: self.l1i_misses + o.l1i_misses,
            l1d_hits: self.l1d_hits + o.l1d_hits,
            l1d_misses: self.l1d_misses + o.l1d_misses,
            l2_hits: self.l2_hits + o.l2_hits,
            l2_misses: self.l2_misses + o.l2_misses,
            stall_cycles: self.stall_cycles + o.stall_cycles,
        }
    }
}

impl AddAssign for MemStats {
    fn add_assign(&mut self, o: MemStats) {
        *self = *self + o;
    }
}

impl fmt::Display for MemStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L1I {}/{} L1D {}/{} L2 {}/{} stall {}",
            self.l1i_hits,
            self.l1i_misses,
            self.l1d_hits,
            self.l1d_misses,
            self.l2_hits,
            self.l2_misses,
            self.stall_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_accumulates() {
        let a = MemStats {
            l1d_hits: 1,
            l2_misses: 2,
            ..MemStats::default()
        };
        let b = MemStats {
            l1d_hits: 3,
            stall_cycles: 5,
            ..MemStats::default()
        };
        let c = a + b;
        assert_eq!(c.l1d_hits, 4);
        assert_eq!(c.l2_misses, 2);
        assert_eq!(c.stall_cycles, 5);
    }

    #[test]
    fn miss_rate_handles_zero() {
        assert_eq!(MemStats::default().l2_miss_rate(), 0.0);
        let s = MemStats {
            l2_hits: 1,
            l2_misses: 3,
            ..MemStats::default()
        };
        assert!((s.l2_miss_rate() - 0.75).abs() < 1e-9);
    }
}
