//! The seeded, deterministic fault-injection plane.
//!
//! CheriABI's central claim is that memory corruption lands as a *clean,
//! attributable trap* — a flipped bit in a capability granule clears the
//! tag and the next dereference raises `CapFault::TagViolation`, never a
//! wild access (PAPER.md §2). This module schedules adversarial state for
//! the substrate to absorb: physical-memory bit-flips in data and
//! capability granules, swap-device I/O errors, and transient syscall
//! errors — each armed on a fresh per-case kernel, each firing at a
//! deterministic access count, so the same [`FaultPlan`] and seed always
//! reproduce the same run.
//!
//! A [`FaultPlan`] is plain data (`Hash + Eq`, canonical JSON) exactly
//! like [`crate::spec::ProgramSpec`]: embedding one in a
//! [`crate::harness::RunSpec`] makes it part of the spec's cache identity
//! (a faulted run never serves a fault-free cache entry, and vice versa)
//! and lets a campaign matrix ship across `--shard` boundaries.
//!
//! [`FaultCounters`] is the harvest: which injections actually fired and
//! whether any corrupted capability was *dereferenced with a live tag*
//! (`corrupt_cap_loads` — the escape the `fault_campaign` oracle treats as
//! a silent success, which must stay zero unless the test-only
//! `weaken_tag_clear` hook is set).

use crate::json::Json;
use cheri_kernel::{Kernel, SyscallFaultSpec};
use cheri_mem::PhysFaultSpec;
use cheri_vm::SwapFaultSpec;

/// One injected fault, as plain data. Counts are occurrence ordinals in
/// the fault family's own deterministic stream (physical mutations, swap
/// slot I/Os, eligible syscalls), so a kind + parameters fully determine
/// *when* the fault fires for a given guest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Flip `bit` (0–7) of one byte in the next *data* granule mutated
    /// after `after_writes` physical mutations; per CHERI semantics the
    /// granule's tag is already clear or cleared by the write itself.
    BitFlipData {
        /// Physical mutations to count before firing.
        after_writes: u64,
        /// Bit index within the chosen byte.
        bit: u32,
    },
    /// Flip `bit` of a byte inside a granule holding a *tagged
    /// capability* (the flip waits until one exists); the store of the
    /// flipped bytes clears the tag, so the next dereference must be a
    /// clean `TagViolation`.
    BitFlipCap {
        /// Physical mutations to count before firing.
        after_writes: u64,
        /// Bit index within the chosen byte.
        bit: u32,
    },
    /// Fail swap-device *reads* (swap-in) starting at the `at`-th read
    /// (1-based) for `count` consecutive attempts. One failure is
    /// absorbed by the kernel's retry; persistent failure is SIGBUS.
    SwapReadErr {
        /// First failing read attempt (1-based).
        at: u64,
        /// Consecutive attempts that fail.
        count: u32,
    },
    /// Fail swap-device *writes* (swap-out) starting at the `at`-th write
    /// for `count` attempts; affected pages simply stay resident.
    SwapWriteErr {
        /// First failing write attempt (1-based).
        at: u64,
        /// Consecutive attempts that fail.
        count: u32,
    },
    /// Interrupt the `at`-th eligible syscall (1-based; `exit` and
    /// `sigreturn` never count) with EINTR; the kernel restarts it
    /// transparently.
    SyscallEintr {
        /// Eligible-syscall ordinal to interrupt (1-based).
        at: u64,
    },
    /// Fail the `at`-th eligible syscall with a guest-visible ENOMEM.
    SyscallEnomem {
        /// Eligible-syscall ordinal to fail (1-based).
        at: u64,
    },
}

impl FaultKind {
    /// The stable JSON tag for this kind.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            FaultKind::BitFlipData { .. } => "bit-flip-data",
            FaultKind::BitFlipCap { .. } => "bit-flip-cap",
            FaultKind::SwapReadErr { .. } => "swap-read-err",
            FaultKind::SwapWriteErr { .. } => "swap-write-err",
            FaultKind::SyscallEintr { .. } => "syscall-eintr",
            FaultKind::SyscallEnomem { .. } => "syscall-enomem",
        }
    }
}

/// A complete, armable fault schedule for one case.
///
/// `weaken_tag_clear` is the **test-only** escape hatch the acceptance
/// criteria demand: with it set, a capability bit-flip *preserves* the
/// granule tag (violating CHERI semantics), so the corrupted capability
/// stays dereferenceable and the campaign oracle must flag the run as a
/// silent success. It exists to prove the oracle detects escapes; no real
/// experiment sets it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Which fault to inject, and when.
    pub kind: FaultKind,
    /// Test-only: keep the tag alive through a capability bit-flip.
    pub weaken_tag_clear: bool,
}

impl FaultPlan {
    /// A plan for `kind` with proper CHERI tag-clearing semantics.
    #[must_use]
    pub fn new(kind: FaultKind) -> FaultPlan {
        FaultPlan {
            kind,
            weaken_tag_clear: false,
        }
    }

    /// Arms this plan on a freshly booted kernel (call before the guest
    /// spawns so access counts start from zero).
    pub fn arm(&self, kernel: &mut Kernel) {
        // A fault can fire mid-superblock, so the core must charge every
        // cache event at its exact program point rather than batching to
        // block boundaries — otherwise the cycle count at the moment the
        // fault lands would depend on the execution mode.
        kernel.cpu.set_exact_mem_events(true);
        match self.kind {
            FaultKind::BitFlipData { after_writes, bit } => {
                kernel.vm.phys.arm_faults(PhysFaultSpec {
                    after_mutations: after_writes,
                    bit,
                    target_cap: false,
                    preserve_tag: self.weaken_tag_clear,
                });
            }
            FaultKind::BitFlipCap { after_writes, bit } => {
                kernel.vm.phys.arm_faults(PhysFaultSpec {
                    after_mutations: after_writes,
                    bit,
                    target_cap: true,
                    preserve_tag: self.weaken_tag_clear,
                });
            }
            FaultKind::SwapReadErr { at, count } => {
                kernel.vm.arm_swap_faults(SwapFaultSpec {
                    read_fail_at: Some(at),
                    read_fail_count: count,
                    ..SwapFaultSpec::default()
                });
            }
            FaultKind::SwapWriteErr { at, count } => {
                kernel.vm.arm_swap_faults(SwapFaultSpec {
                    write_fail_at: Some(at),
                    write_fail_count: count,
                    ..SwapFaultSpec::default()
                });
            }
            FaultKind::SyscallEintr { at } => {
                kernel.arm_syscall_faults(SyscallFaultSpec {
                    eintr_at: Some(at),
                    enomem_at: None,
                });
            }
            FaultKind::SyscallEnomem { at } => {
                kernel.arm_syscall_faults(SyscallFaultSpec {
                    eintr_at: None,
                    enomem_at: Some(at),
                });
            }
        }
    }

    /// Canonical JSON encoding: a `"kind"` tag plus the kind's parameters
    /// in declaration order, then the weaken flag —
    /// `{"kind":"bit-flip-cap","after_writes":40,"bit":3,"weaken_tag_clear":false}`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("kind", Json::str(self.kind.tag()))];
        match self.kind {
            FaultKind::BitFlipData { after_writes, bit }
            | FaultKind::BitFlipCap { after_writes, bit } => {
                fields.push(("after_writes", Json::u64(after_writes)));
                fields.push(("bit", Json::u64(u64::from(bit))));
            }
            FaultKind::SwapReadErr { at, count } | FaultKind::SwapWriteErr { at, count } => {
                fields.push(("at", Json::u64(at)));
                fields.push(("count", Json::u64(u64::from(count))));
            }
            FaultKind::SyscallEintr { at } | FaultKind::SyscallEnomem { at } => {
                fields.push(("at", Json::u64(at)));
            }
        }
        fields.push(("weaken_tag_clear", Json::Bool(self.weaken_tag_clear)));
        Json::obj(fields)
    }

    /// Decodes [`FaultPlan::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message if the value is not a recognised encoding.
    pub fn from_json(v: &Json) -> Result<FaultPlan, String> {
        let bit = |v: &Json| -> Result<u32, String> {
            u32::try_from(v.field("bit")?.as_u64()?).map_err(|e| e.to_string())
        };
        let count = |v: &Json| -> Result<u32, String> {
            u32::try_from(v.field("count")?.as_u64()?).map_err(|e| e.to_string())
        };
        let kind = match v.field("kind")?.as_str()? {
            "bit-flip-data" => FaultKind::BitFlipData {
                after_writes: v.field("after_writes")?.as_u64()?,
                bit: bit(v)?,
            },
            "bit-flip-cap" => FaultKind::BitFlipCap {
                after_writes: v.field("after_writes")?.as_u64()?,
                bit: bit(v)?,
            },
            "swap-read-err" => FaultKind::SwapReadErr {
                at: v.field("at")?.as_u64()?,
                count: count(v)?,
            },
            "swap-write-err" => FaultKind::SwapWriteErr {
                at: v.field("at")?.as_u64()?,
                count: count(v)?,
            },
            "syscall-eintr" => FaultKind::SyscallEintr {
                at: v.field("at")?.as_u64()?,
            },
            "syscall-enomem" => FaultKind::SyscallEnomem {
                at: v.field("at")?.as_u64()?,
            },
            other => return Err(format!("unknown fault kind `{other}`")),
        };
        Ok(FaultPlan {
            kind,
            weaken_tag_clear: v.field("weaken_tag_clear")?.as_bool()?,
        })
    }
}

/// What the armed fault plane actually did to one run, harvested from the
/// kernel after the guest finished. Everything here is deterministic
/// given the spec (fresh kernel, counted injection points).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Bytes flipped by the physical-memory injector.
    pub flips: u64,
    /// Granule tags cleared by an injected flip (proper CHERI semantics).
    pub tags_cleared: u64,
    /// Granule tags *preserved* through a flip (only ever nonzero under
    /// the test-only `weaken_tag_clear` hook).
    pub tags_preserved: u64,
    /// Loads that returned a still-tagged capability from a corrupted
    /// granule — the escape counter; nonzero means the tag-clearing
    /// contract was violated.
    pub corrupt_cap_loads: u64,
    /// Swap-device read errors injected.
    pub swap_read_errors: u64,
    /// Swap-device write errors injected.
    pub swap_write_errors: u64,
    /// Syscalls interrupted with EINTR.
    pub eintr_injected: u64,
    /// Syscalls failed with ENOMEM.
    pub enomem_injected: u64,
}

impl FaultCounters {
    /// Reads the counters off a kernel after a run.
    #[must_use]
    pub fn harvest(kernel: &Kernel) -> FaultCounters {
        let phys = kernel.vm.phys.faults();
        let swap = kernel.vm.swap_faults();
        let sys = kernel.syscall_faults();
        FaultCounters {
            flips: phys.flips,
            tags_cleared: phys.tags_cleared,
            tags_preserved: phys.tags_preserved,
            corrupt_cap_loads: phys.corrupt_cap_loads,
            swap_read_errors: swap.read_errors,
            swap_write_errors: swap.write_errors,
            eintr_injected: sys.eintr_injected,
            enomem_injected: sys.enomem_injected,
        }
    }

    /// Whether any injection actually happened (a plan aimed past the end
    /// of the guest's access stream fires nothing; that run is
    /// *unaffected*, which the campaign counts separately).
    #[must_use]
    pub fn fired(&self) -> bool {
        self.flips
            + self.swap_read_errors
            + self.swap_write_errors
            + self.eintr_injected
            + self.enomem_injected
            > 0
    }

    /// Canonical JSON encoding.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("flips", Json::u64(self.flips)),
            ("tags_cleared", Json::u64(self.tags_cleared)),
            ("tags_preserved", Json::u64(self.tags_preserved)),
            ("corrupt_cap_loads", Json::u64(self.corrupt_cap_loads)),
            ("swap_read_errors", Json::u64(self.swap_read_errors)),
            ("swap_write_errors", Json::u64(self.swap_write_errors)),
            ("eintr_injected", Json::u64(self.eintr_injected)),
            ("enomem_injected", Json::u64(self.enomem_injected)),
        ])
    }

    /// Decodes [`FaultCounters::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message if the value is not a recognised encoding.
    pub fn from_json(v: &Json) -> Result<FaultCounters, String> {
        Ok(FaultCounters {
            flips: v.field("flips")?.as_u64()?,
            tags_cleared: v.field("tags_cleared")?.as_u64()?,
            tags_preserved: v.field("tags_preserved")?.as_u64()?,
            corrupt_cap_loads: v.field("corrupt_cap_loads")?.as_u64()?,
            swap_read_errors: v.field("swap_read_errors")?.as_u64()?,
            swap_write_errors: v.field("swap_write_errors")?.as_u64()?,
            eintr_injected: v.field("eintr_injected")?.as_u64()?,
            enomem_injected: v.field("enomem_injected")?.as_u64()?,
        })
    }
}

/// Every fault kind at representative parameters — the campaign's sweep
/// axis, and the round-trip tests' corpus.
#[must_use]
pub fn all_kinds(after: u64, bit: u32) -> Vec<FaultKind> {
    vec![
        FaultKind::BitFlipData {
            after_writes: after,
            bit,
        },
        FaultKind::BitFlipCap {
            after_writes: after,
            bit,
        },
        FaultKind::SwapReadErr {
            at: after.max(1),
            count: 1,
        },
        FaultKind::SwapWriteErr {
            at: after.max(1),
            count: 1,
        },
        FaultKind::SyscallEintr { at: after.max(1) },
        FaultKind::SyscallEnomem { at: after.max(1) },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn plans_round_trip_through_json() {
        for kind in all_kinds(17, 5) {
            for weaken in [false, true] {
                let plan = FaultPlan {
                    kind,
                    weaken_tag_clear: weaken,
                };
                let text = plan.to_json().to_string();
                let back =
                    FaultPlan::from_json(&json::parse(&text).expect("parses")).expect("decodes");
                assert_eq!(back, plan, "{text}");
                assert_eq!(back.to_json().to_string(), text, "canonical re-encode");
            }
        }
    }

    #[test]
    fn unknown_kinds_are_rejected() {
        let v = json::parse("{\"kind\":\"cosmic-ray\",\"weaken_tag_clear\":false}").expect("parse");
        assert!(FaultPlan::from_json(&v).is_err());
    }

    #[test]
    fn counters_round_trip_through_json() {
        let c = FaultCounters {
            flips: 1,
            tags_cleared: 1,
            tags_preserved: 0,
            corrupt_cap_loads: 0,
            swap_read_errors: 2,
            swap_write_errors: 0,
            eintr_injected: 1,
            enomem_injected: 0,
        };
        let text = c.to_json().to_string();
        let back = FaultCounters::from_json(&json::parse(&text).expect("parses")).expect("decodes");
        assert_eq!(back, c);
        assert!(back.fired());
        assert!(!FaultCounters::default().fired());
    }

    #[test]
    fn arming_reaches_every_layer() {
        use cheri_kernel::KernelConfig;
        // Each family must land in its own layer's spec slot.
        let mut k = Kernel::new(KernelConfig::default());
        FaultPlan::new(FaultKind::SwapReadErr { at: 3, count: 2 }).arm(&mut k);
        assert_eq!(k.vm.swap_faults().read_errors, 0, "not fired yet");
        FaultPlan::new(FaultKind::SyscallEnomem { at: 9 }).arm(&mut k);
        assert_eq!(k.syscall_faults().enomem_injected, 0, "not fired yet");
        let mut weak = FaultPlan::new(FaultKind::BitFlipCap {
            after_writes: 1,
            bit: 0,
        });
        weak.weaken_tag_clear = true;
        weak.arm(&mut k);
        assert_eq!(k.vm.phys.faults().flips, 0, "not fired yet");
    }
}
