//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the proptest API that this workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_map`/`boxed`,
//! `any::<T>()`, integer-range and tuple strategies, [`Just`],
//! `prop_oneof!`, `proptest::collection::vec`, `prop_assume!`,
//! `prop_assert!`/`prop_assert_eq!` and [`ProptestConfig`].
//!
//! Differences from the real crate (deliberate, documented):
//! * deterministic input generation from a fixed per-case seed — every run
//!   explores the same inputs, so failures are always reproducible;
//! * minimal, explicit-only shrinking — [`Strategy::shrink`] proposes
//!   strictly smaller candidates (ranges shrink toward their low end,
//!   vectors by element removal, halving and element-wise shrinking) for
//!   harnesses that drive their own shrink loop, such as `prop_oracle`;
//!   the [`proptest!`] macro itself still panics with the case number
//!   instead of auto-minimising.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic split-mix RNG used to drive all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for the given case seed.
    #[must_use]
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(0x1234_5678_9ABC_DEF0),
        }
    }

    /// Next raw 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Why a generated case did not produce a verdict.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A rejection (skipped case).
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }

    /// A failure.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes strictly "smaller" candidates derived from a failing
    /// value, for callers running their own shrink loop. Strategies that
    /// cannot invert their generation (maps, unions) propose nothing —
    /// the default.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// `prop_map` combinator.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    fn shrink_dyn(&self, value: &Self::Value) -> Vec<Self::Value>;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
    fn shrink_dyn(&self, value: &S::Value) -> Vec<S::Value> {
        self.shrink(value)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        self.0.shrink_dyn(value)
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union over `options` (must be non-empty).
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a full-domain default strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy generating any value of `T`.
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<T>);

/// The full-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(hi > lo, "empty range strategy");
                let span = (hi - lo) as u128;
                (lo + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(self.start as i128, *value as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(hi >= lo, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                (lo + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*self.start() as i128, *value as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Candidates strictly between `lo` and `value`, ordered most-aggressive
/// first: the low end itself, then the midpoint, then one step down.
fn shrink_toward(lo: i128, value: i128) -> Vec<i128> {
    let mut out = Vec::new();
    if value > lo {
        out.push(lo);
        let mid = lo + (value - lo) / 2;
        if mid != lo && mid != value {
            out.push(mid);
        }
        let down = value - 1;
        if down != lo && down != mid {
            out.push(down);
        }
    }
    out
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Accepted length specifications for [`vec`]: an exact length or a
    /// half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange(r)
        }
    }

    /// A vector strategy with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into().0,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.end <= self.len.start + 1 {
                self.len.start
            } else {
                self.len.generate(rng)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let min = self.len.start;
            let n = value.len();
            let mut out = Vec::new();
            // Most aggressive first: truncate toward the minimum length.
            if n > min {
                let half = (n + min) / 2;
                if half < n {
                    out.push(value[..half].to_vec());
                }
                // Then drop one element at a time.
                for i in 0..n {
                    let mut v = value.clone();
                    v.remove(i);
                    out.push(v);
                }
            }
            // Finally, shrink elements in place.
            for (i, elem) in value.iter().enumerate() {
                for cand in self.element.shrink(elem) {
                    let mut v = value.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
            out
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Uniformly chooses between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)
            )));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)*)
            )));
        }
    }};
}

/// Defines deterministic property tests over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
     )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::TestRng::new(case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) | Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case #{case} failed: {msg}");
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_shrink_toward_the_low_end() {
        let s = 10u64..100;
        let c = s.shrink(&40);
        assert!(c.contains(&10));
        assert!(c.contains(&25));
        assert!(c.contains(&39));
        assert!(c.iter().all(|&v| (10..40).contains(&v)));
        assert!(s.shrink(&10).is_empty());

        let si = -8i64..=8;
        let ci = si.shrink(&5);
        assert!(ci.contains(&-8));
        assert!(ci.iter().all(|&v| (-8..5).contains(&v)));
        assert!(si.shrink(&-8).is_empty());
    }

    #[test]
    fn vectors_shrink_by_truncation_removal_and_element() {
        let s = collection::vec(10u64..100, 0..8);
        let v = vec![20, 30, 40];
        let cands = s.shrink(&v);
        assert!(cands.contains(&vec![20])); // half-truncation toward min 0
        assert!(cands.contains(&vec![30, 40]));
        assert!(cands.contains(&vec![20, 40]));
        assert!(cands.contains(&vec![20, 30]));
        assert!(cands.contains(&vec![10, 30, 40])); // element shrunk to lo
        assert!(cands.iter().all(|c| c.len() <= 3));
    }

    #[test]
    fn vector_shrinking_respects_the_minimum_length() {
        let s = collection::vec(10u64..100, 3);
        let v = vec![20, 30, 40];
        let cands = s.shrink(&v);
        assert!(!cands.is_empty()); // element-wise shrinks still happen
        assert!(cands.iter().all(|c| c.len() == 3));
    }

    #[test]
    fn boxed_strategies_forward_shrinking() {
        let s = (10u64..100).boxed();
        assert!(s.shrink(&40).contains(&10));
        // Maps and unions cannot invert their generation: no candidates.
        let m = (10u64..100).prop_map(|v| v * 2);
        assert!(m.shrink(&80).is_empty());
    }

    #[test]
    fn shrinking_never_proposes_the_value_itself() {
        for v in [11u64, 12, 13, 50, 99] {
            assert!(!(10u64..100).shrink(&v).contains(&v));
        }
    }
}
