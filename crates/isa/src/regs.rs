//! Register names for the integer and capability register files.

use std::fmt;

/// An integer (general-purpose) register, `$0`–`$31`; `$0` is hardwired to
/// zero as on MIPS.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IReg(pub u8);

/// A capability register, `$c0`–`$c31` (DDC and PCC are separate special
/// registers on the CPU, not part of this file).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CReg(pub u8);

impl fmt::Debug for IReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.0)
    }
}

impl fmt::Debug for CReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$c{}", self.0)
    }
}

/// Integer-register names following the simulated ABI.
pub mod ireg {
    use super::IReg;

    /// Hardwired zero.
    pub const ZERO: IReg = IReg(0);
    /// Assembler temporary / codegen scratch.
    pub const AT: IReg = IReg(1);
    /// Return value 0; also the syscall number on entry to `syscall`.
    pub const V0: IReg = IReg(2);
    /// Return value 1 / scratch.
    pub const V1: IReg = IReg(3);
    /// First integer argument register; a0–a7 are `IReg(4)`–`IReg(11)`.
    pub const A0: IReg = IReg(4);
    /// Second argument register.
    pub const A1: IReg = IReg(5);
    /// Third argument register.
    pub const A2: IReg = IReg(6);
    /// Fourth argument register.
    pub const A3: IReg = IReg(7);
    /// Fifth argument register.
    pub const A4: IReg = IReg(8);
    /// Sixth argument register.
    pub const A5: IReg = IReg(9);
    /// Seventh argument register.
    pub const A6: IReg = IReg(10);
    /// Eighth argument register.
    pub const A7: IReg = IReg(11);
    /// First temporary; t0–t7 are `IReg(12)`–`IReg(19)`.
    pub const T0: IReg = IReg(12);
    /// Second temporary.
    pub const T1: IReg = IReg(13);
    /// Third temporary.
    pub const T2: IReg = IReg(14);
    /// Fourth temporary.
    pub const T3: IReg = IReg(15);
    /// First saved register; s0–s7 are `IReg(20)`–`IReg(27)`.
    pub const S0: IReg = IReg(20);
    /// Global pointer: base of the GOT in the legacy ABI.
    pub const GP: IReg = IReg(28);
    /// Stack pointer (legacy ABI; pure-capability code uses `$csp`).
    pub const SP: IReg = IReg(29);
    /// Frame pointer.
    pub const FP: IReg = IReg(30);
    /// Return address (legacy ABI; pure-capability code uses `$cra`).
    pub const RA: IReg = IReg(31);

    /// The `i`-th integer argument register (0-based, up to 8).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    #[must_use]
    pub fn arg(i: u8) -> IReg {
        assert!(i < 8, "only 8 integer argument registers");
        IReg(4 + i)
    }

    /// The `i`-th integer temporary (0-based, up to 8).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    #[must_use]
    pub fn temp(i: u8) -> IReg {
        assert!(i < 8, "only 8 temporaries");
        IReg(12 + i)
    }

    /// The `i`-th saved register (0-based, up to 8).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    #[must_use]
    pub fn saved(i: u8) -> IReg {
        assert!(i < 8, "only 8 saved registers");
        IReg(20 + i)
    }
}

/// Capability-register names following the simulated CheriABI calling
/// convention (§5.3 "calling convention": pointer arguments travel in the
/// capability register file, separate from integers).
pub mod creg {
    use super::CReg;

    /// Always-NULL capability register.
    pub const CNULL: CReg = CReg(0);
    /// Capability return value and first capability argument; c3–c10 carry
    /// capability arguments 0–7.
    pub const C3: CReg = CReg(3);
    /// Stack capability.
    pub const CSP: CReg = CReg(11);
    /// Indirect-jump target scratch register.
    pub const CJ: CReg = CReg(12);
    /// First allocatable pointer register; `CReg(13)`–`CReg(25)`.
    pub const CP0: CReg = CReg(13);
    /// Invoked-data capability (sealed-pair invocation).
    pub const IDC: CReg = CReg(26);
    /// Codegen scratch 0.
    pub const CT0: CReg = CReg(27);
    /// Codegen scratch 1.
    pub const CT1: CReg = CReg(28);
    /// Capability global pointer: base of the capability GOT.
    pub const CGP: CReg = CReg(29);
    /// Capability return address.
    pub const CRA: CReg = CReg(30);
    /// Thread-local-storage base capability.
    pub const CTLS: CReg = CReg(31);

    /// The `i`-th capability argument register (0-based, up to 8).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    #[must_use]
    pub fn arg(i: u8) -> CReg {
        assert!(i < 8, "only 8 capability argument registers");
        CReg(3 + i)
    }

    /// The `i`-th allocatable pointer register (0-based, up to 13).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 13`.
    #[must_use]
    pub fn ptr(i: u8) -> CReg {
        assert!(i < 13, "only 13 allocatable pointer registers");
        CReg(13 + i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_maps_do_not_collide() {
        // Argument, temp and saved integer registers are disjoint.
        let mut seen = std::collections::HashSet::new();
        for i in 0..8 {
            assert!(seen.insert(ireg::arg(i)));
        }
        for i in 0..8 {
            assert!(seen.insert(ireg::temp(i)));
        }
        for i in 0..8 {
            assert!(seen.insert(ireg::saved(i)));
        }
        for r in [
            ireg::ZERO,
            ireg::AT,
            ireg::V0,
            ireg::V1,
            ireg::GP,
            ireg::SP,
            ireg::FP,
            ireg::RA,
        ] {
            assert!(seen.insert(r), "{r:?} collides");
        }
    }

    #[test]
    fn cap_register_maps_do_not_collide() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..8 {
            assert!(seen.insert(creg::arg(i)));
        }
        for i in 0..13 {
            assert!(
                seen.insert(creg::ptr(i)),
                "ptr({i}) collides with an arg reg"
            );
        }
        for r in [
            creg::CNULL,
            creg::CSP,
            creg::CJ,
            creg::IDC,
            creg::CT0,
            creg::CT1,
            creg::CGP,
            creg::CRA,
            creg::CTLS,
        ] {
            assert!(seen.insert(r), "{r:?} collides");
        }
    }

    #[test]
    #[should_panic(expected = "argument registers")]
    fn arg_out_of_range_panics() {
        let _ = creg::arg(8);
    }
}
