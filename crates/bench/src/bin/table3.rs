//! Regenerates **Table 3**: BOdiagsuite detection counts for mips64,
//! CheriABI and AddressSanitizer at min / med / large overflow magnitudes.

use bodiagsuite::{all_cases, run_table3};

fn main() {
    let cases = all_cases();
    println!("Table 3: BOdiagsuite tests with detected errors (of {} total)", cases.len());
    let table = run_table3(&cases);
    println!("{table}");
    if !table.false_positives.is_empty() {
        println!("FALSE POSITIVES (ok-variant failures): {:?}", table.false_positives);
    }
    println!("Paper (Table 3):");
    println!("{:<10} {:>6} {:>6} {:>6}", "", "min", "med", "large");
    println!("{:<10} {:>6} {:>6} {:>6}", "mips64", 4, 8, 175);
    println!("{:<10} {:>6} {:>6} {:>6}", "cheriabi", 279, 289, 291);
    println!("{:<10} {:>6} {:>6} {:>6}", "asan", 276, 286, 286);
}
