//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the proptest API that this workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_map`/`boxed`,
//! `any::<T>()`, integer-range and tuple strategies, [`Just`],
//! `prop_oneof!`, `proptest::collection::vec`, `prop_assume!`,
//! `prop_assert!`/`prop_assert_eq!` and [`ProptestConfig`].
//!
//! Differences from the real crate (deliberate, documented):
//! * deterministic input generation from a fixed per-case seed — every run
//!   explores the same inputs, so failures are always reproducible;
//! * no shrinking — a failing case panics with the assertion message and
//!   the case number instead of a minimised input.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic split-mix RNG used to drive all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for the given case seed.
    #[must_use]
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(0x1234_5678_9ABC_DEF0),
        }
    }

    /// Next raw 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Why a generated case did not produce a verdict.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A rejection (skipped case).
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }

    /// A failure.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// `prop_map` combinator.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union over `options` (must be non-empty).
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a full-domain default strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy generating any value of `T`.
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<T>);

/// The full-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(hi > lo, "empty range strategy");
                let span = (hi - lo) as u128;
                (lo + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(hi >= lo, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                (lo + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Accepted length specifications for [`vec`]: an exact length or a
    /// half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange(r)
        }
    }

    /// A vector strategy with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into().0,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.end <= self.len.start + 1 {
                self.len.start
            } else {
                self.len.generate(rng)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Uniformly chooses between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)
            )));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)*)
            )));
        }
    }};
}

/// Defines deterministic property tests over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
     )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::TestRng::new(case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) | Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case #{case} failed: {msg}");
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}
