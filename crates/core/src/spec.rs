//! Declarative guest-program identities and the lowering registry.
//!
//! Before this module, a harness case carried its guest program as an
//! opaque `Arc<dyn Fn>` closure — impossible to hash, compare, serialize,
//! or hand to another machine. [`ProgramSpec`] replaces that closure with a
//! plain-data *name* for the program: every guest program in the repository
//! (corpus families, bodiagsuite cases, the Figure 4/5 workloads, the
//! syscall micro-benchmarks, minidb `initdb`) is a variant here, and a
//! [`Registry`] of per-crate lowering functions turns a variant into an
//! executable [`Program`] on demand.
//!
//! The split matters for layering: this crate sits *below* the crates that
//! own the program builders (`cheri-corpus`, `bodiagsuite`,
//! `cheri-workloads`, `cheri-bench`), so the variants live here as pure
//! data and each crate contributes a [`LowerFn`] that recognises its own
//! variants. `cheri_bench::registry()` composes the full set; the
//! substrate crates compose only what they need. Lowering functions are
//! plain `fn` pointers, so a [`Registry`] is `'static`, trivially
//! cloneable, and safe to hand to detached deadline-watch threads.
//!
//! Because a [`ProgramSpec`] is `Hash + Eq` and round-trips through JSON
//! ([`ProgramSpec::to_json`] / [`ProgramSpec::from_json`]), the harness can
//! content-address case reports (see [`crate::cache`]) and split a spec
//! list across machines (see [`crate::harness::Shard`]).

use crate::guest::GuestOps;
use crate::json::Json;
use cheri_isa::codegen::{CodegenOpts, FnBuilder, Ptr, Val};
use cheri_isa::Width;
use cheri_kernel::Sys;
use cheri_rtld::{Program, ProgramBuilder};
use std::sync::Arc;

/// The declarative identity of one guest program, possibly parameterized.
///
/// Variants are *data about which program to build*, not the program
/// itself; the builder code stays in the crate that owns it and is reached
/// through a [`Registry`]. The `Exit` / `Spin` / `Boom` probes are lowered
/// by this crate (see [`Registry::builtin`]) and exist for harness tests
/// and plumbing checks; everything else is lowered by a downstream crate.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ProgramSpec {
    /// Probe: exits with `(code + seed) % 64` (seed-sensitive on purpose,
    /// so determinism and cache-key tests can distinguish seeds).
    Exit {
        /// Base exit code.
        code: i64,
    },
    /// Probe: spins for `iters` loop iterations, then exits 0. Used by the
    /// deadline and progress tests, which need a case that takes a while.
    Spin {
        /// Loop iterations.
        iters: i64,
    },
    /// Probe: the builder panics (exercises harness panic isolation).
    Boom,
    /// Probe: a capability-churn loop for the fault campaign — every
    /// iteration writes data, stores a pointer to memory, reloads it and
    /// dereferences it, so both data and capability granules mutate at a
    /// steady deterministic rate and an injected corruption is quickly
    /// *observed*. Iterates `iters + seed % 4` times (seed-sensitive so
    /// different seeds shift the access stream under injected faults).
    CapChurn {
        /// Base loop iterations.
        iters: i64,
    },
    /// Probe: a swap-stress loop for the fault campaign — touches
    /// `pages + seed % 3` pages (one data word and one stored pointer
    /// each), forces the whole space out through `swapctl`, then reloads
    /// and dereferences every stored pointer, exercising the tag-preserving
    /// swap path (Figure 2) and the swap-device error paths.
    SwapStress {
        /// Base page count.
        pages: i64,
    },
    /// A named test of the generated corpus (Tables 1/2); the name is
    /// unique across the FreeBSD-like, pg_regress-like and libc++-like
    /// suites. Lowered by `cheri-corpus`.
    Corpus {
        /// Unique case name, e.g. `arith_sum_17`.
        case: String,
    },
    /// One bodiagsuite case/variant (Table 3), fully described: the region
    /// labels round-trip through `bodiagsuite`'s parsers. Lowered by
    /// `bodiagsuite`.
    Bodiag {
        /// Region label: `stack` / `heap` / `global` / `intra`.
        region: String,
        /// Bytes of struct tail after the array field (`intra` only; 0
        /// otherwise).
        tail: u64,
        /// Access label: `read` / `write`.
        access: String,
        /// Idiom label: `direct` / `index` / `loop`.
        idiom: String,
        /// Buffer length in bytes.
        len: u64,
        /// Variant label: `ok` / `min` / `med` / `large`.
        variant: String,
    },
    /// A named Figure 4 workload (`cheri_workloads::all()`). Lowered by
    /// `cheri-workloads`.
    Workload {
        /// Workload name, e.g. `spec2006-xalancbmk`.
        name: String,
    },
    /// The `tlsish` openssl-`s_server` stand-in (Figure 5). Lowered by
    /// `cheri-workloads`.
    Tlsish {
        /// Number of simulated TLS sessions.
        sessions: i64,
    },
    /// minidb `initdb` with a fixed record count (§5.2 macro-benchmark).
    /// Lowered by `cheri-corpus`.
    Initdb {
        /// Records to insert.
        records: i64,
    },
    /// The Figure 4 `initdb-dynamic` workload: record count varies with
    /// the input seed as `base_records + (seed % 5) * 20`, so the
    /// per-seed IQR is meaningful. Lowered by `cheri-corpus`.
    InitdbDynamic {
        /// Base record count at seed ≡ 0 (mod 5).
        base_records: i64,
    },
    /// A §5.2 syscall micro-benchmark. Lowered by `cheri-bench`.
    Micro {
        /// Benchmark kind: `getpid` / `pipe_rw` / `select` / `fork`.
        kind: String,
        /// Iterations of the syscall loop.
        iters: i64,
    },
    /// The multi-tenant minidb scenario: a forked server process serves
    /// `clients` forked client processes over blocking pipes, each client
    /// issuing `queries` requests and stamping per-request latency in guest
    /// cycles (`Sys::Cycles`). The harness harvests the stamps into
    /// latency percentiles (see `harness::ScenarioStats`). Lowered by
    /// `cheri-corpus`.
    Scenario {
        /// Concurrent client processes.
        clients: u64,
        /// Requests per client.
        queries: u64,
        /// Query mix: `get` / `put` / `mixed` (seeded per-client LCG).
        mix: String,
        /// Whether the server forces pages to the swap device each round.
        swap_pressure: bool,
    },
}

impl ProgramSpec {
    /// Canonical JSON encoding (`{"program":"exit","code":0}`-style: a
    /// stable tag plus the variant's parameters, in declaration order).
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            ProgramSpec::Exit { code } => Json::obj(vec![
                ("program", Json::str("exit")),
                ("code", Json::i64(*code)),
            ]),
            ProgramSpec::Spin { iters } => Json::obj(vec![
                ("program", Json::str("spin")),
                ("iters", Json::i64(*iters)),
            ]),
            ProgramSpec::Boom => Json::obj(vec![("program", Json::str("boom"))]),
            ProgramSpec::CapChurn { iters } => Json::obj(vec![
                ("program", Json::str("cap-churn")),
                ("iters", Json::i64(*iters)),
            ]),
            ProgramSpec::SwapStress { pages } => Json::obj(vec![
                ("program", Json::str("swap-stress")),
                ("pages", Json::i64(*pages)),
            ]),
            ProgramSpec::Corpus { case } => Json::obj(vec![
                ("program", Json::str("corpus")),
                ("case", Json::str(case.clone())),
            ]),
            ProgramSpec::Bodiag {
                region,
                tail,
                access,
                idiom,
                len,
                variant,
            } => Json::obj(vec![
                ("program", Json::str("bodiag")),
                ("region", Json::str(region.clone())),
                ("tail", Json::u64(*tail)),
                ("access", Json::str(access.clone())),
                ("idiom", Json::str(idiom.clone())),
                ("len", Json::u64(*len)),
                ("variant", Json::str(variant.clone())),
            ]),
            ProgramSpec::Workload { name } => Json::obj(vec![
                ("program", Json::str("workload")),
                ("name", Json::str(name.clone())),
            ]),
            ProgramSpec::Tlsish { sessions } => Json::obj(vec![
                ("program", Json::str("tlsish")),
                ("sessions", Json::i64(*sessions)),
            ]),
            ProgramSpec::Initdb { records } => Json::obj(vec![
                ("program", Json::str("initdb")),
                ("records", Json::i64(*records)),
            ]),
            ProgramSpec::InitdbDynamic { base_records } => Json::obj(vec![
                ("program", Json::str("initdb-dynamic")),
                ("base_records", Json::i64(*base_records)),
            ]),
            ProgramSpec::Micro { kind, iters } => Json::obj(vec![
                ("program", Json::str("micro")),
                ("kind", Json::str(kind.clone())),
                ("iters", Json::i64(*iters)),
            ]),
            ProgramSpec::Scenario {
                clients,
                queries,
                mix,
                swap_pressure,
            } => Json::obj(vec![
                ("program", Json::str("scenario")),
                ("clients", Json::u64(*clients)),
                ("queries", Json::u64(*queries)),
                ("mix", Json::str(mix.clone())),
                ("swap_pressure", Json::Bool(*swap_pressure)),
            ]),
        }
    }

    /// Decodes [`ProgramSpec::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message if the value is not a recognised encoding.
    pub fn from_json(v: &Json) -> Result<ProgramSpec, String> {
        let tag = v.field("program")?.as_str()?;
        match tag {
            "exit" => Ok(ProgramSpec::Exit {
                code: v.field("code")?.as_i64()?,
            }),
            "spin" => Ok(ProgramSpec::Spin {
                iters: v.field("iters")?.as_i64()?,
            }),
            "boom" => Ok(ProgramSpec::Boom),
            "cap-churn" => Ok(ProgramSpec::CapChurn {
                iters: v.field("iters")?.as_i64()?,
            }),
            "swap-stress" => Ok(ProgramSpec::SwapStress {
                pages: v.field("pages")?.as_i64()?,
            }),
            "corpus" => Ok(ProgramSpec::Corpus {
                case: v.field("case")?.as_str()?.to_string(),
            }),
            "bodiag" => Ok(ProgramSpec::Bodiag {
                region: v.field("region")?.as_str()?.to_string(),
                tail: v.field("tail")?.as_u64()?,
                access: v.field("access")?.as_str()?.to_string(),
                idiom: v.field("idiom")?.as_str()?.to_string(),
                len: v.field("len")?.as_u64()?,
                variant: v.field("variant")?.as_str()?.to_string(),
            }),
            "workload" => Ok(ProgramSpec::Workload {
                name: v.field("name")?.as_str()?.to_string(),
            }),
            "tlsish" => Ok(ProgramSpec::Tlsish {
                sessions: v.field("sessions")?.as_i64()?,
            }),
            "initdb" => Ok(ProgramSpec::Initdb {
                records: v.field("records")?.as_i64()?,
            }),
            "initdb-dynamic" => Ok(ProgramSpec::InitdbDynamic {
                base_records: v.field("base_records")?.as_i64()?,
            }),
            "micro" => Ok(ProgramSpec::Micro {
                kind: v.field("kind")?.as_str()?.to_string(),
                iters: v.field("iters")?.as_i64()?,
            }),
            "scenario" => Ok(ProgramSpec::Scenario {
                clients: v.field("clients")?.as_u64()?,
                queries: v.field("queries")?.as_u64()?,
                mix: v.field("mix")?.as_str()?.to_string(),
                swap_pressure: v.field("swap_pressure")?.as_bool()?,
            }),
            other => Err(format!("unknown program tag `{other}`")),
        }
    }
}

/// One crate's lowering function: returns `Some(program)` for the variants
/// it owns, `None` for everything else. Must be a plain `fn` so the
/// registry stays `'static` and copyable across threads.
pub type LowerFn = fn(&ProgramSpec, CodegenOpts, u64) -> Option<Program>;

/// An ordered set of [`LowerFn`]s; the first one to claim a spec wins.
#[derive(Clone)]
pub struct Registry {
    lowerers: Arc<Vec<LowerFn>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Registry({} lowerers)", self.lowerers.len())
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::builtin()
    }
}

impl Registry {
    /// A registry knowing only this crate's probe programs (`Exit`,
    /// `Spin`, `Boom`).
    #[must_use]
    pub fn builtin() -> Registry {
        Registry {
            lowerers: Arc::new(vec![lower_builtin as LowerFn]),
        }
    }

    /// Extends the registry with another crate's lowering function
    /// (builder-style, so crates can chain their dependencies' sets).
    #[must_use]
    pub fn with(self, f: LowerFn) -> Registry {
        let mut lowerers = (*self.lowerers).clone();
        lowerers.push(f);
        Registry {
            lowerers: Arc::new(lowerers),
        }
    }

    /// Lowers `spec` to an executable program.
    ///
    /// # Panics
    ///
    /// Panics if no registered lowerer claims the spec — inside a harness
    /// worker this is confined to the case's report, like any builder
    /// panic.
    #[must_use]
    pub fn lower(&self, spec: &ProgramSpec, opts: CodegenOpts, seed: u64) -> Program {
        for f in self.lowerers.iter() {
            if let Some(program) = f(spec, opts, seed) {
                return program;
            }
        }
        panic!("no registered lowering for program spec {spec:?}")
    }
}

/// Lowers the probe variants owned by this crate.
fn lower_builtin(spec: &ProgramSpec, opts: CodegenOpts, seed: u64) -> Option<Program> {
    match spec {
        ProgramSpec::Exit { code } => {
            let code = *code;
            Some(single_main("exit", opts, |f| {
                f.li(Val(0), (code + seed as i64) % 64);
                f.sys_exit(Val(0));
            }))
        }
        ProgramSpec::Spin { iters } => {
            let iters = *iters;
            Some(single_main("spin", opts, |f| {
                f.li(Val(0), 0);
                let top = f.label();
                let done = f.label();
                f.bind(top);
                f.li(Val(1), iters);
                f.sub(Val(1), Val(0), Val(1));
                f.beqz(Val(1), done);
                f.add_imm(Val(0), Val(0), 1);
                f.jmp(top);
                f.bind(done);
                f.sys_exit_imm(0);
            }))
        }
        ProgramSpec::Boom => panic!("probe program `boom` always fails to build"),
        ProgramSpec::CapChurn { iters } => {
            let total = *iters + (seed % 4) as i64;
            Some(single_main("cap-churn", opts, |f| {
                f.malloc_imm(Ptr(0), 64); // pointer slot
                f.malloc_imm(Ptr(1), 16); // pointee
                f.li(Val(0), 0); // i
                f.li(Val(2), 0); // last observed value
                let top = f.label();
                let done = f.label();
                f.bind(top);
                f.li(Val(1), total);
                f.sub(Val(1), Val(0), Val(1));
                f.beqz(Val(1), done);
                f.store(Val(0), Ptr(1), 0, Width::D); // data granule mutates
                f.store_ptr(Ptr(1), Ptr(0), 0); // capability granule mutates
                f.load_ptr(Ptr(2), Ptr(0), 0); // reload the capability
                f.load(Val(2), Ptr(2), 0, Width::D, false); // and dereference it
                f.add_imm(Val(0), Val(0), 1);
                f.jmp(top);
                f.bind(done);
                f.sys_exit(Val(2)); // total - 1 when unfaulted
            }))
        }
        ProgramSpec::SwapStress { pages } => {
            let pages = *pages + (seed % 3) as i64;
            Some(single_main("swap-stress", opts, |f| {
                f.malloc_imm(Ptr(0), pages * 4096);
                // Write phase: one data word and one stored pointer per page.
                f.li(Val(0), 0);
                let wtop = f.label();
                let wdone = f.label();
                f.bind(wtop);
                f.li(Val(1), pages);
                f.sub(Val(1), Val(0), Val(1));
                f.beqz(Val(1), wdone);
                f.shl_imm(Val(1), Val(0), 12);
                f.ptr_add(Ptr(1), Ptr(0), Val(1));
                f.store(Val(0), Ptr(1), 0, Width::D);
                f.store_ptr(Ptr(1), Ptr(1), 16); // tag must survive the swap
                f.add_imm(Val(0), Val(0), 1);
                f.jmp(wtop);
                f.bind(wdone);
                // Force everything out to the swap device.
                f.li(Val(1), 1_000_000);
                f.set_arg_val(0, Val(1));
                f.syscall(Sys::Swapctl as i64);
                // Read-back phase: reload each stored pointer, dereference
                // it, and sum the page indices it points at.
                f.li(Val(0), 0);
                f.li(Val(3), 0);
                let rtop = f.label();
                let rdone = f.label();
                f.bind(rtop);
                f.li(Val(1), pages);
                f.sub(Val(1), Val(0), Val(1));
                f.beqz(Val(1), rdone);
                f.shl_imm(Val(1), Val(0), 12);
                f.ptr_add(Ptr(1), Ptr(0), Val(1));
                f.load_ptr(Ptr(2), Ptr(1), 16);
                f.load(Val(2), Ptr(2), 0, Width::D, false);
                f.add(Val(3), Val(3), Val(2));
                f.add_imm(Val(0), Val(0), 1);
                f.jmp(rtop);
                f.bind(rdone);
                f.sys_exit(Val(3)); // pages*(pages-1)/2 when unfaulted
            }))
        }
        _ => None,
    }
}

/// Builds a single-object program whose `main` is emitted by `body`.
pub(crate) fn single_main(
    name: &str,
    opts: CodegenOpts,
    body: impl FnOnce(&mut FnBuilder<'_>),
) -> Program {
    let mut pb = ProgramBuilder::new(name);
    let mut exe = pb.object(name);
    {
        let mut f = FnBuilder::begin(&mut exe, "main", opts);
        body(&mut f);
    }
    exe.set_entry("main");
    pb.add(exe.finish());
    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn all_variants() -> Vec<ProgramSpec> {
        vec![
            ProgramSpec::Exit { code: 7 },
            ProgramSpec::Spin { iters: 100 },
            ProgramSpec::Boom,
            ProgramSpec::CapChurn { iters: 40 },
            ProgramSpec::SwapStress { pages: 5 },
            ProgramSpec::Corpus {
                case: "arith_sum_17".to_string(),
            },
            ProgramSpec::Bodiag {
                region: "intra".to_string(),
                tail: 7,
                access: "write".to_string(),
                idiom: "direct".to_string(),
                len: 25,
                variant: "med".to_string(),
            },
            ProgramSpec::Workload {
                name: "auto-qsort".to_string(),
            },
            ProgramSpec::Tlsish { sessions: 200 },
            ProgramSpec::Initdb { records: 420 },
            ProgramSpec::InitdbDynamic { base_records: 360 },
            ProgramSpec::Micro {
                kind: "select".to_string(),
                iters: 200,
            },
            ProgramSpec::Scenario {
                clients: 4,
                queries: 12,
                mix: "mixed".to_string(),
                swap_pressure: true,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        for spec in all_variants() {
            let text = spec.to_json().to_string();
            let back =
                ProgramSpec::from_json(&json::parse(&text).expect("parses")).expect("decodes");
            assert_eq!(back, spec, "{text}");
            // Canonical: re-encoding is byte-identical.
            assert_eq!(back.to_json().to_string(), text);
        }
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let v = json::parse("{\"program\":\"no-such-program\"}").expect("parses");
        assert!(ProgramSpec::from_json(&v).is_err());
    }

    #[test]
    fn builtin_registry_lowers_probes_only() {
        let reg = Registry::builtin();
        let p = reg.lower(&ProgramSpec::Exit { code: 3 }, CodegenOpts::purecap(), 0);
        assert!(!p.objects.is_empty());
        let spin = reg.lower(&ProgramSpec::Spin { iters: 5 }, CodegenOpts::mips64(), 0);
        assert!(!spin.objects.is_empty());
        let unclaimed = std::panic::catch_unwind(|| {
            reg.lower(
                &ProgramSpec::Workload {
                    name: "auto-qsort".to_string(),
                },
                CodegenOpts::purecap(),
                0,
            )
        });
        assert!(unclaimed.is_err(), "workload must not lower from builtin");
    }

    #[test]
    fn fault_probes_run_to_their_expected_exit_codes() {
        use crate::{AbiMode, ExitStatus, SpawnOpts, System};
        let reg = Registry::builtin();
        for (abi, opts) in [
            (AbiMode::Mips64, CodegenOpts::mips64()),
            (AbiMode::CheriAbi, CodegenOpts::purecap()),
        ] {
            for seed in [0u64, 1, 5] {
                let churn = reg.lower(&ProgramSpec::CapChurn { iters: 20 }, opts, seed);
                let mut sys = System::new();
                let (status, _) = sys
                    .kernel
                    .run_program(&churn, &SpawnOpts::new(abi))
                    .expect("churn runs");
                let total = 20 + (seed % 4) as i64;
                assert_eq!(status, ExitStatus::Code(total - 1), "{abi} seed {seed}");

                let swap = reg.lower(&ProgramSpec::SwapStress { pages: 4 }, opts, seed);
                let mut sys = System::new();
                let (status, _) = sys
                    .kernel
                    .run_program(&swap, &SpawnOpts::new(abi))
                    .expect("swap-stress runs");
                let pages = 4 + (seed % 3) as i64;
                assert_eq!(
                    status,
                    ExitStatus::Code(pages * (pages - 1) / 2),
                    "{abi} seed {seed}"
                );
            }
        }
    }
}
