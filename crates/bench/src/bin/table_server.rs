//! **table_server** — the scenario-plane headline table: a multi-tenant
//! minidb server under concurrent client load, measured in deterministic
//! guest cycles.
//!
//! Each cell runs `ProgramSpec::Scenario`: one server process answering
//! `clients` client processes over blocking pipes (capacity 6, so every
//! request crosses real block/wake scheduling), 12 queries per client of
//! a mixed put/get stream. Clients stamp each request enqueue→reply with
//! the `cycles` syscall; the harness folds the stamps into nearest-rank
//! p50/p95/p99. The grid is {mips64, purecap} × {1, 4, 16 clients}, plus
//! a swap-pressure variant per ABI (the server forces its pages out
//! between rounds) to show backpressure under capability churn + paging.
//!
//! Everything in a row is deterministic guest data — latencies are guest
//! cycles, not wall time — so output is byte-identical across `--jobs`
//! levels, shard merges, and `--fast-path`/`--no-fast-path`.

use cheri_bench::cli::{self, json_escape};
use cheri_isa::codegen::CodegenOpts;
use cheri_kernel::{AbiMode, KernelConfig};
use cheriabi::harness::{CaseOutcome, RunSpec};
use cheriabi::spec::ProgramSpec;

const QUERIES: u64 = 12;
const SEED: u64 = 11;

struct Cell {
    clients: u64,
    swap: bool,
}

fn build_specs() -> (Vec<RunSpec>, Vec<Cell>) {
    let tight_pipes = KernelConfig {
        pipe_capacity: 6,
        ..KernelConfig::default()
    };
    let mut specs = Vec::new();
    let mut cells = Vec::new();
    for (abi, opts) in [
        (AbiMode::Mips64, CodegenOpts::mips64()),
        (AbiMode::CheriAbi, CodegenOpts::purecap()),
    ] {
        for (clients, swap) in [(1u64, false), (4, false), (16, false), (4, true)] {
            let suffix = if swap { "-swap" } else { "" };
            specs.push(
                RunSpec::new(
                    format!("server-{abi}-c{clients}{suffix}"),
                    ProgramSpec::Scenario {
                        clients,
                        queries: QUERIES,
                        mix: "mixed".to_string(),
                        swap_pressure: swap,
                    },
                    opts,
                    abi,
                )
                .with_seed(SEED)
                .with_config(tight_pipes),
            );
            cells.push(Cell { clients, swap });
        }
    }
    (specs, cells)
}

fn main() {
    let opts = cli::parse_env();
    let (specs, cells) = build_specs();
    let Some(reports) = cli::run_specs(&cheri_bench::registry(), &specs, &opts) else {
        return;
    };
    if !opts.json {
        println!(
            "table_server: multi-tenant minidb scenario ({QUERIES} queries/client, \
             mixed put/get, pipe capacity 6; latencies in guest cycles)"
        );
        println!(
            "{:<26} {:>5} {:>5} {:>9} {:>8} {:>8} {:>8}",
            "cell", "reqs", "done", "cyc/req", "p50", "p95", "p99"
        );
    }
    for ((spec, cell), report) in specs.iter().zip(&cells).zip(&reports) {
        let stats = report.scenario.unwrap_or_default();
        let cycles = report.metrics.cycles;
        if opts.json {
            let mut line = format!(
                "{{\"table\":\"table_server\",\"case\":\"{}\",\"abi\":\"{}\",\"clients\":{},\
                 \"swap_pressure\":{},\"requests\":{},\"completed\":{},\"cycles\":{},\
                 \"p50\":{},\"p95\":{},\"p99\":{}",
                json_escape(&spec.name),
                spec.abi,
                cell.clients,
                cell.swap,
                stats.requests,
                stats.completed,
                cycles,
                stats.p50,
                stats.p95,
                stats.p99
            );
            line.push_str(&format!(",\"outcome\":{}}}", report.outcome.to_json()));
            println!("{line}");
        } else {
            let per_req = cycles
                .checked_div(stats.completed)
                .map_or_else(|| "-".to_string(), |c| c.to_string());
            let flag = match &report.outcome {
                CaseOutcome::Exited(cheriabi::ExitStatus::Code(0)) => String::new(),
                CaseOutcome::Deadlock(_) => "  DEADLOCK".to_string(),
                other => format!("  {other}"),
            };
            println!(
                "{:<26} {:>5} {:>5} {:>9} {:>8} {:>8} {:>8}{flag}",
                spec.name,
                stats.requests,
                stats.completed,
                per_req,
                stats.p50,
                stats.p95,
                stats.p99
            );
        }
    }
    if !opts.json {
        println!();
        println!(
            "note: cyc/req divides whole-scenario guest cycles (server + all\n\
             clients + scheduler crossings) by completed requests; p50/p95/p99\n\
             are per-request enqueue→reply latencies stamped by the clients."
        );
    }
}
