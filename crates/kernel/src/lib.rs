//! # cheri-kernel — the CheriBSD-like kernel
//!
//! The substrate the CheriABI paper adapts: a UNIX-style kernel with
//! processes, `execve`, a syscall layer, signals, `fork`, pipes, a memory
//! file system, System-V shared memory, `kevent`, and `ptrace` debugging —
//! all implemented over the simulated CPU/VM and restructured around the
//! paper's two principles:
//!
//! * **Least privilege**: `execve` subdivides a fresh per-principal root
//!   capability into per-mapping capabilities (Figure 1); `mmap`/`shmat`
//!   return capabilities bounded to the allocation with permissions derived
//!   from the page protection; `munmap`/`shmdt`/fixed `mmap` demand the
//!   software-defined `VMMAP` permission.
//! * **Intentional use**: when serving a CheriABI process, every kernel
//!   access to user memory goes through the *user-provided* capability
//!   ([`Kernel`]'s copyin/copyout, Figure 3) — an out-of-bounds syscall
//!   buffer faults with `EFAULT` instead of becoming a confused-deputy
//!   write. Tags are stripped on ordinary copies; only designated
//!   interfaces (`kevent` udata, signal frames) preserve capabilities.
//!
//! Both process ABIs of §4 are supported side by side: **legacy mips64**
//! (pointers are integers, DDC spans the address space) and **CheriABI**
//! (DDC is NULL, all pointers are capabilities).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abi;
mod costs;
mod exec;
mod kernel;
mod process;
mod ptrace;
mod signal;
mod syscall;

pub use abi::{AbiMode, Errno, Sys};
pub use cheri_alloc::AllocEvidence;
pub use exec::SpawnOpts;
pub use kernel::{Kernel, KernelConfig, KernelStats, RunOutcome, SyscallFaultSpec, SyscallFaults};
pub use process::{ExitStatus, Pid, ProcState, Process, WaitReason};
pub use ptrace::PtraceOp;
pub use signal::{Signal, SIGBUS, SIGPROT};
