//! Trace-based abstract-capability reconstruction (paper §5.5 / Figure 5):
//! runs the `tlsish` server workload under CheriABI with derivation tracing
//! enabled, prints the capability-size distribution per source, and then
//! verifies the abstract-capability invariant on a live process.
//!
//! ```sh
//! cargo run --release --example capability_trace
//! ```

use cheri_isa::codegen::CodegenOpts;
use cheri_workloads::tlsish;
use cheriabi::verify::check_process;
use cheriabi::{AbiMode, SpawnOpts, System};

fn main() {
    // ---- Figure 5: trace a server session ----
    let program = tlsish::build(CodegenOpts::purecap(), 60);
    let mut sys = System::new();
    sys.enable_tracing();
    let (status, _console, metrics) = sys
        .measure(&program, &SpawnOpts::new(AbiMode::CheriAbi))
        .expect("loads");
    println!("tlsish: {status:?}, {} instructions", metrics.instructions);
    let cdf = sys.capability_histogram();
    println!("{cdf}");
    println!(
        "{:.1}% of the {} capabilities created grant access to <= 1 KiB",
        cdf.fraction_at_most(10) * 100.0,
        cdf.total()
    );

    // ---- invariant check: every reachable capability belongs to its
    //      process's principal (DESIGN.md I4) ----
    let program = tlsish::build(CodegenOpts::purecap(), 100);
    let mut sys = System::new();
    let pid = sys
        .kernel
        .spawn(&program, &SpawnOpts::new(AbiMode::CheriAbi))
        .expect("loads");
    // Run part-way so the process is alive mid-session.
    sys.kernel.run(150_000);
    if sys.kernel.exit_status(pid).is_none() {
        let report = check_process(&sys.kernel, pid);
        println!();
        println!(
            "abstract-capability scan: {} capabilities checked, {} violations, sources: {:?}",
            report.caps_checked,
            report.violations.len(),
            report
                .by_source
                .keys()
                .map(|s| s.label())
                .collect::<Vec<_>>()
        );
        assert!(
            report.is_clean(),
            "invariant violated: {:?}",
            report.violations
        );
        println!("invariant I4 holds: every capability traces to the process principal");
    } else {
        println!("(process finished before the mid-run scan; rerun for the live check)");
    }
}
