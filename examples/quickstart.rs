//! Quickstart: boot the simulated machine, build a tiny guest program with
//! the two-ABI code generator, and run it under both the legacy mips64 ABI
//! and CheriABI.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cheri_isa::codegen::{CodegenOpts, FnBuilder, Ptr, Val};
use cheri_isa::Width;
use cheriabi::guest::GuestOps;
use cheriabi::{AbiMode, ProgramBuilder, SpawnOpts, System};

fn main() {
    for (abi, opts) in [
        (AbiMode::Mips64, CodegenOpts::mips64()),
        (AbiMode::CheriAbi, CodegenOpts::purecap()),
    ] {
        // A program: print a greeting, allocate a buffer, compute in it,
        // and exit with a checksum.
        let mut pb = ProgramBuilder::new("quickstart");
        let mut exe = pb.object("quickstart");
        exe.add_data("greeting", b"hello from the guest!\n", 16);
        {
            let mut f = FnBuilder::begin(&mut exe, "main", opts);
            f.print_sym("greeting", 22);
            f.malloc_imm(Ptr(0), 64);
            f.li(Val(0), 21);
            f.store(Val(0), Ptr(0), 0, Width::D);
            f.load(Val(1), Ptr(0), 0, Width::D, false);
            f.add(Val(1), Val(1), Val(1));
            f.free(Ptr(0));
            f.sys_exit(Val(1));
        }
        exe.set_entry("main");
        pb.add(exe.finish());
        let program = pb.finish();

        // Boot and run.
        let mut sys = System::new();
        let (status, console, metrics) = sys
            .measure(&program, &SpawnOpts::new(abi))
            .expect("program loads");
        println!("--- {abi} ---");
        print!("{console}");
        println!(
            "exit: {status:?} after {} instructions, {} cycles, {} syscalls",
            metrics.instructions, metrics.cycles, metrics.syscalls
        );
    }
}
