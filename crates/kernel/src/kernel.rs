//! The kernel proper: state, copyin/copyout, scheduler and trap handling.

use crate::abi::{AbiMode, Errno};
use crate::costs;
use crate::process::{ExitStatus, FileDesc, Pid, ProcState, Process, WaitReason};
use crate::signal::SIGPROT;
use cheri_alloc::AllocEvidence;
use cheri_cap::{CapFormat, Capability, Perms, PrincipalAllocator};
use cheri_cpu::{Cpu, Exit, TrapCause, TrapInfo};
use cheri_vm::{Vm, VmError};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Global kernel configuration, including the design-choice toggles used by
/// the ablation benchmarks (DESIGN.md D1/D4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct KernelConfig {
    /// Capability format for all address spaces (D1).
    pub cap_fmt: CapFormat,
    /// Physical frames available.
    pub phys_frames: usize,
    /// D4: when `true` (the paper's design), the kernel accesses CheriABI
    /// user memory only through user-provided capabilities; when `false`,
    /// it falls back to the address-space-wide capability, re-enabling
    /// confused-deputy attacks (used by tests to show what D4 buys).
    pub kernel_cap_discipline: bool,
    /// Scheduler quantum in instructions.
    pub quantum: u64,
    /// Default per-process instruction budget (runaway guard).
    pub default_instr_budget: u64,
    /// Pipe buffer capacity in bytes; writers block when the buffer is
    /// full (POSIX `PIPE_BUF`-style backpressure).
    pub pipe_capacity: usize,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            cap_fmt: CapFormat::C128,
            phys_frames: 16 * 1024, // 64 MiB
            kernel_cap_discipline: true,
            quantum: 100_000,
            default_instr_budget: 2_000_000_000,
            pipe_capacity: 4096,
        }
    }
}

/// Aggregate kernel statistics.
#[derive(Clone, Debug, Default)]
pub struct KernelStats {
    /// Syscalls dispatched, by name.
    pub syscalls: HashMap<&'static str, u64>,
    /// Context switches performed.
    pub ctx_switches: u64,
    /// Signals delivered.
    pub signals_delivered: u64,
    /// Traps (capability + VM) observed.
    pub traps: u64,
    /// Processes spawned.
    pub spawns: u64,
    /// Blocked processes woken by the scheduler.
    pub wakes: u64,
    /// Processes put to sleep on a wait condition.
    pub blocks: u64,
    /// Deepest run-queue occupancy observed.
    pub max_runq_depth: u64,
}

/// Schedule for injected transient syscall errors (the fault plane's third
/// family). Counters are global across processes so a (seed, plan) pair
/// deterministically picks the same victim call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct SyscallFaultSpec {
    /// Inject `EINTR` on the Nth eligible syscall (1-based): the kernel
    /// restarts the call transparently (rewind + re-dispatch).
    pub eintr_at: Option<u64>,
    /// Inject `ENOMEM` on the Nth eligible syscall (1-based): the guest
    /// observes the errno.
    pub enomem_at: Option<u64>,
}

/// Armed spec plus observability counters for syscall fault injection.
#[derive(Clone, Copy, Debug, Default)]
pub struct SyscallFaults {
    pub(crate) spec: SyscallFaultSpec,
    /// Eligible syscalls observed (excludes `exit`/`sigreturn`, which must
    /// never be interrupted).
    pub calls: u64,
    /// `EINTR` restarts performed.
    pub eintr_injected: u64,
    /// `ENOMEM` errors delivered.
    pub enomem_injected: u64,
}

impl SyscallFaults {
    /// True if any injected syscall fault has fired.
    #[must_use]
    pub fn fired(&self) -> bool {
        self.eintr_injected + self.enomem_injected > 0
    }
}

/// A pipe's kernel state.
#[derive(Debug, Default)]
pub(crate) struct Pipe {
    pub buf: VecDeque<u8>,
    pub capacity: usize,
    pub readers: usize,
    pub writers: usize,
}

impl Pipe {
    /// Bytes the buffer can still accept.
    pub(crate) fn space(&self) -> usize {
        self.capacity.saturating_sub(self.buf.len())
    }
}

/// Result of running the scheduler to completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every process exited.
    AllExited,
    /// Runnable work remains but the global instruction budget ran out.
    GlobalBudget,
    /// Only blocked processes remain and none can make progress.
    Deadlock,
}

/// A user pointer as presented by a process: a full capability (CheriABI)
/// or a bare integer address (legacy).
#[derive(Clone, Copy, Debug)]
pub enum UserRef {
    /// CheriABI: the user's capability, used directly (Figure 3).
    Cap(Capability),
    /// Legacy: an address the kernel must wrap in its own authority.
    Addr(u64),
}

impl UserRef {
    /// The referenced address.
    #[must_use]
    pub fn addr(&self) -> u64 {
        match self {
            UserRef::Cap(c) => c.addr(),
            UserRef::Addr(a) => *a,
        }
    }

    /// Whether this is a NULL pointer (untagged + zero for CheriABI).
    #[must_use]
    pub fn is_null(&self) -> bool {
        match self {
            UserRef::Cap(c) => !c.tag() && c.addr() == 0,
            UserRef::Addr(a) => *a == 0,
        }
    }
}

/// The simulated CheriBSD kernel.
pub struct Kernel {
    /// Virtual-memory subsystem.
    pub vm: Vm,
    /// The CPU.
    pub cpu: Cpu,
    /// Configuration.
    pub config: KernelConfig,
    /// Statistics.
    pub stats: KernelStats,
    pub(crate) procs: HashMap<Pid, Process>,
    pub(crate) runq: VecDeque<Pid>,
    pub(crate) next_pid: u64,
    pub(crate) principals: PrincipalAllocator,
    pub(crate) pipes: HashMap<u64, Pipe>,
    pub(crate) next_pipe: u64,
    /// In-memory filesystem (path -> bytes).
    pub memfs: HashMap<String, Vec<u8>>,
    pub(crate) shm: HashMap<u64, u64>,
    pub(crate) syscall_faults: SyscallFaults,
    faults_charged: u64,
    swaps_charged: u64,
    /// Hardened-membrane evidence aggregated across all processes: drained
    /// from each allocator alongside its cycle charges (so the counters
    /// survive process reaping) plus kernel-level repairs. Deterministic —
    /// safe to surface on byte-identical report lines.
    pub membrane: AllocEvidence,
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Kernel{{procs={}, {:?}}}", self.procs.len(), self.stats)
    }
}

impl Kernel {
    /// Boots a kernel with `config`.
    #[must_use]
    pub fn new(config: KernelConfig) -> Kernel {
        Kernel {
            vm: Vm::new(config.phys_frames),
            cpu: Cpu::new(),
            config,
            stats: KernelStats::default(),
            procs: HashMap::new(),
            runq: VecDeque::new(),
            next_pid: 1,
            principals: PrincipalAllocator::new(),
            pipes: HashMap::new(),
            next_pipe: 1,
            memfs: HashMap::new(),
            shm: HashMap::new(),
            syscall_faults: SyscallFaults::default(),
            faults_charged: 0,
            swaps_charged: 0,
            membrane: AllocEvidence::default(),
        }
    }

    /// Arms transient syscall-error injection. Counters reset.
    pub fn arm_syscall_faults(&mut self, spec: SyscallFaultSpec) {
        self.syscall_faults = SyscallFaults {
            spec,
            ..SyscallFaults::default()
        };
    }

    /// Syscall fault-injection state and counters.
    #[must_use]
    pub fn syscall_faults(&self) -> &SyscallFaults {
        &self.syscall_faults
    }

    /// Access a process entry.
    ///
    /// # Panics
    ///
    /// Panics for unknown pids (kernel-internal identifiers).
    #[must_use]
    pub fn process(&self, pid: Pid) -> &Process {
        self.procs.get(&pid).expect("unknown pid")
    }

    /// Mutable access to a process entry.
    ///
    /// # Panics
    ///
    /// Panics for unknown pids.
    pub fn process_mut(&mut self, pid: Pid) -> &mut Process {
        self.procs.get_mut(&pid).expect("unknown pid")
    }

    /// Non-panicking process lookup, for paths reachable with a stale pid.
    #[must_use]
    pub fn try_process(&self, pid: Pid) -> Option<&Process> {
        self.procs.get(&pid)
    }

    /// Non-panicking mutable process lookup.
    pub fn try_process_mut(&mut self, pid: Pid) -> Option<&mut Process> {
        self.procs.get_mut(&pid)
    }

    /// The exit status of `pid` if it has finished.
    #[must_use]
    pub fn exit_status(&self, pid: Pid) -> Option<ExitStatus> {
        match self.procs.get(&pid)?.state {
            ProcState::Exited(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn bump_syscall(&mut self, name: &'static str) {
        *self.stats.syscalls.entry(name).or_insert(0) += 1;
    }

    // ------------------------------------------------------------------
    // User-pointer plumbing (Figure 3)
    // ------------------------------------------------------------------

    /// Reads syscall argument `slot` as a user pointer, honouring the
    /// process ABI: CheriABI pointer arguments travel in `$c3+slot`,
    /// legacy ones in `$a<slot>` as integers.
    #[must_use]
    pub fn user_ref(&self, pid: Pid, slot: u8) -> UserRef {
        let p = self.process(pid);
        match p.abi {
            AbiMode::CheriAbi => UserRef::Cap(p.regs.c(cheri_isa::creg::arg(slot))),
            AbiMode::Mips64 => UserRef::Addr(p.regs.r(cheri_isa::ireg::arg(slot))),
        }
    }

    /// Reads integer syscall argument `slot` (`$a<slot>`).
    #[must_use]
    pub fn user_val(&self, pid: Pid, slot: u8) -> u64 {
        self.process(pid).regs.r(cheri_isa::ireg::arg(slot))
    }

    /// The capability the kernel will use to access user memory for this
    /// reference: the user's own capability under CheriABI discipline, or
    /// an address-space-wide kernel-constructed capability otherwise.
    fn access_cap(&mut self, pid: Pid, uref: UserRef) -> Capability {
        let (abi, space) = {
            let p = self.process(pid);
            (p.abi, p.space)
        };
        match (uref, abi, self.config.kernel_cap_discipline) {
            (UserRef::Cap(c), AbiMode::CheriAbi, true) => {
                self.cpu.charge(0, costs::CHERIABI_PTR_ARG);
                c
            }
            (uref, _, _) => {
                // Legacy path (or discipline disabled): construct authority
                // from the per-space root — the pre-CheriABI behaviour.
                self.cpu.charge(0, costs::LEGACY_PTR_ARG);
                let root = self.vm.space(space).root;
                root.with_addr(uref.addr())
            }
        }
    }

    /// Copies `len` bytes in from user memory through `uref`.
    ///
    /// # Errors
    ///
    /// `EFAULT` if the capability does not authorise the read or the pages
    /// are absent/misprotected.
    pub fn copyin(&mut self, pid: Pid, uref: UserRef, len: u64) -> Result<Vec<u8>, Errno> {
        let cap = self.access_cap(pid, uref);
        cap.check_access(cap.addr(), len, Perms::LOAD)
            .map_err(|_| Errno::EFAULT)?;
        let space = self.process(pid).space;
        let mut buf = vec![0u8; len as usize];
        self.vm
            .read_bytes(space, cap.addr(), &mut buf)
            .map_err(|_| Errno::EFAULT)?;
        self.cpu
            .charge(len / 8 + 4, len / 8 * costs::COPY_PER_8B + 20);
        Ok(buf)
    }

    /// Copies bytes out to user memory through `uref`. Tags are never set
    /// by this path (D5: ordinary copies strip capability tags).
    ///
    /// # Errors
    ///
    /// `EFAULT` on authorisation or paging failure.
    pub fn copyout(&mut self, pid: Pid, uref: UserRef, data: &[u8]) -> Result<(), Errno> {
        let cap = self.access_cap(pid, uref);
        cap.check_access(cap.addr(), data.len() as u64, Perms::STORE)
            .map_err(|_| Errno::EFAULT)?;
        let space = self.process(pid).space;
        self.vm
            .write_bytes(space, cap.addr(), data)
            .map_err(|_| Errno::EFAULT)?;
        self.cpu.charge(
            data.len() as u64 / 8 + 4,
            data.len() as u64 / 8 * costs::COPY_PER_8B + 20,
        );
        Ok(())
    }

    /// Copies a NUL-terminated string in (bounded by `max`).
    ///
    /// # Errors
    ///
    /// `EFAULT` on authorisation failure, `EINVAL` if unterminated.
    pub fn copyinstr(&mut self, pid: Pid, uref: UserRef, max: u64) -> Result<String, Errno> {
        let cap = self.access_cap(pid, uref);
        let space = self.process(pid).space;
        let mut out = Vec::new();
        for i in 0..max {
            cap.check_access(cap.addr() + i, 1, Perms::LOAD)
                .map_err(|_| Errno::EFAULT)?;
            let mut b = [0u8; 1];
            self.vm
                .read_bytes(space, cap.addr() + i, &mut b)
                .map_err(|_| Errno::EFAULT)?;
            if b[0] == 0 {
                self.cpu.charge(i + 4, i + 20);
                return Ok(String::from_utf8_lossy(&out).into_owned());
            }
            out.push(b[0]);
        }
        Err(Errno::EINVAL)
    }

    /// Capability-preserving copyout used only by designated interfaces
    /// (kevent udata, signal frames): stores `cap` *with its tag* at the
    /// 16-aligned address referenced by `uref`.
    ///
    /// # Errors
    ///
    /// `EFAULT` on authorisation failure or misalignment.
    pub fn copyout_cap(&mut self, pid: Pid, uref: UserRef, cap: Capability) -> Result<(), Errno> {
        let access = self.access_cap(pid, uref);
        let size = access.format().in_memory_size();
        if !access.addr().is_multiple_of(size) {
            return Err(Errno::EFAULT);
        }
        access
            .check_access(access.addr(), size, Perms::STORE | Perms::STORE_CAP)
            .map_err(|_| Errno::EFAULT)?;
        let space = self.process(pid).space;
        self.vm
            .store_cap(space, access.addr(), cap)
            .map_err(|_| Errno::EFAULT)?;
        self.cpu.charge(4, 8);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Pipes
    // ------------------------------------------------------------------

    pub(crate) fn pipe_readable(&self, id: u64) -> bool {
        self.pipes
            .get(&id)
            .map(|p| !p.buf.is_empty() || p.writers == 0)
            .unwrap_or(true)
    }

    pub(crate) fn pipe_writable(&self, id: u64) -> bool {
        // Reader loss also "readies" a blocked writer: the retried write
        // then observes EINVAL instead of sleeping forever.
        self.pipes
            .get(&id)
            .map(|p| p.space() > 0 || p.readers == 0)
            .unwrap_or(true)
    }

    pub(crate) fn fd_readable(&self, pid: Pid, fd: u64) -> bool {
        match self.process(pid).fd(fd) {
            Some(FileDesc::PipeRead(id)) => self.pipe_readable(*id),
            Some(FileDesc::Console) => false,
            Some(FileDesc::File { .. }) => true,
            Some(FileDesc::PipeWrite(_)) => false,
            None => true, // select reports error-ready; read returns EBADF
        }
    }

    // ------------------------------------------------------------------
    // Scheduler
    // ------------------------------------------------------------------

    fn wait_satisfied(&self, pid: Pid, reason: WaitReason) -> bool {
        match reason {
            WaitReason::PipeReadable(id) => self.pipe_readable(id),
            WaitReason::PipeWritable(id) => self.pipe_writable(id),
            WaitReason::Child(which) => {
                let p = self.process(pid);
                match which {
                    Some(c) => p.zombies.iter().any(|(z, _)| *z == c),
                    None => !p.zombies.is_empty() || p.children.is_empty(),
                }
            }
            WaitReason::Kevent => self
                .process(pid)
                .kq
                .iter()
                .any(|e| e.fired || self.fd_readable(pid, e.ident)),
            WaitReason::Select(bits) => {
                (0..64).any(|fd| bits >> fd & 1 == 1 && self.fd_readable(pid, fd))
            }
            WaitReason::Traced => false, // woken explicitly by the tracer
        }
    }

    fn wake_ready(&mut self) {
        // Sorted scan: wake order (and thus run-queue order) must not
        // depend on HashMap iteration order, or multi-process runs lose
        // their deterministic schedule.
        let mut pids: Vec<Pid> = self.procs.keys().copied().collect();
        pids.sort_unstable();
        for pid in pids {
            if let ProcState::Blocked(reason) = self.process(pid).state {
                if self.wait_satisfied(pid, reason) {
                    self.stats.wakes += 1;
                    self.process_mut(pid).state = ProcState::Runnable;
                    if !self.runq.contains(&pid) {
                        self.runq.push_back(pid);
                    }
                }
            }
        }
    }

    /// Runs the scheduler until every process exits, deadlock, or
    /// `max_total_instrs` retired instructions.
    pub fn run(&mut self, max_total_instrs: u64) -> RunOutcome {
        let start = self.cpu.stats.instret;
        loop {
            self.wake_ready();
            self.stats.max_runq_depth = self.stats.max_runq_depth.max(self.runq.len() as u64);
            let Some(pid) = self.runq.pop_front() else {
                if self
                    .procs
                    .values()
                    .all(|p| matches!(p.state, ProcState::Exited(_)))
                {
                    return RunOutcome::AllExited;
                }
                // Blocked processes remain but nothing can wake them.
                return RunOutcome::Deadlock;
            };
            if !matches!(self.process(pid).state, ProcState::Runnable) {
                continue;
            }
            if self.cpu.stats.instret - start > max_total_instrs {
                self.runq.push_front(pid);
                return RunOutcome::GlobalBudget;
            }
            self.stats.ctx_switches += 1;
            self.cpu.charge(0, costs::CONTEXT_SWITCH);
            self.deliver_pending_signal(pid);
            if !matches!(self.process(pid).state, ProcState::Runnable) {
                continue;
            }
            // Per-process ledger: every cycle the CPU retires during this
            // slice — guest instructions plus kernel work done on its
            // behalf — is charged to the process that was scheduled.
            let cycles_before = self.cpu.stats.cycles;
            self.run_slice(pid);
            let delta = self.cpu.stats.cycles - cycles_before;
            if let Some(p) = self.try_process_mut(pid) {
                p.cycles += delta;
            }
        }
    }

    fn run_slice(&mut self, pid: Pid) {
        let quantum = self.config.quantum.min(self.process(pid).instr_budget);
        if quantum == 0 {
            self.terminate(pid, ExitStatus::BudgetExhausted);
            return;
        }
        let (space, mut regs) = {
            let p = self.process(pid);
            (p.space, p.regs.clone())
        };
        let before = self.cpu.stats.instret;
        let exit = self.cpu.run(&mut self.vm, space, &mut regs, quantum);
        let used = self.cpu.stats.instret - before;
        {
            let p = self.process_mut(pid);
            p.regs = regs;
            p.instr_budget = p.instr_budget.saturating_sub(used);
            // Any slice that does not end in a swap-I/O trap clears the
            // retry site: a later error at the same site gets a fresh retry.
            if !matches!(
                exit,
                Exit::Trap(TrapInfo {
                    cause: TrapCause::Vm(VmError::SwapIo(_)),
                    ..
                })
            ) {
                p.swap_retry = None;
            }
        }
        self.charge_vm_work();
        match exit {
            Exit::Syscall => self.handle_syscall(pid),
            Exit::Break => {
                let status = if self.process(pid).asan {
                    ExitStatus::SanitizerAbort
                } else {
                    ExitStatus::Signaled(6)
                };
                self.terminate(pid, status);
            }
            Exit::Trap(t) => self.handle_trap(pid, t),
            Exit::InstrLimit => {
                if self.process(pid).instr_budget == 0 {
                    self.terminate(pid, ExitStatus::BudgetExhausted);
                } else {
                    self.runq.push_back(pid);
                }
            }
        }
    }

    fn charge_vm_work(&mut self) {
        let f = self.vm.stats.faults;
        let s = self.vm.stats.swap_ins + self.vm.stats.swap_outs;
        if f > self.faults_charged {
            self.cpu
                .charge(0, (f - self.faults_charged) * costs::PAGE_FAULT);
            self.faults_charged = f;
        }
        if s > self.swaps_charged {
            self.cpu
                .charge(0, (s - self.swaps_charged) * costs::SWAP_PER_PAGE);
            self.swaps_charged = s;
        }
    }

    fn handle_trap(&mut self, pid: Pid, trap: TrapInfo) {
        self.stats.traps += 1;
        if self.try_process(pid).is_none() {
            return;
        }
        // Swap-device I/O errors are transient by contract: retry the
        // faulting access once (the CPU left pc at the instruction, so
        // re-running re-enters swap-in); a second failure at the same
        // (pc, vaddr) site becomes SIGBUS — never a host panic, and never
        // the SIGPROT handler path, which is for capability faults.
        if let TrapCause::Vm(VmError::SwapIo(vaddr)) = trap.cause {
            let site = (trap.pc, vaddr);
            let p = self.process_mut(pid);
            if p.swap_retry != Some(site) {
                p.swap_retry = Some(site);
                p.regs.pc = trap.pc;
                if !self.runq.contains(&pid) {
                    self.runq.push_back(pid);
                }
                return;
            }
            self.terminate(pid, ExitStatus::Signaled(crate::signal::SIGBUS));
            return;
        }
        // VM faults the pager could not service transparently and all
        // capability faults become a synchronous SIGPROT-style signal; with
        // no handler installed, the process dies recording the cause.
        let has_handler = self.process(pid).sighandlers.contains_key(&SIGPROT);
        let fatal_vm = matches!(
            trap.cause,
            TrapCause::Vm(VmError::OutOfMemory) | TrapCause::NoCode
        );
        if has_handler && !fatal_vm {
            self.process_mut(pid).pending_signals.push_back(SIGPROT);
            // Skip the faulting instruction on handler return: store the
            // resumption pc past the fault (matching our corpus handlers'
            // expectations; real handlers would inspect the mcontext).
            let p = self.process_mut(pid);
            p.regs.pc = trap.pc.wrapping_add(4);
            if !self.runq.contains(&pid) {
                self.runq.push_back(pid);
            }
            return;
        }
        self.terminate(pid, ExitStatus::Fault(trap.cause));
    }

    /// Terminates a process: releases fds, notifies the parent, reaps the
    /// address space.
    pub(crate) fn terminate(&mut self, pid: Pid, status: ExitStatus) {
        let (space, fds, parent, evidence) = {
            let p = self.process_mut(pid);
            if matches!(p.state, ProcState::Exited(_)) {
                return;
            }
            p.state = ProcState::Exited(status);
            (
                p.space,
                std::mem::take(&mut p.fds),
                p.parent,
                p.allocator.take_evidence(),
            )
        };
        // Evidence must survive the process: fold any undrained counters
        // into the kernel aggregate before the allocator is dropped.
        self.membrane.absorb(evidence);
        for fd in fds.into_iter().flatten() {
            self.drop_fd(fd);
        }
        if let Some(pp) = parent {
            if let Some(parent_proc) = self.procs.get_mut(&pp) {
                parent_proc.children.retain(|c| *c != pid);
                parent_proc.zombies.push((pid, status));
            }
        }
        self.cpu.clear_code(space);
        // destroy_space bumps the translation epoch; the Cpu's TLB
        // self-invalidates on the next access.
        self.vm.destroy_space(space);
    }

    pub(crate) fn drop_fd(&mut self, fd: FileDesc) {
        match fd {
            FileDesc::PipeRead(id) => {
                if let Some(p) = self.pipes.get_mut(&id) {
                    p.readers -= 1;
                    if p.readers == 0 && p.writers == 0 {
                        self.pipes.remove(&id);
                    }
                }
            }
            FileDesc::PipeWrite(id) => {
                if let Some(p) = self.pipes.get_mut(&id) {
                    p.writers -= 1;
                    if p.readers == 0 && p.writers == 0 {
                        self.pipes.remove(&id);
                    }
                }
            }
            FileDesc::Console | FileDesc::File { .. } => {}
        }
    }

    /// Blocks `pid` on `reason`; the in-flight syscall is re-executed when
    /// the condition becomes true (the dispatcher is idempotent until it
    /// commits results).
    pub(crate) fn block(&mut self, pid: Pid, reason: WaitReason) {
        // Rewind pc to the syscall instruction so waking re-executes it.
        self.stats.blocks += 1;
        let p = self.process_mut(pid);
        p.regs.pc = p.regs.pc.wrapping_sub(4);
        p.state = ProcState::Blocked(reason);
    }

    /// Human-readable snapshot of every non-exited process's scheduling
    /// state, sorted by pid — the diagnostic attached to
    /// [`RunOutcome::Deadlock`] reports so a hung scenario names exactly
    /// who is waiting on what.
    #[must_use]
    pub fn blocked_diagnostics(&self) -> String {
        let mut pids: Vec<Pid> = self.procs.keys().copied().collect();
        pids.sort_unstable();
        let mut parts = Vec::new();
        for pid in pids {
            let line = match self.process(pid).state {
                ProcState::Exited(_) => continue,
                ProcState::Runnable => format!("{pid}: runnable"),
                ProcState::Blocked(reason) => match reason {
                    WaitReason::PipeReadable(id) => format!("{pid}: pipe-read({id})"),
                    WaitReason::PipeWritable(id) => format!("{pid}: pipe-write({id})"),
                    WaitReason::Child(Some(c)) => format!("{pid}: wait({c})"),
                    WaitReason::Child(None) => format!("{pid}: wait(any)"),
                    WaitReason::Kevent => format!("{pid}: kevent"),
                    WaitReason::Select(bits) => format!("{pid}: select({bits:#x})"),
                    WaitReason::Traced => format!("{pid}: traced"),
                },
            };
            parts.push(line);
        }
        parts.join("; ")
    }

    /// Drains allocator charges into the CPU counters and membrane
    /// evidence into the kernel aggregate.
    pub(crate) fn charge_allocator(&mut self, pid: Pid) {
        let p = self.process_mut(pid);
        let (i, c) = p.allocator.take_charges();
        let ev = p.allocator.take_evidence();
        self.membrane.absorb(ev);
        self.cpu.charge(i, c);
    }
}
