//! Runs an externally supplied `RunSpec` list through the shared harness
//! session — cache, shard, progress and JSON streaming included — so
//! external tooling can drive arbitrary spec matrices without a dedicated
//! binary per experiment.
//!
//! The list comes from `--specs <path>` or stdin with `--specs -`, as a
//! top-level JSON array of spec objects or one object per line. Every
//! table/figure binary prints its own session's list with `--dump-specs`,
//! so `table1 --dump-specs | run_specs --specs -` replays table 1 case by
//! case, and any subset of those lines replays a pinned sub-suite (the
//! `scripts/ci.sh` golden gate does exactly that). It is also the fleet
//! worker: `fleet_run` (and `--fleet N` on any binary) pipes work units
//! through `run_specs --specs - --jobs 1 --no-cache --shard 0/1`.
//!
//! Malformed spec lines are skipped and counted (`specs_rejected` on
//! stderr), never fatal — one torn line must not kill a fleet unit. The
//! exit is non-zero only when *every* line is malformed.

use cheri_bench::cli;

fn main() {
    let (opts, specs_source) = cli::parse_env_with_specs();
    let Some(source) = specs_source else {
        eprintln!("run_specs: requires --specs <path> (or --specs - for stdin)");
        std::process::exit(2);
    };
    let list = match cli::read_specs(&source) {
        Ok(list) => list,
        Err(msg) => {
            eprintln!("run_specs: {msg}");
            std::process::exit(2);
        }
    };
    if list.rejected > 0 {
        eprintln!(
            "run_specs: specs_rejected={} specs_accepted={}",
            list.rejected,
            list.specs.len()
        );
    }
    let Some(reports) = cli::run_specs(&cheri_bench::registry(), &list.specs, &opts) else {
        return;
    };
    for (index, report) in reports.iter().enumerate() {
        println!("{}", report.to_json_tagged(index));
    }
}
