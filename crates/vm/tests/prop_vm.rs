//! Property-based tests for the VM subsystem (DESIGN.md invariants I3/I6):
//! random interleavings of mapping, writing, swapping, COW and forking
//! never lose data, never resurrect tags they should not, and always
//! rederive the tags they should.

use cheri_cap::{CapFormat, CapSource, Capability, Perms, PrincipalId};
use cheri_vm::{AsId, Backing, Prot, Vm};
use proptest::prelude::*;
use std::collections::HashMap;

fn fresh() -> (Vm, AsId) {
    let mut vm = Vm::new(512);
    let id = vm.create_space(PrincipalId::from_raw(1), CapFormat::C128);
    (vm, id)
}

#[derive(Clone, Debug)]
enum Op {
    /// Write a u64 at (page, offset).
    Write(u8, u16, u64),
    /// Store a bounded capability at a granule (page, granule index).
    StoreCap(u8, u8),
    /// Swap the page out (if private & resident).
    SwapOut(u8),
    /// Read back and check everything recorded so far.
    Check,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 0u16..4088, any::<u64>()).prop_map(|(p, o, v)| Op::Write(p, o & !7, v)),
        (any::<u8>(), any::<u8>()).prop_map(|(p, g)| Op::StoreCap(p, g)),
        any::<u8>().prop_map(Op::SwapOut),
        Just(Op::Check),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// I6: arbitrary write/store-cap/swap interleavings on an 8-page
    /// mapping: data and tags always read back exactly, including across
    /// swap rederivation.
    #[test]
    fn swap_never_loses_data_or_tags(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let (mut vm, id) = fresh();
        let base = vm.map(id, None, 8 * 4096, Prot::rw(), Backing::Zero, "anon").unwrap();
        let root = vm.space(id).root;
        // Model state: latest u64 writes and capability stores by address.
        let mut words: HashMap<u64, u64> = HashMap::new();
        let mut caps: HashMap<u64, Capability> = HashMap::new();
        for op in &ops {
            match op {
                Op::Write(p, o, v) => {
                    let va = base + u64::from(*p % 8) * 4096 + u64::from(*o);
                    vm.write_u64(id, va, *v).unwrap();
                    words.insert(va, *v);
                    // A data write kills any capability overlapping its
                    // granules.
                    let g0 = va & !15;
                    caps.remove(&g0);
                    caps.remove(&(g0 + 16));
                    // And a capability store overlapped by this write dies
                    // even if recorded at g0-? (u64 spans at most 2 granules
                    // when 8-aligned: exactly one).
                }
                Op::StoreCap(p, g) => {
                    let va = base + u64::from(*p % 8) * 4096 + u64::from(*g) * 16;
                    let cap = root
                        .with_addr(va)
                        .set_bounds(16, true)
                        .unwrap()
                        .and_perms(Perms::user_data())
                        .with_source(CapSource::Malloc);
                    vm.store_cap(id, va, cap).unwrap();
                    caps.insert(va, cap);
                    // The store overwrites the granule's data bytes.
                    words.remove(&va);
                    words.remove(&(va + 8));
                }
                Op::SwapOut(p) => {
                    let va = base + u64::from(*p % 8) * 4096;
                    let _ = vm.swap_out(id, va).unwrap();
                }
                Op::Check => {
                    for (va, v) in &words {
                        prop_assert_eq!(vm.read_u64(id, *va).unwrap(), *v);
                    }
                    for (va, c) in &caps {
                        let got = vm.load_cap(id, *va).unwrap();
                        prop_assert!(got.is_some(), "tag lost at {va:#x}");
                        let got = got.unwrap();
                        prop_assert_eq!(got.base(), c.base());
                        prop_assert_eq!(got.top(), c.top());
                        prop_assert_eq!(got.perms(), c.perms());
                    }
                }
            }
        }
        // Final full check.
        for (va, v) in &words {
            prop_assert_eq!(vm.read_u64(id, *va).unwrap(), *v);
        }
        for (va, c) in &caps {
            let got = vm.load_cap(id, *va).unwrap();
            prop_assert_eq!(got.map(|g| (g.base(), g.top())), Some((c.base(), c.top())));
        }
    }

    /// Fork + random writes by parent and child: complete isolation of the
    /// private pages, with tags preserved on both sides.
    #[test]
    fn fork_isolation_under_random_writes(
        writes in proptest::collection::vec((any::<bool>(), 0u16..500, any::<u64>()), 1..60)
    ) {
        let (mut vm, parent) = fresh();
        let base = vm.map(parent, None, 4096, Prot::rw(), Backing::Zero, "anon").unwrap();
        let root = vm.space(parent).root;
        let cap = root.with_addr(base).set_bounds(64, true).unwrap();
        vm.store_cap(parent, base + 1024, cap).unwrap();
        let child = vm.fork_space(parent).unwrap();

        let mut pw: HashMap<u64, u64> = HashMap::new();
        let mut cw: HashMap<u64, u64> = HashMap::new();
        for (to_child, off, v) in &writes {
            let va = base + u64::from(*off & !7) % 1000;
            let va = va & !7;
            if *to_child {
                vm.write_u64(child, va, *v).unwrap();
                cw.insert(va, *v);
            } else {
                vm.write_u64(parent, va, *v).unwrap();
                pw.insert(va, *v);
            }
        }
        for (va, v) in &pw {
            prop_assert_eq!(vm.read_u64(parent, *va).unwrap(), *v, "parent at {:#x}", va);
        }
        for (va, v) in &cw {
            prop_assert_eq!(vm.read_u64(child, *va).unwrap(), *v, "child at {:#x}", va);
        }
        // Addresses written only by one side read as the other side's value
        // (or zero) on the other — no bleed-through is checked implicitly by
        // the two loops above when keys overlap; the capability survives on
        // whichever side never wrote over it.
        for side in [parent, child] {
            let got = vm.load_cap(side, base + 1024).unwrap();
            let wrote_over = |m: &HashMap<u64, u64>| {
                m.keys().any(|k| *k & !15 == (base + 1024) || *k & !15 == base + 1024 + 8)
            };
            let damaged = if side == parent { wrote_over(&pw) } else { wrote_over(&cw) };
            if !damaged {
                prop_assert!(got.is_some(), "capability lost without a write");
            }
        }
    }

    /// Repeated map/unmap of random sizes never leaks physical frames.
    #[test]
    fn map_unmap_never_leaks_frames(sizes in proptest::collection::vec(1u64..16, 1..24)) {
        let (mut vm, id) = fresh();
        for pages in &sizes {
            let len = pages * 4096;
            let base = vm.map(id, None, len, Prot::rw(), Backing::Zero, "anon").unwrap();
            // Touch every page.
            for p in 0..*pages {
                vm.write_u64(id, base + p * 4096, p).unwrap();
            }
            vm.unmap(id, base, len).unwrap();
        }
        prop_assert_eq!(vm.phys.allocated_frames(), 0, "all frames released");
    }
}
