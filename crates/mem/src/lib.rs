//! # cheri-mem — tagged physical memory and the cache model
//!
//! Two substrates the CheriABI paper's platform provides in hardware:
//!
//! * **Tagged memory** ([`PhysMem`]): one out-of-band tag bit per 16-byte,
//!   16-byte-aligned granule of physical memory, distinguishing capabilities
//!   from data (§2). Writing *data* anywhere in a granule clears its tag, so
//!   a capability's encoding can never be forged or corrupted in place —
//!   this is the paper's *capability integrity* property. Tags follow
//!   memory "through the cache hierarchy and into registers" — here they
//!   live with the physical frame and are returned by capability-width
//!   loads.
//! * **Cache hierarchy** ([`CacheHierarchy`]): the FPGA evaluation platform
//!   of §5 has 32-KiB L1 caches and a shared 256-KiB L2, set-associative,
//!   no prefetching. Figure 4's `l2cache misses` series — where
//!   pointer-heavy workloads suffer because 128-bit pointers double the
//!   pointer footprint — comes from exactly this model.
//!
//! Physical memory is organised as 4-KiB frames handed out by a free-list
//! allocator; the `cheri-vm` crate builds address spaces, paging and swap on
//! top.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod phys;
mod stats;

pub use cache::{AccessKind, CacheConfig, CacheHierarchy, ExactSink, MemEventRing, MemEventSink};
pub use phys::{FrameId, PAddr, PhysFaultSpec, PhysFaults, PhysMem, FRAME_SIZE};
pub use stats::MemStats;
