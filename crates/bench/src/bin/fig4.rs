//! Regenerates **Figure 4**: median overheads (instructions, cycles, L2
//! cache misses) of CheriABI relative to the mips64 baseline, with
//! interquartile ranges over several input seeds, for the MiBench-like and
//! SPEC-like workloads plus `initdb-dynamic`.

use cheri_bench::cli::{self, json_escape, json_f64};
use cheri_bench::{iqr, median};
use cheri_workloads::trials::{rows_from_reports, trial_specs, Trial};
use cheriabi::spec::ProgramSpec;

const SEEDS: [u64; 5] = [3, 7, 13, 29, 61];

fn main() {
    let opts = cli::parse_env();
    let mut trials: Vec<Trial> = cheri_workloads::all()
        .iter()
        .map(Trial::from_workload)
        .collect();
    // initdb-dynamic: the record count varies slightly with the seed so the
    // IQR is meaningful.
    trials.push(Trial::new(
        "initdb-dynamic",
        ProgramSpec::InitdbDynamic { base_records: 360 },
    ));
    let specs = trial_specs(&trials, &SEEDS);
    let Some(reports) = cli::run_specs(&cheri_bench::registry(), &specs, &opts) else {
        return;
    };
    if !opts.json {
        println!(
            "Figure 4: CheriABI overhead vs mips64 baseline, median (IQR) over {} seeds",
            SEEDS.len()
        );
        println!(
            "{:<24} {:>16} {:>16} {:>16}",
            "benchmark", "instructions", "cycles", "l2cache misses"
        );
    }
    for row in rows_from_reports(&trials, &SEEDS, &reports) {
        if opts.json {
            println!(
                "{{\"figure\":\"fig4\",\"benchmark\":\"{}\",\"instr_median\":{},\"instr_iqr\":{},\"cycles_median\":{},\"cycles_iqr\":{},\"l2_median\":{},\"l2_iqr\":{}}}",
                json_escape(&row.name),
                json_f64(median(&mut row.instr.clone())),
                json_f64(iqr(&mut row.instr.clone())),
                json_f64(median(&mut row.cycles.clone())),
                json_f64(iqr(&mut row.cycles.clone())),
                json_f64(median(&mut row.l2.clone())),
                json_f64(iqr(&mut row.l2.clone())),
            );
        } else {
            println!(
                "{:<24} {:>+7.1}% ({:>5.1}) {:>+7.1}% ({:>5.1}) {:>+7.1}% ({:>5.1})",
                row.name,
                median(&mut row.instr.clone()),
                iqr(&mut row.instr.clone()),
                median(&mut row.cycles.clone()),
                iqr(&mut row.cycles.clone()),
                median(&mut row.l2.clone()),
                iqr(&mut row.l2.clone()),
            );
        }
    }
    if opts.json {
        return;
    }
    println!();
    println!(
        "Paper (Figure 4) shape: most MiBench kernels within noise (±5%);\n\
         pointer-heavy workloads (qsort, patricia, astar, xalancbmk) show\n\
         positive instruction/cycle overheads and elevated L2 misses from\n\
         the doubled pointer footprint; initdb-dynamic ≈ +6.8% cycles."
    );
}
