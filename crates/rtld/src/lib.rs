//! # cheri-rtld — the run-time linker
//!
//! Loads a [`Program`] (a set of [`cheri_isa::Object`]s) into an address
//! space and performs the §3/§4 "dynamic linking" derivations:
//!
//! * maps each object's text (read/execute) and data+BSS (read/write)
//!   segments;
//! * builds the **capability GOT**: every slot is initialised with a
//!   capability derived from the mapping capabilities — *data* symbols get
//!   bounds narrowed to the symbol ("creates subsets of the program and
//!   library data capabilities for each global variable"), *function*
//!   symbols get bounds of the whole containing object ("we bound function
//!   symbols' resolved capabilities to the shared object", preserving
//!   intra-object PC-relative idioms); under the legacy ABI the slots are
//!   plain 64-bit addresses;
//! * applies data relocations: "global variables containing pointers are
//!   initialized during process startup, as tags are not preserved on
//!   disk";
//! * allocates per-object **TLS blocks** and publishes a capability bounded
//!   to each block in the object's reserved `__tls_<name>` GOT slot.
//!
//! Every installed capability is reported through a callback so the kernel
//! can record it in the derivation trace (Figure 5 "glob relocs" series).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cheri_cap::{CapSource, Capability, Perms};
use cheri_isa::codegen::Abi;
use cheri_isa::{GotTable, Instr, Object, ObjectBuilder, SymKind};
use cheri_vm::{AsId, Backing, Prot, Vm, VmError};
use std::cell::RefCell;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// A linkable program: one or more objects plus the merged GOT namespace.
#[derive(Clone, Debug)]
pub struct Program {
    /// Program name.
    pub name: String,
    /// All objects (executable first by convention).
    pub objects: Vec<Object>,
    /// Entry-point symbol name (must exist in some object).
    pub entry: String,
}

/// Builder that wires objects to a shared GOT namespace.
pub struct ProgramBuilder {
    name: String,
    got: Rc<RefCell<GotTable>>,
    objects: Vec<Object>,
    entry: Option<String>,
}

impl fmt::Debug for ProgramBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ProgramBuilder({}, {} objects)",
            self.name,
            self.objects.len()
        )
    }
}

impl ProgramBuilder {
    /// Starts a program called `name`.
    #[must_use]
    pub fn new(name: &str) -> ProgramBuilder {
        ProgramBuilder {
            name: name.to_string(),
            got: Rc::new(RefCell::new(GotTable::new())),
            objects: Vec::new(),
            entry: None,
        }
    }

    /// Creates an [`ObjectBuilder`] sharing this program's GOT namespace.
    #[must_use]
    pub fn object(&self, name: &str) -> ObjectBuilder {
        let mut ob = ObjectBuilder::new(name);
        ob.share_got(self.got.clone());
        ob
    }

    /// Adds a finished object. If it declares an entry point, that becomes
    /// the program entry.
    pub fn add(&mut self, object: Object) {
        if let Some(e) = &object.entry {
            self.entry = Some(e.clone());
        }
        self.objects.push(object);
    }

    /// Finalises the program.
    ///
    /// # Panics
    ///
    /// Panics if no object declared an entry point.
    #[must_use]
    pub fn finish(self) -> Program {
        Program {
            name: self.name,
            objects: self.objects,
            entry: self.entry.expect("program has no entry point"),
        }
    }
}

/// Linking/loading failures.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum LoadError {
    /// A GOT or relocation symbol was not defined by any object.
    UndefinedSymbol(String),
    /// The entry symbol is missing or not a function.
    BadEntry(String),
    /// Underlying VM failure.
    Vm(VmError),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::UndefinedSymbol(s) => write!(f, "undefined symbol {s}"),
            LoadError::BadEntry(s) => write!(f, "bad entry point {s}"),
            LoadError::Vm(e) => write!(f, "load failed: {e}"),
        }
    }
}

impl Error for LoadError {}

impl From<VmError> for LoadError {
    fn from(e: VmError) -> LoadError {
        LoadError::Vm(e)
    }
}

/// One mapped object.
#[derive(Clone, Debug)]
pub struct LoadedObject {
    /// Object name.
    pub name: String,
    /// Base VA of the text segment.
    pub text_base: u64,
    /// Text length in bytes.
    pub text_len: u64,
    /// Base VA of the data segment.
    pub data_base: u64,
    /// Decoded instructions for the CPU's code map.
    pub code: Arc<Vec<Instr>>,
}

/// The result of loading a program.
#[derive(Clone, Debug)]
pub struct LoadedProgram {
    /// Entry PC.
    pub entry_pc: u64,
    /// PCC for the entry object (bounded to its text, execute+read).
    pub entry_pcc: Capability,
    /// `$cgp` / `$gp` value: the GOT capability (CheriABI) or base address
    /// (legacy; the capability still carries the address for the kernel to
    /// extract).
    pub got_cap: Capability,
    /// Mapped objects.
    pub objects: Vec<LoadedObject>,
    /// TLS capability per object name (CheriABI) — also published in GOT.
    pub tls_caps: HashMap<String, Capability>,
    /// Estimated (instructions, cycles) of startup relocation work — "this
    /// adds overhead comparable to position-independent binaries" (§4).
    pub startup_cost: (u64, u64),
}

fn resolve<'p>(
    objects: &'p [Object],
    bases: &[(u64, u64)],
    name: &str,
) -> Option<(usize, &'p SymKind)> {
    let _ = bases;
    for (i, o) in objects.iter().enumerate() {
        if let Some(s) = o.find_symbol(name) {
            return Some((i, &s.kind));
        }
    }
    None
}

/// Loads `program` into `space` for the given ABI, reporting every
/// installed capability via `on_install` (for the derivation trace).
///
/// # Errors
///
/// [`LoadError::UndefinedSymbol`], [`LoadError::BadEntry`], or a VM error.
pub fn load(
    vm: &mut Vm,
    space: AsId,
    program: &Program,
    abi: Abi,
    ptr_size: u64,
    mut on_install: impl FnMut(&Capability),
) -> Result<LoadedProgram, LoadError> {
    let root = vm.space(space).root;
    let mut loaded = Vec::new();
    let mut bases = Vec::new();
    let mut text_cursor = 0x1_0000u64;
    let mut cost_instrs = 0u64;

    // 1. Map text and data of every object.
    for obj in &program.objects {
        let text_len = (obj.code.len() as u64 * 4).max(4096);
        // The in-memory text bytes are the encoded instruction stream
        // (index-encoded; see DESIGN.md §3): enough for the i-cache model
        // and PCC bounds to behave exactly as on hardware.
        let text_bytes: Vec<u8> = (0..obj.code.len() as u32)
            .flat_map(u32::to_le_bytes)
            .collect();
        let text_base = vm.map(
            space,
            Some(text_cursor),
            text_len,
            Prot::rx(),
            Backing::Image {
                data: Arc::new(text_bytes),
                offset: 0,
            },
            "text",
        )?;
        text_cursor = (text_base + text_len + 0xffff) & !0xffff;

        let data_len = obj.data_segment_size().max(16);
        let data_base = vm.map(
            space,
            Some(text_cursor),
            data_len,
            Prot::rw(),
            Backing::Image {
                data: Arc::new(obj.data.clone()),
                offset: 0,
            },
            "data",
        )?;
        text_cursor = (data_base + data_len + 0xffff) & !0xffff;

        bases.push((text_base, data_base));
        loaded.push(LoadedObject {
            name: obj.name.clone(),
            text_base,
            text_len,
            data_base,
            code: Arc::new(obj.code.clone()),
        });
    }

    // 2. Allocate TLS blocks (16-byte aligned, contiguous in one mapping).
    let mut tls_layout = Vec::new();
    let mut tls_total = 0u64;
    for obj in &program.objects {
        let sz = obj.tls_size.div_ceil(16) * 16;
        tls_layout.push((obj.name.clone(), tls_total, obj.tls_size));
        tls_total += sz;
    }
    let tls_base = if tls_total > 0 {
        vm.map(space, None, tls_total, Prot::rw(), Backing::Zero, "tls")?
    } else {
        0
    };
    let mut tls_caps = HashMap::new();
    for (name, off, size) in &tls_layout {
        if *size == 0 {
            continue;
        }
        let cap = root
            .with_addr(tls_base + off)
            .set_bounds(size.div_ceil(16) * 16, true)
            .expect("tls block within root")
            .and_perms(Perms::user_data() - Perms::VMMAP)
            .with_source(CapSource::Tls);
        on_install(&cap);
        tls_caps.insert(name.clone(), cap);
        cost_instrs += 20;
    }

    // 3. Build the merged GOT (every object carries the same table).
    // Each object snapshots the shared table when it is finished, so the
    // longest snapshot holds the complete merged GOT.
    let got_entries = program
        .objects
        .iter()
        .map(|o| o.got.clone())
        .max_by_key(Vec::len)
        .unwrap_or_default();
    let got_len = (got_entries.len() as u64 * ptr_size).max(16);
    let got_base = vm.map(space, None, got_len, Prot::rw(), Backing::Zero, "got")?;
    let symbol_cap = |sym: &str| -> Result<Capability, LoadError> {
        if let Some(tls_obj) = sym.strip_prefix("__tls_") {
            return tls_caps
                .get(tls_obj)
                .copied()
                .ok_or_else(|| LoadError::UndefinedSymbol(sym.to_string()));
        }
        let (oi, kind) = resolve(&program.objects, &bases, sym)
            .ok_or_else(|| LoadError::UndefinedSymbol(sym.to_string()))?;
        let (tb, db) = bases[oi];
        let cap = match kind {
            SymKind::Func { code_index } => {
                // Function capabilities are bounded to the whole object.
                let tl = loaded[oi].text_len;
                root.with_addr(tb)
                    .set_bounds(tl, false)
                    .expect("text within root")
                    .with_addr(tb + u64::from(*code_index) * 4)
                    .and_perms(Perms::user_code())
                    .with_source(CapSource::GlobReloc)
            }
            SymKind::Data { offset, size } => root
                .with_addr(db + offset)
                .set_bounds((*size).max(1), false)
                .expect("data within root")
                .and_perms(Perms::user_data() - Perms::VMMAP)
                .with_source(CapSource::GlobReloc),
        };
        Ok(cap)
    };

    for (i, entry) in got_entries.iter().enumerate() {
        let cap = symbol_cap(&entry.symbol)?;
        let slot_va = got_base + i as u64 * ptr_size;
        match abi {
            Abi::PureCap => {
                on_install(&cap);
                vm.store_cap(space, slot_va, cap)?;
            }
            Abi::Mips64 => vm.write_u64(space, slot_va, cap.addr())?,
        }
        cost_instrs += 12;
    }

    // 4. Data relocations ("global variables containing pointers").
    for (oi, obj) in program.objects.iter().enumerate() {
        let (_, db) = bases[oi];
        for r in &obj.relocs {
            let cap = symbol_cap(&r.symbol)?.inc_addr(r.addend);
            let va = db + r.offset;
            match abi {
                Abi::PureCap => {
                    on_install(&cap);
                    vm.store_cap(space, va, cap)?;
                }
                Abi::Mips64 => vm.write_u64(space, va, cap.addr())?,
            }
            cost_instrs += 12;
        }
    }

    // 5. Entry point and its PCC.
    let (eoi, ekind) = resolve(&program.objects, &bases, &program.entry)
        .ok_or_else(|| LoadError::BadEntry(program.entry.clone()))?;
    let SymKind::Func { code_index } = ekind else {
        return Err(LoadError::BadEntry(program.entry.clone()));
    };
    let entry_pc = bases[eoi].0 + u64::from(*code_index) * 4;
    let entry_pcc = match abi {
        Abi::PureCap => root
            .with_addr(loaded[eoi].text_base)
            .set_bounds(loaded[eoi].text_len, false)
            .expect("text within root")
            .with_addr(entry_pc)
            .and_perms(Perms::user_code()),
        // Legacy processes run with an address-space-wide PCC.
        Abi::Mips64 => root.with_addr(entry_pc).and_perms(Perms::user_code()),
    };
    on_install(&entry_pcc);

    let got_cap = match abi {
        Abi::PureCap => {
            let c = root
                .with_addr(got_base)
                .set_bounds(got_len, false)
                .expect("got within root")
                .and_perms(Perms::user_rodata())
                .with_source(CapSource::Exec);
            on_install(&c);
            c
        }
        Abi::Mips64 => root.with_addr(got_base).with_source(CapSource::Exec),
    };

    Ok(LoadedProgram {
        entry_pc,
        entry_pcc,
        got_cap,
        objects: loaded,
        tls_caps,
        startup_cost: (cost_instrs, cost_instrs + cost_instrs / 4),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_cap::{CapFormat, PrincipalId};
    use cheri_isa::codegen::{CodegenOpts, FnBuilder, Ptr, Val};
    use cheri_isa::Width;

    /// A two-object program: `main` calls `lib_add` through the GOT and
    /// reads the global `counter`.
    fn build_program(opts: CodegenOpts) -> Program {
        let mut pb = ProgramBuilder::new("demo");

        let mut lib = pb.object("libdemo");
        lib.set_tls_size(64);
        lib.add_data("counter", &42u64.to_le_bytes(), 16);
        {
            let mut f = FnBuilder::begin(&mut lib, "lib_add", opts);
            f.arg_to_val(Val(0), 0);
            f.arg_to_val(Val(1), 1);
            f.add(Val(2), Val(0), Val(1));
            f.set_ret_val(Val(2));
            f.leave_ret();
        }
        pb.add(lib.finish());

        let mut exe = pb.object("demo");
        {
            let mut f = FnBuilder::begin(&mut exe, "main", opts);
            f.enter(32);
            f.li(Val(0), 1);
            f.li(Val(1), 2);
            f.set_arg_val(0, Val(0));
            f.set_arg_val(1, Val(1));
            f.call_global("lib_add");
            f.ret_val_to(Val(2));
            // read counter global, add
            f.load_global_ptr(Ptr(0), "counter");
            f.load(Val(3), Ptr(0), 0, Width::D, false);
            f.add(Val(2), Val(2), Val(3));
            f.set_ret_val(Val(2));
            f.leave_ret();
        }
        exe.set_entry("main");
        pb.add(exe.finish());
        pb.finish()
    }

    #[test]
    fn load_resolves_symbols_both_abis() {
        for (abi, opts, ptr) in [
            (Abi::Mips64, CodegenOpts::mips64(), 8u64),
            (Abi::PureCap, CodegenOpts::purecap(), 16),
        ] {
            let program = build_program(opts);
            let mut vm = Vm::new(256);
            let space = vm.create_space(PrincipalId::from_raw(1), CapFormat::C128);
            let mut installs = 0;
            let lp = load(&mut vm, space, &program, abi, ptr, |_| installs += 1).unwrap();
            assert!(lp.entry_pc >= lp.objects[1].text_base);
            assert_eq!(lp.objects.len(), 2);
            if abi == Abi::PureCap {
                assert!(installs >= 3, "GOT+TLS+entry installs traced");
                // GOT slot 0 = lib_add: a function capability bounded to
                // the library object's text.
                let got0 = vm.load_cap(space, lp.got_cap.base()).unwrap().unwrap();
                assert!(got0.perms().contains(Perms::EXECUTE));
                assert_eq!(got0.base(), lp.objects[0].text_base);
                // counter slot: data cap bounded to 8 bytes.
                let got1 = vm.load_cap(space, lp.got_cap.base() + 16).unwrap().unwrap();
                assert!(got1.length() >= 8 && got1.length() <= 16);
                assert!(!got1.perms().contains(Perms::EXECUTE));
                assert_eq!(got1.provenance().source, CapSource::GlobReloc);
            } else {
                // Legacy GOT: raw addresses.
                let a = vm.read_u64(space, lp.got_cap.addr()).unwrap();
                assert_eq!(a, lp.objects[0].text_base, "lib_add at text start");
            }
        }
    }

    #[test]
    fn tls_blocks_are_per_object_and_bounded() {
        let program = build_program(CodegenOpts::purecap());
        let mut vm = Vm::new(256);
        let space = vm.create_space(PrincipalId::from_raw(1), CapFormat::C128);
        let lp = load(&mut vm, space, &program, Abi::PureCap, 16, |_| {}).unwrap();
        let tls = lp.tls_caps.get("libdemo").expect("lib has tls");
        assert_eq!(tls.length(), 64);
        assert_eq!(tls.provenance().source, CapSource::Tls);
        assert!(!lp.tls_caps.contains_key("demo"), "exe declared no tls");
    }

    #[test]
    fn undefined_symbol_fails() {
        let mut pb = ProgramBuilder::new("bad");
        let mut exe = pb.object("bad");
        {
            let mut f = FnBuilder::begin(&mut exe, "main", CodegenOpts::purecap());
            f.call_global("no_such_fn");
            f.leave_ret();
        }
        exe.set_entry("main");
        pb.add(exe.finish());
        let program = pb.finish();
        let mut vm = Vm::new(64);
        let space = vm.create_space(PrincipalId::from_raw(1), CapFormat::C128);
        let err = load(&mut vm, space, &program, Abi::PureCap, 16, |_| {}).unwrap_err();
        assert_eq!(err, LoadError::UndefinedSymbol("no_such_fn".into()));
    }

    #[test]
    fn data_relocs_initialise_pointer_globals() {
        let mut pb = ProgramBuilder::new("reloc");
        let mut exe = pb.object("reloc");
        exe.add_data("target", &7u64.to_le_bytes(), 16);
        let slot = exe.add_data("ptr_global", &[0u8; 16], 16);
        exe.add_data_reloc(slot, "target", 0);
        {
            let mut f = FnBuilder::begin(&mut exe, "main", CodegenOpts::purecap());
            f.leave_ret();
        }
        exe.set_entry("main");
        pb.add(exe.finish());
        let program = pb.finish();
        let mut vm = Vm::new(64);
        let space = vm.create_space(PrincipalId::from_raw(1), CapFormat::C128);
        let lp = load(&mut vm, space, &program, Abi::PureCap, 16, |_| {}).unwrap();
        let data_base = lp.objects[0].data_base;
        let cap = vm
            .load_cap(space, data_base + slot)
            .unwrap()
            .expect("tagged");
        assert_eq!(cap.addr(), data_base, "points at `target` (offset 0)");
        assert!(cap.length() >= 8);
    }
}
