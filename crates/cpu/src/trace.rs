//! Capability-derivation tracing for the Figure 5 reconstruction.

use cheri_cap::{CapSource, Capability};

/// Records every capability *creation* event visible in userspace: a
/// bounds-setting or permission-narrowing instruction retiring, or the
/// kernel/runtime installing a capability (execve, mmap return, GOT fill,
/// TLS, signal frames).
///
/// §5.5 uses an ISA-level trace to "track capability derivation and use, in
/// order to reconstruct the abstract capability of a process"; the
/// `cheriabi` crate's trace analysis turns these events into the cumulative
/// size distribution of Figure 5.
#[derive(Debug, Default)]
pub struct DerivationTrace {
    /// Whether events are being collected.
    pub enabled: bool,
    events: Vec<(CapSource, u64)>,
}

impl DerivationTrace {
    /// A disabled trace (zero overhead until enabled).
    #[must_use]
    pub fn new() -> DerivationTrace {
        DerivationTrace::default()
    }

    /// Records the creation of `cap` if tracing is enabled and the value is
    /// tagged.
    pub fn record(&mut self, cap: &Capability) {
        if self.enabled && cap.tag() {
            self.events.push((cap.provenance().source, cap.length()));
        }
    }

    /// The collected `(source, bounds length)` events.
    #[must_use]
    pub fn events(&self) -> &[(CapSource, u64)] {
        &self.events
    }

    /// Number of collected events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were collected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drops all collected events.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_cap::{CapFormat, PrincipalId};

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = DerivationTrace::new();
        let c = Capability::root(CapFormat::C128, PrincipalId::KERNEL, CapSource::Boot);
        t.record(&c);
        assert!(t.is_empty());
    }

    #[test]
    fn enabled_trace_records_tagged_only() {
        let mut t = DerivationTrace::new();
        t.enabled = true;
        let c = Capability::root(CapFormat::C128, PrincipalId::KERNEL, CapSource::Boot)
            .with_addr(0x1000)
            .set_bounds(64, true)
            .unwrap();
        t.record(&c);
        t.record(&c.clear_tag());
        assert_eq!(t.len(), 1);
        assert_eq!(t.events()[0], (CapSource::Boot, 64));
    }
}
