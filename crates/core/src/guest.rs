//! Ergonomic guest-code helpers: the simulated "libc" surface.
//!
//! Guest programs (the corpus, BOdiagsuite and the workloads) are written
//! against [`GuestOps`], an extension of the codegen
//! [`FnBuilder`](cheri_isa::codegen::FnBuilder) that wraps the syscall and
//! runtime-service conventions. Everything lowers through the ordinary
//! two-ABI code generation, so the same portable source runs as a legacy
//! mips64 binary or a CheriABI pure-capability binary.

use cheri_isa::codegen::{FnBuilder, Ptr, Val};
use cheri_isa::Width;
use cheri_kernel::Sys;

/// Syscall and libc-style helpers for guest functions.
pub trait GuestOps {
    /// `exit(code)`.
    fn sys_exit(&mut self, code: Val);
    /// `exit(imm)`.
    fn sys_exit_imm(&mut self, code: i64);
    /// `write(fd, buf, len)`; clobbers argument registers.
    fn sys_write(&mut self, fd: i64, buf: Ptr, len: Val);
    /// `read(fd, buf, len) -> v`.
    fn sys_read(&mut self, fd: Val, buf: Ptr, len: Val, out: Val);
    /// `getpid() -> v`.
    fn sys_getpid(&mut self, out: Val);
    /// `dst = malloc(size)`.
    fn malloc(&mut self, dst: Ptr, size: Val);
    /// `dst = malloc(imm)`.
    fn malloc_imm(&mut self, dst: Ptr, size: i64);
    /// `free(p)`.
    fn free(&mut self, p: Ptr);
    /// `dst = realloc(src, size)`.
    fn realloc(&mut self, dst: Ptr, src: Ptr, size: Val);
    /// Inline byte-wise `memcpy(dst, src, len)`; `len` is clobbered, and
    /// `Val(6)`/`Val(7)` plus `Ptr(6)`/`Ptr(7)` are used as scratch —
    /// `dst`/`src` must therefore be `Ptr(0)`–`Ptr(5)`.
    fn memcpy_bytes(&mut self, dst: Ptr, src: Ptr, len: Val);
    /// Inline pointer-array copy preserving capabilities: copies `n`
    /// pointer-sized elements from `src` to `dst` (`n` clobbered; `Ptr(7)`
    /// is used as scratch) — the capability-preserving move the paper had
    /// to add to `qsort` and friends (§4 "Additional changes").
    fn memcpy_ptrs(&mut self, dst: Ptr, src: Ptr, n: Val);
    /// Writes a NUL-terminated data symbol's contents to stdout.
    fn print_sym(&mut self, sym: &str, len: i64);
}

impl GuestOps for FnBuilder<'_> {
    fn sys_exit(&mut self, code: Val) {
        self.set_arg_val(0, code);
        self.syscall(Sys::Exit as i64);
    }

    fn sys_exit_imm(&mut self, code: i64) {
        self.li(Val(0), code);
        self.sys_exit(Val(0));
    }

    fn sys_write(&mut self, fd: i64, buf: Ptr, len: Val) {
        self.li(Val(5), fd);
        self.set_arg_val(0, Val(5));
        self.set_arg_ptr(1, buf);
        self.set_arg_val(2, len);
        self.syscall(Sys::Write as i64);
    }

    fn sys_read(&mut self, fd: Val, buf: Ptr, len: Val, out: Val) {
        self.set_arg_val(0, fd);
        self.set_arg_ptr(1, buf);
        self.set_arg_val(2, len);
        self.syscall(Sys::Read as i64);
        self.ret_val_to(out);
    }

    fn sys_getpid(&mut self, out: Val) {
        self.syscall(Sys::Getpid as i64);
        self.ret_val_to(out);
    }

    fn malloc(&mut self, dst: Ptr, size: Val) {
        self.set_arg_val(0, size);
        self.syscall(Sys::RtMalloc as i64);
        self.ret_ptr_to(dst);
    }

    fn malloc_imm(&mut self, dst: Ptr, size: i64) {
        self.li(Val(5), size);
        self.malloc(dst, Val(5));
    }

    fn free(&mut self, p: Ptr) {
        self.set_arg_ptr(0, p);
        self.syscall(Sys::RtFree as i64);
    }

    fn realloc(&mut self, dst: Ptr, src: Ptr, size: Val) {
        self.set_arg_ptr(0, src);
        self.set_arg_val(1, size);
        self.syscall(Sys::RtRealloc as i64);
        self.ret_ptr_to(dst);
    }

    fn memcpy_bytes(&mut self, dst: Ptr, src: Ptr, len: Val) {
        assert!(
            dst.0 < 6 && src.0 < 6,
            "memcpy_bytes scratches Ptr(6)/Ptr(7)"
        );
        let again = self.label();
        let out = self.label();
        self.li(Val(6), 0);
        self.bind(again);
        self.sub(Val(7), len, Val(6));
        self.beqz(Val(7), out);
        // tmp = src[i]; dst[i] = tmp
        self.ptr_add(Ptr(7), src, Val(6));
        self.load(Val(7), Ptr(7), 0, Width::B, false);
        self.ptr_add(Ptr(6), dst, Val(6));
        self.store(Val(7), Ptr(6), 0, Width::B);
        self.add_imm(Val(6), Val(6), 1);
        self.jmp(again);
        self.bind(out);
    }

    fn memcpy_ptrs(&mut self, dst: Ptr, src: Ptr, n: Val) {
        assert!(
            dst.0 < 5 && src.0 < 5,
            "memcpy_ptrs scratches Ptr(5)..Ptr(7)"
        );
        let again = self.label();
        let out = self.label();
        let stride = self.ptr_size() as i64;
        self.ptr_mv(Ptr(6), src);
        self.ptr_mv(Ptr(5), dst);
        self.bind(again);
        self.beqz(n, out);
        self.load_ptr(Ptr(7), Ptr(6), 0);
        self.store_ptr(Ptr(7), Ptr(5), 0);
        self.ptr_add_imm(Ptr(6), Ptr(6), stride);
        self.ptr_add_imm(Ptr(5), Ptr(5), stride);
        self.add_imm(n, n, -1);
        self.jmp(again);
        self.bind(out);
    }

    fn print_sym(&mut self, sym: &str, len: i64) {
        self.load_global_ptr(Ptr(7), sym);
        self.li(Val(5), len);
        self.li(Val(4), 1);
        self.set_arg_val(0, Val(4));
        self.set_arg_ptr(1, Ptr(7));
        self.set_arg_val(2, Val(5));
        self.syscall(Sys::Write as i64);
    }
}

/// Emits an in-place insertion sort of `n` u64s at `arr` (clobbers
/// `Val(0..=5)` and `Ptr(7)`).
pub fn emit_insertion_sort_ints(f: &mut FnBuilder<'_>, arr: Ptr, n: i64) {
    f.li(Val(0), 1); // i
    let outer = f.label();
    let done = f.label();
    f.bind(outer);
    f.li(Val(1), n);
    f.sub(Val(2), Val(0), Val(1));
    f.beqz(Val(2), done);
    f.mv(Val(3), Val(0)); // j
    let inner = f.label();
    let inner_done = f.label();
    f.bind(inner);
    f.beqz(Val(3), inner_done);
    f.shl_imm(Val(4), Val(3), 3);
    f.ptr_add(Ptr(7), arr, Val(4));
    f.load(Val(4), Ptr(7), -8, Width::D, false);
    f.load(Val(5), Ptr(7), 0, Width::D, false);
    f.sltu(Val(2), Val(5), Val(4));
    f.beqz(Val(2), inner_done);
    f.store(Val(5), Ptr(7), -8, Width::D);
    f.store(Val(4), Ptr(7), 0, Width::D);
    f.add_imm(Val(3), Val(3), -1);
    f.jmp(inner);
    f.bind(inner_done);
    f.add_imm(Val(0), Val(0), 1);
    f.jmp(outer);
    f.bind(done);
}

/// Emits an insertion sort of `n` record pointers at `arr`, keyed by the
/// u64 at offset 0 of each record. Element moves are whole-pointer
/// (capability-preserving) — the fixed `qsort` of §4. Clobbers
/// `Val(0..=5)`, `Ptr(5..=7)`.
pub fn emit_insertion_sort_recptrs(f: &mut FnBuilder<'_>, arr: Ptr, n: i64) {
    let ps = f.ptr_size() as i64;
    f.li(Val(0), 1);
    let outer = f.label();
    let done = f.label();
    f.bind(outer);
    f.li(Val(1), n);
    f.sub(Val(2), Val(0), Val(1));
    f.beqz(Val(2), done);
    f.mv(Val(3), Val(0));
    let inner = f.label();
    let inner_done = f.label();
    f.bind(inner);
    f.beqz(Val(3), inner_done);
    f.li(Val(4), ps);
    f.mul(Val(4), Val(4), Val(3));
    f.ptr_add(Ptr(7), arr, Val(4));
    f.load_ptr(Ptr(5), Ptr(7), -ps);
    f.load_ptr(Ptr(6), Ptr(7), 0);
    f.load(Val(4), Ptr(5), 0, Width::D, false);
    f.load(Val(5), Ptr(6), 0, Width::D, false);
    f.sltu(Val(2), Val(5), Val(4));
    f.beqz(Val(2), inner_done);
    f.store_ptr(Ptr(6), Ptr(7), -ps);
    f.store_ptr(Ptr(5), Ptr(7), 0);
    f.add_imm(Val(3), Val(3), -1);
    f.jmp(inner);
    f.bind(inner_done);
    f.add_imm(Val(0), Val(0), 1);
    f.jmp(outer);
    f.bind(done);
}

/// Emits an LCG step on `state`: `state = (state * 1103515245 + 12345) &
/// 0x7fffffff` (clobbers `Val(7)`).
pub fn emit_lcg_step(f: &mut FnBuilder<'_>, state: Val) {
    f.li(Val(7), 1_103_515_245);
    f.mul(state, state, Val(7));
    f.add_imm(state, state, 12345);
    f.li(Val(7), 0x7fff_ffff);
    f.and(state, state, Val(7));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AbiMode, ExitStatus, SpawnOpts, System};
    use cheri_isa::codegen::CodegenOpts;
    use cheri_rtld::ProgramBuilder;

    fn run_main(
        abi: AbiMode,
        opts: CodegenOpts,
        body: impl FnOnce(&mut FnBuilder<'_>),
    ) -> (ExitStatus, String) {
        let mut pb = ProgramBuilder::new("g");
        let mut exe = pb.object("g");
        {
            let mut f = FnBuilder::begin(&mut exe, "main", opts);
            body(&mut f);
        }
        exe.set_entry("main");
        pb.add(exe.finish());
        let program = pb.finish();
        let mut sys = System::new();
        sys.kernel
            .run_program(&program, &SpawnOpts::new(abi))
            .unwrap()
    }

    #[test]
    fn memcpy_bytes_works_under_both_abis() {
        for (abi, opts) in [
            (AbiMode::Mips64, CodegenOpts::mips64()),
            (AbiMode::CheriAbi, CodegenOpts::purecap()),
        ] {
            let (status, _) = run_main(abi, opts, |f| {
                f.malloc_imm(Ptr(0), 64);
                f.malloc_imm(Ptr(1), 64);
                f.li(Val(0), 0x4242);
                f.store(Val(0), Ptr(0), 16, Width::D);
                f.li(Val(1), 64);
                f.memcpy_bytes(Ptr(1), Ptr(0), Val(1));
                f.load(Val(2), Ptr(1), 16, Width::D, false);
                f.sys_exit(Val(2));
            });
            assert_eq!(status, ExitStatus::Code(0x4242), "{abi}");
        }
    }

    #[test]
    fn memcpy_ptrs_preserves_tags() {
        // Copy an array holding a heap pointer; dereferencing the copy must
        // still work under CheriABI (tags preserved).
        let (status, _) = run_main(AbiMode::CheriAbi, CodegenOpts::purecap(), |f| {
            f.malloc_imm(Ptr(0), 64); // src array
            f.malloc_imm(Ptr(1), 64); // dst array
            f.malloc_imm(Ptr(2), 16); // pointee
            f.li(Val(0), 777);
            f.store(Val(0), Ptr(2), 0, Width::D);
            f.store_ptr(Ptr(2), Ptr(0), 0);
            f.li(Val(1), 2);
            f.memcpy_ptrs(Ptr(1), Ptr(0), Val(1));
            f.load_ptr(Ptr(3), Ptr(1), 0);
            f.load(Val(2), Ptr(3), 0, Width::D, false);
            f.sys_exit(Val(2));
        });
        assert_eq!(status, ExitStatus::Code(777));
    }

    #[test]
    fn byte_memcpy_of_pointers_loses_tags_under_cheriabi() {
        // The flip side: copying pointer-holding memory *bytewise* strips
        // tags, so the copied "pointer" is not dereferenceable — the
        // pointer-propagation idiom the paper fixed in qsort (§4).
        let (status, _) = run_main(AbiMode::CheriAbi, CodegenOpts::purecap(), |f| {
            f.malloc_imm(Ptr(0), 64);
            f.malloc_imm(Ptr(1), 64);
            f.malloc_imm(Ptr(2), 16);
            f.store_ptr(Ptr(2), Ptr(0), 0);
            f.li(Val(1), 16);
            f.memcpy_bytes(Ptr(1), Ptr(0), Val(1));
            f.load_ptr(Ptr(3), Ptr(1), 0);
            f.load(Val(2), Ptr(3), 0, Width::D, false); // must trap: tag cleared
            f.sys_exit_imm(0);
        });
        assert_eq!(
            status,
            ExitStatus::Fault(crate::TrapCause::Cap(crate::CapFault::TagViolation))
        );
    }
}
