//! The architectural capability type and its (monotonic) derivation algebra.

use crate::compress;
use crate::{CapFault, CapSource, OType, Perms, PrincipalId, Provenance};
use std::fmt;

/// Alignment and granularity of tagged memory: one tag bit guards each
/// 16-byte, 16-byte-aligned granule of physical memory.
pub const TAG_GRANULE: u64 = 16;

/// In-memory size of a 128-bit (compressed) capability.
pub const CAP_SIZE_C128: u64 = 16;

/// In-memory size of a 256-bit (exact) capability.
pub const CAP_SIZE_C256: u64 = 32;

/// The capability encoding in use.
///
/// The paper benchmarks the 128-bit compressed format ("its lower overheads
/// make it a more realistic candidate for commercial adoption", §5) and the
/// repository's `ablation_capfmt` bench compares the two.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum CapFormat {
    /// 128-bit capability with CHERI-Concentrate-style compressed bounds.
    #[default]
    C128,
    /// 256-bit capability with exact 64-bit base and length.
    C256,
}

impl CapFormat {
    /// Bytes a pointer of this format occupies in memory.
    #[must_use]
    pub fn in_memory_size(self) -> u64 {
        match self {
            CapFormat::C128 => CAP_SIZE_C128,
            CapFormat::C256 => CAP_SIZE_C256,
        }
    }

    /// CRRL for this format: the length an allocator must pad to so bounds
    /// are exact. The 256-bit format never needs padding.
    #[must_use]
    pub fn representable_length(self, len: u64) -> u64 {
        match self {
            CapFormat::C128 => compress::representable_length(len),
            CapFormat::C256 => len,
        }
    }

    /// CRAM for this format: required base alignment mask for `len`.
    #[must_use]
    pub fn representable_alignment_mask(self, len: u64) -> u64 {
        match self {
            CapFormat::C128 => compress::representable_alignment_mask(len),
            CapFormat::C256 => u64::MAX,
        }
    }
}

/// A CHERI capability: a tagged, bounded, permission-carrying pointer.
///
/// All derivation methods are monotonic — they can only narrow bounds and
/// permissions — and operations the architecture forbids either return a
/// [`CapFault`] (for instructions that trap) or clear the tag (for
/// operations defined to de-tag, such as moving the address outside the
/// representable window).
///
/// ```
/// use cheri_cap::{Capability, CapFormat, CapSource, Perms, PrincipalId};
/// # fn main() -> Result<(), cheri_cap::CapFault> {
/// let root = Capability::root(CapFormat::C128, PrincipalId::from_raw(1), CapSource::Exec);
/// let buf = root.with_addr(0x8000).set_bounds(64, true)?;
/// assert!(buf.check_access(0x8000, 8, Perms::LOAD).is_ok());
/// assert!(buf.check_access(0x8040, 1, Perms::LOAD).is_err()); // one past the end
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Capability {
    tag: bool,
    addr: u64,
    base: u64,
    top: u128,
    /// Encoding exponent of the (compressed) bounds; 0 in C256.
    exp: u32,
    perms: Perms,
    otype: Option<OType>,
    fmt: CapFormat,
    prov: Provenance,
}

impl Capability {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// The NULL capability: untagged, zero everywhere. This is the value
    /// CheriABI installs in DDC so that every legacy load/store traps.
    #[must_use]
    pub fn null(fmt: CapFormat) -> Capability {
        Capability {
            tag: false,
            addr: 0,
            base: 0,
            top: 0,
            exp: 0,
            perms: Perms::NONE,
            otype: None,
            fmt,
            prov: Provenance::new(PrincipalId::KERNEL, CapSource::Boot),
        }
    }

    /// A maximally permissive root capability covering the whole address
    /// space, as provided to boot code at CPU reset (§3 "CPU reset") or
    /// re-rooted by the kernel for a fresh principal.
    #[must_use]
    pub fn root(fmt: CapFormat, principal: PrincipalId, source: CapSource) -> Capability {
        let (base, top, exp) = match fmt {
            CapFormat::C128 => compress::round_bounds(0, u64::MAX),
            CapFormat::C256 => (0, compress::ADDRESS_SPACE_TOP, 0),
        };
        Capability {
            tag: true,
            addr: 0,
            base,
            top,
            exp,
            perms: Perms::ALL,
            otype: None,
            fmt,
            prov: Provenance::new(principal, source),
        }
    }

    // ------------------------------------------------------------------
    // Getters
    // ------------------------------------------------------------------

    /// Whether the capability is valid (tag set).
    #[must_use]
    pub fn tag(&self) -> bool {
        self.tag
    }

    /// The address (cursor) the capability currently points at.
    #[must_use]
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// Lower bound (inclusive).
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Upper bound (exclusive); may be `2^64`, hence `u128`.
    #[must_use]
    pub fn top(&self) -> u128 {
        self.top
    }

    /// `top - base`, saturating at `u64::MAX` for the full address space.
    #[must_use]
    pub fn length(&self) -> u64 {
        u64::try_from(self.top.saturating_sub(self.base as u128)).unwrap_or(u64::MAX)
    }

    /// `addr - base` (may be "negative", i.e. wrap, when out of bounds).
    #[must_use]
    pub fn offset(&self) -> u64 {
        self.addr.wrapping_sub(self.base)
    }

    /// The permission set.
    #[must_use]
    pub fn perms(&self) -> Perms {
        self.perms
    }

    /// Object type, if sealed.
    #[must_use]
    pub fn otype(&self) -> Option<OType> {
        self.otype
    }

    /// Whether the capability is sealed.
    #[must_use]
    pub fn is_sealed(&self) -> bool {
        self.otype.is_some()
    }

    /// Encoding format.
    #[must_use]
    pub fn format(&self) -> CapFormat {
        self.fmt
    }

    /// Abstract-capability metadata (principal and derivation source).
    #[must_use]
    pub fn provenance(&self) -> Provenance {
        self.prov
    }

    /// `true` if `addr` lies within `[base, top)`.
    #[must_use]
    pub fn addr_in_bounds(&self) -> bool {
        self.addr >= self.base
            && (self.addr as u128) < self.top.max(self.base as u128 + 1)
            && (self.addr as u128) < self.top
    }

    /// Whether this capability's bounds and permissions are a subset of
    /// `other`'s (ignores addresses, tags and seals).
    #[must_use]
    pub fn is_subset_of(&self, other: &Capability) -> bool {
        self.base >= other.base && self.top <= other.top && self.perms.is_subset_of(other.perms)
    }

    // ------------------------------------------------------------------
    // Derivation (monotonic)
    // ------------------------------------------------------------------

    /// `CSetAddr`: returns a copy pointing at `addr`.
    ///
    /// Setting the address of a sealed capability, or moving outside the
    /// representable window of a compressed capability, clears the tag —
    /// it does not trap (matching CHERI's fast-path pointer arithmetic).
    #[must_use]
    pub fn with_addr(&self, addr: u64) -> Capability {
        let mut c = *self;
        c.addr = addr;
        if c.is_sealed() {
            c.tag = false;
            return c;
        }
        if c.tag && c.fmt == CapFormat::C128 {
            let (lo, hi) = compress::representable_window(c.base, c.top, c.exp);
            if addr < lo || (addr as u128) >= hi {
                c.tag = false;
            }
        }
        c
    }

    /// `CIncOffset` / C pointer arithmetic: advances the address by `delta`
    /// bytes (wrapping), leaving bounds and permissions untouched (§3
    /// "C pointer arithmetic").
    #[must_use]
    pub fn inc_addr(&self, delta: i64) -> Capability {
        self.with_addr(self.addr.wrapping_add(delta as u64))
    }

    /// `CSetBounds` (`exact = false`) / `CSetBoundsExact` (`exact = true`):
    /// narrows bounds to `[addr, addr + len)`.
    ///
    /// # Errors
    ///
    /// * [`CapFault::TagViolation`] if untagged,
    /// * [`CapFault::SealViolation`] if sealed,
    /// * [`CapFault::LengthViolation`] if the requested (or, for the
    ///   compressed format, the *rounded*) bounds exceed the source bounds,
    /// * [`CapFault::RepresentabilityViolation`] if `exact` and the bounds
    ///   cannot be encoded exactly.
    pub fn set_bounds(&self, len: u64, exact: bool) -> Result<Capability, CapFault> {
        if !self.tag {
            return Err(CapFault::TagViolation);
        }
        if self.is_sealed() {
            return Err(CapFault::SealViolation);
        }
        let req_base = self.addr;
        let req_top = req_base as u128 + len as u128;
        if (req_base as u128) < self.base as u128 || req_top > self.top {
            return Err(CapFault::LengthViolation);
        }
        let (base, top, exp) = match self.fmt {
            CapFormat::C256 => (req_base, req_top, 0),
            CapFormat::C128 => {
                let (b, t, e) = compress::round_bounds(req_base, len);
                if exact && (b != req_base || t != req_top) {
                    return Err(CapFault::RepresentabilityViolation);
                }
                // The rounded bounds must still be authorised by the source
                // capability; otherwise narrowing would turn into widening.
                if (b as u128) < self.base as u128 || t > self.top {
                    return Err(CapFault::LengthViolation);
                }
                (b, t, e)
            }
        };
        let mut c = *self;
        c.base = base;
        c.top = top;
        c.exp = exp;
        Ok(c)
    }

    /// **Test-only deliberate bug** backing the `--weaken-sem` oracle
    /// self-test: sets bounds to `[addr, addr + len)` with *no*
    /// monotonicity check and no representability rounding, so a derived
    /// capability can silently widen. Never reachable outside a weakened
    /// run; exists so the differential oracle can prove it detects exactly
    /// this class of fast-path bug.
    #[doc(hidden)]
    #[must_use]
    pub fn set_bounds_weakened(&self, len: u64) -> Capability {
        let mut c = *self;
        c.base = self.addr;
        c.top = self.addr as u128 + len as u128;
        c.exp = 0;
        c
    }

    /// `CAndPerm`: intersects permissions with `mask`. Sealed capabilities
    /// lose their tag instead of trapping.
    #[must_use]
    pub fn and_perms(&self, mask: Perms) -> Capability {
        let mut c = *self;
        if c.is_sealed() {
            c.tag = false;
        }
        c.perms = c.perms & mask;
        c
    }

    /// `CClearTag`: returns an untagged copy.
    #[must_use]
    pub fn clear_tag(&self) -> Capability {
        let mut c = *self;
        c.tag = false;
        c
    }

    /// `CSeal`: seals `self` with the object type named by `sealer`'s
    /// address.
    ///
    /// # Errors
    ///
    /// Faults if either capability is untagged or already sealed, if
    /// `sealer` lacks [`Perms::SEAL`], if `sealer.addr()` is out of its
    /// bounds, or if the address is not a valid object type.
    pub fn seal(&self, sealer: &Capability) -> Result<Capability, CapFault> {
        if !self.tag || !sealer.tag {
            return Err(CapFault::TagViolation);
        }
        if self.is_sealed() || sealer.is_sealed() {
            return Err(CapFault::SealViolation);
        }
        if !sealer.perms.contains(Perms::SEAL) {
            return Err(CapFault::PermitSealViolation);
        }
        if !sealer.addr_in_bounds() {
            return Err(CapFault::LengthViolation);
        }
        let otype = OType::new(sealer.addr).ok_or(CapFault::TypeViolation)?;
        let mut c = *self;
        c.otype = Some(otype);
        Ok(c)
    }

    /// `CUnseal`: unseals `self` using `unsealer`.
    ///
    /// # Errors
    ///
    /// Faults on tag/seal/permission mismatches or if `unsealer`'s address
    /// does not name `self`'s object type.
    pub fn unseal(&self, unsealer: &Capability) -> Result<Capability, CapFault> {
        if !self.tag || !unsealer.tag {
            return Err(CapFault::TagViolation);
        }
        let otype = self.otype.ok_or(CapFault::SealViolation)?;
        if unsealer.is_sealed() {
            return Err(CapFault::SealViolation);
        }
        if !unsealer.perms.contains(Perms::UNSEAL) {
            return Err(CapFault::PermitUnsealViolation);
        }
        if !unsealer.addr_in_bounds() {
            return Err(CapFault::LengthViolation);
        }
        if unsealer.addr != u64::from(otype.value()) {
            return Err(CapFault::TypeViolation);
        }
        let mut c = *self;
        c.otype = None;
        Ok(c)
    }

    // ------------------------------------------------------------------
    // Access checking
    // ------------------------------------------------------------------

    /// Checks that this capability authorises an access of `size` bytes at
    /// virtual address `vaddr` with the permissions in `need`.
    ///
    /// # Errors
    ///
    /// Returns the CHERI exception cause the access would raise: tag, seal,
    /// permission (mapped to the specific missing permission), or length.
    pub fn check_access(&self, vaddr: u64, size: u64, need: Perms) -> Result<(), CapFault> {
        if !self.tag {
            return Err(CapFault::TagViolation);
        }
        if self.is_sealed() {
            return Err(CapFault::SealViolation);
        }
        if !self.perms.contains(need) {
            return Err(Self::missing_perm_fault(self.perms, need));
        }
        let end = vaddr as u128 + size as u128;
        if (vaddr as u128) < self.base as u128 || end > self.top {
            return Err(CapFault::LengthViolation);
        }
        Ok(())
    }

    /// Convenience: checks an access at the capability's own address.
    ///
    /// # Errors
    ///
    /// As for [`Capability::check_access`].
    pub fn check_deref(&self, size: u64, need: Perms) -> Result<(), CapFault> {
        self.check_access(self.addr, size, need)
    }

    fn missing_perm_fault(have: Perms, need: Perms) -> CapFault {
        let missing = need - have;
        if missing.contains(Perms::LOAD) {
            CapFault::PermitLoadViolation
        } else if missing.contains(Perms::STORE) {
            CapFault::PermitStoreViolation
        } else if missing.contains(Perms::EXECUTE) {
            CapFault::PermitExecuteViolation
        } else if missing.contains(Perms::LOAD_CAP) {
            CapFault::PermitLoadCapViolation
        } else if missing.contains(Perms::STORE_CAP) {
            CapFault::PermitStoreCapViolation
        } else if missing.contains(Perms::STORE_LOCAL_CAP) {
            CapFault::PermitStoreLocalCapViolation
        } else if missing.contains(Perms::SYSTEM_REGS) {
            CapFault::AccessSystemRegsViolation
        } else {
            CapFault::UserPermViolation
        }
    }

    // ------------------------------------------------------------------
    // Trusted-runtime operations (not available to guest code)
    // ------------------------------------------------------------------

    /// Rebinds the derivation-source tag. Used by trusted runtime layers at
    /// the derivation points of §3 (e.g. malloc retagging a capability it
    /// derived from an `mmap` region), never by guest code.
    #[must_use]
    pub fn with_source(&self, source: CapSource) -> Capability {
        let mut c = *self;
        c.prov.source = source;
        c
    }

    /// Rederives this (possibly untagged) capability's authority from
    /// `root`, re-establishing the tag — the swap-in / debugger-injection
    /// path of §3 ("the swap-in code derives a new architectural capability
    /// from the saved values and an appropriate root capability").
    ///
    /// The abstract capability is preserved: bounds, permissions, address,
    /// format and seal are copied from `self`; the principal is taken from
    /// `root`, and the operation fails unless `self`'s authority is a subset
    /// of `root`'s.
    ///
    /// # Errors
    ///
    /// * [`CapFault::TagViolation`] if `root` is untagged,
    /// * [`CapFault::MonotonicityViolation`] if `self`'s bounds or
    ///   permissions exceed `root`'s.
    pub fn rederive(&self, root: &Capability) -> Result<Capability, CapFault> {
        if !root.tag {
            return Err(CapFault::TagViolation);
        }
        if !self.is_subset_of(root) {
            return Err(CapFault::MonotonicityViolation);
        }
        let mut c = *self;
        c.tag = true;
        c.fmt = root.fmt;
        c.prov.principal = root.prov.principal;
        Ok(c)
    }
}

impl Default for Capability {
    fn default() -> Self {
        Capability::null(CapFormat::C128)
    }
}

impl fmt::Debug for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cap{{{} addr={:#x} [{:#x},{:#x}) {:?}{} {} {}}}",
            if self.tag { "v" } else { "-" },
            self.addr,
            self.base,
            self.top,
            self.perms,
            match self.otype {
                Some(o) => format!(" sealed:{o}"),
                None => String::new(),
            },
            self.prov.principal,
            self.prov.source,
        )
    }
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user_root() -> Capability {
        Capability::root(CapFormat::C128, PrincipalId::from_raw(1), CapSource::Exec)
    }

    #[test]
    fn null_is_untagged_and_empty() {
        let n = Capability::null(CapFormat::C128);
        assert!(!n.tag());
        assert_eq!(n.length(), 0);
        assert!(n.check_deref(1, Perms::LOAD).is_err());
    }

    #[test]
    fn root_covers_everything() {
        let r = user_root();
        assert!(r.tag());
        assert_eq!(r.base(), 0);
        assert_eq!(r.top(), compress::ADDRESS_SPACE_TOP);
        assert!(r
            .check_access(u64::MAX, 1, Perms::LOAD | Perms::STORE)
            .is_ok());
    }

    #[test]
    fn set_bounds_narrows() {
        let c = user_root()
            .with_addr(0x1000)
            .set_bounds(0x100, true)
            .unwrap();
        assert_eq!(c.base(), 0x1000);
        assert_eq!(c.length(), 0x100);
        assert!(c.check_access(0x10ff, 1, Perms::LOAD).is_ok());
        assert_eq!(
            c.check_access(0x1100, 1, Perms::LOAD),
            Err(CapFault::LengthViolation)
        );
    }

    #[test]
    fn set_bounds_cannot_widen() {
        let small = user_root()
            .with_addr(0x1000)
            .set_bounds(0x100, true)
            .unwrap();
        assert_eq!(
            small.with_addr(0x1000).set_bounds(0x200, false),
            Err(CapFault::LengthViolation)
        );
        // Rounding of a misaligned child stays within the parent: because a
        // stored parent is always representable, its bounds are aligned at
        // least as coarsely as any child's exponent.
        let parent = user_root()
            .with_addr(0x10000)
            .set_bounds(0x10000, true)
            .unwrap();
        let child = parent.with_addr(0x10001).set_bounds(0xffff, false).unwrap();
        assert!(child.base() >= parent.base());
        assert!(child.top() <= parent.top());
    }

    #[test]
    fn weakened_set_bounds_widens_and_keeps_tag() {
        // The deliberate bug the oracle self-test injects: widening a
        // narrow capability succeeds and the result is *not* a subset of
        // its parent — the exact invariant breach lockstep must flag.
        let narrow = user_root()
            .with_addr(0x1000)
            .set_bounds(0x10, true)
            .unwrap();
        assert_eq!(
            narrow.set_bounds(0x100, false),
            Err(CapFault::LengthViolation)
        );
        let widened = narrow.set_bounds_weakened(0x100);
        assert!(widened.tag());
        assert_eq!(widened.length(), 0x100);
        assert!(!widened.is_subset_of(&narrow));
    }

    #[test]
    fn and_perms_only_removes() {
        let c = user_root().and_perms(Perms::LOAD | Perms::STORE);
        assert!(!c.perms().contains(Perms::EXECUTE));
        let c2 = c.and_perms(Perms::ALL);
        assert_eq!(c2.perms(), c.perms(), "ALL mask must not add bits back");
    }

    #[test]
    fn out_of_window_arithmetic_clears_tag() {
        let c = user_root()
            .with_addr(0x10_0000)
            .set_bounds(64, true)
            .unwrap();
        assert!(c.inc_addr(8).tag());
        assert!(
            c.inc_addr(100).tag(),
            "slightly past end stays representable"
        );
        let far = c.inc_addr(1 << 40);
        assert!(!far.tag(), "far out of bounds must de-tag");
        // De-tagged pointers cannot be brought back.
        assert!(!far.inc_addr(-(1i64 << 40)).tag());
    }

    #[test]
    fn c256_arithmetic_never_detags() {
        let r = Capability::root(CapFormat::C256, PrincipalId::from_raw(1), CapSource::Exec);
        let c = r.with_addr(0x1000).set_bounds(16, true).unwrap();
        assert!(c.inc_addr(1 << 40).tag());
        assert!(c.inc_addr(1 << 40).check_deref(1, Perms::LOAD).is_err());
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let r = user_root();
        let sealer = r
            .with_addr(42)
            .and_perms(Perms::SEAL | Perms::UNSEAL | Perms::GLOBAL);
        let sealer = sealer.with_addr(42);
        let data = r.with_addr(0x2000).set_bounds(32, true).unwrap();
        let sealed = data.seal(&sealer).unwrap();
        assert!(sealed.is_sealed());
        assert_eq!(
            sealed.check_deref(1, Perms::LOAD),
            Err(CapFault::SealViolation)
        );
        assert_eq!(sealed.set_bounds(8, false), Err(CapFault::SealViolation));
        assert!(!sealed.with_addr(0).tag(), "mutating a sealed cap de-tags");
        let unsealed = sealed.unseal(&sealer).unwrap();
        assert_eq!(unsealed, data);
    }

    #[test]
    fn unseal_requires_matching_otype() {
        let r = user_root();
        let s42 = r.with_addr(42);
        let s43 = r.with_addr(43);
        let sealed = r
            .with_addr(0x2000)
            .set_bounds(32, true)
            .unwrap()
            .seal(&s42)
            .unwrap();
        assert_eq!(sealed.unseal(&s43), Err(CapFault::TypeViolation));
    }

    #[test]
    fn missing_perm_faults_are_specific() {
        let ro = user_root().and_perms(Perms::LOAD);
        assert_eq!(
            ro.check_access(0, 1, Perms::STORE),
            Err(CapFault::PermitStoreViolation)
        );
        assert_eq!(
            ro.check_access(0, 1, Perms::EXECUTE),
            Err(CapFault::PermitExecuteViolation)
        );
    }

    #[test]
    fn rederive_restores_tag_within_root() {
        let root = user_root();
        let c = root
            .with_addr(0x3000)
            .set_bounds(0x80, true)
            .unwrap()
            .inc_addr(8);
        let stripped = c.clear_tag();
        let again = stripped.rederive(&root).unwrap();
        assert!(again.tag());
        assert_eq!(again.addr(), c.addr());
        assert_eq!(again.base(), c.base());
        assert_eq!(again.top(), c.top());
        assert_eq!(again.perms(), c.perms());
    }

    #[test]
    fn rederive_rejects_excess_authority() {
        let root = user_root();
        let narrow = root.with_addr(0x4000).set_bounds(0x1000, true).unwrap();
        // A capability wider than the root is refused.
        assert_eq!(
            root.clear_tag().rederive(&narrow),
            Err(CapFault::MonotonicityViolation)
        );
    }

    #[test]
    fn rederive_rebinds_principal() {
        let root_a = Capability::root(CapFormat::C128, PrincipalId::from_raw(1), CapSource::Exec);
        let root_b = Capability::root(CapFormat::C128, PrincipalId::from_raw(2), CapSource::Exec);
        let c = root_a.with_addr(0x5000).set_bounds(64, true).unwrap();
        let injected = c.clear_tag().rederive(&root_b).unwrap();
        assert_eq!(injected.provenance().principal, PrincipalId::from_raw(2));
    }

    #[test]
    fn offset_tracks_addr() {
        let c = user_root()
            .with_addr(0x1000)
            .set_bounds(0x100, true)
            .unwrap();
        assert_eq!(c.offset(), 0);
        assert_eq!(c.inc_addr(0x10).offset(), 0x10);
    }
}
