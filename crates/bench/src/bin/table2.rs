//! Regenerates **Table 2**: the taxonomy of source changes CheriABI
//! required, by component and category — the static inventory of this
//! reproduction's porting changes, plus a dynamic classification of the
//! traps observed when running the corpus under CheriABI.

use cheri_bench::cli::{self, json_escape};
use cheri_corpus::compat::{render_table, Category, STATIC_CHANGES};
use cheri_corpus::families::freebsd_suite;
use cheri_corpus::suite::{classify_failures, suite_from_reports, suite_specs};
use cheri_kernel::AbiMode;
use std::collections::BTreeMap;

fn main() {
    let opts = cli::parse_env();
    let cases = freebsd_suite();
    let specs = suite_specs(&cases, AbiMode::CheriAbi);
    let Some(reports) = cli::run_specs(&cheri_bench::registry(), &specs, &opts) else {
        return;
    };
    let result = suite_from_reports(&reports);
    let mut by_cat: BTreeMap<&'static str, Vec<String>> = BTreeMap::new();
    for (name, cat) in classify_failures(&result) {
        let key = cat.map_or("logic/other", Category::header);
        by_cat.entry(key).or_default().push(name);
    }
    if opts.json {
        for row in STATIC_CHANGES {
            println!(
                "{{\"table\":\"table2\",\"component\":\"{}\",\"category\":\"{}\",\"description\":\"{}\"}}",
                json_escape(row.component.label()),
                json_escape(row.category.header()),
                json_escape(row.description)
            );
        }
        for (cat, names) in &by_cat {
            let list: Vec<String> = names
                .iter()
                .map(|n| format!("\"{}\"", json_escape(n)))
                .collect();
            println!(
                "{{\"table\":\"table2\",\"dynamic_category\":\"{}\",\"failures\":[{}]}}",
                json_escape(cat),
                list.join(",")
            );
        }
        return;
    }
    println!("Table 2 (static inventory of this reproduction's changes):");
    println!("{}", render_table(STATIC_CHANGES));
    println!("categories: PP pointer provenance, IP integer provenance, M monotonicity,");
    println!("PS pointer shape, I pointer-as-int, VA virtual address, BF bit flags,");
    println!("H hashing, A alignment, CC calling convention, U unsupported");
    println!();

    println!("Dynamic classification of CheriABI corpus failures:");
    for (cat, names) in &by_cat {
        println!("  {:<12} {:>3}  ({})", cat, names.len(), names.join(", "));
    }
    println!();
    println!(
        "Paper (Table 2) totals per component: headers 21 changes,\n\
         libraries 185, programs 49, tests 13 — across the same categories.\n\
         Absolute counts are incomparable (the paper ports ~800 programs);\n\
         the reproduced property is the taxonomy and its spread."
    );
}
