//! Code generation: the stand-in for the CHERI C compiler.
//!
//! Guest programs (workloads, test corpus, BOdiagsuite) are written against
//! [`FnBuilder`], which lowers portable "C-like" operations differently per
//! ABI, reproducing the mechanics behind the paper's numbers:
//!
//! * **Stack references** (`addr_of_stack`): the legacy ABI computes
//!   `sp + off` in one instruction; CheriABI derives a *bounded* capability
//!   from `$csp` (`CIncOffsetImm` + `CSetBoundsImm`) — the §3 "automatic
//!   references" rule and part of pure-capability overhead.
//! * **Global access** (`load_global_ptr`): the legacy ABI loads an 8-byte
//!   GOT entry via `$gp`. CheriABI loads a 16-byte capability GOT entry via
//!   `$cgp` with `CLC`; when the slot offset exceeds the (original, small)
//!   `CLC` immediate the builder emits an address-materialisation prefix —
//!   the exact effect the paper fixed with the large-immediate `CLC`
//!   (§5.2: "reduces the code size of most binaries by over 10%, and
//!   reduces the initdb overhead from 11% to 6.8%").
//! * **Pointer spills**: 8 bytes under the legacy ABI, 16 under CheriABI —
//!   the cache-footprint mechanism behind Figure 4's pointer-heavy
//!   workloads.
//! * **AddressSanitizer mode** ([`CodegenOpts::asan`]): shadow-memory checks
//!   (9–10 instructions per access) plus stack redzone poisoning; the
//!   software baseline the paper compares against in §5.2 and Table 3.

use crate::object::{Object, ObjectBuilder};
use crate::{creg, ireg, CReg, IReg, Instr, Label, Width};

/// Which process ABI code is generated for (paper §4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Abi {
    /// Legacy SysV-style ABI: pointers are 64-bit integers checked only
    /// against DDC.
    Mips64,
    /// CheriABI: every pointer is a capability; DDC is NULL.
    PureCap,
}

/// Compilation options, including the paper's ablation toggles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CodegenOpts {
    /// Target ABI.
    pub abi: Abi,
    /// In-memory pointer size for the target (8 for mips64; 16 for
    /// CheriABI/C128, 32 for the C256 ablation).
    pub ptr_size: u64,
    /// Use the large-immediate `CLC` extension (§5.2). Ignored for mips64.
    pub clc_large_imm: bool,
    /// Instrument loads/stores with AddressSanitizer-style shadow-memory
    /// checks (mips64 only; the paper's software-sanitizer baseline).
    pub asan: bool,
    /// Tighten bounds on references to struct *members* (§6 "sub-object
    /// and code bounds": off by default in the paper "for compatibility
    /// with popular patterns such as container_of").
    pub subobject_bounds: bool,
}

/// Reach of the original CLC immediate field, in bytes.
pub const CLC_SMALL_IMM_RANGE: i64 = 1 << 11;
/// Reach of the paper's extended CLC immediate field, in bytes.
pub const CLC_LARGE_IMM_RANGE: i64 = 1 << 16;

/// Base virtual address of the AddressSanitizer shadow region.
pub const ASAN_SHADOW_BASE: u64 = 0x2000_0000_0000;
/// log2 of application bytes per shadow byte.
pub const ASAN_SHADOW_SCALE: u32 = 3;

impl CodegenOpts {
    /// Plain legacy mips64 code.
    #[must_use]
    pub fn mips64() -> CodegenOpts {
        CodegenOpts {
            abi: Abi::Mips64,
            ptr_size: 8,
            clc_large_imm: false,
            asan: false,
            subobject_bounds: false,
        }
    }

    /// CheriABI pure-capability code with the large-immediate CLC (the
    /// paper's shipping configuration).
    #[must_use]
    pub fn purecap() -> CodegenOpts {
        CodegenOpts {
            abi: Abi::PureCap,
            ptr_size: 16,
            clc_large_imm: true,
            asan: false,
            subobject_bounds: false,
        }
    }

    /// CheriABI code restricted to the original small CLC immediate (the
    /// "11% initdb overhead" configuration of §5.2).
    #[must_use]
    pub fn purecap_small_clc() -> CodegenOpts {
        CodegenOpts {
            clc_large_imm: false,
            ..CodegenOpts::purecap()
        }
    }

    /// CheriABI with 256-bit capabilities (format ablation).
    #[must_use]
    pub fn purecap_c256() -> CodegenOpts {
        CodegenOpts {
            ptr_size: 32,
            ..CodegenOpts::purecap()
        }
    }

    /// mips64 with AddressSanitizer instrumentation.
    #[must_use]
    pub fn mips64_asan() -> CodegenOpts {
        CodegenOpts {
            asan: true,
            ..CodegenOpts::mips64()
        }
    }

    /// CheriABI with sub-object bounds enabled (the §6 future-work
    /// experiment: stronger protection, breaks `container_of`).
    #[must_use]
    pub fn purecap_subobject() -> CodegenOpts {
        CodegenOpts {
            subobject_bounds: true,
            ..CodegenOpts::purecap()
        }
    }

    /// Short configuration name used in benchmark output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match (self.abi, self.asan, self.clc_large_imm, self.ptr_size) {
            (Abi::Mips64, true, _, _) => "mips64-asan",
            (Abi::Mips64, false, _, _) => "mips64",
            (Abi::PureCap, _, true, 32) => "cheriabi-c256",
            (Abi::PureCap, _, true, _) => "cheriabi",
            (Abi::PureCap, _, false, _) => "cheriabi-smallclc",
        }
    }
}

/// A portable integer-value register (maps to `$t0`–`$t7`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Val(pub u8);

/// A portable pointer register: an integer register under mips64, a
/// capability register under CheriABI.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Ptr(pub u8);

impl Val {
    fn reg(self) -> IReg {
        ireg::temp(self.0)
    }
}

impl Ptr {
    fn ireg(self) -> IReg {
        ireg::saved(self.0)
    }
    fn creg(self) -> CReg {
        creg::ptr(self.0)
    }
}

/// Function-body builder: portable operations lowered per ABI.
///
/// The builder borrows the enclosing [`ObjectBuilder`] so it can both emit
/// instructions and allocate GOT slots. It performs **no** register
/// allocation: `Val(0..=7)` and `Ptr(0..=7)` are caller-managed names
/// (Table 2's "calling convention" issues are modelled faithfully because
/// argument registers really differ between the register files).
pub struct FnBuilder<'a> {
    ob: &'a mut ObjectBuilder,
    /// Active options.
    pub opts: CodegenOpts,
    frame_size: i64,
    /// Stack shadow offsets poisoned in asan mode, to unpoison on leave:
    /// `(frame offset, shadow value)`.
    poisoned: Vec<(i64, u8)>,
    /// Retired-instruction count contributed by this builder (code size).
    emitted_at_start: u32,
}

impl<'a> std::fmt::Debug for FnBuilder<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FnBuilder({:?})", self.opts)
    }
}

impl<'a> FnBuilder<'a> {
    /// Begins a function called `name` in `ob`.
    pub fn begin(ob: &'a mut ObjectBuilder, name: &str, opts: CodegenOpts) -> FnBuilder<'a> {
        ob.begin_function(name);
        let emitted_at_start = ob.asm.here();
        FnBuilder {
            ob,
            opts,
            frame_size: 0,
            poisoned: Vec::new(),
            emitted_at_start,
        }
    }

    /// Number of instructions emitted so far for this function.
    #[must_use]
    pub fn code_size(&self) -> u32 {
        self.ob.asm.here() - self.emitted_at_start
    }

    /// Pointer size for layout computations in portable guest code (models
    /// the "pointer shape" changes of Table 2: structures holding pointers
    /// really are bigger under CheriABI).
    #[must_use]
    pub fn ptr_size(&self) -> u64 {
        self.opts.ptr_size
    }

    /// Byte offset of pointer-array element `i` (16-byte aligned under
    /// CheriABI).
    #[must_use]
    pub fn ptr_slot(&self, i: u64) -> i64 {
        (i * self.opts.ptr_size) as i64
    }

    fn emit(&mut self, i: Instr) {
        self.ob.asm.emit(i);
    }

    // ------------------------------------------------------------------
    // Prologue / epilogue
    // ------------------------------------------------------------------

    /// Emits the prologue for a frame of `size` bytes (16-aligned). The
    /// return continuation is saved in the top pointer slot of the frame.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not 16-byte aligned or is too small to hold the
    /// saved return pointer.
    pub fn enter(&mut self, size: i64) {
        assert_eq!(size % 16, 0, "frame must be 16-aligned");
        assert!(size >= 16, "frame too small for the saved return slot");
        self.frame_size = size;
        match self.opts.abi {
            Abi::Mips64 => {
                self.emit(Instr::AddI {
                    rd: ireg::SP,
                    rs: ireg::SP,
                    imm: -size,
                });
                self.emit(Instr::Store {
                    rs: ireg::RA,
                    base: ireg::SP,
                    off: (size - 8) as i32,
                    w: Width::D,
                });
            }
            Abi::PureCap => {
                self.emit(Instr::CIncOffsetImm {
                    cd: creg::CSP,
                    cb: creg::CSP,
                    imm: -size,
                });
                self.emit(Instr::Csc {
                    cs: creg::CRA,
                    cb: creg::CSP,
                    off: (size - 16) as i32,
                });
            }
        }
    }

    /// Emits the epilogue and return.
    pub fn leave_ret(&mut self) {
        let size = self.frame_size;
        if self.opts.asan {
            // Unpoison this frame's redzones so reuse of the stack region
            // does not produce false positives.
            for (off, _) in std::mem::take(&mut self.poisoned) {
                self.emit_shadow_store_for_sp(off, 0);
            }
        }
        match self.opts.abi {
            Abi::Mips64 => {
                if size > 0 {
                    self.emit(Instr::Load {
                        rd: ireg::RA,
                        base: ireg::SP,
                        off: (size - 8) as i32,
                        w: Width::D,
                        signed: false,
                    });
                    self.emit(Instr::AddI {
                        rd: ireg::SP,
                        rs: ireg::SP,
                        imm: size,
                    });
                }
                self.emit(Instr::Jr { rs: ireg::RA });
            }
            Abi::PureCap => {
                if size > 0 {
                    self.emit(Instr::Clc {
                        cd: creg::CRA,
                        cb: creg::CSP,
                        off: (size - 16) as i32,
                    });
                    self.emit(Instr::CIncOffsetImm {
                        cd: creg::CSP,
                        cb: creg::CSP,
                        imm: size,
                    });
                }
                self.emit(Instr::CJr { cb: creg::CRA });
            }
        }
    }

    /// Return from a frameless (leaf) function.
    pub fn ret(&mut self) {
        match self.opts.abi {
            Abi::Mips64 => self.emit(Instr::Jr { rs: ireg::RA }),
            Abi::PureCap => self.emit(Instr::CJr { cb: creg::CRA }),
        }
    }

    /// Saves pointer register `p` into the frame slot at `off` (must be
    /// pointer-aligned); 8 bytes under mips64, 16 under CheriABI.
    pub fn spill_ptr(&mut self, p: Ptr, off: i64) {
        match self.opts.abi {
            Abi::Mips64 => self.emit(Instr::Store {
                rs: p.ireg(),
                base: ireg::SP,
                off: off as i32,
                w: Width::D,
            }),
            Abi::PureCap => self.emit(Instr::Csc {
                cs: p.creg(),
                cb: creg::CSP,
                off: off as i32,
            }),
        }
    }

    /// Reloads pointer register `p` from the frame slot at `off`.
    pub fn reload_ptr(&mut self, p: Ptr, off: i64) {
        match self.opts.abi {
            Abi::Mips64 => self.emit(Instr::Load {
                rd: p.ireg(),
                base: ireg::SP,
                off: off as i32,
                w: Width::D,
                signed: false,
            }),
            Abi::PureCap => self.emit(Instr::Clc {
                cd: p.creg(),
                cb: creg::CSP,
                off: off as i32,
            }),
        }
    }

    // ------------------------------------------------------------------
    // Integer operations (ABI-independent)
    // ------------------------------------------------------------------

    /// `v = imm`.
    pub fn li(&mut self, v: Val, imm: i64) {
        self.emit(Instr::Li { rd: v.reg(), imm });
    }

    /// `dst = src`.
    pub fn mv(&mut self, dst: Val, src: Val) {
        self.emit(Instr::Move {
            rd: dst.reg(),
            rs: src.reg(),
        });
    }

    /// `d = a + b`.
    pub fn add(&mut self, d: Val, a: Val, b: Val) {
        self.emit(Instr::Add {
            rd: d.reg(),
            rs: a.reg(),
            rt: b.reg(),
        });
    }

    /// `d = a + imm`.
    pub fn add_imm(&mut self, d: Val, a: Val, imm: i64) {
        self.emit(Instr::AddI {
            rd: d.reg(),
            rs: a.reg(),
            imm,
        });
    }

    /// `d = a - b`.
    pub fn sub(&mut self, d: Val, a: Val, b: Val) {
        self.emit(Instr::Sub {
            rd: d.reg(),
            rs: a.reg(),
            rt: b.reg(),
        });
    }

    /// `d = a * b`.
    pub fn mul(&mut self, d: Val, a: Val, b: Val) {
        self.emit(Instr::Mul {
            rd: d.reg(),
            rs: a.reg(),
            rt: b.reg(),
        });
    }

    /// `d = a / b` (unsigned).
    pub fn divu(&mut self, d: Val, a: Val, b: Val) {
        self.emit(Instr::DivU {
            rd: d.reg(),
            rs: a.reg(),
            rt: b.reg(),
        });
    }

    /// `d = a % b` (unsigned).
    pub fn remu(&mut self, d: Val, a: Val, b: Val) {
        self.emit(Instr::RemU {
            rd: d.reg(),
            rs: a.reg(),
            rt: b.reg(),
        });
    }

    /// `d = a & b`.
    pub fn and(&mut self, d: Val, a: Val, b: Val) {
        self.emit(Instr::And {
            rd: d.reg(),
            rs: a.reg(),
            rt: b.reg(),
        });
    }

    /// `d = a | b`.
    pub fn or(&mut self, d: Val, a: Val, b: Val) {
        self.emit(Instr::Or {
            rd: d.reg(),
            rs: a.reg(),
            rt: b.reg(),
        });
    }

    /// `d = a ^ b`.
    pub fn xor(&mut self, d: Val, a: Val, b: Val) {
        self.emit(Instr::Xor {
            rd: d.reg(),
            rs: a.reg(),
            rt: b.reg(),
        });
    }

    /// `d = a & imm`.
    pub fn and_imm(&mut self, d: Val, a: Val, imm: u64) {
        self.emit(Instr::AndI {
            rd: d.reg(),
            rs: a.reg(),
            imm,
        });
    }

    /// `d = a << b` (variable shift).
    pub fn shl(&mut self, d: Val, a: Val, b: Val) {
        self.emit(Instr::Sllv {
            rd: d.reg(),
            rs: a.reg(),
            rt: b.reg(),
        });
    }

    /// `d = a >> b` (variable logical shift).
    pub fn shr(&mut self, d: Val, a: Val, b: Val) {
        self.emit(Instr::Srlv {
            rd: d.reg(),
            rs: a.reg(),
            rt: b.reg(),
        });
    }

    /// `d = a << sh`.
    pub fn shl_imm(&mut self, d: Val, a: Val, sh: u8) {
        self.emit(Instr::SllI {
            rd: d.reg(),
            rs: a.reg(),
            sh,
        });
    }

    /// `d = a >> sh` (logical).
    pub fn shr_imm(&mut self, d: Val, a: Val, sh: u8) {
        self.emit(Instr::SrlI {
            rd: d.reg(),
            rs: a.reg(),
            sh,
        });
    }

    /// `d = (a < b)` signed.
    pub fn slt(&mut self, d: Val, a: Val, b: Val) {
        self.emit(Instr::Slt {
            rd: d.reg(),
            rs: a.reg(),
            rt: b.reg(),
        });
    }

    /// `d = (a < b)` unsigned.
    pub fn sltu(&mut self, d: Val, a: Val, b: Val) {
        self.emit(Instr::Sltu {
            rd: d.reg(),
            rs: a.reg(),
            rt: b.reg(),
        });
    }

    // ------------------------------------------------------------------
    // Control flow
    // ------------------------------------------------------------------

    /// Allocates a label.
    pub fn label(&mut self) -> Label {
        self.ob.asm.label()
    }

    /// Binds a label at the current position.
    pub fn bind(&mut self, l: Label) {
        self.ob.asm.bind(l);
    }

    /// Branch if `a == b`.
    pub fn beq(&mut self, a: Val, b: Val, l: Label) {
        self.ob.asm.beq(a.reg(), b.reg(), l);
    }

    /// Branch if `a != b`.
    pub fn bne(&mut self, a: Val, b: Val, l: Label) {
        self.ob.asm.bne(a.reg(), b.reg(), l);
    }

    /// Branch if `a == 0`.
    pub fn beqz(&mut self, a: Val, l: Label) {
        self.ob.asm.beq(a.reg(), ireg::ZERO, l);
    }

    /// Branch if `a != 0`.
    pub fn bnez(&mut self, a: Val, l: Label) {
        self.ob.asm.bne(a.reg(), ireg::ZERO, l);
    }

    /// Branch if `a <= 0` (signed).
    pub fn blez(&mut self, a: Val, l: Label) {
        self.ob.asm.blez(a.reg(), l);
    }

    /// Branch if `a > 0` (signed).
    pub fn bgtz(&mut self, a: Val, l: Label) {
        self.ob.asm.bgtz(a.reg(), l);
    }

    /// Branch if `a < 0` (signed).
    pub fn bltz(&mut self, a: Val, l: Label) {
        self.ob.asm.bltz(a.reg(), l);
    }

    /// Branch if `a >= 0` (signed).
    pub fn bgez(&mut self, a: Val, l: Label) {
        self.ob.asm.bgez(a.reg(), l);
    }

    /// Unconditional jump.
    pub fn jmp(&mut self, l: Label) {
        self.ob.asm.j(l);
    }

    /// Intra-object call; the return continuation lands in `$ra`/`$cra`.
    pub fn call_label(&mut self, l: Label) {
        self.ob.asm.jal(l);
    }

    /// Cross-object call through the GOT (how RTLD-linked programs call
    /// library functions): one load + one indirect jump, with the CLC
    /// immediate-range penalty applying under CheriABI.
    pub fn call_global(&mut self, symbol: &str) {
        let slot = self.ob.got_slot(symbol);
        let off = (slot as u64 * self.opts.ptr_size) as i64;
        match self.opts.abi {
            Abi::Mips64 => {
                self.emit(Instr::Load {
                    rd: ireg::AT,
                    base: ireg::GP,
                    off: off as i32,
                    w: Width::D,
                    signed: false,
                });
                self.emit(Instr::Jalr {
                    rd: ireg::RA,
                    rs: ireg::AT,
                });
            }
            Abi::PureCap => {
                self.emit_got_clc(creg::CJ, off);
                self.emit(Instr::CJalr {
                    cd: creg::CRA,
                    cb: creg::CJ,
                });
            }
        }
    }

    /// Indirect call through a function pointer held in `p` (e.g. loaded
    /// from a v-table or callback field).
    pub fn call_ptr(&mut self, p: Ptr) {
        match self.opts.abi {
            Abi::Mips64 => self.emit(Instr::Jalr {
                rd: ireg::RA,
                rs: p.ireg(),
            }),
            Abi::PureCap => self.emit(Instr::CJalr {
                cd: creg::CRA,
                cb: p.creg(),
            }),
        }
    }

    /// Sets `v = 1` when running under CheriABI (NULL DDC), else 0 — the
    /// runtime ABI probe used by tests that must skip on one ABI.
    pub fn abi_is_purecap(&mut self, v: Val) {
        self.emit(Instr::CGetDdc { cd: creg::CT0 });
        self.emit(Instr::CGetTag {
            rd: v.reg(),
            cb: creg::CT0,
        });
        self.emit(Instr::XorI {
            rd: v.reg(),
            rs: v.reg(),
            imm: 1,
        });
    }

    /// Emits a trap (used by generated abort paths).
    pub fn trap(&mut self) {
        self.emit(Instr::Break);
    }

    /// Raw system call: number in `$v0`, result in `$v0` (FreeBSD-style
    /// error flag in `$v1`).
    pub fn syscall(&mut self, num: i64) {
        self.emit(Instr::Li {
            rd: ireg::V0,
            imm: num,
        });
        self.emit(Instr::Syscall);
    }

    // ------------------------------------------------------------------
    // Argument / return-value plumbing
    // ------------------------------------------------------------------

    /// Copies integer argument `i` into `v` (function entry).
    pub fn arg_to_val(&mut self, v: Val, i: u8) {
        self.emit(Instr::Move {
            rd: v.reg(),
            rs: ireg::arg(i),
        });
    }

    /// Copies pointer argument `i` into `p` (function entry). Under
    /// CheriABI pointer arguments travel in the capability register file.
    pub fn arg_to_ptr(&mut self, p: Ptr, i: u8) {
        match self.opts.abi {
            Abi::Mips64 => self.emit(Instr::Move {
                rd: p.ireg(),
                rs: ireg::arg(i),
            }),
            Abi::PureCap => self.emit(Instr::CMove {
                cd: p.creg(),
                cb: creg::arg(i),
            }),
        }
    }

    /// Places `v` in integer-argument slot `i` before a call.
    pub fn set_arg_val(&mut self, i: u8, v: Val) {
        self.emit(Instr::Move {
            rd: ireg::arg(i),
            rs: v.reg(),
        });
    }

    /// Clears pointer-argument slot `i` (passes NULL).
    pub fn set_arg_null(&mut self, i: u8) {
        match self.opts.abi {
            Abi::Mips64 => self.emit(Instr::Move {
                rd: ireg::arg(i),
                rs: ireg::ZERO,
            }),
            Abi::PureCap => self.emit(Instr::CMove {
                cd: creg::arg(i),
                cb: creg::CNULL,
            }),
        }
    }

    /// Places `p` in pointer-argument slot `i` before a call.
    pub fn set_arg_ptr(&mut self, i: u8, p: Ptr) {
        match self.opts.abi {
            Abi::Mips64 => self.emit(Instr::Move {
                rd: ireg::arg(i),
                rs: p.ireg(),
            }),
            Abi::PureCap => self.emit(Instr::CMove {
                cd: creg::arg(i),
                cb: p.creg(),
            }),
        }
    }

    /// Sets the integer return value from `v`.
    pub fn set_ret_val(&mut self, v: Val) {
        self.emit(Instr::Move {
            rd: ireg::V0,
            rs: v.reg(),
        });
    }

    /// Reads the integer return value into `v` after a call.
    pub fn ret_val_to(&mut self, v: Val) {
        self.emit(Instr::Move {
            rd: v.reg(),
            rs: ireg::V0,
        });
    }

    /// Sets the pointer return value from `p`.
    pub fn set_ret_ptr(&mut self, p: Ptr) {
        match self.opts.abi {
            Abi::Mips64 => self.emit(Instr::Move {
                rd: ireg::V0,
                rs: p.ireg(),
            }),
            Abi::PureCap => self.emit(Instr::CMove {
                cd: creg::C3,
                cb: p.creg(),
            }),
        }
    }

    /// Reads the pointer return value into `p` after a call.
    pub fn ret_ptr_to(&mut self, p: Ptr) {
        match self.opts.abi {
            Abi::Mips64 => self.emit(Instr::Move {
                rd: p.ireg(),
                rs: ireg::V0,
            }),
            Abi::PureCap => self.emit(Instr::CMove {
                cd: p.creg(),
                cb: creg::C3,
            }),
        }
    }

    // ------------------------------------------------------------------
    // Memory access through pointers
    // ------------------------------------------------------------------

    /// `v = *(ptr + off)` with width `w`.
    pub fn load(&mut self, v: Val, p: Ptr, off: i64, w: Width, signed: bool) {
        if self.opts.asan {
            self.emit_asan_check(p, off, w);
        }
        match self.opts.abi {
            Abi::Mips64 => self.emit(Instr::Load {
                rd: v.reg(),
                base: p.ireg(),
                off: off as i32,
                w,
                signed,
            }),
            Abi::PureCap => self.emit(Instr::CLoad {
                rd: v.reg(),
                cb: p.creg(),
                off: off as i32,
                w,
                signed,
            }),
        }
    }

    /// `*(ptr + off) = v` with width `w`.
    pub fn store(&mut self, v: Val, p: Ptr, off: i64, w: Width) {
        if self.opts.asan {
            self.emit_asan_check(p, off, w);
        }
        match self.opts.abi {
            Abi::Mips64 => self.emit(Instr::Store {
                rs: v.reg(),
                base: p.ireg(),
                off: off as i32,
                w,
            }),
            Abi::PureCap => self.emit(Instr::CStore {
                rs: v.reg(),
                cb: p.creg(),
                off: off as i32,
                w,
            }),
        }
    }

    /// Loads a *pointer* from memory: `pd = *(pb + off)`. Offsets must be
    /// multiples of [`FnBuilder::ptr_size`]; use [`FnBuilder::ptr_slot`].
    pub fn load_ptr(&mut self, pd: Ptr, pb: Ptr, off: i64) {
        if self.opts.asan {
            self.emit_asan_check(pb, off, Width::D);
        }
        match self.opts.abi {
            Abi::Mips64 => self.emit(Instr::Load {
                rd: pd.ireg(),
                base: pb.ireg(),
                off: off as i32,
                w: Width::D,
                signed: false,
            }),
            Abi::PureCap => self.emit(Instr::Clc {
                cd: pd.creg(),
                cb: pb.creg(),
                off: off as i32,
            }),
        }
    }

    /// Stores a pointer to memory: `*(pb + off) = ps`.
    pub fn store_ptr(&mut self, ps: Ptr, pb: Ptr, off: i64) {
        if self.opts.asan {
            self.emit_asan_check(pb, off, Width::D);
        }
        match self.opts.abi {
            Abi::Mips64 => self.emit(Instr::Store {
                rs: ps.ireg(),
                base: pb.ireg(),
                off: off as i32,
                w: Width::D,
            }),
            Abi::PureCap => self.emit(Instr::Csc {
                cs: ps.creg(),
                cb: pb.creg(),
                off: off as i32,
            }),
        }
    }

    // ------------------------------------------------------------------
    // Pointer arithmetic and creation
    // ------------------------------------------------------------------

    /// `pd = pb + v` (C pointer arithmetic: bounds/permissions unchanged).
    pub fn ptr_add(&mut self, pd: Ptr, pb: Ptr, v: Val) {
        match self.opts.abi {
            Abi::Mips64 => self.emit(Instr::Add {
                rd: pd.ireg(),
                rs: pb.ireg(),
                rt: v.reg(),
            }),
            Abi::PureCap => self.emit(Instr::CIncOffset {
                cd: pd.creg(),
                cb: pb.creg(),
                rs: v.reg(),
            }),
        }
    }

    /// `pd = pb + imm`.
    pub fn ptr_add_imm(&mut self, pd: Ptr, pb: Ptr, imm: i64) {
        match self.opts.abi {
            Abi::Mips64 => self.emit(Instr::AddI {
                rd: pd.ireg(),
                rs: pb.ireg(),
                imm,
            }),
            Abi::PureCap => self.emit(Instr::CIncOffsetImm {
                cd: pd.creg(),
                cb: pb.creg(),
                imm,
            }),
        }
    }

    /// `pd = pb` (register move).
    pub fn ptr_mv(&mut self, pd: Ptr, pb: Ptr) {
        match self.opts.abi {
            Abi::Mips64 => self.emit(Instr::Move {
                rd: pd.ireg(),
                rs: pb.ireg(),
            }),
            Abi::PureCap => self.emit(Instr::CMove {
                cd: pd.creg(),
                cb: pb.creg(),
            }),
        }
    }

    /// `v = pa - pb` (pointer difference in bytes).
    pub fn ptr_diff(&mut self, v: Val, pa: Ptr, pb: Ptr) {
        match self.opts.abi {
            Abi::Mips64 => self.emit(Instr::Sub {
                rd: v.reg(),
                rs: pa.ireg(),
                rt: pb.ireg(),
            }),
            Abi::PureCap => self.emit(Instr::CSub {
                rd: v.reg(),
                cb: pa.creg(),
                ct: pb.creg(),
            }),
        }
    }

    /// `v = (uintptr_t)p` — reads the pointer's address (the paper's
    /// `CGetAddr` compiler mode, §5.3).
    pub fn ptr_to_int(&mut self, v: Val, p: Ptr) {
        match self.opts.abi {
            Abi::Mips64 => self.emit(Instr::Move {
                rd: v.reg(),
                rs: p.ireg(),
            }),
            Abi::PureCap => self.emit(Instr::CGetAddr {
                rd: v.reg(),
                cb: p.creg(),
            }),
        }
    }

    /// `pd = (T *)v`, deriving provenance from `pb` — the `CFromPtr`
    /// lowering of `(void *)(uintptr_t)x`. Under mips64 this is a plain
    /// move: *any* integer becomes a dereferenceable pointer, which is
    /// exactly the forgeability CheriABI removes.
    pub fn int_to_ptr(&mut self, pd: Ptr, v: Val, pb: Ptr) {
        match self.opts.abi {
            Abi::Mips64 => self.emit(Instr::Move {
                rd: pd.ireg(),
                rs: v.reg(),
            }),
            Abi::PureCap => self.emit(Instr::CFromPtr {
                cd: pd.creg(),
                cb: pb.creg(),
                rs: v.reg(),
            }),
        }
    }

    /// Null-pointer test: `v = (p == NULL)`.
    pub fn ptr_is_null(&mut self, v: Val, p: Ptr) {
        match self.opts.abi {
            Abi::Mips64 => {
                self.emit(Instr::Sltu {
                    rd: v.reg(),
                    rs: ireg::ZERO,
                    rt: p.ireg(),
                });
                self.emit(Instr::XorI {
                    rd: v.reg(),
                    rs: v.reg(),
                    imm: 1,
                });
            }
            Abi::PureCap => {
                self.emit(Instr::CGetTag {
                    rd: v.reg(),
                    cb: p.creg(),
                });
                self.emit(Instr::XorI {
                    rd: v.reg(),
                    rs: v.reg(),
                    imm: 1,
                });
            }
        }
    }

    /// Takes the address of a `len`-byte stack object at frame offset
    /// `off`: the §3 "automatic references" rule. One instruction under the
    /// legacy ABI; derive-and-bound under CheriABI.
    pub fn addr_of_stack(&mut self, p: Ptr, off: i64, len: u64) {
        match self.opts.abi {
            Abi::Mips64 => {
                self.emit(Instr::AddI {
                    rd: p.ireg(),
                    rs: ireg::SP,
                    imm: off,
                });
                if self.opts.asan {
                    self.emit_stack_redzones(off, len);
                }
            }
            Abi::PureCap => {
                self.emit(Instr::CIncOffsetImm {
                    cd: p.creg(),
                    cb: creg::CSP,
                    imm: off,
                });
                self.emit(Instr::CSetBoundsImm {
                    cd: p.creg(),
                    cb: p.creg(),
                    imm: len,
                });
            }
        }
    }

    /// Takes the address of a struct member at `off` within the object
    /// referenced by `p_obj`, `len` bytes long. With the default options
    /// this is plain pointer arithmetic (the member pointer inherits the
    /// whole object's bounds, so `container_of`-style recovery of the
    /// enclosing object still works); with
    /// [`CodegenOpts::subobject_bounds`] the member reference is narrowed
    /// to the member itself.
    pub fn addr_of_field(&mut self, pd: Ptr, p_obj: Ptr, off: i64, len: u64) {
        self.ptr_add_imm(pd, p_obj, off);
        if self.opts.abi == Abi::PureCap && self.opts.subobject_bounds {
            self.emit(Instr::CSetBoundsImm {
                cd: pd.creg(),
                cb: pd.creg(),
                imm: len,
            });
        }
    }

    /// Like [`FnBuilder::addr_of_stack`] but *without* bounding the result
    /// — models code predating CHERI-aware compilation, and lets tests
    /// demonstrate what the bounds-setting buys.
    pub fn addr_of_stack_unbounded(&mut self, p: Ptr, off: i64) {
        match self.opts.abi {
            Abi::Mips64 => self.emit(Instr::AddI {
                rd: p.ireg(),
                rs: ireg::SP,
                imm: off,
            }),
            Abi::PureCap => self.emit(Instr::CIncOffsetImm {
                cd: p.creg(),
                cb: creg::CSP,
                imm: off,
            }),
        }
    }

    /// Loads the pointer for global `symbol` from the GOT — the §3
    /// "dynamic linking" rule. The run-time linker has initialised the slot
    /// with a bounded capability (CheriABI) or an address (legacy).
    pub fn load_global_ptr(&mut self, p: Ptr, symbol: &str) {
        let slot = self.ob.got_slot(symbol);
        let off = (slot as u64 * self.opts.ptr_size) as i64;
        match self.opts.abi {
            Abi::Mips64 => {
                self.emit(Instr::Load {
                    rd: p.ireg(),
                    base: ireg::GP,
                    off: off as i32,
                    w: Width::D,
                    signed: false,
                });
            }
            Abi::PureCap => self.emit_got_clc(p.creg(), off),
        }
    }

    /// Loads a pointer to this object's thread-local-storage block. RTLD
    /// fills the reserved `__tls_<object>` GOT slot with a capability
    /// bounded to the block ("bounds are per shared-object rather than per
    /// variable, to avoid an extra indirection", §4).
    pub fn tls_ptr(&mut self, p: Ptr) {
        let sym = format!("__tls_{}", self.ob.name());
        self.load_global_ptr(p, &sym);
    }

    /// CLC from the GOT with the immediate-range rules of §5.2.
    fn emit_got_clc(&mut self, cd: CReg, off: i64) {
        let range = if self.opts.clc_large_imm {
            CLC_LARGE_IMM_RANGE
        } else {
            CLC_SMALL_IMM_RANGE
        };
        if off < range {
            self.emit(Instr::Clc {
                cd,
                cb: creg::CGP,
                off: off as i32,
            });
        } else {
            // Materialise the slot address first: the expensive global
            // access pattern the large-immediate CLC eliminates.
            self.emit(Instr::Li {
                rd: ireg::AT,
                imm: off,
            });
            self.emit(Instr::CIncOffset {
                cd: creg::CT0,
                cb: creg::CGP,
                rs: ireg::AT,
            });
            self.emit(Instr::Clc {
                cd,
                cb: creg::CT0,
                off: 0,
            });
        }
    }

    // ------------------------------------------------------------------
    // AddressSanitizer instrumentation (mips64 only)
    // ------------------------------------------------------------------

    /// Shadow check before an access through `p + off` of width `w`:
    /// computes the shadow byte, branches around on 0, applies the
    /// partial-granule rule, and `Break`s on poison.
    fn emit_asan_check(&mut self, p: Ptr, off: i64, w: Width) {
        assert_eq!(
            self.opts.abi,
            Abi::Mips64,
            "asan instruments legacy code only"
        );
        let ok = self.ob.asm.label();
        // AT = addr; V1 = shadow byte; FP = scratch.
        self.emit(Instr::AddI {
            rd: ireg::AT,
            rs: p.ireg(),
            imm: off,
        });
        self.emit(Instr::SrlI {
            rd: ireg::V1,
            rs: ireg::AT,
            sh: ASAN_SHADOW_SCALE as u8,
        });
        self.emit(Instr::Li {
            rd: ireg::FP,
            imm: ASAN_SHADOW_BASE as i64,
        });
        self.emit(Instr::Add {
            rd: ireg::V1,
            rs: ireg::V1,
            rt: ireg::FP,
        });
        self.emit(Instr::Load {
            rd: ireg::V1,
            base: ireg::V1,
            off: 0,
            w: Width::B,
            signed: true,
        });
        self.ob.asm.beq(ireg::V1, ireg::ZERO, ok);
        // Partial granule: abort unless (addr & 7) + size - 1 < shadow.
        self.emit(Instr::AndI {
            rd: ireg::AT,
            rs: ireg::AT,
            imm: 7,
        });
        self.emit(Instr::AddI {
            rd: ireg::AT,
            rs: ireg::AT,
            imm: w.bytes() as i64 - 1,
        });
        self.emit(Instr::Slt {
            rd: ireg::AT,
            rs: ireg::AT,
            rt: ireg::V1,
        });
        self.ob.asm.bne(ireg::AT, ireg::ZERO, ok);
        self.emit(Instr::Break);
        self.ob.asm.bind(ok);
    }

    /// Writes shadow value `val` for the granule at frame offset `off`
    /// (sp-relative), recording it for unpoisoning at `leave_ret`.
    fn emit_shadow_store_for_sp(&mut self, off: i64, val: u8) {
        // AT = (sp + off) >> 3 + SHADOW_BASE; store byte.
        self.emit(Instr::AddI {
            rd: ireg::AT,
            rs: ireg::SP,
            imm: off,
        });
        self.emit(Instr::SrlI {
            rd: ireg::AT,
            rs: ireg::AT,
            sh: ASAN_SHADOW_SCALE as u8,
        });
        self.emit(Instr::Li {
            rd: ireg::FP,
            imm: ASAN_SHADOW_BASE as i64,
        });
        self.emit(Instr::Add {
            rd: ireg::AT,
            rs: ireg::AT,
            rt: ireg::FP,
        });
        self.emit(Instr::Li {
            rd: ireg::V1,
            imm: i64::from(val),
        });
        self.emit(Instr::Store {
            rs: ireg::V1,
            base: ireg::AT,
            off: 0,
            w: Width::B,
        });
    }

    /// Poisons the 8-byte redzones around a stack buffer and the partial
    /// final granule, asan-style. Buffers must be laid out by the caller
    /// with 8 free bytes on each side.
    fn emit_stack_redzones(&mut self, off: i64, len: u64) {
        // Left redzone.
        self.emit_shadow_store_for_sp(off - 8, 0xf1);
        self.poisoned.push((off - 8, 0xf1));
        // Partial last granule (len % 8 valid bytes).
        if !len.is_multiple_of(8) {
            let part_off = off + (len as i64 / 8) * 8;
            self.emit_shadow_store_for_sp(part_off, (len % 8) as u8);
            self.poisoned.push((part_off, (len % 8) as u8));
        }
        // Right redzone, after rounding len up to a granule.
        let right = off + len.div_ceil(8) as i64 * 8;
        self.emit_shadow_store_for_sp(right, 0xf3);
        self.poisoned.push((right, 0xf3));
    }
}

/// A stable fingerprint of instruction selection: the FNV-1a hash of the
/// code a fixed probe program lowers to under every stock [`CodegenOpts`]
/// configuration.
///
/// The harness's content-addressed report cache
/// (`cheriabi::cache::ReportCache`) salts every cache key with this value,
/// so *any* change to how this module lowers guest code — a reordered
/// emission, a new bounds check, a different spill width — invalidates all
/// cached reports wholesale without anyone remembering to bump a version
/// number. The probe deliberately walks the ABI-sensitive surface: stack
/// derivations, near and far GOT accesses, capability spills, pointer
/// arithmetic, sanitizer instrumentation, calls and syscalls.
#[must_use]
pub fn fingerprint() -> u64 {
    // FNV-1a, hand-rolled: `DefaultHasher` is unstable across Rust
    // releases, which would silently invalidate caches on toolchain bumps
    // (and worse, *fail* to invalidate them within one).
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for opts in [
        CodegenOpts::mips64(),
        CodegenOpts::mips64_asan(),
        CodegenOpts::purecap(),
        CodegenOpts::purecap_small_clc(),
        CodegenOpts::purecap_c256(),
        CodegenOpts::purecap_subobject(),
    ] {
        eat(format!("{opts:?}").as_bytes());
        let obj = fingerprint_probe(opts);
        for instr in &obj.code {
            eat(format!("{instr:?}").as_bytes());
            eat(b";");
        }
        eat(format!("got={}", obj.got.len()).as_bytes());
    }
    hash
}

/// Lowers the fixed probe function used by [`fingerprint`].
fn fingerprint_probe(opts: CodegenOpts) -> Object {
    let mut ob = ObjectBuilder::new("fingerprint-probe");
    ob.add_data("g_near", &[1, 2, 3, 4, 5, 6, 7, 8], 8);
    // Push a later symbol's GOT slot beyond the small-CLC immediate range
    // so the far-access materialisation path is part of the fingerprint.
    for i in 0..200 {
        ob.got_slot(&format!("pad{i}"));
    }
    ob.add_data("g_far", &[8, 7, 6, 5, 4, 3, 2, 1], 8);
    {
        let mut f = FnBuilder::begin(&mut ob, "main", opts);
        f.enter(192);
        f.li(Val(0), 41);
        f.add_imm(Val(1), Val(0), 1);
        f.mul(Val(2), Val(0), Val(1));
        // Stack derivation (bounded under CheriABI) + every access width.
        f.addr_of_stack(Ptr(0), 0, 64);
        for (i, w) in [Width::B, Width::H, Width::W, Width::D]
            .into_iter()
            .enumerate()
        {
            f.store(Val(2), Ptr(0), 8 * i as i64, w);
            f.load(Val(3), Ptr(0), 8 * i as i64, w, false);
        }
        // Sub-object derivation and pointer arithmetic.
        f.addr_of_field(Ptr(1), Ptr(0), 8, 16);
        f.ptr_add_imm(Ptr(2), Ptr(1), 4);
        f.ptr_diff(Val(4), Ptr(2), Ptr(1));
        // Capability-width spill/reload (8 vs 16 vs 32 bytes).
        f.spill_ptr(Ptr(0), f.ptr_slot(8));
        f.reload_ptr(Ptr(3), f.ptr_slot(8));
        f.store_ptr(Ptr(1), Ptr(0), 16);
        f.load_ptr(Ptr(4), Ptr(0), 16);
        // Near and far GOT accesses (small vs large CLC immediates).
        f.load_global_ptr(Ptr(5), "g_near");
        f.load_global_ptr(Ptr(6), "g_far");
        // Control flow, calls, and the syscall veneer.
        let out = f.label();
        f.beqz(Val(3), out);
        f.call_global("helper");
        f.bind(out);
        f.set_arg_val(0, Val(2));
        f.syscall(1);
        f.leave_ret();
    }
    {
        let mut f = FnBuilder::begin(&mut ob, "helper", opts);
        f.enter(32);
        f.tls_ptr(Ptr(0));
        f.ptr_is_null(Val(0), Ptr(0));
        f.set_ret_val(Val(0));
        f.leave_ret();
    }
    ob.set_entry("main");
    ob.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectBuilder;

    #[test]
    fn fingerprint_is_deterministic_and_nonzero() {
        let a = fingerprint();
        assert_eq!(a, fingerprint());
        assert_ne!(a, 0);
    }

    fn count_instrs(opts: CodegenOpts, f: impl FnOnce(&mut FnBuilder<'_>)) -> u32 {
        let mut ob = ObjectBuilder::new("t");
        let mut fb = FnBuilder::begin(&mut ob, "f", opts);
        f(&mut fb);
        fb.code_size()
    }

    #[test]
    fn stack_ref_costs_more_under_purecap() {
        let legacy = count_instrs(CodegenOpts::mips64(), |fb| fb.addr_of_stack(Ptr(0), 16, 64));
        let purecap = count_instrs(CodegenOpts::purecap(), |fb| {
            fb.addr_of_stack(Ptr(0), 16, 64)
        });
        assert_eq!(legacy, 1);
        assert_eq!(purecap, 2, "derive + bound");
    }

    #[test]
    fn got_access_counts_model_clc_immediates() {
        // Slot 0: one instruction everywhere.
        for opts in [
            CodegenOpts::mips64(),
            CodegenOpts::purecap(),
            CodegenOpts::purecap_small_clc(),
        ] {
            let n = count_instrs(opts, |fb| fb.load_global_ptr(Ptr(0), "sym0"));
            assert_eq!(n, 1, "{opts:?}");
        }
        // A GOT slot beyond the small immediate range: 256 * 16 = 4096 B.
        let far_sym = |fb: &mut FnBuilder<'_>| {
            for i in 0..300 {
                fb.ob.got_slot(&format!("pad{i}"));
            }
            fb.load_global_ptr(Ptr(0), "far");
        };
        let small = count_instrs(CodegenOpts::purecap_small_clc(), far_sym);
        let large = count_instrs(CodegenOpts::purecap(), far_sym);
        assert_eq!(large, 1, "large-immediate CLC reaches the slot directly");
        assert_eq!(small, 3, "small immediate needs address materialisation");
    }

    #[test]
    fn asan_instrumentation_inflates_accesses() {
        let plain = count_instrs(CodegenOpts::mips64(), |fb| {
            fb.load(Val(0), Ptr(0), 0, Width::D, false);
        });
        let asan = count_instrs(CodegenOpts::mips64_asan(), |fb| {
            fb.load(Val(0), Ptr(0), 0, Width::D, false);
        });
        assert_eq!(plain, 1);
        assert!(asan >= 9, "shadow check sequence, got {asan}");
    }

    #[test]
    fn prologue_uses_the_right_register_file() {
        let mut ob = ObjectBuilder::new("t");
        let mut fb = FnBuilder::begin(&mut ob, "f", CodegenOpts::purecap());
        fb.enter(32);
        fb.leave_ret();
        let code = ob.finish().code;
        assert!(matches!(code[0], Instr::CIncOffsetImm { cd, .. } if cd == creg::CSP));
        assert!(matches!(code[1], Instr::Csc { cs, .. } if cs == creg::CRA));
        assert!(matches!(code[code.len() - 1], Instr::CJr { cb } if cb == creg::CRA));
    }

    #[test]
    #[should_panic(expected = "16-aligned")]
    fn misaligned_frame_panics() {
        let mut ob = ObjectBuilder::new("t");
        let mut fb = FnBuilder::begin(&mut ob, "f", CodegenOpts::purecap());
        fb.enter(24);
    }

    #[test]
    fn ptr_slots_scale_with_abi() {
        let mut ob = ObjectBuilder::new("t");
        let fb = FnBuilder::begin(&mut ob, "f", CodegenOpts::purecap());
        assert_eq!(fb.ptr_slot(3), 48);
        let mut ob2 = ObjectBuilder::new("t2");
        let fb2 = FnBuilder::begin(&mut ob2, "f", CodegenOpts::mips64());
        assert_eq!(fb2.ptr_slot(3), 24);
    }

    #[test]
    fn labels_configurations() {
        assert_eq!(CodegenOpts::mips64().label(), "mips64");
        assert_eq!(CodegenOpts::purecap().label(), "cheriabi");
        assert_eq!(
            CodegenOpts::purecap_small_clc().label(),
            "cheriabi-smallclc"
        );
        assert_eq!(CodegenOpts::mips64_asan().label(), "mips64-asan");
        assert_eq!(CodegenOpts::purecap_c256().label(), "cheriabi-c256");
    }
}
