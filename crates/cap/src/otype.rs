//! Object types for sealed capabilities.

use std::fmt;

/// An object type identifying the class of a sealed capability.
///
/// Sealing is CHERI's mechanism for making a capability *immutable and
/// non-dereferenceable* until unsealed by a capability with matching
/// authority; CheriABI uses it for the signal-return trampoline and for
/// opaque kernel handles. Only a small range of the address space is valid
/// as an object type.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OType(u32);

impl OType {
    /// Largest valid object type (CHERI-MIPS reserves an 18-bit otype space).
    pub const MAX: u32 = (1 << 18) - 1;

    /// Creates an object type, returning `None` if out of range.
    #[must_use]
    pub fn new(value: u64) -> Option<OType> {
        if value <= u64::from(Self::MAX) {
            Some(OType(value as u32))
        } else {
            None
        }
    }

    /// The numeric value of this object type.
    #[must_use]
    pub fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for OType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OType({:#x})", self.0)
    }
}

impl fmt::Display for OType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_accepted() {
        assert_eq!(OType::new(0).map(OType::value), Some(0));
        assert_eq!(
            OType::new(u64::from(OType::MAX)).map(OType::value),
            Some(OType::MAX)
        );
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(OType::new(u64::from(OType::MAX) + 1).is_none());
        assert!(OType::new(u64::MAX).is_none());
    }
}
