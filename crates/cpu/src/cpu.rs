//! The fetch/decode/execute core.

use crate::{DerivationTrace, RegFile};
use cheri_cap::{CapFault, Capability, Perms};
use cheri_isa::{Instr, Width};
use cheri_mem::{AccessKind, CacheHierarchy, FRAME_SIZE};
use cheri_vm::{Access, AsId, Vm, VmError};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Why execution stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Exit {
    /// The guest executed `syscall`; `pc` already points at the next
    /// instruction, the syscall number is in `$v0`.
    Syscall,
    /// The guest executed `break` (abort / sanitizer trap).
    Break,
    /// A trap: capability fault, VM fault, or fetch error. `pc` still
    /// points at the faulting instruction.
    Trap(TrapInfo),
    /// The instruction budget given to [`Cpu::run`] was exhausted.
    InstrLimit,
}

/// Details of a trap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrapInfo {
    /// Cause classification.
    pub cause: TrapCause,
    /// Faulting instruction address.
    pub pc: u64,
    /// Data address involved, if any.
    pub vaddr: Option<u64>,
}

/// Trap cause.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrapCause {
    /// A capability check failed (the CHERI exception vector).
    Cap(CapFault),
    /// A virtual-memory fault the kernel could not transparently service.
    Vm(VmError),
    /// PC does not fall within any registered code region.
    NoCode,
}

/// Retired-instruction and cycle counters (the Figure 4 metrics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpuStats {
    /// Instructions retired.
    pub instret: u64,
    /// Cycles consumed (pipeline base + memory stalls + runtime charges).
    pub cycles: u64,
    /// `syscall` instructions retired.
    pub syscalls: u64,
}

#[derive(Clone)]
struct CodeRegion {
    start: u64,
    end: u64,
    code: Arc<Vec<Instr>>,
}

/// Direct-mapped TLB geometry: sets per access kind. Must be a power of
/// two — the set index is `vpn & (TLB_SETS - 1)`.
const TLB_SETS: usize = 256;
/// Read / Write / Exec each get their own way so that a page readable and
/// executable at different physical rights never aliases.
const TLB_KINDS: usize = 3;
/// Sentinel VPN marking an empty TLB slot (no user VPN reaches it:
/// user addresses top out well below `u64::MAX * FRAME_SIZE`).
const TLB_INVALID_VPN: u64 = u64::MAX;

/// One direct-mapped TLB slot: the virtual page number it holds a
/// translation for and the physical frame base it maps to.
#[derive(Clone, Copy)]
struct TlbEntry {
    vpn: u64,
    base: u64,
}

/// The simulated core: caches, counters, registered code regions, and a
/// direct-mapped TLB that self-invalidates by comparing the VM's
/// translation epoch (no kernel flush calls required).
pub struct Cpu {
    /// Cache hierarchy (shared by fetch and data sides, as on the FPGA).
    pub caches: CacheHierarchy,
    /// Performance counters.
    pub stats: CpuStats,
    /// Derivation tracing for Figure 5.
    pub trace: DerivationTrace,
    code: HashMap<AsId, Vec<CodeRegion>>,
    cur_as: Option<AsId>,
    /// Direct-mapped translation cache, `TLB_KINDS * TLB_SETS` slots.
    /// Valid only while `seen_epoch == vm.epoch()` and the context is
    /// `cur_as`; reset wholesale otherwise.
    tlb: Vec<TlbEntry>,
    /// The [`cheri_vm::Vm::epoch`] value the TLB contents were filled
    /// under.
    seen_epoch: u64,
    /// The code region the last fetch hit: straight-line fetch and branch
    /// target resolution stay inside it without touching the region map.
    cur_code: Option<CodeRegion>,
    /// When false, every fetch/load/store takes the full `vm.translate`
    /// and region-scan path — the measurement baseline for
    /// `interp_throughput --no-fast-path`. Guest-visible state and all
    /// counters are identical either way.
    fast_path: bool,
}

impl fmt::Debug for Cpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cpu{{{:?}}}", self.stats)
    }
}

type StepResult = Result<Option<Exit>, TrapInfo>;

impl Cpu {
    /// A fresh core with the paper's FPGA cache geometry.
    #[must_use]
    pub fn new() -> Cpu {
        Cpu {
            caches: CacheHierarchy::fpga_default(),
            stats: CpuStats::default(),
            trace: DerivationTrace::new(),
            code: HashMap::new(),
            cur_as: None,
            tlb: vec![
                TlbEntry {
                    vpn: TLB_INVALID_VPN,
                    base: 0,
                };
                TLB_KINDS * TLB_SETS
            ],
            seen_epoch: 0,
            cur_code: None,
            fast_path: true,
        }
    }

    /// Enables or disables the translation/fetch fast path. Disabling it
    /// forces every access through the full VM walk and region scan —
    /// useful only as a performance baseline; guest-visible behaviour is
    /// identical in both modes.
    pub fn set_fast_path(&mut self, on: bool) {
        self.fast_path = on;
        self.reset_tlb();
    }

    /// Whether the translation/fetch fast path is enabled.
    #[must_use]
    pub fn fast_path(&self) -> bool {
        self.fast_path
    }

    /// Invalidates every TLB slot and the resident code block.
    fn reset_tlb(&mut self) {
        for e in &mut self.tlb {
            e.vpn = TLB_INVALID_VPN;
        }
        self.cur_code = None;
    }

    /// Registers a code region (done by the loader / RTLD when mapping an
    /// object's text segment).
    pub fn register_code(&mut self, id: AsId, start: u64, code: Arc<Vec<Instr>>) {
        let end = start + code.len() as u64 * 4;
        self.code
            .entry(id)
            .or_default()
            .push(CodeRegion { start, end, code });
        self.cur_code = None;
    }

    /// Forgets all code regions of an address space (process teardown).
    pub fn clear_code(&mut self, id: AsId) {
        self.code.remove(&id);
        self.cur_code = None;
    }

    /// Copies the code map of `from` to `to` (fork: the child shares the
    /// parent's text mappings).
    pub fn clone_code(&mut self, from: AsId, to: AsId) {
        if let Some(regions) = self.code.get(&from) {
            let cloned: Vec<CodeRegion> = regions
                .iter()
                .map(|r| CodeRegion {
                    start: r.start,
                    end: r.end,
                    code: r.code.clone(),
                })
                .collect();
            self.code.insert(to, cloned);
            self.cur_code = None;
        }
    }

    /// Drops every cached translation and the resident code block.
    ///
    /// Kernel code no longer needs to call this: mapping changes bump the
    /// VM's translation epoch and the Cpu self-invalidates by comparing
    /// epochs on the next access. It remains public for tests and tools
    /// that want a cold-cache starting point.
    pub fn flush_tlb(&mut self) {
        self.reset_tlb();
    }

    /// Charges the cost of work performed by a trusted runtime service on
    /// behalf of the guest (allocator internals, RTLD, kernel copies).
    pub fn charge(&mut self, instrs: u64, cycles: u64) {
        self.stats.instret += instrs;
        self.stats.cycles += cycles;
    }

    fn set_context(&mut self, id: AsId) {
        if self.cur_as != Some(id) {
            self.cur_as = Some(id);
            self.reset_tlb();
        }
    }

    /// TLB slot index for a (access kind, virtual page number) pair.
    #[inline]
    fn tlb_index(access: Access, vpn: u64) -> usize {
        access as usize * TLB_SETS + (vpn as usize & (TLB_SETS - 1))
    }

    fn translate_cached(
        &mut self,
        vm: &mut Vm,
        id: AsId,
        vaddr: u64,
        access: Access,
        pc: u64,
    ) -> Result<u64, TrapInfo> {
        if !self.fast_path {
            let pa = vm.translate(id, vaddr, access).map_err(|e| TrapInfo {
                cause: TrapCause::Vm(e),
                pc,
                vaddr: Some(vaddr),
            })?;
            return Ok(pa.0);
        }
        // Self-invalidate: any mapping mutation since the TLB was filled
        // shows up as an epoch mismatch.
        let epoch = vm.epoch();
        if epoch != self.seen_epoch {
            self.reset_tlb();
            self.seen_epoch = epoch;
        }
        let vpn = vaddr / FRAME_SIZE;
        let idx = Self::tlb_index(access, vpn);
        let e = self.tlb[idx];
        if e.vpn == vpn {
            return Ok(e.base + vaddr % FRAME_SIZE);
        }
        let pa = vm.translate(id, vaddr, access).map_err(|e| TrapInfo {
            cause: TrapCause::Vm(e),
            pc,
            vaddr: Some(vaddr),
        })?;
        // The translation itself may have bumped the epoch (COW resolution,
        // swap-in): re-check before caching, or the fill would survive an
        // invalidation it was itself the cause of.
        let now = vm.epoch();
        if now != self.seen_epoch {
            self.reset_tlb();
            self.seen_epoch = now;
        }
        self.tlb[idx] = TlbEntry {
            vpn,
            base: pa.0 - pa.0 % FRAME_SIZE,
        };
        Ok(pa.0)
    }

    // ------------------------------------------------------------------
    // Data access helpers
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn data_read(
        &mut self,
        vm: &mut Vm,
        id: AsId,
        cap: &Capability,
        vaddr: u64,
        w: Width,
        signed: bool,
        aligned_required: bool,
        pc: u64,
    ) -> Result<u64, TrapInfo> {
        let size = w.bytes();
        if aligned_required && !vaddr.is_multiple_of(size) {
            return Err(TrapInfo {
                cause: TrapCause::Cap(CapFault::UnalignedDataAccess),
                pc,
                vaddr: Some(vaddr),
            });
        }
        cap.check_access(vaddr, size, Perms::LOAD)
            .map_err(|f| TrapInfo {
                cause: TrapCause::Cap(f),
                pc,
                vaddr: Some(vaddr),
            })?;
        let pa = self.translate_cached(vm, id, vaddr, Access::Read, pc)?;
        self.stats.cycles += self.caches.access(pa, AccessKind::Load);
        let mut buf = [0u8; 8];
        vm.read_bytes(id, vaddr, &mut buf[..size as usize])
            .map_err(|e| TrapInfo {
                cause: TrapCause::Vm(e),
                pc,
                vaddr: Some(vaddr),
            })?;
        let raw = u64::from_le_bytes(buf);
        Ok(if signed {
            match w {
                Width::B => raw as u8 as i8 as i64 as u64,
                Width::H => raw as u16 as i16 as i64 as u64,
                Width::W => raw as u32 as i32 as i64 as u64,
                Width::D => raw,
            }
        } else {
            raw
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn data_write(
        &mut self,
        vm: &mut Vm,
        id: AsId,
        cap: &Capability,
        vaddr: u64,
        w: Width,
        value: u64,
        aligned_required: bool,
        pc: u64,
    ) -> Result<(), TrapInfo> {
        let size = w.bytes();
        if aligned_required && !vaddr.is_multiple_of(size) {
            return Err(TrapInfo {
                cause: TrapCause::Cap(CapFault::UnalignedDataAccess),
                pc,
                vaddr: Some(vaddr),
            });
        }
        cap.check_access(vaddr, size, Perms::STORE)
            .map_err(|f| TrapInfo {
                cause: TrapCause::Cap(f),
                pc,
                vaddr: Some(vaddr),
            })?;
        let pa = self.translate_cached(vm, id, vaddr, Access::Write, pc)?;
        self.stats.cycles += self.caches.access(pa, AccessKind::Store);
        let bytes = value.to_le_bytes();
        vm.write_bytes(id, vaddr, &bytes[..size as usize])
            .map_err(|e| TrapInfo {
                cause: TrapCause::Vm(e),
                pc,
                vaddr: Some(vaddr),
            })?;
        Ok(())
    }

    fn legacy_cap(rf: &RegFile, pc: u64) -> Result<&Capability, TrapInfo> {
        if !rf.ddc.tag() {
            Err(TrapInfo {
                cause: TrapCause::Cap(CapFault::DdcNull),
                pc,
                vaddr: None,
            })
        } else {
            Ok(&rf.ddc)
        }
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    fn fetch(&mut self, vm: &mut Vm, id: AsId, rf: &RegFile) -> Result<Instr, TrapInfo> {
        let pc = rf.pc;
        rf.pcc
            .check_access(pc, 4, Perms::EXECUTE)
            .map_err(|f| TrapInfo {
                cause: TrapCause::Cap(f),
                pc,
                vaddr: Some(pc),
            })?;
        let pa = self.translate_cached(vm, id, pc, Access::Exec, pc)?;
        self.stats.cycles += self.caches.access(pa, AccessKind::Fetch);
        // Straight-line execution stays inside one region: serve it from
        // the resident block without touching the region map.
        if self.fast_path {
            if let Some(r) = &self.cur_code {
                if pc >= r.start && pc < r.end {
                    return Ok(r.code[((pc - r.start) / 4) as usize]);
                }
            }
        }
        let regions = self.code.get(&id).ok_or(TrapInfo {
            cause: TrapCause::NoCode,
            pc,
            vaddr: Some(pc),
        })?;
        let region = regions
            .iter()
            .find(|r| pc >= r.start && pc < r.end)
            .ok_or(TrapInfo {
                cause: TrapCause::NoCode,
                pc,
                vaddr: Some(pc),
            })?;
        let instr = region.code[((pc - region.start) / 4) as usize];
        if self.fast_path {
            self.cur_code = Some(region.clone());
        }
        Ok(instr)
    }

    fn region_start(&self, id: AsId, pc: u64) -> u64 {
        if let Some(r) = &self.cur_code {
            if pc >= r.start && pc < r.end {
                return r.start;
            }
        }
        self.code
            .get(&id)
            .and_then(|rs| rs.iter().find(|r| pc >= r.start && pc < r.end))
            .map(|r| r.start)
            .expect("executing pc has a region")
    }

    // ------------------------------------------------------------------
    // Main loop
    // ------------------------------------------------------------------

    /// Runs until a syscall, break, trap, or `max_instrs` retired
    /// instructions.
    pub fn run(&mut self, vm: &mut Vm, id: AsId, rf: &mut RegFile, max_instrs: u64) -> Exit {
        self.set_context(id);
        let mut executed = 0u64;
        while executed < max_instrs {
            match self.step(vm, id, rf) {
                Ok(None) => executed += 1,
                Ok(Some(exit)) => return exit,
                Err(trap) => return Exit::Trap(trap),
            }
        }
        Exit::InstrLimit
    }

    /// Executes a single instruction.
    fn step(&mut self, vm: &mut Vm, id: AsId, rf: &mut RegFile) -> StepResult {
        let pc = rf.pc;
        let instr = self.fetch(vm, id, rf)?;
        self.stats.instret += 1;
        self.stats.cycles += instr.base_cycles();
        let mut next = pc.wrapping_add(4);
        let rstart = |cpu: &Cpu| cpu.region_start(id, pc);

        macro_rules! capfault {
            ($f:expr, $va:expr) => {
                TrapInfo {
                    cause: TrapCause::Cap($f),
                    pc,
                    vaddr: $va,
                }
            };
        }

        match instr {
            Instr::Li { rd, imm } => rf.w(rd, imm as u64),
            Instr::Move { rd, rs } => rf.w(rd, rf.r(rs)),

            Instr::Add { rd, rs, rt } => rf.w(rd, rf.r(rs).wrapping_add(rf.r(rt))),
            Instr::Sub { rd, rs, rt } => rf.w(rd, rf.r(rs).wrapping_sub(rf.r(rt))),
            Instr::Mul { rd, rs, rt } => rf.w(rd, rf.r(rs).wrapping_mul(rf.r(rt))),
            Instr::DivU { rd, rs, rt } => {
                let d = rf.r(rt);
                rf.w(rd, rf.r(rs).checked_div(d).unwrap_or(0));
            }
            Instr::DivS { rd, rs, rt } => {
                let d = rf.r(rt) as i64;
                let n = rf.r(rs) as i64;
                rf.w(rd, if d == 0 { 0 } else { n.wrapping_div(d) as u64 });
            }
            Instr::RemU { rd, rs, rt } => {
                let d = rf.r(rt);
                rf.w(rd, if d == 0 { 0 } else { rf.r(rs) % d });
            }
            Instr::And { rd, rs, rt } => rf.w(rd, rf.r(rs) & rf.r(rt)),
            Instr::Or { rd, rs, rt } => rf.w(rd, rf.r(rs) | rf.r(rt)),
            Instr::Xor { rd, rs, rt } => rf.w(rd, rf.r(rs) ^ rf.r(rt)),
            Instr::Nor { rd, rs, rt } => rf.w(rd, !(rf.r(rs) | rf.r(rt))),
            Instr::Sllv { rd, rs, rt } => rf.w(rd, rf.r(rs) << (rf.r(rt) & 63)),
            Instr::Srlv { rd, rs, rt } => rf.w(rd, rf.r(rs) >> (rf.r(rt) & 63)),
            Instr::Srav { rd, rs, rt } => rf.w(rd, ((rf.r(rs) as i64) >> (rf.r(rt) & 63)) as u64),
            Instr::Slt { rd, rs, rt } => rf.w(rd, u64::from((rf.r(rs) as i64) < (rf.r(rt) as i64))),
            Instr::Sltu { rd, rs, rt } => rf.w(rd, u64::from(rf.r(rs) < rf.r(rt))),

            Instr::AddI { rd, rs, imm } => rf.w(rd, rf.r(rs).wrapping_add(imm as u64)),
            Instr::AndI { rd, rs, imm } => rf.w(rd, rf.r(rs) & imm),
            Instr::OrI { rd, rs, imm } => rf.w(rd, rf.r(rs) | imm),
            Instr::XorI { rd, rs, imm } => rf.w(rd, rf.r(rs) ^ imm),
            Instr::SllI { rd, rs, sh } => rf.w(rd, rf.r(rs) << (sh & 63)),
            Instr::SrlI { rd, rs, sh } => rf.w(rd, rf.r(rs) >> (sh & 63)),
            Instr::SraI { rd, rs, sh } => rf.w(rd, ((rf.r(rs) as i64) >> (sh & 63)) as u64),
            Instr::SltI { rd, rs, imm } => rf.w(rd, u64::from((rf.r(rs) as i64) < imm)),
            Instr::SltuI { rd, rs, imm } => rf.w(rd, u64::from(rf.r(rs) < imm)),

            Instr::Beq { rs, rt, target } => {
                if rf.r(rs) == rf.r(rt) {
                    next = rstart(self) + u64::from(target) * 4;
                }
            }
            Instr::Bne { rs, rt, target } => {
                if rf.r(rs) != rf.r(rt) {
                    next = rstart(self) + u64::from(target) * 4;
                }
            }
            Instr::Blez { rs, target } => {
                if (rf.r(rs) as i64) <= 0 {
                    next = rstart(self) + u64::from(target) * 4;
                }
            }
            Instr::Bgtz { rs, target } => {
                if (rf.r(rs) as i64) > 0 {
                    next = rstart(self) + u64::from(target) * 4;
                }
            }
            Instr::Bltz { rs, target } => {
                if (rf.r(rs) as i64) < 0 {
                    next = rstart(self) + u64::from(target) * 4;
                }
            }
            Instr::Bgez { rs, target } => {
                if (rf.r(rs) as i64) >= 0 {
                    next = rstart(self) + u64::from(target) * 4;
                }
            }
            Instr::J { target } => next = rstart(self) + u64::from(target) * 4,
            Instr::Jal { target } => {
                // Return continuation in both files: $ra for legacy code,
                // $cra (PCC-derived, hence bounded) for pure-capability
                // code.
                rf.w(cheri_isa::ireg::RA, next);
                rf.wc(cheri_isa::creg::CRA, rf.pcc.with_addr(next));
                next = rstart(self) + u64::from(target) * 4;
            }
            Instr::Jr { rs } => next = rf.r(rs),
            Instr::Jalr { rd, rs } => {
                rf.w(rd, next);
                next = rf.r(rs);
            }
            Instr::Syscall => {
                self.stats.syscalls += 1;
                rf.pc = next;
                return Ok(Some(Exit::Syscall));
            }
            Instr::Break => {
                rf.pc = pc;
                return Ok(Some(Exit::Break));
            }
            Instr::Nop => {}

            Instr::Load {
                rd,
                base,
                off,
                w,
                signed,
            } => {
                let ddc = *Self::legacy_cap(rf, pc)?;
                let vaddr = rf.r(base).wrapping_add(off as u64);
                // Legacy unaligned access is fixed up by the kernel on
                // FreeBSD/MIPS at significant cost; emulate that.
                let aligned = vaddr.is_multiple_of(w.bytes());
                if !aligned {
                    self.stats.cycles += 50;
                }
                let v = self.data_read(vm, id, &ddc, vaddr, w, signed, false, pc)?;
                rf.w(rd, v);
            }
            Instr::Store { rs, base, off, w } => {
                let ddc = *Self::legacy_cap(rf, pc)?;
                let vaddr = rf.r(base).wrapping_add(off as u64);
                if !vaddr.is_multiple_of(w.bytes()) {
                    self.stats.cycles += 50;
                }
                let v = rf.r(rs);
                self.data_write(vm, id, &ddc, vaddr, w, v, false, pc)?;
            }
            Instr::CLoad {
                rd,
                cb,
                off,
                w,
                signed,
            } => {
                let cap = rf.c(cb);
                let vaddr = cap.addr().wrapping_add(off as u64);
                let v = self.data_read(vm, id, &cap, vaddr, w, signed, true, pc)?;
                rf.w(rd, v);
            }
            Instr::CStore { rs, cb, off, w } => {
                let cap = rf.c(cb);
                let vaddr = cap.addr().wrapping_add(off as u64);
                let v = rf.r(rs);
                self.data_write(vm, id, &cap, vaddr, w, v, true, pc)?;
            }
            Instr::Clc { cd, cb, off } => {
                let cap = rf.c(cb);
                let vaddr = cap.addr().wrapping_add(off as u64);
                let size = cap.format().in_memory_size();
                if !vaddr.is_multiple_of(size) {
                    return Err(capfault!(CapFault::UnalignedCapAccess, Some(vaddr)));
                }
                cap.check_access(vaddr, size, Perms::LOAD)
                    .map_err(|f| capfault!(f, Some(vaddr)))?;
                let pa = self.translate_cached(vm, id, vaddr, Access::Read, pc)?;
                self.stats.cycles += self.caches.access(pa, AccessKind::Load);
                let loaded = vm.load_cap(id, vaddr).map_err(|e| TrapInfo {
                    cause: TrapCause::Vm(e),
                    pc,
                    vaddr: Some(vaddr),
                })?;
                let value = match loaded {
                    Some(c) => {
                        if cap.perms().contains(Perms::LOAD_CAP) {
                            c
                        } else {
                            // Loading through a no-LOAD_CAP capability
                            // strips the tag.
                            c.clear_tag()
                        }
                    }
                    None => {
                        let raw = self.data_read(vm, id, &cap, vaddr, Width::D, false, true, pc)?;
                        Capability::null(cap.format()).with_addr(raw)
                    }
                };
                rf.wc(cd, value);
            }
            Instr::Csc { cs, cb, off } => {
                let cap = rf.c(cb);
                let value = rf.c(cs);
                let vaddr = cap.addr().wrapping_add(off as u64);
                let size = cap.format().in_memory_size();
                if !vaddr.is_multiple_of(size) {
                    return Err(capfault!(CapFault::UnalignedCapAccess, Some(vaddr)));
                }
                cap.check_access(vaddr, size, Perms::STORE)
                    .map_err(|f| capfault!(f, Some(vaddr)))?;
                if value.tag() {
                    if !cap.perms().contains(Perms::STORE_CAP) {
                        return Err(capfault!(CapFault::PermitStoreCapViolation, Some(vaddr)));
                    }
                    if !value.perms().contains(Perms::GLOBAL)
                        && !cap.perms().contains(Perms::STORE_LOCAL_CAP)
                    {
                        return Err(capfault!(
                            CapFault::PermitStoreLocalCapViolation,
                            Some(vaddr)
                        ));
                    }
                }
                let pa = self.translate_cached(vm, id, vaddr, Access::Write, pc)?;
                self.stats.cycles += self.caches.access(pa, AccessKind::Store);
                vm.store_cap(id, vaddr, value).map_err(|e| TrapInfo {
                    cause: TrapCause::Vm(e),
                    pc,
                    vaddr: Some(vaddr),
                })?;
            }

            Instr::CGetAddr { rd, cb } => rf.w(rd, rf.c(cb).addr()),
            Instr::CGetBase { rd, cb } => rf.w(rd, rf.c(cb).base()),
            Instr::CGetLen { rd, cb } => rf.w(rd, rf.c(cb).length()),
            Instr::CGetPerm { rd, cb } => rf.w(rd, u64::from(rf.c(cb).perms().bits())),
            Instr::CGetTag { rd, cb } => rf.w(rd, u64::from(rf.c(cb).tag())),
            Instr::CGetOffset { rd, cb } => rf.w(rd, rf.c(cb).offset()),
            Instr::CGetType { rd, cb } => {
                rf.w(
                    rd,
                    rf.c(cb).otype().map_or(u64::MAX, |t| u64::from(t.value())),
                );
            }

            Instr::CSetAddr { cd, cb, rs } => rf.wc(cd, rf.c(cb).with_addr(rf.r(rs))),
            Instr::CIncOffset { cd, cb, rs } => rf.wc(cd, rf.c(cb).inc_addr(rf.r(rs) as i64)),
            Instr::CIncOffsetImm { cd, cb, imm } => rf.wc(cd, rf.c(cb).inc_addr(imm)),
            Instr::CSetBounds { cd, cb, rs } => {
                let c = rf
                    .c(cb)
                    .set_bounds(rf.r(rs), false)
                    .map_err(|f| capfault!(f, None))?;
                self.trace.record(&c);
                rf.wc(cd, c);
            }
            Instr::CSetBoundsImm { cd, cb, imm } => {
                let c = rf
                    .c(cb)
                    .set_bounds(imm, false)
                    .map_err(|f| capfault!(f, None))?;
                self.trace.record(&c);
                rf.wc(cd, c);
            }
            Instr::CSetBoundsExact { cd, cb, rs } => {
                let c = rf
                    .c(cb)
                    .set_bounds(rf.r(rs), true)
                    .map_err(|f| capfault!(f, None))?;
                self.trace.record(&c);
                rf.wc(cd, c);
            }
            Instr::CAndPerm { cd, cb, rs } => {
                let c = rf
                    .c(cb)
                    .and_perms(Perms::from_bits_truncate(rf.r(rs) as u32));
                self.trace.record(&c);
                rf.wc(cd, c);
            }
            Instr::CClearTag { cd, cb } => rf.wc(cd, rf.c(cb).clear_tag()),
            Instr::CMove { cd, cb } => rf.wc(cd, rf.c(cb)),
            Instr::CRrl { rd, rs } => {
                rf.w(rd, rf.pcc.format().representable_length(rf.r(rs)));
            }
            Instr::CRam { rd, rs } => {
                rf.w(rd, rf.pcc.format().representable_alignment_mask(rf.r(rs)));
            }
            Instr::CSub { rd, cb, ct } => {
                rf.w(rd, rf.c(cb).addr().wrapping_sub(rf.c(ct).addr()));
            }
            Instr::CFromPtr { cd, cb, rs } => {
                let v = rf.r(rs);
                let c = if v == 0 {
                    Capability::null(rf.pcc.format())
                } else {
                    rf.c(cb).with_addr(v)
                };
                self.trace.record(&c);
                rf.wc(cd, c);
            }
            Instr::CToPtr { rd, cb, ct } => {
                let c = rf.c(cb);
                let _ = ct;
                rf.w(rd, if c.tag() { c.addr() } else { 0 });
            }
            Instr::CSeal { cd, cs, ct } => {
                let c = rf.c(cs).seal(&rf.c(ct)).map_err(|f| capfault!(f, None))?;
                rf.wc(cd, c);
            }
            Instr::CUnseal { cd, cs, ct } => {
                let c = rf.c(cs).unseal(&rf.c(ct)).map_err(|f| capfault!(f, None))?;
                rf.wc(cd, c);
            }
            Instr::CTestSubset { rd, cb, ct } => {
                let a = rf.c(cb);
                let b = rf.c(ct);
                rf.w(rd, u64::from(a.tag() && b.tag() && b.is_subset_of(&a)));
            }

            Instr::CJr { cb } => {
                let t = rf.c(cb);
                t.check_access(t.addr(), 4, Perms::EXECUTE)
                    .map_err(|f| capfault!(f, Some(t.addr())))?;
                rf.pcc = t;
                next = t.addr();
            }
            Instr::CJalr { cd, cb } => {
                let t = rf.c(cb);
                t.check_access(t.addr(), 4, Perms::EXECUTE)
                    .map_err(|f| capfault!(f, Some(t.addr())))?;
                rf.wc(cd, rf.pcc.with_addr(next));
                rf.pcc = t;
                next = t.addr();
            }
            Instr::CGetPcc { cd } => rf.wc(cd, rf.pcc.with_addr(pc)),
            Instr::CGetDdc { cd } => rf.wc(cd, rf.ddc),
        }

        rf.pc = next;
        Ok(None)
    }
}

impl Default for Cpu {
    fn default() -> Self {
        Cpu::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_cap::{CapFormat, CapSource, PrincipalId};
    use cheri_isa::{creg, ireg};
    use cheri_vm::{Backing, Prot};

    /// Builds a machine with one space, maps `code` at 0x10000 (rx) and a
    /// rw data page at 0x20000, returns (cpu, vm, as, regfile).
    fn machine(code: Vec<Instr>, purecap: bool) -> (Cpu, Vm, AsId, RegFile) {
        let mut vm = Vm::new(128);
        let id = vm.create_space(PrincipalId::from_raw(1), CapFormat::C128);
        let text_bytes: Vec<u8> = (0..code.len() as u32).flat_map(u32::to_le_bytes).collect();
        vm.map(
            id,
            Some(0x10000),
            (code.len() as u64 * 4).max(4096),
            Prot::rx(),
            Backing::Image {
                data: std::sync::Arc::new(text_bytes),
                offset: 0,
            },
            "text",
        )
        .unwrap();
        vm.map(id, Some(0x20000), 4096, Prot::rw(), Backing::Zero, "data")
            .unwrap();
        let mut cpu = Cpu::new();
        cpu.register_code(id, 0x10000, std::sync::Arc::new(code));
        let mut rf = RegFile::new(CapFormat::C128);
        let root = vm.space(id).root;
        rf.pcc = root
            .with_addr(0x10000)
            .set_bounds(0x1000, false)
            .unwrap()
            .and_perms(Perms::user_code());
        rf.pc = 0x10000;
        if purecap {
            // DDC NULL: CheriABI.
            rf.ddc = Capability::null(CapFormat::C128);
        } else {
            rf.ddc = root.with_source(CapSource::Exec);
        }
        // A data capability in c13 covering the rw page.
        rf.wc(
            creg::ptr(0),
            root.with_addr(0x20000).set_bounds(4096, true).unwrap(),
        );
        (cpu, vm, id, rf)
    }

    #[test]
    fn alu_and_syscall() {
        let code = vec![
            Instr::Li {
                rd: ireg::A0,
                imm: 20,
            },
            Instr::AddI {
                rd: ireg::A0,
                rs: ireg::A0,
                imm: 22,
            },
            Instr::Syscall,
        ];
        let (mut cpu, mut vm, id, mut rf) = machine(code, false);
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100), Exit::Syscall);
        assert_eq!(rf.r(ireg::A0), 42);
        assert_eq!(cpu.stats.instret, 3);
        assert_eq!(rf.pc, 0x10000 + 3 * 4);
    }

    #[test]
    fn legacy_load_store_via_ddc() {
        let code = vec![
            Instr::Li {
                rd: ireg::T0,
                imm: 0x20010,
            },
            Instr::Li {
                rd: ireg::T1,
                imm: 77,
            },
            Instr::Store {
                rs: ireg::T1,
                base: ireg::T0,
                off: 0,
                w: Width::D,
            },
            Instr::Load {
                rd: ireg::T2,
                base: ireg::T0,
                off: 0,
                w: Width::D,
                signed: false,
            },
            Instr::Syscall,
        ];
        let (mut cpu, mut vm, id, mut rf) = machine(code, false);
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100), Exit::Syscall);
        assert_eq!(rf.r(ireg::T2), 77);
    }

    #[test]
    fn legacy_access_traps_with_null_ddc() {
        let code = vec![
            Instr::Li {
                rd: ireg::T0,
                imm: 0x20010,
            },
            Instr::Load {
                rd: ireg::T2,
                base: ireg::T0,
                off: 0,
                w: Width::D,
                signed: false,
            },
        ];
        let (mut cpu, mut vm, id, mut rf) = machine(code, true);
        match cpu.run(&mut vm, id, &mut rf, 100) {
            Exit::Trap(t) => assert_eq!(t.cause, TrapCause::Cap(CapFault::DdcNull)),
            e => panic!("expected DDC trap, got {e:?}"),
        }
    }

    #[test]
    fn capability_bounds_enforced_on_loads() {
        let code = vec![
            // In-bounds store/load via c13.
            Instr::Li {
                rd: ireg::T1,
                imm: 5,
            },
            Instr::CStore {
                rs: ireg::T1,
                cb: creg::ptr(0),
                off: 8,
                w: Width::D,
            },
            Instr::CLoad {
                rd: ireg::T2,
                cb: creg::ptr(0),
                off: 8,
                w: Width::D,
                signed: false,
            },
            // One byte past the 4096-byte bounds.
            Instr::CLoad {
                rd: ireg::T3,
                cb: creg::ptr(0),
                off: 4096,
                w: Width::B,
                signed: false,
            },
        ];
        let (mut cpu, mut vm, id, mut rf) = machine(code, true);
        match cpu.run(&mut vm, id, &mut rf, 100) {
            Exit::Trap(t) => {
                assert_eq!(t.cause, TrapCause::Cap(CapFault::LengthViolation));
                assert_eq!(t.vaddr, Some(0x21000));
            }
            e => panic!("expected length trap, got {e:?}"),
        }
        assert_eq!(rf.r(ireg::T2), 5);
    }

    #[test]
    fn cap_roundtrip_through_memory_keeps_tag() {
        let code = vec![
            Instr::Csc {
                cs: creg::ptr(0),
                cb: creg::ptr(0),
                off: 16,
            },
            Instr::Clc {
                cd: creg::ptr(1),
                cb: creg::ptr(0),
                off: 16,
            },
            Instr::CGetTag {
                rd: ireg::T0,
                cb: creg::ptr(1),
            },
            // Overwrite one byte of the stored capability, reload: tag gone.
            Instr::Li {
                rd: ireg::T1,
                imm: 0xab,
            },
            Instr::CStore {
                rs: ireg::T1,
                cb: creg::ptr(0),
                off: 18,
                w: Width::B,
            },
            Instr::Clc {
                cd: creg::ptr(2),
                cb: creg::ptr(0),
                off: 16,
            },
            Instr::CGetTag {
                rd: ireg::T2,
                cb: creg::ptr(2),
            },
            Instr::Syscall,
        ];
        let (mut cpu, mut vm, id, mut rf) = machine(code, true);
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100), Exit::Syscall);
        assert_eq!(rf.r(ireg::T0), 1, "capability loaded back with tag");
        assert_eq!(rf.r(ireg::T2), 0, "data overwrite cleared the tag");
    }

    #[test]
    fn derived_capability_cannot_widen() {
        let code = vec![
            // Narrow c13 to 16 bytes at 0x20000 then try to re-widen.
            Instr::Li {
                rd: ireg::T0,
                imm: 16,
            },
            Instr::CSetBounds {
                cd: creg::ptr(1),
                cb: creg::ptr(0),
                rs: ireg::T0,
            },
            Instr::Li {
                rd: ireg::T1,
                imm: 64,
            },
            Instr::CSetBounds {
                cd: creg::ptr(2),
                cb: creg::ptr(1),
                rs: ireg::T1,
            },
        ];
        let (mut cpu, mut vm, id, mut rf) = machine(code, true);
        match cpu.run(&mut vm, id, &mut rf, 100) {
            Exit::Trap(t) => assert_eq!(t.cause, TrapCause::Cap(CapFault::LengthViolation)),
            e => panic!("expected monotonicity trap, got {e:?}"),
        }
    }

    #[test]
    fn unaligned_capability_access_traps() {
        let code = vec![Instr::Clc {
            cd: creg::ptr(1),
            cb: creg::ptr(0),
            off: 8,
        }];
        let (mut cpu, mut vm, id, mut rf) = machine(code, true);
        match cpu.run(&mut vm, id, &mut rf, 100) {
            Exit::Trap(t) => assert_eq!(t.cause, TrapCause::Cap(CapFault::UnalignedCapAccess)),
            e => panic!("expected alignment trap, got {e:?}"),
        }
    }

    #[test]
    fn jal_and_cjr_roundtrip() {
        // 0: jal 3 ; 1: syscall ; 2: nop ; 3: cjr cra
        let code = vec![
            Instr::Jal { target: 3 },
            Instr::Syscall,
            Instr::Nop,
            Instr::CJr { cb: creg::CRA },
        ];
        let (mut cpu, mut vm, id, mut rf) = machine(code, true);
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100), Exit::Syscall);
        assert_eq!(cpu.stats.instret, 3, "jal, cjr, syscall");
    }

    #[test]
    fn fetch_outside_pcc_traps() {
        let code = vec![Instr::Jr { rs: ireg::T0 }];
        let (mut cpu, mut vm, id, mut rf) = machine(code, false);
        rf.w(ireg::T0, 0x30000); // outside pcc bounds
        match cpu.run(&mut vm, id, &mut rf, 100) {
            Exit::Trap(t) => assert_eq!(t.cause, TrapCause::Cap(CapFault::LengthViolation)),
            e => panic!("expected pcc trap, got {e:?}"),
        }
    }

    #[test]
    fn break_exits() {
        let code = vec![Instr::Break];
        let (mut cpu, mut vm, id, mut rf) = machine(code, false);
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100), Exit::Break);
    }

    #[test]
    fn instr_limit_respected() {
        let code = vec![Instr::J { target: 0 }];
        let (mut cpu, mut vm, id, mut rf) = machine(code, false);
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 10), Exit::InstrLimit);
        assert_eq!(cpu.stats.instret, 10);
    }

    #[test]
    fn trace_records_setbounds() {
        let code = vec![
            Instr::Li {
                rd: ireg::T0,
                imm: 32,
            },
            Instr::CSetBounds {
                cd: creg::ptr(1),
                cb: creg::ptr(0),
                rs: ireg::T0,
            },
            Instr::Syscall,
        ];
        let (mut cpu, mut vm, id, mut rf) = machine(code, true);
        cpu.trace.enabled = true;
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100), Exit::Syscall);
        assert_eq!(cpu.trace.len(), 1);
        assert_eq!(cpu.trace.events()[0].1, 32);
    }

    #[test]
    fn cycles_exceed_instret_with_cold_caches() {
        let code = vec![
            Instr::Li {
                rd: ireg::T0,
                imm: 0x20000,
            },
            Instr::Load {
                rd: ireg::T1,
                base: ireg::T0,
                off: 0,
                w: Width::D,
                signed: false,
            },
            Instr::Syscall,
        ];
        let (mut cpu, mut vm, id, mut rf) = machine(code, false);
        cpu.run(&mut vm, id, &mut rf, 100);
        assert!(cpu.stats.cycles > cpu.stats.instret);
    }

    // ------------------------------------------------------------------
    // Epoch invalidation edges: each test warms the TLB with a guest
    // access, mutates the VM from the kernel side *without* any explicit
    // flush, and proves the next guest access re-faults instead of using
    // a stale translation.
    // ------------------------------------------------------------------

    /// `store; syscall; store; load; syscall` against the rw data page,
    /// split into two `run` calls at the first syscall.
    fn store_sync_store_load() -> Vec<Instr> {
        vec![
            Instr::Li {
                rd: ireg::T0,
                imm: 0x20010,
            },
            Instr::Li {
                rd: ireg::T1,
                imm: 7,
            },
            Instr::Store {
                rs: ireg::T1,
                base: ireg::T0,
                off: 0,
                w: Width::D,
            },
            Instr::Load {
                rd: ireg::T2,
                base: ireg::T0,
                off: 0,
                w: Width::D,
                signed: false,
            },
            Instr::Syscall,
            Instr::Li {
                rd: ireg::T1,
                imm: 9,
            },
            Instr::Store {
                rs: ireg::T1,
                base: ireg::T0,
                off: 0,
                w: Width::D,
            },
            Instr::Load {
                rd: ireg::T2,
                base: ireg::T0,
                off: 0,
                w: Width::D,
                signed: false,
            },
            Instr::Syscall,
        ]
    }

    #[test]
    fn mprotect_revoking_write_faults_through_warm_tlb() {
        let (mut cpu, mut vm, id, mut rf) = machine(store_sync_store_load(), false);
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100), Exit::Syscall);
        // Kernel side: revoke write on the data page. No flush call — the
        // epoch bump alone must kill the warm Write translation.
        vm.protect(id, 0x20000, 4096, Prot::READ).unwrap();
        match cpu.run(&mut vm, id, &mut rf, 100) {
            Exit::Trap(t) => {
                assert_eq!(t.cause, TrapCause::Vm(VmError::Protection(0x20010)));
            }
            e => panic!("expected protection fault, got {e:?}"),
        }
    }

    #[test]
    fn swap_out_of_translated_page_refaults_and_swaps_in() {
        let (mut cpu, mut vm, id, mut rf) = machine(store_sync_store_load(), false);
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100), Exit::Syscall);
        assert_eq!(rf.r(ireg::T2), 7);
        // Kernel side: evict the data page. Its frame is freed and may be
        // reused; a stale TLB entry would read someone else's memory.
        assert!(vm.swap_out(id, 0x20000).unwrap());
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100), Exit::Syscall);
        assert_eq!(rf.r(ireg::T2), 9, "data must survive the swap round trip");
        assert_eq!(
            vm.stats.swap_ins, 1,
            "the access after eviction must re-fault"
        );
    }

    #[test]
    fn cow_resolve_redirects_warm_read_translation() {
        let (mut cpu, mut vm, id, mut rf) = machine(store_sync_store_load(), false);
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100), Exit::Syscall);
        assert_eq!(rf.r(ireg::T2), 7, "warm Read TLB entry for the data page");
        // Kernel side: fork. The parent's data page is now COW-shared.
        let child = vm.fork_space(id).unwrap();
        cpu.clone_code(id, child);
        // Parent resumes: the store must copy the page, and the load after
        // it must read 9 from the *new* frame — a stale Read entry would
        // keep pointing at the old shared frame, which still holds 7.
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100), Exit::Syscall);
        assert_eq!(rf.r(ireg::T2), 9, "read must follow the COW copy");
        assert_eq!(vm.stats.cow_copies, 1);
        assert_eq!(vm.read_u64(child, 0x20010).unwrap(), 7, "child unchanged");
    }

    #[test]
    fn fork_teardown_leaves_parent_sole_owner() {
        let (mut cpu, mut vm, id, mut rf) = machine(store_sync_store_load(), false);
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100), Exit::Syscall);
        // Kernel side: fork, then tear the child down again (exit before
        // touching anything). Both transitions bump the epoch.
        let child = vm.fork_space(id).unwrap();
        cpu.clone_code(id, child);
        cpu.clear_code(child);
        vm.destroy_space(child);
        // Parent resumes sole owner: the write clears the COW marking in
        // place, with no page copy.
        assert_eq!(cpu.run(&mut vm, id, &mut rf, 100), Exit::Syscall);
        assert_eq!(rf.r(ireg::T2), 9);
        assert_eq!(vm.stats.cow_copies, 0, "sole owner must not copy");
    }

    #[test]
    fn fast_path_and_baseline_agree_on_all_counters() {
        // A branchy loop plus memory traffic, run twice from identical
        // machines: once with the fast path, once forced down the full
        // vm.translate + region-scan path. Every guest-visible counter
        // must agree.
        let code = vec![
            Instr::Li {
                rd: ireg::T0,
                imm: 200,
            },
            Instr::Li {
                rd: ireg::T1,
                imm: 0x20000,
            },
            // loop:
            Instr::Store {
                rs: ireg::T0,
                base: ireg::T1,
                off: 8,
                w: Width::D,
            },
            Instr::Load {
                rd: ireg::T2,
                base: ireg::T1,
                off: 8,
                w: Width::D,
                signed: false,
            },
            Instr::AddI {
                rd: ireg::T0,
                rs: ireg::T0,
                imm: -1,
            },
            Instr::Bgtz {
                rs: ireg::T0,
                target: 2,
            },
            Instr::Syscall,
        ];
        let mut results = Vec::new();
        for fast in [true, false] {
            let (mut cpu, mut vm, id, mut rf) = machine(code.clone(), false);
            cpu.set_fast_path(fast);
            assert_eq!(cpu.fast_path(), fast);
            assert_eq!(cpu.run(&mut vm, id, &mut rf, 10_000), Exit::Syscall);
            results.push((cpu.stats, cpu.caches.stats(), vm.stats, rf.r(ireg::T2)));
        }
        assert_eq!(results[0], results[1]);
    }
}
