//! Tests for the paper's §6 future-work features implemented as extensions:
//! temporal safety (quarantine + revocation sweep), `mprotect` under the
//! VMMAP discipline, and opt-in sub-object bounds.

use cheri_isa::codegen::{CodegenOpts, FnBuilder, Ptr, Val};
use cheri_isa::Width;
use cheri_kernel::{Kernel, KernelConfig};
use cheriabi::guest::GuestOps;
use cheriabi::{AbiMode, CapFault, ExitStatus, ProgramBuilder, SpawnOpts, Sys, TrapCause};

fn run(opts: CodegenOpts, abi: AbiMode, body: impl FnOnce(&mut FnBuilder<'_>)) -> ExitStatus {
    let mut pb = ProgramBuilder::new("ext");
    let mut exe = pb.object("ext");
    {
        let mut f = FnBuilder::begin(&mut exe, "main", opts);
        body(&mut f);
    }
    exe.set_entry("main");
    pb.add(exe.finish());
    let program = pb.finish();
    let mut k = Kernel::new(KernelConfig::default());
    k.run_program(&program, &SpawnOpts::new(abi))
        .expect("loads")
        .0
}

/// Temporal safety off (the paper's shipping configuration): freed memory
/// is recycled, so a stale pointer silently aliases the new allocation —
/// the classic use-after-free.
#[test]
fn use_after_free_aliases_without_revocation() {
    let status = run(CodegenOpts::purecap(), AbiMode::CheriAbi, |f| {
        f.malloc_imm(Ptr(0), 64);
        f.free(Ptr(0));
        f.malloc_imm(Ptr(1), 64); // recycles the same slot
        f.li(Val(0), 42);
        f.store(Val(0), Ptr(1), 0, Width::D);
        // stale pointer still works and sees the new object's data
        f.load(Val(1), Ptr(0), 0, Width::D, false);
        f.sys_exit(Val(1));
    });
    assert_eq!(status, ExitStatus::Code(42), "UAF aliased the reallocation");
}

/// Temporal safety on: after `rt_revoke`, every stale capability — in
/// memory *and* in registers — loses its tag, so the use-after-free traps
/// instead of aliasing (§6: CHERI provides "atomic pointer updates and the
/// precise identification of pointers" needed for temporal reuse safety).
#[test]
fn revocation_kills_stale_capabilities() {
    let status = run(CodegenOpts::purecap(), AbiMode::CheriAbi, |f| {
        f.li(Val(0), 1);
        f.set_arg_val(0, Val(0));
        f.syscall(Sys::RtSetTemporal as i64);
        f.malloc_imm(Ptr(0), 64);
        // Stash a second copy of the stale pointer in memory.
        f.malloc_imm(Ptr(1), 32);
        f.store_ptr(Ptr(0), Ptr(1), 0);
        f.free(Ptr(0));
        // Quarantined: a new allocation must NOT reuse the slot yet.
        f.malloc_imm(Ptr(2), 64);
        f.ptr_diff(Val(1), Ptr(2), Ptr(0));
        let distinct = f.label();
        f.bnez(Val(1), distinct);
        f.sys_exit_imm(50); // would mean the quarantine failed
        f.bind(distinct);
        // Sweep.
        f.syscall(Sys::RtRevoke as i64);
        f.ret_val_to(Val(2));
        let revoked_some = f.label();
        f.bnez(Val(2), revoked_some);
        f.sys_exit_imm(51); // nothing revoked: wrong
        f.bind(revoked_some);
        // The in-memory stale copy must be untagged now.
        f.load_ptr(Ptr(3), Ptr(1), 0);
        f.ptr_is_null(Val(3), Ptr(3));
        let dead = f.label();
        f.bnez(Val(3), dead);
        f.sys_exit_imm(52); // still tagged: revocation missed it
        f.bind(dead);
        // And dereferencing the stale register copy traps.
        f.load(Val(4), Ptr(0), 0, Width::D, false);
        f.sys_exit_imm(53); // unreachable
    });
    assert_eq!(
        status,
        ExitStatus::Fault(TrapCause::Cap(CapFault::TagViolation)),
        "stale register capability must be dead after the sweep"
    );
}

/// After revocation the quarantined memory is recycled normally.
#[test]
fn revocation_recycles_quarantine() {
    let status = run(CodegenOpts::purecap(), AbiMode::CheriAbi, |f| {
        f.li(Val(0), 1);
        f.set_arg_val(0, Val(0));
        f.syscall(Sys::RtSetTemporal as i64);
        f.malloc_imm(Ptr(0), 48);
        f.ptr_to_int(Val(6), Ptr(0)); // remember the address as an integer
        f.free(Ptr(0));
        f.syscall(Sys::RtRevoke as i64);
        f.malloc_imm(Ptr(1), 48); // now reuse is safe and expected
        f.ptr_to_int(Val(1), Ptr(1));
        f.sub(Val(2), Val(1), Val(6));
        let reused = f.label();
        f.beqz(Val(2), reused);
        f.sys_exit_imm(1); // fresh memory also fine, but our allocator LIFOs
        f.bind(reused);
        f.sys_exit_imm(0);
    });
    assert_eq!(status, ExitStatus::Code(0), "slot recycled after sweep");
}

/// mprotect: downgrading a rw mapping to read-only makes writes fault at
/// the MMU even though the (monotonic) capability still carries STORE —
/// and under CheriABI the call demands the VMMAP permission.
#[test]
fn mprotect_downgrade_and_vmmap_rule() {
    let status = run(CodegenOpts::purecap(), AbiMode::CheriAbi, |f| {
        // map 4 KiB rw
        f.set_arg_null(0);
        f.li(Val(1), 4096);
        f.set_arg_val(1, Val(1));
        f.li(Val(2), 3);
        f.set_arg_val(2, Val(2));
        f.li(Val(3), 0);
        f.set_arg_val(3, Val(3));
        f.syscall(Sys::Mmap as i64);
        f.ret_ptr_to(Ptr(0));
        f.li(Val(0), 7);
        f.store(Val(0), Ptr(0), 0, Width::D);
        // mprotect(ptr, 4096, READ)
        f.set_arg_ptr(0, Ptr(0));
        f.li(Val(1), 4096);
        f.set_arg_val(1, Val(1));
        f.li(Val(2), 1);
        f.set_arg_val(2, Val(2));
        f.syscall(Sys::Mprotect as i64);
        f.ret_val_to(Val(3));
        let ok = f.label();
        f.beqz(Val(3), ok);
        f.sys_exit_imm(60);
        f.bind(ok);
        // reads still work...
        f.load(Val(4), Ptr(0), 0, Width::D, false);
        // ...writes now fault (MMU-level, delivered as a fatal signal).
        f.store(Val(4), Ptr(0), 0, Width::D);
        f.sys_exit_imm(61);
    });
    assert!(
        matches!(
            status,
            ExitStatus::Fault(TrapCause::Vm(cheri_vm::VmError::Protection(_)))
        ),
        "write to read-only page must fault: {status:?}"
    );

    // A malloc'd capability (VMMAP stripped) cannot mprotect.
    let status = run(CodegenOpts::purecap(), AbiMode::CheriAbi, |f| {
        f.malloc_imm(Ptr(0), 4096);
        f.set_arg_ptr(0, Ptr(0));
        f.li(Val(1), 4096);
        f.set_arg_val(1, Val(1));
        f.li(Val(2), 1);
        f.set_arg_val(2, Val(2));
        f.syscall(Sys::Mprotect as i64);
        f.ret_val_to(Val(3));
        f.sys_exit(Val(3));
    });
    assert_eq!(status, ExitStatus::Code(-96), "EPROT without VMMAP");
}

/// Sub-object bounds (§6): by default a member pointer keeps the whole
/// object's bounds so `container_of` works; with the opt-in, member
/// references are narrowed and the same recovery traps.
#[test]
fn subobject_bounds_tradeoff() {
    let container_of = |f: &mut FnBuilder<'_>| {
        // struct { u64 header; u64 payload[4]; }
        f.malloc_imm(Ptr(0), 48);
        f.li(Val(0), 0x4ead);
        f.store(Val(0), Ptr(0), 0, Width::D); // header
                                              // take &payload (offset 8, 32 bytes)
        f.addr_of_field(Ptr(1), Ptr(0), 8, 32);
        // container_of(payload) -> read the header via the member pointer
        f.ptr_add_imm(Ptr(2), Ptr(1), -8);
        f.load(Val(1), Ptr(2), 0, Width::D, false);
        f.sys_exit(Val(1));
    };
    // Default: works (the paper's compatibility choice).
    let status = run(CodegenOpts::purecap(), AbiMode::CheriAbi, container_of);
    assert_eq!(status, ExitStatus::Code(0x4ead));
    // Opt-in: the member capability is too narrow to reach the header.
    let status = run(
        CodegenOpts::purecap_subobject(),
        AbiMode::CheriAbi,
        container_of,
    );
    assert_eq!(
        status,
        ExitStatus::Fault(TrapCause::Cap(CapFault::LengthViolation))
    );
    // And on legacy mips64 everything "works" regardless.
    let status = run(CodegenOpts::mips64(), AbiMode::Mips64, container_of);
    assert_eq!(status, ExitStatus::Code(0x4ead));
}

/// Sub-object bounds still catch the overflows they are meant to: an
/// intra-object overflow (Table 3's CheriABI blind spot) becomes
/// detectable.
#[test]
fn subobject_bounds_close_the_intra_object_blind_spot() {
    let intra_overflow = |f: &mut FnBuilder<'_>| {
        f.malloc_imm(Ptr(0), 48);
        f.addr_of_field(Ptr(1), Ptr(0), 0, 16); // field: 16 bytes
        f.li(Val(0), 1);
        f.store(Val(0), Ptr(1), 16, Width::B); // one past the field
        f.sys_exit_imm(0);
    };
    let status = run(CodegenOpts::purecap(), AbiMode::CheriAbi, intra_overflow);
    assert_eq!(
        status,
        ExitStatus::Code(0),
        "default: inside the object, missed"
    );
    let status = run(
        CodegenOpts::purecap_subobject(),
        AbiMode::CheriAbi,
        intra_overflow,
    );
    assert_eq!(
        status,
        ExitStatus::Fault(TrapCause::Cap(CapFault::LengthViolation)),
        "sub-object bounds catch it"
    );
}
