//! Per-thread architectural register state.

use cheri_cap::{CapFormat, Capability};
use cheri_isa::{CReg, IReg};

/// The architectural state the kernel saves and restores on context switch
/// (§3 "Context switching": "the kernel saves and restores user-thread
/// register capability state").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegFile {
    /// Integer registers; index 0 reads as zero.
    pub gpr: [u64; 32],
    /// Capability registers; index 0 is the NULL capability by convention.
    pub caps: [Capability; 32],
    /// Program-counter capability: all fetches are checked against it.
    pub pcc: Capability,
    /// Current program counter (the address within PCC's bounds).
    pub pc: u64,
    /// Default data capability for legacy loads/stores. NULL under
    /// CheriABI.
    pub ddc: Capability,
}

impl RegFile {
    /// A zeroed register file with NULL capabilities of the given format.
    #[must_use]
    pub fn new(fmt: CapFormat) -> RegFile {
        RegFile {
            gpr: [0; 32],
            caps: [Capability::null(fmt); 32],
            pcc: Capability::null(fmt),
            pc: 0,
            ddc: Capability::null(fmt),
        }
    }

    /// Reads an integer register (`$0` is always 0).
    #[must_use]
    pub fn r(&self, r: IReg) -> u64 {
        if r.0 == 0 {
            0
        } else {
            self.gpr[r.0 as usize]
        }
    }

    /// Writes an integer register (writes to `$0` are discarded).
    pub fn w(&mut self, r: IReg, v: u64) {
        if r.0 != 0 {
            self.gpr[r.0 as usize] = v;
        }
    }

    /// Reads a capability register (`$c0` always reads NULL).
    #[must_use]
    pub fn c(&self, r: CReg) -> Capability {
        if r.0 == 0 {
            Capability::null(self.pcc.format())
        } else {
            self.caps[r.0 as usize]
        }
    }

    /// Writes a capability register (writes to `$c0` are discarded).
    pub fn wc(&mut self, r: CReg, v: Capability) {
        if r.0 != 0 {
            self.caps[r.0 as usize] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_cap::{CapSource, PrincipalId};
    use cheri_isa::{creg, ireg};

    #[test]
    fn zero_register_is_hardwired() {
        let mut rf = RegFile::new(CapFormat::C128);
        rf.w(ireg::ZERO, 99);
        assert_eq!(rf.r(ireg::ZERO), 0);
        rf.w(ireg::V0, 7);
        assert_eq!(rf.r(ireg::V0), 7);
    }

    #[test]
    fn cnull_is_hardwired() {
        let mut rf = RegFile::new(CapFormat::C128);
        let root = Capability::root(CapFormat::C128, PrincipalId::KERNEL, CapSource::Boot);
        rf.wc(creg::CNULL, root);
        assert!(!rf.c(creg::CNULL).tag());
        rf.wc(creg::C3, root);
        assert!(rf.c(creg::C3).tag());
    }
}
