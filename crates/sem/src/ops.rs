//! The per-instruction step semantics, one generic handler per
//! [`Instr`] variant.
//!
//! Every handler is generic over a [`MemoryPort`] implementation, so the
//! same bodies execute under the superblock fast path, the reference
//! interpreter and the lockstep shadow in `cheri-cpu`. The handler list is
//! defined exactly once; [`with_op_list!`](with_op_list) re-exports it so
//! consumers can build flat dispatch tables that cannot drift from
//! [`dispatch_index`], and [`step_instr`] dispatches directly for callers
//! without a table.

#![allow(clippy::unnecessary_wraps)] // handlers share one fallible signature

use crate::effects::{eff, RegEffects};
use crate::{MemoryPort, OpResult, SemExit, StepCtx};
use cheri_cap::{CapFault, Capability, Perms};
use cheri_isa::{Instr, Width};

macro_rules! define_ops {
    ($( $name:ident : $pat:pat => [$eff:expr] |$p:ident, $cx:ident| $body:block )+) => {
        $(
            #[doc = concat!("Step semantics for `", stringify!($pat), "`.")]
            ///
            /// # Errors
            ///
            /// The port's fault type on any failed capability or memory
            /// check.
            pub fn $name<P: MemoryPort>(
                $p: &mut P,
                $cx: &mut StepCtx<'_>,
                instr: Instr,
            ) -> OpResult<P::Fault> {
                let $pat = instr else {
                    unreachable!("op table and dispatch index out of sync")
                };
                $body
            }
        )+

        /// The ordered handler-name list, as emitted by `define_ops!`.
        /// Exists solely so a test can assert [`with_op_list!`](crate::with_op_list)
        /// has not drifted from the handler definitions.
        #[doc(hidden)]
        pub static OP_NAMES: &[&str] = &[$(stringify!($name)),+];

        /// Resolves an instruction to its handler slot. Called once per
        /// instruction at decode time, never in a hot loop.
        #[must_use]
        #[allow(unused_variables, unused_assignments)]
        pub fn dispatch_index(i: &Instr) -> u8 {
            let mut idx: u8 = 0;
            $(
                if matches!(i, $pat) {
                    return idx;
                }
                idx += 1;
            )+
            unreachable!("instruction missing from op table")
        }

        /// Executes one instruction by direct dispatch (no table): the
        /// entry point for the reference interpreter and the lockstep
        /// shadow, where per-call scan cost is irrelevant.
        ///
        /// # Errors
        ///
        /// The port's fault type on any failed capability or memory check.
        #[allow(unused_variables)]
        pub fn step_instr<P: MemoryPort>(
            p: &mut P,
            cx: &mut StepCtx<'_>,
            instr: Instr,
        ) -> OpResult<P::Fault> {
            $(
                if matches!(instr, $pat) {
                    return $name(p, cx, instr);
                }
            )+
            unreachable!("instruction missing from op table")
        }

        /// The statically declared [`RegEffects`] of an instruction, from
        /// the effects clause on the same `define_ops!` entry as its
        /// handler body. The template compiler in `cheri-cpu` plans
        /// register residency from these sets; the drift-guard test below
        /// checks them against the handlers' observable behaviour.
        #[must_use]
        #[allow(unused_variables)]
        pub fn reg_effects(i: &Instr) -> RegEffects {
            match *i {
                $( $pat => $eff, )+
            }
        }
    };
}

/// Invokes the given macro with the complete, ordered handler-name list.
/// Consumers use this to build concrete dispatch tables that are, by
/// construction, in [`ops::dispatch_index`](crate::ops::dispatch_index)
/// order. The list is literal (a `macro_rules!` macro cannot be exported
/// from inside another macro's expansion), so a test in [`crate::ops`]
/// asserts it matches the `define_ops!` handler list exactly.
#[macro_export]
macro_rules! with_op_list {
    ($m:ident) => {
        $m! {
            op_li, op_move, op_add, op_sub, op_mul, op_divu, op_divs,
            op_remu, op_and, op_or, op_xor, op_nor, op_sllv, op_srlv,
            op_srav, op_slt, op_sltu, op_addi, op_andi, op_ori, op_xori,
            op_slli, op_srli, op_srai, op_slti, op_sltui, op_beq, op_bne,
            op_blez, op_bgtz, op_bltz, op_bgez, op_j, op_jal, op_jr,
            op_jalr, op_syscall, op_break, op_nop, op_load, op_store,
            op_cload, op_cstore, op_clc, op_csc, op_cgetaddr, op_cgetbase,
            op_cgetlen, op_cgetperm, op_cgettag, op_cgetoffset, op_cgettype,
            op_csetaddr, op_cincoffset, op_cincoffsetimm, op_csetbounds,
            op_csetboundsimm, op_csetboundsexact, op_candperm, op_ccleartag,
            op_cmove, op_crrl, op_cram, op_csub, op_cfromptr, op_ctoptr,
            op_cseal, op_cunseal, op_ctestsubset, op_cjr, op_cjalr,
            op_cgetpcc, op_cgetddc
        }
    };
}

define_ops! {
    op_li: Instr::Li { rd, imm } => [eff().wi(rd)] |_p, cx| {
        cx.rf.w(rd, imm as u64);
        Ok(None)
    }
    op_move: Instr::Move { rd, rs } => [eff().ri(rs).wi(rd)] |_p, cx| {
        cx.rf.w(rd, cx.rf.r(rs));
        Ok(None)
    }
    op_add: Instr::Add { rd, rs, rt } => [eff().ri(rs).ri(rt).wi(rd)] |_p, cx| {
        cx.rf.w(rd, cx.rf.r(rs).wrapping_add(cx.rf.r(rt)));
        Ok(None)
    }
    op_sub: Instr::Sub { rd, rs, rt } => [eff().ri(rs).ri(rt).wi(rd)] |_p, cx| {
        cx.rf.w(rd, cx.rf.r(rs).wrapping_sub(cx.rf.r(rt)));
        Ok(None)
    }
    op_mul: Instr::Mul { rd, rs, rt } => [eff().ri(rs).ri(rt).wi(rd)] |_p, cx| {
        cx.rf.w(rd, cx.rf.r(rs).wrapping_mul(cx.rf.r(rt)));
        Ok(None)
    }
    op_divu: Instr::DivU { rd, rs, rt } => [eff().ri(rs).ri(rt).wi(rd)] |_p, cx| {
        let d = cx.rf.r(rt);
        cx.rf.w(rd, cx.rf.r(rs).checked_div(d).unwrap_or(0));
        Ok(None)
    }
    op_divs: Instr::DivS { rd, rs, rt } => [eff().ri(rs).ri(rt).wi(rd)] |_p, cx| {
        let d = cx.rf.r(rt) as i64;
        let n = cx.rf.r(rs) as i64;
        cx.rf.w(rd, if d == 0 { 0 } else { n.wrapping_div(d) as u64 });
        Ok(None)
    }
    op_remu: Instr::RemU { rd, rs, rt } => [eff().ri(rs).ri(rt).wi(rd)] |_p, cx| {
        let d = cx.rf.r(rt);
        cx.rf.w(rd, if d == 0 { 0 } else { cx.rf.r(rs) % d });
        Ok(None)
    }
    op_and: Instr::And { rd, rs, rt } => [eff().ri(rs).ri(rt).wi(rd)] |_p, cx| {
        cx.rf.w(rd, cx.rf.r(rs) & cx.rf.r(rt));
        Ok(None)
    }
    op_or: Instr::Or { rd, rs, rt } => [eff().ri(rs).ri(rt).wi(rd)] |_p, cx| {
        cx.rf.w(rd, cx.rf.r(rs) | cx.rf.r(rt));
        Ok(None)
    }
    op_xor: Instr::Xor { rd, rs, rt } => [eff().ri(rs).ri(rt).wi(rd)] |_p, cx| {
        cx.rf.w(rd, cx.rf.r(rs) ^ cx.rf.r(rt));
        Ok(None)
    }
    op_nor: Instr::Nor { rd, rs, rt } => [eff().ri(rs).ri(rt).wi(rd)] |_p, cx| {
        cx.rf.w(rd, !(cx.rf.r(rs) | cx.rf.r(rt)));
        Ok(None)
    }
    op_sllv: Instr::Sllv { rd, rs, rt } => [eff().ri(rs).ri(rt).wi(rd)] |_p, cx| {
        cx.rf.w(rd, cx.rf.r(rs) << (cx.rf.r(rt) & 63));
        Ok(None)
    }
    op_srlv: Instr::Srlv { rd, rs, rt } => [eff().ri(rs).ri(rt).wi(rd)] |_p, cx| {
        cx.rf.w(rd, cx.rf.r(rs) >> (cx.rf.r(rt) & 63));
        Ok(None)
    }
    op_srav: Instr::Srav { rd, rs, rt } => [eff().ri(rs).ri(rt).wi(rd)] |_p, cx| {
        cx.rf.w(rd, ((cx.rf.r(rs) as i64) >> (cx.rf.r(rt) & 63)) as u64);
        Ok(None)
    }
    op_slt: Instr::Slt { rd, rs, rt } => [eff().ri(rs).ri(rt).wi(rd)] |_p, cx| {
        cx.rf.w(rd, u64::from((cx.rf.r(rs) as i64) < (cx.rf.r(rt) as i64)));
        Ok(None)
    }
    op_sltu: Instr::Sltu { rd, rs, rt } => [eff().ri(rs).ri(rt).wi(rd)] |_p, cx| {
        cx.rf.w(rd, u64::from(cx.rf.r(rs) < cx.rf.r(rt)));
        Ok(None)
    }
    op_addi: Instr::AddI { rd, rs, imm } => [eff().ri(rs).wi(rd)] |_p, cx| {
        cx.rf.w(rd, cx.rf.r(rs).wrapping_add(imm as u64));
        Ok(None)
    }
    op_andi: Instr::AndI { rd, rs, imm } => [eff().ri(rs).wi(rd)] |_p, cx| {
        cx.rf.w(rd, cx.rf.r(rs) & imm);
        Ok(None)
    }
    op_ori: Instr::OrI { rd, rs, imm } => [eff().ri(rs).wi(rd)] |_p, cx| {
        cx.rf.w(rd, cx.rf.r(rs) | imm);
        Ok(None)
    }
    op_xori: Instr::XorI { rd, rs, imm } => [eff().ri(rs).wi(rd)] |_p, cx| {
        cx.rf.w(rd, cx.rf.r(rs) ^ imm);
        Ok(None)
    }
    op_slli: Instr::SllI { rd, rs, sh } => [eff().ri(rs).wi(rd)] |_p, cx| {
        cx.rf.w(rd, cx.rf.r(rs) << (sh & 63));
        Ok(None)
    }
    op_srli: Instr::SrlI { rd, rs, sh } => [eff().ri(rs).wi(rd)] |_p, cx| {
        cx.rf.w(rd, cx.rf.r(rs) >> (sh & 63));
        Ok(None)
    }
    op_srai: Instr::SraI { rd, rs, sh } => [eff().ri(rs).wi(rd)] |_p, cx| {
        cx.rf.w(rd, ((cx.rf.r(rs) as i64) >> (sh & 63)) as u64);
        Ok(None)
    }
    op_slti: Instr::SltI { rd, rs, imm } => [eff().ri(rs).wi(rd)] |_p, cx| {
        cx.rf.w(rd, u64::from((cx.rf.r(rs) as i64) < imm));
        Ok(None)
    }
    op_sltui: Instr::SltuI { rd, rs, imm } => [eff().ri(rs).wi(rd)] |_p, cx| {
        cx.rf.w(rd, u64::from(cx.rf.r(rs) < imm));
        Ok(None)
    }
    op_beq: Instr::Beq { rs, rt, target } => [eff().ri(rs).ri(rt).ctl()] |_p, cx| {
        if cx.rf.r(rs) == cx.rf.r(rt) {
            cx.next = cx.rstart + u64::from(target) * 4;
        }
        Ok(None)
    }
    op_bne: Instr::Bne { rs, rt, target } => [eff().ri(rs).ri(rt).ctl()] |_p, cx| {
        if cx.rf.r(rs) != cx.rf.r(rt) {
            cx.next = cx.rstart + u64::from(target) * 4;
        }
        Ok(None)
    }
    op_blez: Instr::Blez { rs, target } => [eff().ri(rs).ctl()] |_p, cx| {
        if (cx.rf.r(rs) as i64) <= 0 {
            cx.next = cx.rstart + u64::from(target) * 4;
        }
        Ok(None)
    }
    op_bgtz: Instr::Bgtz { rs, target } => [eff().ri(rs).ctl()] |_p, cx| {
        if (cx.rf.r(rs) as i64) > 0 {
            cx.next = cx.rstart + u64::from(target) * 4;
        }
        Ok(None)
    }
    op_bltz: Instr::Bltz { rs, target } => [eff().ri(rs).ctl()] |_p, cx| {
        if (cx.rf.r(rs) as i64) < 0 {
            cx.next = cx.rstart + u64::from(target) * 4;
        }
        Ok(None)
    }
    op_bgez: Instr::Bgez { rs, target } => [eff().ri(rs).ctl()] |_p, cx| {
        if (cx.rf.r(rs) as i64) >= 0 {
            cx.next = cx.rstart + u64::from(target) * 4;
        }
        Ok(None)
    }
    op_j: Instr::J { target } => [eff().ctl()] |_p, cx| {
        cx.next = cx.rstart + u64::from(target) * 4;
        Ok(None)
    }
    op_jal: Instr::Jal { target } => [eff().wi(cheri_isa::ireg::RA).caps().ctl()] |_p, cx| {
        // Return continuation in both files: $ra for legacy code, $cra
        // (PCC-derived, hence bounded) for pure-capability code.
        cx.rf.w(cheri_isa::ireg::RA, cx.next);
        cx.rf.wc(cheri_isa::creg::CRA, cx.rf.pcc.with_addr(cx.next));
        cx.next = cx.rstart + u64::from(target) * 4;
        Ok(None)
    }
    op_jr: Instr::Jr { rs } => [eff().ri(rs).ctl()] |_p, cx| {
        cx.next = cx.rf.r(rs);
        Ok(None)
    }
    op_jalr: Instr::Jalr { rd, rs } => [eff().ri(rs).wi(rd).ctl()] |_p, cx| {
        cx.rf.w(rd, cx.next);
        cx.next = cx.rf.r(rs);
        Ok(None)
    }
    op_syscall: Instr::Syscall => [eff().exit()] |p, cx| {
        p.count_syscall();
        cx.rf.pc = cx.next;
        Ok(Some(SemExit::Syscall))
    }
    op_break: Instr::Break => [eff().exit()] |_p, cx| {
        cx.rf.pc = cx.pc;
        Ok(Some(SemExit::Break))
    }
    op_nop: Instr::Nop => [eff()] |_p, _cx| {
        Ok(None)
    }
    op_load: Instr::Load { rd, base, off, w, signed } => [eff().ri(base).wi(rd).mem().caps()] |p, cx| {
        let ddc = crate::legacy_cap(p, cx.rf, cx.pc)?;
        let vaddr = cx.rf.r(base).wrapping_add(off as u64);
        // Legacy unaligned access is fixed up by the kernel on FreeBSD/MIPS
        // at significant cost; emulate that.
        if !vaddr.is_multiple_of(w.bytes()) {
            p.charge_cycles(50);
        }
        let v = crate::data_read(p, &ddc, vaddr, w, signed, false, cx.pc)?;
        cx.rf.w(rd, v);
        Ok(None)
    }
    op_store: Instr::Store { rs, base, off, w } => [eff().ri(rs).ri(base).mem().caps()] |p, cx| {
        let ddc = crate::legacy_cap(p, cx.rf, cx.pc)?;
        let vaddr = cx.rf.r(base).wrapping_add(off as u64);
        if !vaddr.is_multiple_of(w.bytes()) {
            p.charge_cycles(50);
        }
        let v = cx.rf.r(rs);
        crate::data_write(p, &ddc, vaddr, w, v, false, cx.pc)?;
        Ok(None)
    }
    op_cload: Instr::CLoad { rd, cb, off, w, signed } => [eff().wi(rd).mem().caps()] |p, cx| {
        let cap = cx.rf.c(cb);
        let vaddr = cap.addr().wrapping_add(off as u64);
        let v = crate::data_read(p, &cap, vaddr, w, signed, true, cx.pc)?;
        cx.rf.w(rd, v);
        Ok(None)
    }
    op_cstore: Instr::CStore { rs, cb, off, w } => [eff().ri(rs).mem().caps()] |p, cx| {
        let cap = cx.rf.c(cb);
        let vaddr = cap.addr().wrapping_add(off as u64);
        let v = cx.rf.r(rs);
        crate::data_write(p, &cap, vaddr, w, v, true, cx.pc)?;
        Ok(None)
    }
    op_clc: Instr::Clc { cd, cb, off } => [eff().mem().caps()] |p, cx| {
        let cap = cx.rf.c(cb);
        let vaddr = cap.addr().wrapping_add(off as u64);
        let size = cap.format().in_memory_size();
        if !vaddr.is_multiple_of(size) {
            return Err(p.cap_fault(cx.pc, CapFault::UnalignedCapAccess, Some(vaddr)));
        }
        cap.check_access(vaddr, size, Perms::LOAD)
            .map_err(|f| p.cap_fault(cx.pc, f, Some(vaddr)))?;
        let loaded = p.read_granule(vaddr, cx.pc)?;
        let value = match loaded {
            Some(c) => {
                if cap.perms().contains(Perms::LOAD_CAP) {
                    c
                } else {
                    // Loading through a no-LOAD_CAP capability strips the
                    // tag.
                    c.clear_tag()
                }
            }
            None => {
                let raw = crate::data_read(p, &cap, vaddr, Width::D, false, true, cx.pc)?;
                Capability::null(cap.format()).with_addr(raw)
            }
        };
        cx.rf.wc(cd, value);
        Ok(None)
    }
    op_csc: Instr::Csc { cs, cb, off } => [eff().mem().caps()] |p, cx| {
        let cap = cx.rf.c(cb);
        let value = cx.rf.c(cs);
        let vaddr = cap.addr().wrapping_add(off as u64);
        let size = cap.format().in_memory_size();
        if !vaddr.is_multiple_of(size) {
            return Err(p.cap_fault(cx.pc, CapFault::UnalignedCapAccess, Some(vaddr)));
        }
        cap.check_access(vaddr, size, Perms::STORE)
            .map_err(|f| p.cap_fault(cx.pc, f, Some(vaddr)))?;
        if value.tag() {
            if !cap.perms().contains(Perms::STORE_CAP) {
                return Err(p.cap_fault(cx.pc, CapFault::PermitStoreCapViolation, Some(vaddr)));
            }
            if !value.perms().contains(Perms::GLOBAL)
                && !cap.perms().contains(Perms::STORE_LOCAL_CAP)
            {
                return Err(p.cap_fault(
                    cx.pc,
                    CapFault::PermitStoreLocalCapViolation,
                    Some(vaddr),
                ));
            }
        }
        p.write_granule(vaddr, value, cx.pc)?;
        Ok(None)
    }
    op_cgetaddr: Instr::CGetAddr { rd, cb } => [eff().wi(rd).caps()] |_p, cx| {
        cx.rf.w(rd, cx.rf.c(cb).addr());
        Ok(None)
    }
    op_cgetbase: Instr::CGetBase { rd, cb } => [eff().wi(rd).caps()] |_p, cx| {
        cx.rf.w(rd, cx.rf.c(cb).base());
        Ok(None)
    }
    op_cgetlen: Instr::CGetLen { rd, cb } => [eff().wi(rd).caps()] |_p, cx| {
        cx.rf.w(rd, cx.rf.c(cb).length());
        Ok(None)
    }
    op_cgetperm: Instr::CGetPerm { rd, cb } => [eff().wi(rd).caps()] |_p, cx| {
        cx.rf.w(rd, u64::from(cx.rf.c(cb).perms().bits()));
        Ok(None)
    }
    op_cgettag: Instr::CGetTag { rd, cb } => [eff().wi(rd).caps()] |_p, cx| {
        cx.rf.w(rd, u64::from(cx.rf.c(cb).tag()));
        Ok(None)
    }
    op_cgetoffset: Instr::CGetOffset { rd, cb } => [eff().wi(rd).caps()] |_p, cx| {
        cx.rf.w(rd, cx.rf.c(cb).offset());
        Ok(None)
    }
    op_cgettype: Instr::CGetType { rd, cb } => [eff().wi(rd).caps()] |_p, cx| {
        cx.rf.w(
            rd,
            cx.rf.c(cb).otype().map_or(u64::MAX, |t| u64::from(t.value())),
        );
        Ok(None)
    }
    op_csetaddr: Instr::CSetAddr { cd, cb, rs } => [eff().ri(rs).caps()] |_p, cx| {
        cx.rf.wc(cd, cx.rf.c(cb).with_addr(cx.rf.r(rs)));
        Ok(None)
    }
    op_cincoffset: Instr::CIncOffset { cd, cb, rs } => [eff().ri(rs).caps()] |_p, cx| {
        cx.rf.wc(cd, cx.rf.c(cb).inc_addr(cx.rf.r(rs) as i64));
        Ok(None)
    }
    op_cincoffsetimm: Instr::CIncOffsetImm { cd, cb, imm } => [eff().caps()] |_p, cx| {
        cx.rf.wc(cd, cx.rf.c(cb).inc_addr(imm));
        Ok(None)
    }
    op_csetbounds: Instr::CSetBounds { cd, cb, rs } => [eff().ri(rs).caps()] |p, cx| {
        let len = cx.rf.r(rs);
        let c = if p.weaken_sem() {
            // Test-only deliberate bug (`--weaken-sem`): bounds are set
            // without the monotonicity check, so a derived capability can
            // widen. The oracle self-test proves this is caught.
            cx.rf.c(cb).set_bounds_weakened(len)
        } else {
            cx.rf
                .c(cb)
                .set_bounds(len, false)
                .map_err(|f| p.cap_fault(cx.pc, f, None))?
        };
        p.record_derivation(&c);
        cx.rf.wc(cd, c);
        Ok(None)
    }
    op_csetboundsimm: Instr::CSetBoundsImm { cd, cb, imm } => [eff().caps()] |p, cx| {
        let c = cx
            .rf
            .c(cb)
            .set_bounds(imm, false)
            .map_err(|f| p.cap_fault(cx.pc, f, None))?;
        p.record_derivation(&c);
        cx.rf.wc(cd, c);
        Ok(None)
    }
    op_csetboundsexact: Instr::CSetBoundsExact { cd, cb, rs } => [eff().ri(rs).caps()] |p, cx| {
        let c = cx
            .rf
            .c(cb)
            .set_bounds(cx.rf.r(rs), true)
            .map_err(|f| p.cap_fault(cx.pc, f, None))?;
        p.record_derivation(&c);
        cx.rf.wc(cd, c);
        Ok(None)
    }
    op_candperm: Instr::CAndPerm { cd, cb, rs } => [eff().ri(rs).caps()] |p, cx| {
        let c = cx
            .rf
            .c(cb)
            .and_perms(Perms::from_bits_truncate(cx.rf.r(rs) as u32));
        p.record_derivation(&c);
        cx.rf.wc(cd, c);
        Ok(None)
    }
    op_ccleartag: Instr::CClearTag { cd, cb } => [eff().caps()] |_p, cx| {
        cx.rf.wc(cd, cx.rf.c(cb).clear_tag());
        Ok(None)
    }
    op_cmove: Instr::CMove { cd, cb } => [eff().caps()] |_p, cx| {
        cx.rf.wc(cd, cx.rf.c(cb));
        Ok(None)
    }
    op_crrl: Instr::CRrl { rd, rs } => [eff().ri(rs).wi(rd).caps()] |_p, cx| {
        cx.rf
            .w(rd, cx.rf.pcc.format().representable_length(cx.rf.r(rs)));
        Ok(None)
    }
    op_cram: Instr::CRam { rd, rs } => [eff().ri(rs).wi(rd).caps()] |_p, cx| {
        cx.rf
            .w(rd, cx.rf.pcc.format().representable_alignment_mask(cx.rf.r(rs)));
        Ok(None)
    }
    op_csub: Instr::CSub { rd, cb, ct } => [eff().wi(rd).caps()] |_p, cx| {
        cx.rf
            .w(rd, cx.rf.c(cb).addr().wrapping_sub(cx.rf.c(ct).addr()));
        Ok(None)
    }
    op_cfromptr: Instr::CFromPtr { cd, cb, rs } => [eff().ri(rs).caps()] |p, cx| {
        let v = cx.rf.r(rs);
        let c = if v == 0 {
            Capability::null(cx.rf.pcc.format())
        } else {
            cx.rf.c(cb).with_addr(v)
        };
        p.record_derivation(&c);
        cx.rf.wc(cd, c);
        Ok(None)
    }
    op_ctoptr: Instr::CToPtr { rd, cb, ct } => [eff().wi(rd).caps()] |_p, cx| {
        let c = cx.rf.c(cb);
        let _ = ct;
        cx.rf.w(rd, if c.tag() { c.addr() } else { 0 });
        Ok(None)
    }
    op_cseal: Instr::CSeal { cd, cs, ct } => [eff().caps()] |p, cx| {
        let c = cx
            .rf
            .c(cs)
            .seal(&cx.rf.c(ct))
            .map_err(|f| p.cap_fault(cx.pc, f, None))?;
        cx.rf.wc(cd, c);
        Ok(None)
    }
    op_cunseal: Instr::CUnseal { cd, cs, ct } => [eff().caps()] |p, cx| {
        let c = cx
            .rf
            .c(cs)
            .unseal(&cx.rf.c(ct))
            .map_err(|f| p.cap_fault(cx.pc, f, None))?;
        cx.rf.wc(cd, c);
        Ok(None)
    }
    op_ctestsubset: Instr::CTestSubset { rd, cb, ct } => [eff().wi(rd).caps()] |_p, cx| {
        let a = cx.rf.c(cb);
        let b = cx.rf.c(ct);
        cx.rf.w(rd, u64::from(a.tag() && b.tag() && b.is_subset_of(&a)));
        Ok(None)
    }
    op_cjr: Instr::CJr { cb } => [eff().caps().ctl()] |p, cx| {
        let t = cx.rf.c(cb);
        t.check_access(t.addr(), 4, Perms::EXECUTE)
            .map_err(|f| p.cap_fault(cx.pc, f, Some(t.addr())))?;
        cx.rf.pcc = t;
        cx.next = t.addr();
        Ok(None)
    }
    op_cjalr: Instr::CJalr { cd, cb } => [eff().caps().ctl()] |p, cx| {
        let t = cx.rf.c(cb);
        t.check_access(t.addr(), 4, Perms::EXECUTE)
            .map_err(|f| p.cap_fault(cx.pc, f, Some(t.addr())))?;
        cx.rf.wc(cd, cx.rf.pcc.with_addr(cx.next));
        cx.rf.pcc = t;
        cx.next = t.addr();
        Ok(None)
    }
    op_cgetpcc: Instr::CGetPcc { cd } => [eff().caps()] |_p, cx| {
        cx.rf.wc(cd, cx.rf.pcc.with_addr(cx.pc));
        Ok(None)
    }
    op_cgetddc: Instr::CGetDdc { cd } => [eff().caps()] |_p, cx| {
        cx.rf.wc(cd, cx.rf.ddc);
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_isa::{creg, ireg};

    macro_rules! names_arr {
        ($($name:ident),+ $(,)?) => {
            &[$(stringify!($name)),+] as &[&str]
        };
    }

    /// `with_op_list!` is hand-written (see its doc comment); this pins it
    /// to the `define_ops!` handler list, order included.
    #[test]
    fn with_op_list_matches_the_handler_definitions() {
        let listed: &[&str] = crate::with_op_list!(names_arr);
        assert_eq!(listed, OP_NAMES, "with_op_list! drifted from define_ops!");
    }

    /// One exemplar per variant, in declaration order. The compiler cannot
    /// enforce completeness of a value list, so this doubles as the check
    /// that [`dispatch_index`] assigns every variant a distinct,
    /// contiguous slot.
    fn exemplars() -> Vec<Instr> {
        let rd = ireg::T0;
        let rs = ireg::T1;
        let rt = ireg::T2;
        let base = ireg::T3;
        let cd = creg::ptr(0);
        let cb = creg::ptr(1);
        let cs = creg::ptr(2);
        let ct = creg::ptr(3);
        vec![
            Instr::Li { rd, imm: 0 },
            Instr::Move { rd, rs },
            Instr::Add { rd, rs, rt },
            Instr::Sub { rd, rs, rt },
            Instr::Mul { rd, rs, rt },
            Instr::DivU { rd, rs, rt },
            Instr::DivS { rd, rs, rt },
            Instr::RemU { rd, rs, rt },
            Instr::And { rd, rs, rt },
            Instr::Or { rd, rs, rt },
            Instr::Xor { rd, rs, rt },
            Instr::Nor { rd, rs, rt },
            Instr::Sllv { rd, rs, rt },
            Instr::Srlv { rd, rs, rt },
            Instr::Srav { rd, rs, rt },
            Instr::Slt { rd, rs, rt },
            Instr::Sltu { rd, rs, rt },
            Instr::AddI { rd, rs, imm: 0 },
            Instr::AndI { rd, rs, imm: 0 },
            Instr::OrI { rd, rs, imm: 0 },
            Instr::XorI { rd, rs, imm: 0 },
            Instr::SllI { rd, rs, sh: 0 },
            Instr::SrlI { rd, rs, sh: 0 },
            Instr::SraI { rd, rs, sh: 0 },
            Instr::SltI { rd, rs, imm: 0 },
            Instr::SltuI { rd, rs, imm: 0 },
            Instr::Beq { rs, rt, target: 0 },
            Instr::Bne { rs, rt, target: 0 },
            Instr::Blez { rs, target: 0 },
            Instr::Bgtz { rs, target: 0 },
            Instr::Bltz { rs, target: 0 },
            Instr::Bgez { rs, target: 0 },
            Instr::J { target: 0 },
            Instr::Jal { target: 0 },
            Instr::Jr { rs },
            Instr::Jalr { rd, rs },
            Instr::Syscall,
            Instr::Break,
            Instr::Nop,
            Instr::Load {
                rd,
                base,
                off: 0,
                w: Width::D,
                signed: false,
            },
            Instr::Store {
                rs,
                base,
                off: 0,
                w: Width::D,
            },
            Instr::CLoad {
                rd,
                cb,
                off: 0,
                w: Width::D,
                signed: false,
            },
            Instr::CStore {
                rs,
                cb,
                off: 0,
                w: Width::D,
            },
            Instr::Clc { cd, cb, off: 0 },
            Instr::Csc { cs, cb, off: 0 },
            Instr::CGetAddr { rd, cb },
            Instr::CGetBase { rd, cb },
            Instr::CGetLen { rd, cb },
            Instr::CGetPerm { rd, cb },
            Instr::CGetTag { rd, cb },
            Instr::CGetOffset { rd, cb },
            Instr::CGetType { rd, cb },
            Instr::CSetAddr { cd, cb, rs },
            Instr::CIncOffset { cd, cb, rs },
            Instr::CIncOffsetImm { cd, cb, imm: 0 },
            Instr::CSetBounds { cd, cb, rs },
            Instr::CSetBoundsImm { cd, cb, imm: 0 },
            Instr::CSetBoundsExact { cd, cb, rs },
            Instr::CAndPerm { cd, cb, rs },
            Instr::CClearTag { cd, cb },
            Instr::CMove { cd, cb },
            Instr::CRrl { rd, rs },
            Instr::CRam { rd, rs },
            Instr::CSub { rd, cb, ct },
            Instr::CFromPtr { cd, cb, rs },
            Instr::CToPtr { rd, cb, ct },
            Instr::CSeal { cd, cs, ct },
            Instr::CUnseal { cd, cs, ct },
            Instr::CTestSubset { rd, cb, ct },
            Instr::CJr { cb },
            Instr::CJalr { cd, cb },
            Instr::CGetPcc { cd },
            Instr::CGetDdc { cd },
        ]
    }

    #[test]
    fn every_variant_gets_a_distinct_contiguous_slot() {
        let all = exemplars();
        assert_eq!(all.len(), OP_NAMES.len(), "exemplar list out of date");
        for (i, instr) in all.iter().enumerate() {
            assert_eq!(
                usize::from(dispatch_index(instr)),
                i,
                "dispatch order diverged at {instr:?}"
            );
        }
    }

    /// A port that panics on any memory or capability-fault use: the
    /// drift-guard below only runs handlers whose effects clause declares
    /// them pure, so reaching the port at all is itself a drift.
    struct PureProbePort;

    impl crate::TrapPort for PureProbePort {
        type Fault = ();
        fn cap_fault(
            &mut self,
            _pc: u64,
            _fault: cheri_cap::CapFault,
            _vaddr: Option<u64>,
        ) -> Self::Fault {
            panic!("pure-declared handler raised a capability fault")
        }
    }

    impl MemoryPort for PureProbePort {
        fn read_raw(&mut self, _v: u64, _s: u64, _pc: u64) -> Result<u64, ()> {
            panic!("pure-declared handler read memory")
        }
        fn write_raw(&mut self, _v: u64, _s: u64, _val: u64, _pc: u64) -> Result<(), ()> {
            panic!("pure-declared handler wrote memory")
        }
        fn read_granule(&mut self, _v: u64, _pc: u64) -> Result<Option<Capability>, ()> {
            panic!("pure-declared handler read a granule")
        }
        fn write_granule(&mut self, _v: u64, _c: Capability, _pc: u64) -> Result<(), ()> {
            panic!("pure-declared handler wrote a granule")
        }
    }

    fn seeded_regfile(seed: u64) -> crate::RegFile {
        let mut rf = crate::RegFile::new(cheri_cap::CapFormat::C128);
        let mut x = seed | 1;
        for i in 1..32 {
            // Deterministic xorshift; small values keep shift/branch
            // operands interesting.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            rf.gpr[i] = if i % 3 == 0 { x % 7 } else { x };
        }
        rf
    }

    /// Drift guard for the effects clauses: for every handler declared
    /// pure-integer, (a) perturbing registers *outside* the declared read
    /// set never changes what it computes, and (b) it never modifies a
    /// register outside the declared write set. A handler that secretly
    /// reads or writes more than its clause admits fails here — which is
    /// what keeps the template compiler in `cheri-cpu` honest.
    #[test]
    fn effects_clauses_match_pure_handler_behaviour() {
        for (case, instr) in exemplars().iter().enumerate() {
            let e = reg_effects(instr);
            if !e.is_pure_int() {
                continue;
            }
            for seed in [3u64, 0x9e3779b97f4a7c15, u64::MAX / 5] {
                let base = seeded_regfile(seed);
                let mut perturbed = base.clone();
                for i in 1..32 {
                    if e.int_reads & (1 << i) == 0 {
                        perturbed.gpr[i] ^= 0xdead_beef_0bad_f00d ^ (case as u64) << 32;
                    }
                }
                let run = |rf: &crate::RegFile| {
                    let mut rf = rf.clone();
                    let next = {
                        let mut cx = StepCtx {
                            rf: &mut rf,
                            pc: 0x1000,
                            next: 0x1004,
                            rstart: 0x1000,
                        };
                        let out = step_instr(&mut PureProbePort, &mut cx, *instr)
                            .expect("pure-declared handler trapped");
                        assert!(out.is_none(), "pure-declared handler exited: {instr:?}");
                        cx.next
                    };
                    (rf, next)
                };
                let (out_a, next_a) = run(&base);
                let (out_b, next_b) = run(&perturbed);
                for i in 0..32 {
                    if e.int_writes & (1 << i) != 0 {
                        // Declared writes must be a pure function of the
                        // declared reads — identical under perturbation.
                        assert_eq!(
                            out_a.gpr[i], out_b.gpr[i],
                            "{instr:?}: write ${i} depends on an undeclared read"
                        );
                    } else {
                        // Everything else must be untouched.
                        assert_eq!(
                            out_a.gpr[i], base.gpr[i],
                            "{instr:?}: wrote ${i} outside its declared write set"
                        );
                    }
                }
                // Control decisions (branch direction, jump-register
                // targets) must also be a pure function of the declared
                // reads: the perturbation never touches those, so `next`
                // must come out identical.
                assert_eq!(
                    next_a, next_b,
                    "{instr:?}: control depends on an undeclared read"
                );
            }
        }
    }

    /// Classification cross-check: the effects clauses must agree with the
    /// `Instr` classification helpers the superblock machine is built on.
    #[test]
    fn effects_clauses_agree_with_instr_classification() {
        for instr in exemplars() {
            let e = reg_effects(&instr);
            assert_eq!(
                e.mem,
                instr.is_memory(),
                "{instr:?}: mem flag disagrees with Instr::is_memory"
            );
            if instr.is_control() {
                assert!(e.control, "{instr:?}: control op lacks ctl() clause");
            }
            if e.exit {
                assert!(
                    matches!(instr, Instr::Syscall | Instr::Break),
                    "{instr:?}: only syscall/break exit the run loop"
                );
            }
        }
    }
}
