//! Tagged physical memory: 4-KiB frames with one tag bit per 16-byte granule.

use cheri_cap::{Capability, TAG_GRANULE};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Size of a physical frame (and of a virtual page) in bytes.
pub const FRAME_SIZE: u64 = 4096;

const GRANULES_PER_FRAME: usize = (FRAME_SIZE / TAG_GRANULE) as usize;

/// Identifier of an allocated physical frame.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FrameId(pub u32);

/// A physical address: frame number and offset combined.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PAddr(pub u64);

impl PAddr {
    /// Builds a physical address from a frame and an in-frame offset.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= FRAME_SIZE`.
    #[must_use]
    pub fn new(frame: FrameId, offset: u64) -> PAddr {
        assert!(offset < FRAME_SIZE, "offset {offset} out of frame");
        PAddr(u64::from(frame.0) * FRAME_SIZE + offset)
    }

    /// The frame this address falls in.
    #[must_use]
    pub fn frame(self) -> FrameId {
        FrameId((self.0 / FRAME_SIZE) as u32)
    }

    /// Offset within the frame.
    #[must_use]
    pub fn offset(self) -> u64 {
        self.0 % FRAME_SIZE
    }
}

impl fmt::Debug for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PAddr({:#x})", self.0)
    }
}

#[derive(Clone)]
struct Frame {
    data: Box<[u8]>,
    /// One bit per 16-byte granule.
    tags: [u64; GRANULES_PER_FRAME / 64],
    /// Full capability values for tagged granules. The `data` bytes hold the
    /// address so integer reads of pointer memory behave like real CHERI;
    /// the rest of the encoding lives here.
    caps: HashMap<u16, Capability>,
}

impl Frame {
    fn new() -> Frame {
        Frame {
            data: vec![0u8; FRAME_SIZE as usize].into_boxed_slice(),
            tags: [0; GRANULES_PER_FRAME / 64],
            caps: HashMap::new(),
        }
    }

    fn tag_bit(&self, granule: usize) -> bool {
        self.tags[granule / 64] >> (granule % 64) & 1 == 1
    }

    fn set_tag(&mut self, granule: usize, v: bool) {
        if v {
            self.tags[granule / 64] |= 1 << (granule % 64);
        } else {
            self.tags[granule / 64] &= !(1 << (granule % 64));
        }
    }
}

/// A scheduled physical-memory bit-flip: after `after_mutations` mutating
/// accesses (data writes and capability stores), one bit of one granule is
/// flipped. Deterministic: the same spec against the same access stream
/// always corrupts the same bit of the same granule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PhysFaultSpec {
    /// Fire once this many mutating accesses have been observed.
    pub after_mutations: u64,
    /// Bit index within the 128-bit granule to flip (taken mod 128).
    pub bit: u32,
    /// When true, corrupt a stored capability: once due, the flip fires at
    /// the next capability-width *load* of a tagged granule, so the
    /// corrupted value is by construction the one about to be observed
    /// (corruption of memory that is never read again is invisible and
    /// proves nothing). When false, corrupt the granule touched by the
    /// triggering mutating access (plain data).
    pub target_cap: bool,
    /// Test-only weakening: leave the tag set on a corrupted capability
    /// granule instead of clearing it. Used by the fault campaign to prove
    /// its silent-success oracle actually detects escapes.
    pub preserve_tag: bool,
}

/// Injector state and counters for the physical-memory fault plane.
#[derive(Clone, Debug, Default)]
pub struct PhysFaults {
    spec: Option<PhysFaultSpec>,
    fired: bool,
    /// Granules whose bytes were corrupted by the injector and not yet
    /// rewritten, as `(frame, granule)` pairs.
    corrupt: HashSet<(u32, u16)>,
    /// Mutating accesses observed (write paths only; loads are free).
    pub mutations: u64,
    /// Bit-flips actually performed.
    pub flips: u64,
    /// Tags cleared because corruption hit a tagged granule (the CHERI
    /// capability-integrity semantics).
    pub tags_cleared: u64,
    /// Tags left set on a corrupted granule (test-only weakening).
    pub tags_preserved: u64,
    /// Capability loads that returned a still-tagged corrupted granule —
    /// every one of these is an escape of capability integrity.
    pub corrupt_cap_loads: u64,
}

impl PhysFaults {
    /// True once the armed flip has been performed.
    #[must_use]
    pub fn fired(&self) -> bool {
        self.fired
    }
}

/// Error returned when addressing an unallocated frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BadFrame(pub FrameId);

impl fmt::Display for BadFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "access to unallocated physical frame {:?}", self.0)
    }
}

impl std::error::Error for BadFrame {}

/// The machine's tagged physical memory.
///
/// ```
/// use cheri_mem::{PhysMem, PAddr};
/// use cheri_cap::{Capability, CapFormat, CapSource, PrincipalId};
///
/// let mut pm = PhysMem::new(16);
/// let f = pm.alloc_frame().unwrap();
/// let a = PAddr::new(f, 0);
/// let cap = Capability::root(CapFormat::C128, PrincipalId::KERNEL, CapSource::Boot);
/// pm.store_cap(a, cap);
/// assert_eq!(pm.load_cap(a).unwrap(), Some(cap));
/// // Overwriting any byte of the granule with data clears the tag.
/// pm.write_u8(PAddr::new(f, 3), 0xff).unwrap();
/// assert_eq!(pm.load_cap(a).unwrap(), None);
/// ```
pub struct PhysMem {
    frames: Vec<Option<Frame>>,
    free: Vec<FrameId>,
    allocated: usize,
    faults: PhysFaults,
}

impl fmt::Debug for PhysMem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PhysMem{{frames={}, allocated={}}}",
            self.frames.len(),
            self.allocated
        )
    }
}

impl PhysMem {
    /// Creates physical memory with capacity for `num_frames` frames.
    #[must_use]
    pub fn new(num_frames: usize) -> PhysMem {
        PhysMem {
            frames: (0..num_frames).map(|_| None).collect(),
            free: (0..num_frames as u32).rev().map(FrameId).collect(),
            allocated: 0,
            faults: PhysFaults::default(),
        }
    }

    /// Arms the fault injector; the flip fires on the scheduled mutating
    /// access (see [`PhysFaultSpec`]).
    pub fn arm_faults(&mut self, spec: PhysFaultSpec) {
        self.faults.spec = Some(spec);
        self.faults.fired = false;
    }

    /// Injector state and counters.
    #[must_use]
    pub fn faults(&self) -> &PhysFaults {
        &self.faults
    }

    /// Counts one mutating access and fires an armed *data* flip when due
    /// (capability flips fire on load instead, see [`PhysMem::note_cap_load`]).
    /// `addr` is the address of the access that advanced the counter.
    fn note_mutation(&mut self, addr: PAddr) {
        self.faults.mutations += 1;
        let Some(spec) = self.faults.spec else { return };
        if spec.target_cap || self.faults.fired || self.faults.mutations < spec.after_mutations {
            return;
        }
        let fid = addr.frame();
        let g = (addr.offset() / TAG_GRANULE) as usize % GRANULES_PER_FRAME;
        let Ok(f) = self.frame_mut(fid) else { return };
        let byte = g * TAG_GRANULE as usize + (spec.bit as usize / 8) % TAG_GRANULE as usize;
        f.data[byte] ^= 1 << (spec.bit % 8);
        if f.tag_bit(g) && !spec.preserve_tag {
            // CHERI semantics: any in-place change to a capability granule
            // that did not come from a capability store clears the tag; the
            // value degrades to untagged data and a later dereference traps.
            f.set_tag(g, false);
            f.caps.remove(&(g as u16));
            self.faults.tags_cleared += 1;
        }
        self.faults.fired = true;
        self.faults.flips += 1;
        self.faults.corrupt.insert((fid.0, g as u16));
    }

    /// Records a capability-width load at `addr`, firing a due capability
    /// flip on the granule being loaded: the corruption lands exactly on a
    /// value the machine is about to observe, so the normal semantics
    /// (clear the tag) must surface as an untagged load, and the weakened
    /// semantics (tag preserved) must surface as a counted escape. A load
    /// that observes a still-tagged corrupted granule is a
    /// capability-integrity escape; callers (the VM layer) invoke this on
    /// every capability load so the fault campaign's silent-success oracle
    /// can count them.
    pub fn note_cap_load(&mut self, addr: PAddr) {
        let fid = addr.frame();
        let g = (addr.offset() / TAG_GRANULE) as usize;
        if let Some(spec) = self.faults.spec {
            if spec.target_cap
                && !self.faults.fired
                && self.faults.mutations >= spec.after_mutations
            {
                if let Ok(f) = self.frame_mut(fid) {
                    if f.tag_bit(g) {
                        let byte = g * TAG_GRANULE as usize
                            + (spec.bit as usize / 8) % TAG_GRANULE as usize;
                        f.data[byte] ^= 1 << (spec.bit % 8);
                        if spec.preserve_tag {
                            // Weakened (test-only): the architectural tag
                            // survives even though the granule's bytes
                            // changed — capability integrity is now violated
                            // and the campaign oracle must notice.
                            self.faults.tags_preserved += 1;
                        } else {
                            f.set_tag(g, false);
                            f.caps.remove(&(g as u16));
                            self.faults.tags_cleared += 1;
                        }
                        self.faults.fired = true;
                        self.faults.flips += 1;
                        self.faults.corrupt.insert((fid.0, g as u16));
                    }
                }
            }
        }
        if self.faults.corrupt.is_empty() {
            return;
        }
        if self.faults.corrupt.contains(&(fid.0, g as u16))
            && self.frame(fid).is_ok_and(|f| f.tag_bit(g))
        {
            self.faults.corrupt_cap_loads += 1;
        }
    }

    /// Forgets corruption markings for granules `g0..=g1` of `frame` —
    /// called when those granules are legitimately rewritten.
    fn clear_corrupt_range(&mut self, frame: FrameId, g0: usize, g1: usize) {
        if self.faults.corrupt.is_empty() {
            return;
        }
        for g in g0..=g1 {
            self.faults.corrupt.remove(&(frame.0, g as u16));
        }
    }

    /// Number of frames currently allocated.
    #[must_use]
    pub fn allocated_frames(&self) -> usize {
        self.allocated
    }

    /// Number of frames still free.
    #[must_use]
    pub fn free_frames(&self) -> usize {
        self.free.len()
    }

    /// Allocates a zeroed frame, or `None` if physical memory is exhausted
    /// (the kernel's pageout path then kicks in).
    pub fn alloc_frame(&mut self) -> Option<FrameId> {
        let id = self.free.pop()?;
        self.frames[id.0 as usize] = Some(Frame::new());
        self.allocated += 1;
        Some(id)
    }

    /// Frees a frame, dropping its contents and tags.
    ///
    /// # Panics
    ///
    /// Panics if the frame was not allocated (double free).
    pub fn free_frame(&mut self, id: FrameId) {
        let slot = &mut self.frames[id.0 as usize];
        assert!(slot.is_some(), "double free of {id:?}");
        *slot = None;
        self.allocated -= 1;
        self.free.push(id);
        self.clear_corrupt_range(id, 0, GRANULES_PER_FRAME - 1);
    }

    fn frame(&self, id: FrameId) -> Result<&Frame, BadFrame> {
        self.frames
            .get(id.0 as usize)
            .and_then(|f| f.as_ref())
            .ok_or(BadFrame(id))
    }

    fn frame_mut(&mut self, id: FrameId) -> Result<&mut Frame, BadFrame> {
        self.frames
            .get_mut(id.0 as usize)
            .and_then(|f| f.as_mut())
            .ok_or(BadFrame(id))
    }

    /// Reads `buf.len()` bytes starting at `addr`; the range must not cross
    /// a frame boundary (the VM layer splits accesses at page granularity).
    ///
    /// # Errors
    ///
    /// Returns [`BadFrame`] if the frame is unallocated.
    ///
    /// # Panics
    ///
    /// Panics if the access crosses the end of the frame.
    pub fn read_bytes(&self, addr: PAddr, buf: &mut [u8]) -> Result<(), BadFrame> {
        let f = self.frame(addr.frame())?;
        let off = addr.offset() as usize;
        buf.copy_from_slice(&f.data[off..off + buf.len()]);
        Ok(())
    }

    /// Writes `buf` at `addr`, clearing the tags of every granule touched.
    ///
    /// # Errors
    ///
    /// Returns [`BadFrame`] if the frame is unallocated.
    ///
    /// # Panics
    ///
    /// Panics if the access crosses the end of the frame.
    pub fn write_bytes(&mut self, addr: PAddr, buf: &[u8]) -> Result<(), BadFrame> {
        let f = self.frame_mut(addr.frame())?;
        let off = addr.offset() as usize;
        f.data[off..off + buf.len()].copy_from_slice(buf);
        let g0 = off / TAG_GRANULE as usize;
        let g1 = (off + buf.len().max(1) - 1) / TAG_GRANULE as usize;
        for g in g0..=g1 {
            if f.tag_bit(g) {
                f.set_tag(g, false);
                f.caps.remove(&(g as u16));
            }
        }
        self.clear_corrupt_range(addr.frame(), g0, g1);
        self.note_mutation(addr);
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`BadFrame`] if the frame is unallocated.
    pub fn read_u8(&self, addr: PAddr) -> Result<u8, BadFrame> {
        let mut b = [0u8; 1];
        self.read_bytes(addr, &mut b)?;
        Ok(b[0])
    }

    /// Writes one byte (clears the granule's tag).
    ///
    /// # Errors
    ///
    /// Returns [`BadFrame`] if the frame is unallocated.
    pub fn write_u8(&mut self, addr: PAddr, v: u8) -> Result<(), BadFrame> {
        self.write_bytes(addr, &[v])
    }

    /// Reads a little-endian u64.
    ///
    /// # Errors
    ///
    /// Returns [`BadFrame`] if the frame is unallocated.
    pub fn read_u64(&self, addr: PAddr) -> Result<u64, BadFrame> {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian u64 (clears tags).
    ///
    /// # Errors
    ///
    /// Returns [`BadFrame`] if the frame is unallocated.
    pub fn write_u64(&mut self, addr: PAddr, v: u64) -> Result<(), BadFrame> {
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Stores a capability at `addr` (which must be granule-aligned),
    /// setting the tag iff `cap.tag()`. The address bytes are mirrored into
    /// the data array so subsequent *integer* reads observe the pointer's
    /// address, as on real CHERI.
    ///
    /// # Errors
    ///
    /// Returns [`BadFrame`] if the frame is unallocated.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not aligned to the capability size.
    pub fn store_cap(&mut self, addr: PAddr, cap: Capability) -> Result<(), BadFrame> {
        let size = cap.format().in_memory_size();
        assert_eq!(addr.0 % size, 0, "unaligned capability store");
        // Mirror the address (cursor) into the first 8 data bytes, then a
        // digest of the metadata; this also clears stale tags in the range.
        let mut bytes = vec![0u8; size as usize];
        bytes[..8].copy_from_slice(&cap.addr().to_le_bytes());
        bytes[8..16].copy_from_slice(&cap.base().to_le_bytes());
        self.write_bytes(addr, &bytes)?;
        if cap.tag() {
            let f = self.frame_mut(addr.frame())?;
            let off = addr.offset() as usize;
            for k in 0..(size / TAG_GRANULE) {
                let g = off / TAG_GRANULE as usize + k as usize;
                f.set_tag(g, k == 0);
            }
            f.caps.insert((off / TAG_GRANULE as usize) as u16, cap);
            // The store supersedes any injected corruption of these
            // granules: the caps-map entry is now authoritative.
            let g0 = off / TAG_GRANULE as usize;
            self.clear_corrupt_range(addr.frame(), g0, g0 + (size / TAG_GRANULE) as usize - 1);
        }
        Ok(())
    }

    /// Loads the capability stored at granule-aligned `addr`. Returns
    /// `Ok(None)` if the granule's tag is clear — the caller receives the
    /// raw bytes as an *untagged* value instead.
    ///
    /// # Errors
    ///
    /// Returns [`BadFrame`] if the frame is unallocated.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not granule-aligned.
    pub fn load_cap(&self, addr: PAddr) -> Result<Option<Capability>, BadFrame> {
        assert_eq!(addr.0 % TAG_GRANULE, 0, "unaligned capability load");
        let f = self.frame(addr.frame())?;
        let g = (addr.offset() / TAG_GRANULE) as usize;
        if f.tag_bit(g) {
            Ok(f.caps.get(&(g as u16)).copied())
        } else {
            Ok(None)
        }
    }

    /// Scans a frame for tagged capabilities: the swap-out path of §3
    /// ("The swap subsystem scans evicted pages, recording tags in the swap
    /// metadata"). Returns `(granule offset in bytes, capability)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`BadFrame`] if the frame is unallocated.
    pub fn scan_caps(&self, id: FrameId) -> Result<Vec<(u64, Capability)>, BadFrame> {
        let f = self.frame(id)?;
        let mut out: Vec<(u64, Capability)> = f
            .caps
            .iter()
            .map(|(g, c)| (u64::from(*g) * TAG_GRANULE, *c))
            .collect();
        out.sort_by_key(|(off, _)| *off);
        Ok(out)
    }

    /// Copies a whole frame's data *without* tags (e.g. DMA or a legacy
    /// copy); capability restoration must go through [`PhysMem::store_cap`].
    ///
    /// # Errors
    ///
    /// Returns [`BadFrame`] if the frame is unallocated.
    pub fn frame_data(&self, id: FrameId) -> Result<Vec<u8>, BadFrame> {
        Ok(self.frame(id)?.data.to_vec())
    }

    /// Replaces a frame's data, clearing all tags (swap-in starts untagged;
    /// rederivation follows).
    ///
    /// # Errors
    ///
    /// Returns [`BadFrame`] if the frame is unallocated.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one frame long.
    pub fn set_frame_data(&mut self, id: FrameId, data: &[u8]) -> Result<(), BadFrame> {
        assert_eq!(data.len() as u64, FRAME_SIZE);
        let f = self.frame_mut(id)?;
        f.data.copy_from_slice(data);
        f.tags = [0; GRANULES_PER_FRAME / 64];
        f.caps.clear();
        self.clear_corrupt_range(id, 0, GRANULES_PER_FRAME - 1);
        Ok(())
    }

    /// Copies frame `src` to frame `dst` including tags and capabilities —
    /// the kernel's capability-preserving page copy (fork / COW resolution).
    ///
    /// # Errors
    ///
    /// Returns [`BadFrame`] if either frame is unallocated.
    pub fn copy_frame_with_tags(&mut self, src: FrameId, dst: FrameId) -> Result<(), BadFrame> {
        let s = self.frame(src)?.clone();
        let d = self.frame_mut(dst)?;
        d.data.copy_from_slice(&s.data);
        d.tags = s.tags;
        d.caps = s.caps;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_cap::{CapFormat, CapSource, PrincipalId};

    fn cap() -> Capability {
        Capability::root(CapFormat::C128, PrincipalId::KERNEL, CapSource::Boot)
            .with_addr(0x1234_5678)
    }

    fn mem() -> (PhysMem, FrameId) {
        let mut pm = PhysMem::new(8);
        let f = pm.alloc_frame().unwrap();
        (pm, f)
    }

    #[test]
    fn frames_start_zeroed() {
        let (pm, f) = mem();
        assert_eq!(pm.read_u64(PAddr::new(f, 0)).unwrap(), 0);
        assert_eq!(pm.read_u64(PAddr::new(f, FRAME_SIZE - 8)).unwrap(), 0);
    }

    #[test]
    fn data_roundtrip() {
        let (mut pm, f) = mem();
        pm.write_u64(PAddr::new(f, 16), 0xdead_beef_cafe_f00d)
            .unwrap();
        assert_eq!(
            pm.read_u64(PAddr::new(f, 16)).unwrap(),
            0xdead_beef_cafe_f00d
        );
        pm.write_u8(PAddr::new(f, 16), 0xaa).unwrap();
        assert_eq!(pm.read_u8(PAddr::new(f, 16)).unwrap(), 0xaa);
    }

    #[test]
    fn cap_roundtrip_preserves_everything() {
        let (mut pm, f) = mem();
        let c = cap();
        pm.store_cap(PAddr::new(f, 32), c).unwrap();
        assert_eq!(pm.load_cap(PAddr::new(f, 32)).unwrap(), Some(c));
        // Integer view of the pointer sees the address.
        assert_eq!(pm.read_u64(PAddr::new(f, 32)).unwrap(), c.addr());
    }

    #[test]
    fn data_write_clears_tag_anywhere_in_granule() {
        for off in [0u64, 1, 7, 15] {
            let (mut pm, f) = mem();
            pm.store_cap(PAddr::new(f, 48), cap()).unwrap();
            pm.write_u8(PAddr::new(f, 48 + off), 0).unwrap();
            assert_eq!(pm.load_cap(PAddr::new(f, 48)).unwrap(), None, "off={off}");
        }
    }

    #[test]
    fn untagged_cap_store_leaves_tag_clear() {
        let (mut pm, f) = mem();
        pm.store_cap(PAddr::new(f, 0), cap().clear_tag()).unwrap();
        assert_eq!(pm.load_cap(PAddr::new(f, 0)).unwrap(), None);
        assert_eq!(pm.read_u64(PAddr::new(f, 0)).unwrap(), cap().addr());
    }

    #[test]
    fn scan_caps_finds_all() {
        let (mut pm, f) = mem();
        pm.store_cap(PAddr::new(f, 0), cap()).unwrap();
        pm.store_cap(PAddr::new(f, 256), cap().inc_addr(8)).unwrap();
        let found = pm.scan_caps(f).unwrap();
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].0, 0);
        assert_eq!(found[1].0, 256);
    }

    #[test]
    fn set_frame_data_strips_tags() {
        let (mut pm, f) = mem();
        pm.store_cap(PAddr::new(f, 0), cap()).unwrap();
        let data = pm.frame_data(f).unwrap();
        pm.set_frame_data(f, &data).unwrap();
        assert_eq!(pm.load_cap(PAddr::new(f, 0)).unwrap(), None);
        assert_eq!(pm.read_u64(PAddr::new(f, 0)).unwrap(), cap().addr());
    }

    #[test]
    fn copy_frame_with_tags_preserves_caps() {
        let mut pm = PhysMem::new(8);
        let a = pm.alloc_frame().unwrap();
        let b = pm.alloc_frame().unwrap();
        pm.store_cap(PAddr::new(a, 64), cap()).unwrap();
        pm.write_u64(PAddr::new(a, 8), 7).unwrap();
        pm.copy_frame_with_tags(a, b).unwrap();
        assert_eq!(pm.load_cap(PAddr::new(b, 64)).unwrap(), Some(cap()));
        assert_eq!(pm.read_u64(PAddr::new(b, 8)).unwrap(), 7);
    }

    #[test]
    fn alloc_free_cycle() {
        let mut pm = PhysMem::new(2);
        let a = pm.alloc_frame().unwrap();
        let b = pm.alloc_frame().unwrap();
        assert!(pm.alloc_frame().is_none());
        pm.free_frame(a);
        assert_eq!(pm.free_frames(), 1);
        let c = pm.alloc_frame().unwrap();
        assert_eq!(
            pm.read_u64(PAddr::new(c, 0)).unwrap(),
            0,
            "recycled frame zeroed"
        );
        let _ = b;
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut pm = PhysMem::new(2);
        let a = pm.alloc_frame().unwrap();
        pm.free_frame(a);
        pm.free_frame(a);
    }

    #[test]
    fn unallocated_frame_errors() {
        let pm = PhysMem::new(2);
        assert!(pm.read_u8(PAddr::new(FrameId(1), 0)).is_err());
    }

    #[test]
    fn injected_flip_on_data_corrupts_only_bytes() {
        let (mut pm, f) = mem();
        pm.arm_faults(PhysFaultSpec {
            after_mutations: 2,
            bit: 0,
            target_cap: false,
            preserve_tag: false,
        });
        pm.write_u64(PAddr::new(f, 0), 0).unwrap();
        pm.write_u64(PAddr::new(f, 64), 0).unwrap(); // trigger
        assert_eq!(pm.faults().flips, 1);
        assert_eq!(pm.faults().tags_cleared, 0);
        assert_eq!(pm.read_u8(PAddr::new(f, 64)).unwrap(), 1, "bit 0 flipped");
    }

    #[test]
    fn injected_flip_on_cap_granule_clears_tag() {
        let (mut pm, f) = mem();
        pm.store_cap(PAddr::new(f, 32), cap()).unwrap();
        pm.arm_faults(PhysFaultSpec {
            after_mutations: 1,
            bit: 9,
            target_cap: true,
            preserve_tag: false,
        });
        pm.write_u8(PAddr::new(f, 512), 0).unwrap(); // now due
        assert_eq!(pm.faults().flips, 0, "cap flips wait for a load");
        pm.note_cap_load(PAddr::new(f, 32)); // trigger: the loaded granule
        assert_eq!(pm.faults().flips, 1);
        assert_eq!(pm.faults().tags_cleared, 1);
        assert_eq!(
            pm.load_cap(PAddr::new(f, 32)).unwrap(),
            None,
            "corrupted capability must load untagged"
        );
        pm.note_cap_load(PAddr::new(f, 32));
        assert_eq!(pm.faults().corrupt_cap_loads, 0, "no escape: tag cleared");
    }

    #[test]
    fn weakened_tag_clear_is_a_detectable_escape() {
        let (mut pm, f) = mem();
        pm.store_cap(PAddr::new(f, 32), cap()).unwrap();
        pm.arm_faults(PhysFaultSpec {
            after_mutations: 1,
            bit: 3,
            target_cap: true,
            preserve_tag: true,
        });
        pm.write_u8(PAddr::new(f, 512), 0).unwrap(); // now due
        pm.note_cap_load(PAddr::new(f, 32)); // trigger: flips *and* escapes
        assert_eq!(pm.faults().tags_preserved, 1);
        assert_eq!(
            pm.load_cap(PAddr::new(f, 32)).unwrap(),
            Some(cap()),
            "weakened clear leaves the tagged value live"
        );
        assert_eq!(pm.faults().corrupt_cap_loads, 1, "escape counted");
        pm.note_cap_load(PAddr::new(f, 32));
        assert_eq!(pm.faults().corrupt_cap_loads, 2, "every load counts");
    }

    #[test]
    fn cap_flip_waits_for_a_tagged_load() {
        let (mut pm, f) = mem();
        pm.arm_faults(PhysFaultSpec {
            after_mutations: 1,
            bit: 0,
            target_cap: true,
            preserve_tag: false,
        });
        pm.write_u8(PAddr::new(f, 0), 7).unwrap(); // due, but no caps yet
        pm.note_cap_load(PAddr::new(f, 64)); // untagged load: no victim
        assert_eq!(pm.faults().flips, 0);
        pm.store_cap(PAddr::new(f, 64), cap()).unwrap();
        pm.note_cap_load(PAddr::new(f, 64));
        assert_eq!(pm.faults().flips, 1);
        assert_eq!(pm.faults().tags_cleared, 1);
    }

    #[test]
    fn rewriting_a_corrupted_granule_clears_the_marking() {
        let (mut pm, f) = mem();
        pm.arm_faults(PhysFaultSpec {
            after_mutations: 1,
            bit: 0,
            target_cap: false,
            preserve_tag: false,
        });
        pm.write_u8(PAddr::new(f, 0), 7).unwrap(); // trigger: granule 0
        assert_eq!(pm.faults().flips, 1);
        pm.store_cap(PAddr::new(f, 0), cap()).unwrap();
        pm.note_cap_load(PAddr::new(f, 0));
        assert_eq!(
            pm.faults().corrupt_cap_loads,
            0,
            "legitimate store supersedes the corruption"
        );
    }
}
