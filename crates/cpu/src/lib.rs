//! # cheri-cpu — the simulated CHERI-MIPS core
//!
//! Executes guest code against a [`cheri_vm::Vm`], enforcing the capability
//! semantics of §2 on **every** access:
//!
//! * instruction fetch is checked against **PCC** (bounds + `EXECUTE`);
//! * legacy loads/stores/jumps are checked against **DDC** — CheriABI
//!   processes run with a NULL DDC, so every legacy access traps;
//! * capability loads/stores check tag, seal, permission and bounds, and
//!   tagged loads/stores honour `LOAD_CAP`/`STORE_CAP`/`STORE_LOCAL_CAP`;
//! * capability-manipulation instructions delegate to the monotonic algebra
//!   of [`cheri_cap::Capability`], so widening is impossible by
//!   construction.
//!
//! The core models the paper's FPGA pipeline: in-order, single-issue, one
//! instruction per cycle plus multi-cycle multiply/divide, with stalls from
//! the [`cheri_mem::CacheHierarchy`]. Retired instructions, cycles and cache
//! statistics feed Figure 4; an optional [`DerivationTrace`] records every
//! bounds-creating event with its [`cheri_cap::CapSource`] for the Figure 5
//! reconstruction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[allow(clippy::module_inception)]
mod cpu;
mod ops;
mod oracle;
mod region;
mod template;
mod trace;

pub use cheri_sem::RegFile;
pub use cpu::{Cpu, CpuStats, Exit, TrapCause, TrapInfo};
pub use oracle::Divergence;
pub use region::DecodedRegion;
pub use trace::DerivationTrace;
