//! Criterion benches for the DESIGN.md ablations. Wall time here is host
//! simulation time, which is proportional to guest work; the guest-cycle
//! numbers (the paper's metric) come from the `table*`/`fig*`/`*_macro`
//! binaries. These benches exist to track the *relative* cost of the design
//! choices and to keep the whole pipeline exercised under `cargo bench`.

use cheri_bench::measure;
use cheri_corpus::minidb::build_initdb;
use cheri_isa::codegen::CodegenOpts;
use cheri_kernel::{AbiMode, KernelConfig, SpawnOpts};
use cheriabi::System;
use criterion::{criterion_group, criterion_main, Criterion};

/// D2 ablation: CLC immediate reach (plus the mips64 baseline and the asan
/// software baseline) on the initdb macro-benchmark.
fn bench_initdb_configs(c: &mut Criterion) {
    let mut g = c.benchmark_group("initdb");
    g.sample_size(10);
    for (name, opts, abi, asan) in [
        ("mips64", CodegenOpts::mips64(), AbiMode::Mips64, false),
        ("cheriabi", CodegenOpts::purecap(), AbiMode::CheriAbi, false),
        (
            "cheriabi-smallclc",
            CodegenOpts::purecap_small_clc(),
            AbiMode::CheriAbi,
            false,
        ),
        (
            "mips64-asan",
            CodegenOpts::mips64_asan(),
            AbiMode::Mips64,
            true,
        ),
    ] {
        let program = build_initdb(opts, 120);
        g.bench_function(name, |b| {
            b.iter(|| measure(&program, abi, asan));
        });
    }
    g.finish();
}

/// D1 ablation: 128-bit compressed vs 256-bit exact capabilities on a
/// pointer-heavy workload (the wider format doubles pointer footprint
/// again).
fn bench_cap_format(c: &mut Criterion) {
    let mut g = c.benchmark_group("capfmt-xalancbmk");
    g.sample_size(10);
    let w = cheri_workloads::all()
        .into_iter()
        .find(|w| w.name == "spec2006-xalancbmk")
        .expect("workload registered");
    for (name, opts, fmt) in [
        ("c128", CodegenOpts::purecap(), cheriabi::CapFormat::C128),
        (
            "c256",
            CodegenOpts::purecap_c256(),
            cheriabi::CapFormat::C256,
        ),
    ] {
        let program = (w.build)(opts, 7);
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut sys = System::with_config(KernelConfig {
                    cap_fmt: fmt,
                    ..KernelConfig::default()
                });
                let mut sopts = SpawnOpts::new(AbiMode::CheriAbi);
                sopts.instr_budget = Some(2_000_000_000);
                sys.measure(&program, &sopts).expect("loads")
            });
        });
    }
    g.finish();
}

/// Table 3 sampling: one representative BOdiagsuite case under all three
/// detector configurations.
fn bench_bodiag_detectors(c: &mut Criterion) {
    use bodiagsuite::{AccessDir, CaseCfg, Config, Idiom, Region, Variant};
    let cfg = CaseCfg {
        id: 0,
        region: Region::Heap,
        access: AccessDir::Write,
        idiom: Idiom::LoopInduction,
        len: 64,
    };
    let mut g = c.benchmark_group("bodiag-detectors");
    g.sample_size(10);
    for config in Config::ALL {
        g.bench_function(config.label(), |b| {
            b.iter(|| bodiagsuite::run_one(&cfg, Variant::Min, config));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_initdb_configs,
    bench_cap_format,
    bench_bodiag_detectors
);
criterion_main!(benches);
