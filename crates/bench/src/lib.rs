//! # cheri-bench — the evaluation harness (paper §5)
//!
//! One binary per table/figure of the paper's evaluation:
//!
//! | target | reproduces |
//! |---|---|
//! | `table1` | Table 1 — test-suite results under both ABIs |
//! | `table2` | Table 2 — taxonomy of CheriABI source changes |
//! | `table3` | Table 3 — BOdiagsuite detection counts |
//! | `fig4` | Figure 4 — benchmark overheads (instructions, cycles, L2 misses) |
//! | `syscall_micro` | §5.2 — system-call timing deltas |
//! | `initdb_macro` | §5.2 — initdb macro-benchmark + CLC immediate ablation |
//! | `fig5` | Figure 5 — capability-size CDF from the tlsish trace |
//!
//! plus Criterion benches (`cargo bench -p cheri-bench`) for the DESIGN.md
//! ablations (capability format, CLC immediates, sanitizer cost).
//!
//! Shared measurement plumbing lives here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

use cheri_isa::codegen::{CodegenOpts, FnBuilder, Ptr, Val};
use cheri_kernel::{AbiMode, ExitStatus, KernelConfig, SpawnOpts, Sys};
use cheri_rtld::{Program, ProgramBuilder};
use cheriabi::guest::GuestOps;
use cheriabi::spec::{ProgramSpec, Registry};
use cheriabi::{Metrics, System};

/// This crate's entry in the program registry: lowers
/// [`ProgramSpec::Micro`] (the §5.2 syscall micro-benchmarks, by kind).
///
/// # Panics
///
/// Panics when the spec names a kind [`micro_benchmarks`] does not define
/// — inside a harness worker this is confined to the case's report.
#[must_use]
pub fn lower(spec: &ProgramSpec, opts: CodegenOpts, _seed: u64) -> Option<Program> {
    let ProgramSpec::Micro { kind, iters } = spec else {
        return None;
    };
    let (_, build, _) = micro_benchmarks()
        .into_iter()
        .find(|(name, _, _)| name == kind)
        .unwrap_or_else(|| panic!("no syscall micro-benchmark named `{kind}`"));
    Some(build(opts, *iters))
}

/// The full program registry: every guest program any table or figure
/// binary names — corpus suites and minidb (`cheri-corpus`), BOdiagsuite
/// cases (`bodiagsuite`), Figure 4/5 workloads (`cheri-workloads`) and the
/// syscall micros (this crate).
#[must_use]
pub fn registry() -> Registry {
    Registry::builtin()
        .with(cheri_corpus::suite::lower)
        .with(bodiagsuite::lower)
        .with(cheri_workloads::lower)
        .with(lower)
}

/// A single measured run of `program` under `abi`.
///
/// # Panics
///
/// Panics if the program fails to load or does not exit cleanly — harness
/// programs are expected to be correct.
#[must_use]
pub fn measure(program: &Program, abi: AbiMode, asan: bool) -> (ExitStatus, Metrics) {
    let mut sys = System::with_config(KernelConfig::default());
    let mut opts = SpawnOpts::new(abi);
    opts.asan = asan;
    opts.instr_budget = Some(2_000_000_000);
    let (status, _console, metrics) = sys.measure(program, &opts).expect("program loads");
    assert!(
        matches!(status, ExitStatus::Code(_)),
        "harness program stopped abnormally: {status:?}"
    );
    (status, metrics)
}

/// The four §5.2 configurations.
#[must_use]
pub fn configurations() -> Vec<(&'static str, CodegenOpts, AbiMode, bool)> {
    vec![
        ("mips64", CodegenOpts::mips64(), AbiMode::Mips64, false),
        ("cheriabi", CodegenOpts::purecap(), AbiMode::CheriAbi, false),
        (
            "cheriabi-smallclc",
            CodegenOpts::purecap_small_clc(),
            AbiMode::CheriAbi,
            false,
        ),
        (
            "mips64-asan",
            CodegenOpts::mips64_asan(),
            AbiMode::Mips64,
            true,
        ),
    ]
}

/// Median of a sorted-or-not sample.
#[must_use]
pub fn median(xs: &mut [f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Interquartile range of a sample (sorts in place).
#[must_use]
pub fn iqr(xs: &mut [f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let q = |p: f64| -> f64 {
        let idx = p * (xs.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        xs[lo] + (xs[hi] - xs[lo]) * (idx - lo as f64)
    };
    q(0.75) - q(0.25)
}

// ---------------------------------------------------------------------
// Syscall micro-benchmark guest programs (§5.2)
// ---------------------------------------------------------------------

fn micro_program(name: &str, opts: CodegenOpts, body: impl FnOnce(&mut FnBuilder<'_>)) -> Program {
    let mut pb = ProgramBuilder::new(name);
    let mut exe = pb.object(name);
    {
        let mut f = FnBuilder::begin(&mut exe, "main", opts);
        body(&mut f);
    }
    exe.set_entry("main");
    pb.add(exe.finish());
    pb.finish()
}

/// `getpid` in a tight loop (the null-syscall baseline).
#[must_use]
pub fn micro_getpid(opts: CodegenOpts, iters: i64) -> Program {
    micro_program("micro-getpid", opts, move |f| {
        f.li(Val(0), 0);
        let top = f.label();
        let done = f.label();
        f.bind(top);
        f.li(Val(1), iters);
        f.sub(Val(1), Val(0), Val(1));
        f.beqz(Val(1), done);
        f.syscall(Sys::Getpid as i64);
        f.add_imm(Val(0), Val(0), 1);
        f.jmp(top);
        f.bind(done);
        f.sys_exit_imm(0);
    })
}

/// `write`+`read` of 64 bytes over a pipe per iteration.
#[must_use]
pub fn micro_pipe_rw(opts: CodegenOpts, iters: i64) -> Program {
    micro_program("micro-pipe", opts, move |f| {
        f.enter(224);
        f.addr_of_stack(Ptr(0), 16, 8);
        f.set_arg_ptr(0, Ptr(0));
        f.syscall(Sys::Pipe as i64);
        f.load(Val(6), Ptr(0), 0, cheri_isa::Width::W, false);
        f.load(Val(5), Ptr(0), 4, cheri_isa::Width::W, false);
        f.addr_of_stack(Ptr(1), 32, 64);
        f.addr_of_stack(Ptr(2), 104, 64);
        f.li(Val(0), 0);
        let top = f.label();
        let done = f.label();
        f.bind(top);
        f.li(Val(1), iters);
        f.sub(Val(1), Val(0), Val(1));
        f.beqz(Val(1), done);
        f.set_arg_val(0, Val(5));
        f.set_arg_ptr(1, Ptr(1));
        f.li(Val(2), 64);
        f.set_arg_val(2, Val(2));
        f.syscall(Sys::Write as i64);
        f.set_arg_val(0, Val(6));
        f.set_arg_ptr(1, Ptr(2));
        f.li(Val(2), 64);
        f.set_arg_val(2, Val(2));
        f.syscall(Sys::Read as i64);
        f.add_imm(Val(0), Val(0), 1);
        f.jmp(top);
        f.bind(done);
        f.sys_exit_imm(0);
    })
}

/// `select` with all four pointer arguments populated (the paper's
/// "capabilities from four pointer arguments" case).
#[must_use]
pub fn micro_select(opts: CodegenOpts, iters: i64) -> Program {
    micro_program("micro-select", opts, move |f| {
        f.enter(224);
        // ready pipe
        f.addr_of_stack(Ptr(0), 16, 8);
        f.set_arg_ptr(0, Ptr(0));
        f.syscall(Sys::Pipe as i64);
        f.load(Val(6), Ptr(0), 0, cheri_isa::Width::W, false);
        f.load(Val(5), Ptr(0), 4, cheri_isa::Width::W, false);
        f.addr_of_stack(Ptr(1), 32, 8);
        f.li(Val(0), 1);
        f.store(Val(0), Ptr(1), 0, cheri_isa::Width::B);
        f.set_arg_val(0, Val(5));
        f.set_arg_ptr(1, Ptr(1));
        f.li(Val(1), 1);
        f.set_arg_val(2, Val(1));
        f.syscall(Sys::Write as i64);
        // fd sets + timeout
        f.addr_of_stack(Ptr(1), 48, 8); // readfds
        f.addr_of_stack(Ptr(2), 64, 8); // writefds
        f.addr_of_stack(Ptr(3), 80, 8); // exceptfds
        f.addr_of_stack(Ptr(4), 96, 8); // timeout (0 = poll)
        f.li(Val(0), 0);
        let top = f.label();
        let done = f.label();
        f.bind(top);
        f.li(Val(1), iters);
        f.sub(Val(1), Val(0), Val(1));
        f.beqz(Val(1), done);
        // readfds = 1 << rfd; writefds = 1 << wfd; exceptfds = 0
        f.li(Val(1), 1);
        f.shl(Val(1), Val(1), Val(6));
        f.store(Val(1), Ptr(1), 0, cheri_isa::Width::D);
        f.li(Val(1), 1);
        f.shl(Val(1), Val(1), Val(5));
        f.store(Val(1), Ptr(2), 0, cheri_isa::Width::D);
        f.li(Val(1), 0);
        f.store(Val(1), Ptr(3), 0, cheri_isa::Width::D);
        f.store(Val(1), Ptr(4), 0, cheri_isa::Width::D);
        f.li(Val(1), 64);
        f.set_arg_val(0, Val(1));
        f.set_arg_ptr(1, Ptr(1));
        f.set_arg_ptr(2, Ptr(2));
        f.set_arg_ptr(3, Ptr(3));
        f.set_arg_ptr(4, Ptr(4));
        f.syscall(Sys::Select as i64);
        f.add_imm(Val(0), Val(0), 1);
        f.jmp(top);
        f.bind(done);
        f.sys_exit_imm(0);
    })
}

/// `fork` + child exit + `waitpid` per iteration.
#[must_use]
pub fn micro_fork(opts: CodegenOpts, iters: i64) -> Program {
    micro_program("micro-fork", opts, move |f| {
        f.li(Val(6), 0);
        let top = f.label();
        let done = f.label();
        f.bind(top);
        f.li(Val(1), iters);
        f.sub(Val(1), Val(6), Val(1));
        f.beqz(Val(1), done);
        f.syscall(Sys::Fork as i64);
        f.ret_val_to(Val(0));
        let parent = f.label();
        f.bnez(Val(0), parent);
        f.sys_exit_imm(0); // child
        f.bind(parent);
        f.li(Val(1), 0);
        f.set_arg_val(0, Val(1));
        f.syscall(Sys::Waitpid as i64);
        f.add_imm(Val(6), Val(6), 1);
        f.jmp(top);
        f.bind(done);
        f.sys_exit_imm(0);
    })
}

/// One syscall micro-benchmark: name, program builder, iteration count.
pub type MicroBench = (&'static str, fn(CodegenOpts, i64) -> Program, i64);

/// The syscall micro-benchmarks by name.
#[must_use]
pub fn micro_benchmarks() -> Vec<MicroBench> {
    vec![
        (
            "getpid",
            micro_getpid as fn(CodegenOpts, i64) -> Program,
            400,
        ),
        ("pipe_rw", micro_pipe_rw, 200),
        ("select", micro_select, 200),
        ("fork", micro_fork, 40),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_benchmarks_run_on_both_abis() {
        for (name, build, _) in micro_benchmarks() {
            for (cname, opts, abi, asan) in configurations().into_iter().take(2) {
                let program = build(opts, 5);
                let (status, m) = measure(&program, abi, asan);
                assert_eq!(status, ExitStatus::Code(0), "{name}/{cname}");
                assert!(m.syscalls >= 5, "{name}/{cname}: {m:?}");
            }
        }
    }

    /// The combined registry lowers one program of every family a binary
    /// can name.
    #[test]
    fn registry_covers_every_program_family() {
        use bodiagsuite::{program_spec, CaseCfg};
        let r = registry();
        let corpus_case = cheri_corpus::families::freebsd_suite()[0].name.clone();
        let bodiag = program_spec(
            &CaseCfg {
                id: 0,
                region: bodiagsuite::Region::Heap,
                access: bodiagsuite::AccessDir::Write,
                idiom: bodiagsuite::Idiom::DirectOffset,
                len: 16,
            },
            bodiagsuite::Variant::Min,
        );
        for spec in [
            ProgramSpec::Exit { code: 3 },
            ProgramSpec::Corpus { case: corpus_case },
            bodiag,
            ProgramSpec::Workload {
                name: "auto-qsort".to_string(),
            },
            ProgramSpec::Tlsish { sessions: 2 },
            ProgramSpec::Initdb { records: 12 },
            ProgramSpec::InitdbDynamic { base_records: 12 },
            ProgramSpec::Micro {
                kind: "getpid".to_string(),
                iters: 3,
            },
        ] {
            let program = r.lower(&spec, CodegenOpts::mips64(), 7);
            assert!(
                !program.objects.is_empty(),
                "{spec:?} lowered to an empty program"
            );
        }
    }

    #[test]
    fn stats_helpers() {
        let mut xs = [3.0, 1.0, 2.0];
        assert_eq!(median(&mut xs), 2.0);
        let mut ys = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(median(&mut ys), 2.5);
        assert!(iqr(&mut ys) > 0.0);
    }
}
