//! # cheri-workloads — MiBench/SPEC-style guest benchmarks (Figures 4 & 5)
//!
//! The paper evaluates pure-capability compilation on MiBench ("commercially
//! representative embedded programs", each "a tight inner loop" spending
//! "very little time in the kernel") and a subset of SPEC CPU2006, plus the
//! PostgreSQL `initdb` macro-benchmark (Figure 4). This crate implements
//! guest-code workloads with the same character:
//!
//! * compute-bound kernels (`security-sha`, `auto-basicmath`,
//!   `telco-adpcm-*`, `office-stringsearch`) where the two ABIs execute
//!   nearly identical instruction streams — the paper's "well within the
//!   noise level" population;
//! * pointer-intensive kernels (`auto-qsort`, `network-patricia`,
//!   `spec2006-astar`, `spec2006-xalancbmk`) where CheriABI's 16-byte
//!   pointers double the pointer footprint and bounds-setting adds
//!   instructions — the population with visible cycle and L2-miss
//!   overheads;
//! * `tlsish`, the openssl-`s_server` stand-in traced for the Figure 5
//!   abstract-capability reconstruction: dynamically linked, allocation-
//!   heavy, uses TLS, stack buffers and system calls.
//!
//! Every workload is deterministic for a given seed and exits with a
//! checksum, so the harness verifies that both ABIs compute identical
//! results before comparing their costs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kernels;
mod pointer;
pub mod tlsish;
pub mod trials;

use cheri_isa::codegen::{CodegenOpts, FnBuilder};
use cheri_rtld::{Program, ProgramBuilder};

/// A named benchmark.
#[derive(Clone, Copy)]
pub struct Workload {
    /// Display name (matching the Figure 4 x-axis labels).
    pub name: &'static str,
    /// Builds the guest program for a configuration and input seed.
    pub build: fn(CodegenOpts, u64) -> Program,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Workload({})", self.name)
    }
}

/// Builds a single-object program named `name` whose `main` is `body`.
pub(crate) fn single(
    name: &str,
    opts: CodegenOpts,
    body: impl FnOnce(&mut FnBuilder<'_>),
) -> Program {
    let mut pb = ProgramBuilder::new(name);
    let mut exe = pb.object(name);
    {
        let mut f = FnBuilder::begin(&mut exe, "main", opts);
        body(&mut f);
    }
    exe.set_entry("main");
    pb.add(exe.finish());
    pb.finish()
}

/// The MiBench-like set of Figure 4.
#[must_use]
pub fn mibench() -> Vec<Workload> {
    vec![
        Workload {
            name: "security-sha",
            build: kernels::sha,
        },
        Workload {
            name: "office-stringsearch",
            build: kernels::stringsearch,
        },
        Workload {
            name: "auto-qsort",
            build: pointer::qsort,
        },
        Workload {
            name: "auto-basicmath",
            build: kernels::basicmath,
        },
        Workload {
            name: "network-dijkstra",
            build: pointer::dijkstra,
        },
        Workload {
            name: "network-patricia",
            build: pointer::patricia,
        },
        Workload {
            name: "telco-adpcm-enc",
            build: kernels::adpcm_enc,
        },
        Workload {
            name: "telco-adpcm-dec",
            build: kernels::adpcm_dec,
        },
    ]
}

/// The SPEC-CPU2006-like set of Figure 4.
#[must_use]
pub fn spec() -> Vec<Workload> {
    vec![
        Workload {
            name: "spec2006-gobmk",
            build: kernels::gobmk,
        },
        Workload {
            name: "spec2006-libquantum",
            build: kernels::libquantum,
        },
        Workload {
            name: "spec2006-astar",
            build: pointer::astar,
        },
        Workload {
            name: "spec2006-xalancbmk",
            build: pointer::xalancbmk,
        },
    ]
}

/// All Figure 4 workloads except `initdb-dynamic` (which lives in
/// `cheri-corpus::minidb` and is appended by the benchmark harness).
#[must_use]
pub fn all() -> Vec<Workload> {
    let mut v = mibench();
    v.extend(spec());
    v
}

/// This crate's entry in the program registry: lowers
/// [`cheriabi::spec::ProgramSpec::Workload`] (by Figure 4 name) and
/// [`cheriabi::spec::ProgramSpec::Tlsish`].
///
/// # Panics
///
/// Panics when a `Workload` spec names a workload [`all`] does not define
/// — inside a harness worker this is confined to the case's report.
#[must_use]
pub fn lower(spec: &cheriabi::spec::ProgramSpec, opts: CodegenOpts, seed: u64) -> Option<Program> {
    use cheriabi::spec::ProgramSpec;
    match spec {
        ProgramSpec::Workload { name } => {
            let w = all()
                .into_iter()
                .find(|w| w.name == name)
                .unwrap_or_else(|| panic!("no workload named `{name}`"));
            Some((w.build)(opts, seed))
        }
        ProgramSpec::Tlsish { sessions } => Some(tlsish::build(opts, *sessions)),
        _ => None,
    }
}

/// A registry sufficient for everything this crate lowers.
#[must_use]
pub fn registry() -> cheriabi::spec::Registry {
    cheriabi::spec::Registry::builtin().with(lower)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_kernel::{AbiMode, ExitStatus, Kernel, KernelConfig, SpawnOpts};

    fn run(w: &Workload, opts: CodegenOpts, abi: AbiMode, seed: u64) -> (ExitStatus, u64) {
        let program = (w.build)(opts, seed);
        let mut k = Kernel::new(KernelConfig::default());
        let mut sopts = SpawnOpts::new(abi);
        sopts.instr_budget = Some(100_000_000);
        let (status, _) = k.run_program(&program, &sopts).expect("load");
        (status, k.cpu.stats.instret)
    }

    /// Every workload terminates with the *same* checksum under both ABIs
    /// (correctness parity), and runs long enough to be a meaningful
    /// benchmark.
    #[test]
    fn workloads_are_abi_deterministic() {
        for w in all() {
            let (m, mi) = run(&w, CodegenOpts::mips64(), AbiMode::Mips64, 7);
            let (c, _) = run(&w, CodegenOpts::purecap(), AbiMode::CheriAbi, 7);
            assert!(
                matches!(m, ExitStatus::Code(_)),
                "{}: mips64 exited {m:?}",
                w.name
            );
            assert_eq!(m, c, "{}: ABI-dependent result", w.name);
            assert!(mi > 50_000, "{}: only {mi} instructions", w.name);
        }
    }

    /// Different seeds give different checksums (the workloads actually
    /// depend on their input).
    #[test]
    fn workloads_depend_on_seed() {
        let mut distinct = 0;
        for w in all() {
            let (a, _) = run(&w, CodegenOpts::mips64(), AbiMode::Mips64, 1);
            let (b, _) = run(&w, CodegenOpts::mips64(), AbiMode::Mips64, 2);
            if a != b {
                distinct += 1;
            }
        }
        assert!(distinct >= 6, "only {distinct} workloads vary with seed");
    }

    /// Workloads also run under the ASan build (Table 3 baseline config).
    #[test]
    fn workloads_run_under_asan() {
        for w in [&mibench()[0], &mibench()[2]] {
            let program = (w.build)(CodegenOpts::mips64_asan(), 7);
            let mut k = Kernel::new(KernelConfig::default());
            let mut sopts = SpawnOpts::new(AbiMode::Mips64);
            sopts.asan = true;
            sopts.instr_budget = Some(300_000_000);
            let (status, _) = k.run_program(&program, &sopts).expect("load");
            assert!(
                matches!(status, ExitStatus::Code(_)),
                "{}: {status:?}",
                w.name
            );
        }
    }
}
