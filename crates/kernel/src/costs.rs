//! Cycle-cost constants for kernel work.
//!
//! The simulator cannot execute the real CheriBSD kernel, so kernel-side
//! work is charged as calibrated cycle costs. The *differences* between the
//! legacy and CheriABI paths encode the paper's §5.2 findings:
//!
//! * every pointer argument of a legacy syscall costs
//!   [`LEGACY_PTR_ARG`] cycles — the kernel must *construct* a capability
//!   from the integer address before it can access user memory ("we believe
//!   the latter is due to the cost of creating capabilities from four
//!   pointer arguments in the CHERI kernel", explaining why `select` got
//!   9.8% **faster** under CheriABI);
//! * a CheriABI pointer argument costs only [`CHERIABI_PTR_ARG`] cycles of
//!   validation — the capability arrives ready to use;
//! * `fork` pays a CheriABI surcharge ([`FORK_CHERI_EXTRA`] plus a
//!   per-page term) for capability-aware page bookkeeping, reproducing the
//!   3.4% slowdown reported for `fork`.
//!
//! EXPERIMENTS.md records how the resulting micro-benchmark deltas compare
//! with the paper's.

/// Fixed syscall entry/exit cost (trap, register save/restore), both ABIs.
pub const SYSCALL_BASE: u64 = 120;

/// Cost to build + validate a kernel capability from a legacy integer
/// pointer argument.
pub const LEGACY_PTR_ARG: u64 = 40;

/// Cost to validate a user-supplied capability argument.
pub const CHERIABI_PTR_ARG: u64 = 8;

/// Per-8-bytes cost of copyin/copyout.
pub const COPY_PER_8B: u64 = 1;

/// Fixed fork cost (process table, credentials, fd table).
pub const FORK_BASE: u64 = 4000;

/// Per-resident-page fork cost (COW marking).
pub const FORK_PER_PAGE: u64 = 15;

/// Additional fixed CheriABI fork cost (capability register context,
/// tag-aware VM bookkeeping).
pub const FORK_CHERI_EXTRA: u64 = 175;

/// Additional per-page CheriABI fork cost.
pub const FORK_CHERI_PER_PAGE: u64 = 1;

/// Fixed select cost (fd scanning infrastructure).
pub const SELECT_BASE: u64 = 600;

/// Per-fd-set word processing cost.
pub const SELECT_PER_SET: u64 = 30;

/// Context-switch cost (register file save/restore incl. capabilities,
/// TLB maintenance).
pub const CONTEXT_SWITCH: u64 = 400;

/// Signal-delivery cost on top of the frame stores.
pub const SIGNAL_DELIVERY: u64 = 800;

/// Page-fault service cost (charged per demand fault observed).
pub const PAGE_FAULT: u64 = 900;

/// Swap-out/in per page (device modelled as fast NVMe-ish).
pub const SWAP_PER_PAGE: u64 = 4000;
