#!/bin/sh
# CI gate: formatting, lints, and the tier-1 build + test pass.
#
# Run from the repository root. Fails fast on the first broken stage so the
# log points straight at the offending gate.
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "CI: all gates passed"
