//! The unified parallel execution harness.
//!
//! Every experiment in this reproduction — Table 1's corpus cases, Table 3's
//! case × variant × config matrix, Figure 4's multi-trial workload sweeps,
//! the syscall micro-benchmarks, the cache-size sweep — boils down to the
//! same operation: *build a guest program, run it in a fresh [`System`],
//! record what happened*. Each case runs in its own isolated kernel with no
//! shared mutable state, so the whole battery is embarrassingly parallel.
//!
//! This module factors that operation out once:
//!
//! * [`RunSpec`] — one case, as **plain data**: a declarative
//!   [`ProgramSpec`] naming the guest program plus the ABI, codegen
//!   options, instruction budget, wall-clock deadline, deterministic seed
//!   and (optionally) a kernel/cache configuration override. Because a
//!   spec is `Hash + Eq` and round-trips through JSON, it can be
//!   content-addressed ([`crate::cache`]) and shipped to another machine
//!   ([`Shard`]);
//! * [`CaseReport`] — what happened: the outcome (exit status, load error,
//!   isolated panic, or missed deadline), the performance counters of the
//!   run, and wall time;
//! * [`Harness`] — the executor: fans a slice of specs across a
//!   `std::thread` worker pool sharing one atomic work index, then
//!   reassembles the reports **in submission order**, so every aggregate
//!   computed from them is bit-identical to a sequential run.
//!   [`Harness::run_session`] additionally supports report caching, shard
//!   filtering, progress reporting and streaming callbacks.
//!
//! Determinism contract: a [`RunSpec`] fully determines its
//! [`CaseReport`] (minus wall time) because each case gets a fresh
//! `Kernel`. `Harness::new(1)` and `Harness::new(n)` therefore return
//! reports that differ only in `wall`, which no aggregation consumes.
//! Sharding preserves the contract: a shard executes the subset of
//! submission indices it owns and reports them in submission order, so the
//! concatenation of all shards, merged by index ([`merge_shards`]), is
//! identical to an unsharded run.

use crate::cache::ReportCache;
use crate::fault::{FaultCounters, FaultPlan};
use crate::json::Json;
use crate::spec::{ProgramSpec, Registry};
use crate::trace::SizeCdf;
use crate::{Metrics, System};
use cheri_cap::{CapFault, CapFormat};
use cheri_cpu::TrapCause;
use cheri_isa::codegen::{Abi, CodegenOpts};
use cheri_kernel::{AbiMode, AllocEvidence, ExitStatus, KernelConfig, SpawnOpts};
use cheri_mem::{CacheConfig, CacheHierarchy};
use cheri_vm::VmError;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

/// Everything needed to run one case — plain data throughout, so two specs
/// can be compared, hashed, serialized, and executed on different machines
/// with identical results.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RunSpec {
    /// Display name (used in reports and `--json` lines).
    pub name: String,
    /// Declarative identity of the guest program (lowered via a
    /// [`Registry`] at execution time).
    pub program: ProgramSpec,
    /// Codegen options handed to the lowering.
    pub opts: CodegenOpts,
    /// Process ABI to run under.
    pub abi: AbiMode,
    /// Run with the AddressSanitizer runtime (shadow region mapped,
    /// `break` = sanitizer abort).
    pub asan: bool,
    /// Per-process instruction budget (`None` = kernel default).
    pub instr_budget: Option<u64>,
    /// Wall-clock budget for the case (`None` = unlimited). A case that
    /// exceeds it is reported as [`CaseOutcome::DeadlineExceeded`] instead
    /// of stalling its worker.
    pub deadline: Option<Duration>,
    /// Deterministic input seed handed to the lowering.
    pub seed: u64,
    /// Kernel configuration for the fresh kernel this case runs in.
    pub config: KernelConfig,
    /// Optional shared-L2 capacity override in bytes (the cache-sweep
    /// experiment); L1 geometry and line size stay at the paper's defaults.
    pub l2_size: Option<u64>,
    /// Collect the capability-derivation trace (Figure 5); the report then
    /// carries the size distribution. Traced runs are never cached.
    pub trace: bool,
    /// Optional fault-injection plan, armed on the fresh kernel before the
    /// guest spawns. Part of the cache identity (a faulted run never
    /// serves a fault-free entry); `None` encodes to nothing, so fault-free
    /// spec JSON — and every existing golden — is byte-identical to before
    /// the fault plane existed.
    pub fault: Option<FaultPlan>,
    /// Execution tier for the guest. Excluded from the report-cache
    /// identity (every tier produces byte-identical guest metrics by
    /// contract); [`ExecMode::Template`] (the default) encodes to
    /// nothing, so default spec JSON — and every existing golden and
    /// cache entry — is byte-identical to before the tiers existed.
    pub exec_mode: ExecMode,
    /// Differential-oracle mode for this case. Excluded from the
    /// report-cache identity (a clean oracle run produces the same guest
    /// results as a plain run by contract); [`OracleMode::Off`] encodes to
    /// nothing, so oracle-free spec JSON stays byte-identical to before
    /// the oracle plane existed.
    pub oracle: OracleMode,
    /// Test-only: weaken the register-form `csetbounds` semantics in the
    /// fast machine (skip the bounds clamp) so the oracle's self-test can
    /// prove the comparison has teeth. Never cached; `false` encodes to
    /// nothing.
    pub weaken_sem: bool,
    /// The strict/hardened membrane split (see DESIGN.md "The hardened
    /// membrane"). Part of the cache identity (it changes what the guest
    /// observes); [`MembraneMode::Strict`] encodes to nothing, so
    /// strict-mode spec JSON — and every existing golden and cache entry —
    /// is byte-identical to before the membrane existed.
    pub abi_mode: MembraneMode,
    /// Lockstep sampling cadence: check the architectural diff at every
    /// Nth superblock boundary instead of every one, making lockstep cheap
    /// enough to arm across a full table. `1` (the default, encodes to
    /// nothing) is full lockstep; the value is a sampling knob only and by
    /// contract never changes guest results, so it is excluded from the
    /// cache identity like `oracle` itself.
    pub oracle_every: u64,
    /// Test-only: disable the hardened quarantine (reuse-after-free
    /// allowed) so the attack table's self-test can prove the membrane is
    /// load-bearing. Never cached; `false` encodes to nothing.
    pub weaken_quarantine: bool,
    /// Test-only: drop one compiled template's exit register flush so the
    /// cross-tier equivalence gates can prove they detect a residency
    /// bug. Never cached; `false` encodes to nothing.
    pub weaken_flush: bool,
}

/// Which execution tier the guest runs on. All three produce
/// byte-identical guest-visible results by contract — the tiers trade
/// host speed only, and the equivalence gates hold them to it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// The single-step reference interpreter: one decode/dispatch per
    /// instruction, the equivalence-gate baseline.
    SingleStep,
    /// The superblock machine: decoded regions executed a block at a
    /// time, per-instruction closures, per-access cache events.
    Superblock,
    /// The full tier stack (the default): superblocks, plus hot re-entry
    /// points compiled to register-allocated trace templates with
    /// line-coalesced fetch events.
    #[default]
    Template,
}

impl ExecMode {
    fn label(self) -> Option<&'static str> {
        match self {
            ExecMode::SingleStep => Some("single"),
            ExecMode::Superblock => Some("superblock"),
            ExecMode::Template => None,
        }
    }

    /// Parses a mode label as used by spec JSON and `--exec-mode`.
    ///
    /// # Errors
    ///
    /// Returns a message for an unknown label.
    pub fn from_label(s: &str) -> Result<ExecMode, String> {
        match s {
            "single" => Ok(ExecMode::SingleStep),
            "superblock" => Ok(ExecMode::Superblock),
            "template" => Ok(ExecMode::Template),
            other => Err(format!("unknown exec mode `{other}`")),
        }
    }
}

/// Strict vs hardened run-time membrane: one process ABI, two policies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum MembraneMode {
    /// The paper's baseline: capability violations fault, allocator misuse
    /// is denied with errno, freed memory recycles immediately.
    #[default]
    Strict,
    /// Deterministic repair: frees quarantine and revocation sweeps kill
    /// stale capabilities before reuse; double free / stale realloc /
    /// unauthorised fixed mmap are absorbed as audited repairs. ISA
    /// semantics are untouched — hardened runs stay lockstep-clean.
    Hardened,
}

/// How (and whether) a case is diffed against the reference semantics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum OracleMode {
    /// No oracle (the default).
    #[default]
    Off,
    /// Shadow every dispatched instruction with a side-effect-free
    /// re-execution of the shared semantics and diff the full
    /// architectural state; the first mismatch becomes
    /// [`CaseOutcome::Divergence`].
    Lockstep,
    /// Run the case twice — superblock fast path, then the single-step
    /// reference interpreter — and diff the guest-visible results
    /// (outcome, console, metrics, scenario stats). A clean replay
    /// returns the fast run's report byte-identically.
    Replay,
}

impl OracleMode {
    fn label(self) -> Option<&'static str> {
        match self {
            OracleMode::Off => None,
            OracleMode::Lockstep => Some("lockstep"),
            OracleMode::Replay => Some("replay"),
        }
    }

    fn from_label(s: &str) -> Result<OracleMode, String> {
        match s {
            "lockstep" => Ok(OracleMode::Lockstep),
            "replay" => Ok(OracleMode::Replay),
            other => Err(format!("unknown oracle mode `{other}`")),
        }
    }
}

impl RunSpec {
    /// A spec with the default kernel configuration, no budget override, no
    /// deadline, no sanitizer, no tracing and seed 0.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        program: ProgramSpec,
        opts: CodegenOpts,
        abi: AbiMode,
    ) -> RunSpec {
        RunSpec {
            name: name.into(),
            program,
            opts,
            abi,
            asan: false,
            instr_budget: None,
            deadline: None,
            seed: 0,
            config: KernelConfig::default(),
            l2_size: None,
            trace: false,
            fault: None,
            exec_mode: ExecMode::Template,
            oracle: OracleMode::Off,
            weaken_sem: false,
            abi_mode: MembraneMode::Strict,
            oracle_every: 1,
            weaken_quarantine: false,
            weaken_flush: false,
        }
    }

    /// Sets the input seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> RunSpec {
        self.seed = seed;
        self
    }

    /// Sets the instruction budget.
    #[must_use]
    pub fn with_budget(mut self, budget: u64) -> RunSpec {
        self.instr_budget = Some(budget);
        self
    }

    /// Sets the wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> RunSpec {
        self.deadline = Some(deadline);
        self
    }

    /// Enables the AddressSanitizer runtime.
    #[must_use]
    pub fn with_asan(mut self, asan: bool) -> RunSpec {
        self.asan = asan;
        self
    }

    /// Overrides the kernel configuration.
    #[must_use]
    pub fn with_config(mut self, config: KernelConfig) -> RunSpec {
        self.config = config;
        self
    }

    /// Overrides the shared-L2 capacity (bytes).
    #[must_use]
    pub fn with_l2_size(mut self, bytes: u64) -> RunSpec {
        self.l2_size = Some(bytes);
        self
    }

    /// Enables capability-derivation tracing.
    #[must_use]
    pub fn with_trace(mut self, trace: bool) -> RunSpec {
        self.trace = trace;
        self
    }

    /// Arms a fault-injection plan on this case's kernel.
    #[must_use]
    pub fn with_fault(mut self, plan: FaultPlan) -> RunSpec {
        self.fault = Some(plan);
        self
    }

    /// Selects the execution tier.
    #[must_use]
    pub fn with_exec_mode(mut self, mode: ExecMode) -> RunSpec {
        self.exec_mode = mode;
        self
    }

    /// Legacy alias for [`RunSpec::with_exec_mode`]: `true` selects the
    /// full tier stack, `false` the single-step reference interpreter.
    #[must_use]
    pub fn with_fast_path(self, fast_path: bool) -> RunSpec {
        self.with_exec_mode(if fast_path {
            ExecMode::Template
        } else {
            ExecMode::SingleStep
        })
    }

    /// Test-only: drops one template exit flush so the cross-tier gates
    /// can prove a register-residency bug is actually detected.
    #[must_use]
    pub fn with_weaken_flush(mut self, weaken: bool) -> RunSpec {
        self.weaken_flush = weaken;
        self
    }

    /// Selects the differential-oracle mode.
    #[must_use]
    pub fn with_oracle(mut self, oracle: OracleMode) -> RunSpec {
        self.oracle = oracle;
        self
    }

    /// Test-only: weakens the fast machine's `csetbounds` semantics so the
    /// oracle self-test can prove a divergence is actually detected.
    #[must_use]
    pub fn with_weaken_sem(mut self, weaken: bool) -> RunSpec {
        self.weaken_sem = weaken;
        self
    }

    /// Selects the strict/hardened membrane.
    #[must_use]
    pub fn with_abi_mode(mut self, mode: MembraneMode) -> RunSpec {
        self.abi_mode = mode;
        self
    }

    /// Sets the lockstep sampling cadence (clamped to ≥ 1).
    #[must_use]
    pub fn with_oracle_every(mut self, every: u64) -> RunSpec {
        self.oracle_every = every.max(1);
        self
    }

    /// Test-only: disables the hardened quarantine so the attack table's
    /// self-test can prove a weakened membrane is actually detected.
    #[must_use]
    pub fn with_weaken_quarantine(mut self, weaken: bool) -> RunSpec {
        self.weaken_quarantine = weaken;
        self
    }

    /// Canonical JSON encoding of the complete spec.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name", Json::str(self.name.clone())),
            ("spec", self.program.to_json()),
            ("opts", codegen_opts_to_json(self.opts)),
            ("abi", Json::str(abi_mode_label(self.abi))),
            ("asan", Json::Bool(self.asan)),
            ("instr_budget", Json::opt(self.instr_budget.map(Json::u64))),
            (
                "deadline_nanos",
                Json::opt(self.deadline.map(|d| Json::Int(d.as_nanos() as i128))),
            ),
            ("seed", Json::u64(self.seed)),
            ("config", kernel_config_to_json(self.config)),
            ("l2_size", Json::opt(self.l2_size.map(Json::u64))),
            ("trace", Json::Bool(self.trace)),
        ];
        if let Some(mode) = self.exec_mode.label() {
            fields.push(("exec_mode", Json::str(mode)));
        }
        if let Some(plan) = &self.fault {
            fields.push(("fault", plan.to_json()));
        }
        if let Some(mode) = self.oracle.label() {
            fields.push(("oracle", Json::str(mode)));
        }
        if self.weaken_sem {
            fields.push(("weaken_sem", Json::Bool(true)));
        }
        if self.abi_mode == MembraneMode::Hardened {
            fields.push(("abi_mode", Json::str("hardened")));
        }
        if self.oracle_every != 1 {
            fields.push(("oracle_every", Json::u64(self.oracle_every)));
        }
        if self.weaken_quarantine {
            fields.push(("weaken_quarantine", Json::Bool(true)));
        }
        if self.weaken_flush {
            fields.push(("weaken_flush", Json::Bool(true)));
        }
        Json::obj(fields)
    }

    /// Decodes [`RunSpec::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message if the value is not a recognised encoding.
    pub fn from_json(v: &Json) -> Result<RunSpec, String> {
        Ok(RunSpec {
            name: v.field("name")?.as_str()?.to_string(),
            program: ProgramSpec::from_json(v.field("spec")?)?,
            opts: codegen_opts_from_json(v.field("opts")?)?,
            abi: abi_mode_from_label(v.field("abi")?.as_str()?)?,
            asan: v.field("asan")?.as_bool()?,
            instr_budget: v.field("instr_budget")?.as_opt(Json::as_u64)?,
            deadline: v
                .field("deadline_nanos")?
                .as_opt(Json::as_u128)?
                .map(|n| Duration::from_nanos(u64::try_from(n).unwrap_or(u64::MAX))),
            seed: v.field("seed")?.as_u64()?,
            config: kernel_config_from_json(v.field("config")?)?,
            l2_size: v.field("l2_size")?.as_opt(Json::as_u64)?,
            trace: v.field("trace")?.as_bool()?,
            // Absent in all pre-fault-plane encodings; `get` keeps them
            // parseable.
            fault: match v.get("fault") {
                Some(plan) => Some(FaultPlan::from_json(plan)?),
                None => None,
            },
            exec_mode: match v.get("exec_mode") {
                Some(mode) => ExecMode::from_label(mode.as_str()?)?,
                // Legacy two-tier encoding: `"fast_path":false` meant the
                // single-step interpreter; absent meant the fast path.
                None => match v.get("fast_path") {
                    Some(b) if !b.as_bool()? => ExecMode::SingleStep,
                    _ => ExecMode::Template,
                },
            },
            oracle: match v.get("oracle") {
                Some(mode) => OracleMode::from_label(mode.as_str()?)?,
                None => OracleMode::Off,
            },
            weaken_sem: match v.get("weaken_sem") {
                Some(b) => b.as_bool()?,
                None => false,
            },
            abi_mode: match v.get("abi_mode") {
                Some(mode) => match mode.as_str()? {
                    "strict" => MembraneMode::Strict,
                    "hardened" => MembraneMode::Hardened,
                    other => return Err(format!("unknown abi_mode `{other}`")),
                },
                None => MembraneMode::Strict,
            },
            oracle_every: match v.get("oracle_every") {
                Some(n) => n.as_u64()?.max(1),
                None => 1,
            },
            weaken_quarantine: match v.get("weaken_quarantine") {
                Some(b) => b.as_bool()?,
                None => false,
            },
            weaken_flush: match v.get("weaken_flush") {
                Some(b) => b.as_bool()?,
                None => false,
            },
        })
    }
}

// ---------------------------------------------------------------------
// JSON codecs for the configuration types a spec embeds
// ---------------------------------------------------------------------

fn abi_mode_label(abi: AbiMode) -> &'static str {
    match abi {
        AbiMode::Mips64 => "mips64",
        AbiMode::CheriAbi => "cheriabi",
    }
}

fn abi_mode_from_label(s: &str) -> Result<AbiMode, String> {
    match s {
        "mips64" => Ok(AbiMode::Mips64),
        "cheriabi" => Ok(AbiMode::CheriAbi),
        other => Err(format!("unknown abi `{other}`")),
    }
}

fn codegen_opts_to_json(opts: CodegenOpts) -> Json {
    Json::obj(vec![
        (
            "abi",
            Json::str(match opts.abi {
                Abi::Mips64 => "mips64",
                Abi::PureCap => "purecap",
            }),
        ),
        ("ptr_size", Json::u64(opts.ptr_size)),
        ("clc_large_imm", Json::Bool(opts.clc_large_imm)),
        ("asan", Json::Bool(opts.asan)),
        ("subobject_bounds", Json::Bool(opts.subobject_bounds)),
    ])
}

fn codegen_opts_from_json(v: &Json) -> Result<CodegenOpts, String> {
    Ok(CodegenOpts {
        abi: match v.field("abi")?.as_str()? {
            "mips64" => Abi::Mips64,
            "purecap" => Abi::PureCap,
            other => return Err(format!("unknown codegen abi `{other}`")),
        },
        ptr_size: v.field("ptr_size")?.as_u64()?,
        clc_large_imm: v.field("clc_large_imm")?.as_bool()?,
        asan: v.field("asan")?.as_bool()?,
        subobject_bounds: v.field("subobject_bounds")?.as_bool()?,
    })
}

fn kernel_config_to_json(config: KernelConfig) -> Json {
    let json = Json::obj(vec![
        (
            "cap_fmt",
            Json::str(match config.cap_fmt {
                CapFormat::C128 => "c128",
                CapFormat::C256 => "c256",
            }),
        ),
        ("phys_frames", Json::u64(config.phys_frames as u64)),
        (
            "kernel_cap_discipline",
            Json::Bool(config.kernel_cap_discipline),
        ),
        ("quantum", Json::u64(config.quantum)),
        (
            "default_instr_budget",
            Json::u64(config.default_instr_budget),
        ),
    ]);
    // Absent encodes the default so pre-existing spec JSON (goldens, cache
    // keys) is byte-identical for configs that never touched pipes.
    let mut fields = match json {
        Json::Obj(fields) => fields,
        _ => unreachable!(),
    };
    if config.pipe_capacity != KernelConfig::default().pipe_capacity {
        fields.push((
            "pipe_capacity".to_string(),
            Json::u64(config.pipe_capacity as u64),
        ));
    }
    Json::Obj(fields)
}

fn kernel_config_from_json(v: &Json) -> Result<KernelConfig, String> {
    Ok(KernelConfig {
        cap_fmt: match v.field("cap_fmt")?.as_str()? {
            "c128" => CapFormat::C128,
            "c256" => CapFormat::C256,
            other => return Err(format!("unknown cap format `{other}`")),
        },
        phys_frames: v.field("phys_frames")?.as_usize()?,
        kernel_cap_discipline: v.field("kernel_cap_discipline")?.as_bool()?,
        quantum: v.field("quantum")?.as_u64()?,
        default_instr_budget: v.field("default_instr_budget")?.as_u64()?,
        pipe_capacity: match v.get("pipe_capacity") {
            Some(j) => j.as_usize()?,
            None => KernelConfig::default().pipe_capacity,
        },
    })
}

/// All capability-fault variants, for mnemonic round-tripping.
const CAP_FAULTS: &[CapFault] = &[
    CapFault::TagViolation,
    CapFault::SealViolation,
    CapFault::TypeViolation,
    CapFault::LengthViolation,
    CapFault::RepresentabilityViolation,
    CapFault::MonotonicityViolation,
    CapFault::PermitLoadViolation,
    CapFault::PermitStoreViolation,
    CapFault::PermitExecuteViolation,
    CapFault::PermitLoadCapViolation,
    CapFault::PermitStoreCapViolation,
    CapFault::PermitStoreLocalCapViolation,
    CapFault::PermitSealViolation,
    CapFault::PermitUnsealViolation,
    CapFault::AccessSystemRegsViolation,
    CapFault::UserPermViolation,
    CapFault::UnalignedCapAccess,
    CapFault::UnalignedDataAccess,
    CapFault::DdcNull,
];

fn trap_cause_token(cause: TrapCause) -> String {
    match cause {
        TrapCause::Cap(f) => format!("cap:{}", f.mnemonic()),
        TrapCause::Vm(e) => match e {
            VmError::Unmapped(a) => format!("vm:unmapped:{a}"),
            VmError::Protection(a) => format!("vm:protection:{a}"),
            VmError::OutOfMemory => "vm:oom".to_string(),
            VmError::NoSuchSpace => "vm:no-space".to_string(),
            VmError::NoSuchSegment => "vm:no-segment".to_string(),
            VmError::MappingExists(a) => format!("vm:exists:{a}"),
            VmError::BadAlignment(a) => format!("vm:bad-align:{a}"),
            VmError::BadRange(a) => format!("vm:bad-range:{a}"),
            VmError::SwapIo(a) => format!("vm:swap-io:{a}"),
            // `VmError` is non-exhaustive; an unknown future variant still
            // needs *some* stable token (it just won't parse back).
            other => format!("vm:other:{other:?}"),
        },
        TrapCause::NoCode => "nocode".to_string(),
    }
}

fn trap_cause_from_token(token: &str) -> Result<TrapCause, String> {
    if token == "nocode" {
        return Ok(TrapCause::NoCode);
    }
    if let Some(mnemonic) = token.strip_prefix("cap:") {
        return CAP_FAULTS
            .iter()
            .find(|f| f.mnemonic() == mnemonic)
            .map(|f| TrapCause::Cap(*f))
            .ok_or_else(|| format!("unknown capability fault `{mnemonic}`"));
    }
    if let Some(rest) = token.strip_prefix("vm:") {
        let (kind, addr) = match rest.split_once(':') {
            Some((kind, addr)) => {
                let addr: u64 = addr
                    .parse()
                    .map_err(|_| format!("bad address in `{token}`"))?;
                (kind, addr)
            }
            None => (rest, 0),
        };
        let e = match kind {
            "unmapped" => VmError::Unmapped(addr),
            "protection" => VmError::Protection(addr),
            "oom" => VmError::OutOfMemory,
            "no-space" => VmError::NoSuchSpace,
            "no-segment" => VmError::NoSuchSegment,
            "exists" => VmError::MappingExists(addr),
            "bad-align" => VmError::BadAlignment(addr),
            "bad-range" => VmError::BadRange(addr),
            "swap-io" => VmError::SwapIo(addr),
            other => return Err(format!("unknown vm fault `{other}`")),
        };
        return Ok(TrapCause::Vm(e));
    }
    Err(format!("unknown trap token `{token}`"))
}

/// Canonical JSON encoding of an exit status.
#[must_use]
pub fn exit_status_to_json(status: ExitStatus) -> Json {
    match status {
        ExitStatus::Code(code) => Json::obj(vec![
            ("status", Json::str("code")),
            ("code", Json::i64(code)),
        ]),
        ExitStatus::Fault(cause) => Json::obj(vec![
            ("status", Json::str("fault")),
            ("cause", Json::str(trap_cause_token(cause))),
        ]),
        ExitStatus::Signaled(sig) => Json::obj(vec![
            ("status", Json::str("signaled")),
            ("signal", Json::u64(u64::from(sig))),
        ]),
        ExitStatus::SanitizerAbort => Json::obj(vec![("status", Json::str("sanitizer-abort"))]),
        ExitStatus::BudgetExhausted => Json::obj(vec![("status", Json::str("budget-exhausted"))]),
    }
}

/// Decodes [`exit_status_to_json`] output.
///
/// # Errors
///
/// Returns a message if the value is not a recognised encoding.
pub fn exit_status_from_json(v: &Json) -> Result<ExitStatus, String> {
    match v.field("status")?.as_str()? {
        "code" => Ok(ExitStatus::Code(v.field("code")?.as_i64()?)),
        "fault" => Ok(ExitStatus::Fault(trap_cause_from_token(
            v.field("cause")?.as_str()?,
        )?)),
        "signaled" => Ok(ExitStatus::Signaled(
            u8::try_from(v.field("signal")?.as_u64()?).map_err(|e| e.to_string())?,
        )),
        "sanitizer-abort" => Ok(ExitStatus::SanitizerAbort),
        "budget-exhausted" => Ok(ExitStatus::BudgetExhausted),
        other => Err(format!("unknown exit status `{other}`")),
    }
}

/// How a case concluded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CaseOutcome {
    /// The guest ran to an exit status (including faults and budget
    /// exhaustion — those are *results*, not harness errors).
    Exited(ExitStatus),
    /// The program failed to load; the error is preserved as text.
    LoadFailed(String),
    /// Building or running the case panicked; the panic is confined to the
    /// case's worker and reported here instead of killing the run.
    Panicked(String),
    /// The case exceeded its [`RunSpec::deadline`]; the worker moved on.
    DeadlineExceeded,
    /// The scheduler declared deadlock (every live process blocked on a
    /// condition no runnable process can satisfy); the string is the
    /// kernel's per-pid blocked-on diagnostics. Only scenario runs report
    /// this — `run_program` folds it into budget exhaustion.
    Deadlock(String),
    /// The differential oracle caught the fast machine disagreeing with
    /// the reference semantics ([`RunSpec::oracle`]); the string carries
    /// the pc/instret/register-delta diagnostic (lockstep) or the
    /// guest-visible difference between the two runs (replay). Never
    /// cached — a divergence is a simulator bug, not a case result.
    Divergence(String),
}

impl CaseOutcome {
    /// The exit status, if the guest actually ran.
    #[must_use]
    pub fn exit_status(&self) -> Option<ExitStatus> {
        match self {
            CaseOutcome::Exited(status) => Some(*status),
            _ => None,
        }
    }

    /// Canonical JSON encoding.
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            CaseOutcome::Exited(status) => Json::obj(vec![
                ("outcome", Json::str("exited")),
                ("exit", exit_status_to_json(*status)),
            ]),
            CaseOutcome::LoadFailed(e) => Json::obj(vec![
                ("outcome", Json::str("load-failed")),
                ("error", Json::str(e.clone())),
            ]),
            CaseOutcome::Panicked(e) => Json::obj(vec![
                ("outcome", Json::str("panicked")),
                ("error", Json::str(e.clone())),
            ]),
            CaseOutcome::DeadlineExceeded => Json::obj(vec![("outcome", Json::str("deadline"))]),
            CaseOutcome::Deadlock(diag) => Json::obj(vec![
                ("outcome", Json::str("deadlock")),
                ("diagnostics", Json::str(diag.clone())),
            ]),
            CaseOutcome::Divergence(detail) => Json::obj(vec![
                ("outcome", Json::str("divergence")),
                ("detail", Json::str(detail.clone())),
            ]),
        }
    }

    /// Decodes [`CaseOutcome::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message if the value is not a recognised encoding.
    pub fn from_json(v: &Json) -> Result<CaseOutcome, String> {
        match v.field("outcome")?.as_str()? {
            "exited" => Ok(CaseOutcome::Exited(exit_status_from_json(
                v.field("exit")?,
            )?)),
            "load-failed" => Ok(CaseOutcome::LoadFailed(
                v.field("error")?.as_str()?.to_string(),
            )),
            "panicked" => Ok(CaseOutcome::Panicked(
                v.field("error")?.as_str()?.to_string(),
            )),
            "deadline" => Ok(CaseOutcome::DeadlineExceeded),
            "deadlock" => Ok(CaseOutcome::Deadlock(
                v.field("diagnostics")?.as_str()?.to_string(),
            )),
            "divergence" => Ok(CaseOutcome::Divergence(
                v.field("detail")?.as_str()?.to_string(),
            )),
            other => Err(format!("unknown outcome `{other}`")),
        }
    }
}

impl fmt::Display for CaseOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaseOutcome::Exited(status) => write!(f, "{status:?}"),
            CaseOutcome::LoadFailed(e) => write!(f, "load failed: {e}"),
            CaseOutcome::Panicked(e) => write!(f, "panicked: {e}"),
            CaseOutcome::DeadlineExceeded => write!(f, "deadline exceeded"),
            CaseOutcome::Deadlock(diag) => write!(f, "deadlock: {diag}"),
            CaseOutcome::Divergence(detail) => write!(f, "divergence: {detail}"),
        }
    }
}

/// Host-side interpreter counters: how the simulator ran the case, never
/// what the guest observed. TLB and superblock hit rates vary with the
/// execution mode (they collapse to zero under `--no-fast-path`), so they
/// are excluded from guest-metric equivalence, from the deterministic
/// shard/golden line format, and from the report cache's identity. The
/// scheduler counters (wakes/blocks/runq depth/context switches) ride in
/// the same bucket: they happen to be mode-invariant, but they describe
/// how the kernel ran the process tree, not what the guest computed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HostCounters {
    /// Translations served from the software TLB.
    pub tlb_hits: u64,
    /// Translations that took the full VM walk.
    pub tlb_misses: u64,
    /// Fetches/block entries served by the resident decoded region.
    pub sb_hits: u64,
    /// Fetches/block entries that re-scanned the region map.
    pub sb_misses: u64,
    /// Blocked processes woken by the scheduler.
    pub wakes: u64,
    /// Processes put to sleep on a wait condition.
    pub blocks: u64,
    /// Deepest run-queue occupancy observed.
    pub max_runq_depth: u64,
    /// Context switches performed.
    pub ctx_switches: u64,
}

impl HostCounters {
    /// Canonical JSON encoding. The scheduler fields are emitted only when
    /// nonzero, so single-process reports (and their cached encodings)
    /// stay byte-identical to before the scenario plane existed.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("tlb_hits".to_string(), Json::u64(self.tlb_hits)),
            ("tlb_misses".to_string(), Json::u64(self.tlb_misses)),
            ("sb_hits".to_string(), Json::u64(self.sb_hits)),
            ("sb_misses".to_string(), Json::u64(self.sb_misses)),
        ];
        for (key, value) in [
            ("wakes", self.wakes),
            ("blocks", self.blocks),
            ("max_runq_depth", self.max_runq_depth),
            ("ctx_switches", self.ctx_switches),
        ] {
            if value != 0 {
                fields.push((key.to_string(), Json::u64(value)));
            }
        }
        Json::Obj(fields)
    }

    /// Decodes [`HostCounters::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message if the value is not a recognised encoding.
    pub fn from_json(v: &Json) -> Result<HostCounters, String> {
        let opt = |key: &str| -> Result<u64, String> {
            match v.get(key) {
                Some(n) => n.as_u64(),
                None => Ok(0),
            }
        };
        Ok(HostCounters {
            tlb_hits: v.field("tlb_hits")?.as_u64()?,
            tlb_misses: v.field("tlb_misses")?.as_u64()?,
            sb_hits: v.field("sb_hits")?.as_u64()?,
            sb_misses: v.field("sb_misses")?.as_u64()?,
            wakes: opt("wakes")?,
            blocks: opt("blocks")?,
            max_runq_depth: opt("max_runq_depth")?,
            ctx_switches: opt("ctx_switches")?,
        })
    }
}

/// Latency aggregate for one scenario run (`ProgramSpec::Scenario`):
/// per-request enqueue→reply latencies, stamped by the guest clients in
/// guest cycles, reduced to nearest-rank percentiles. Everything here is
/// deterministic guest arithmetic, so the struct participates in report
/// equality, the deterministic line format, and goldens.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScenarioStats {
    /// Client processes the scenario forked.
    pub clients: u64,
    /// Requests the scenario was configured to issue (clients × queries).
    pub requests: u64,
    /// Requests that completed (latency stamps harvested); fewer than
    /// `requests` means clients aborted or the run ended early — the
    /// fault campaign's "degraded" signal.
    pub completed: u64,
    /// Median latency in guest cycles (nearest-rank).
    pub p50: u64,
    /// 95th-percentile latency in guest cycles (nearest-rank).
    pub p95: u64,
    /// 99th-percentile latency in guest cycles (nearest-rank).
    pub p99: u64,
}

impl ScenarioStats {
    /// Reduces raw latency stamps to percentiles (nearest-rank on the
    /// sorted array; zeros when nothing completed).
    #[must_use]
    pub fn from_latencies(clients: u64, requests: u64, latencies: &[u64]) -> ScenarioStats {
        let mut sorted = latencies.to_vec();
        sorted.sort_unstable();
        let rank = |pct: u64| -> u64 {
            if sorted.is_empty() {
                return 0;
            }
            let n = sorted.len() as u64;
            let idx = (pct * n).div_ceil(100).max(1) - 1;
            sorted[idx as usize]
        };
        ScenarioStats {
            clients,
            requests,
            completed: latencies.len() as u64,
            p50: rank(50),
            p95: rank(95),
            p99: rank(99),
        }
    }

    /// Canonical JSON encoding.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("clients", Json::u64(self.clients)),
            ("requests", Json::u64(self.requests)),
            ("completed", Json::u64(self.completed)),
            ("p50", Json::u64(self.p50)),
            ("p95", Json::u64(self.p95)),
            ("p99", Json::u64(self.p99)),
        ])
    }

    /// Decodes [`ScenarioStats::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message if the value is not a recognised encoding.
    pub fn from_json(v: &Json) -> Result<ScenarioStats, String> {
        Ok(ScenarioStats {
            clients: v.field("clients")?.as_u64()?,
            requests: v.field("requests")?.as_u64()?,
            completed: v.field("completed")?.as_u64()?,
            p50: v.field("p50")?.as_u64()?,
            p95: v.field("p95")?.as_u64()?,
            p99: v.field("p99")?.as_u64()?,
        })
    }
}

std::thread_local! {
    // Guest cycles retired by cases executed on this thread — the
    // deterministic clock the bench measurement reads.
    static GUEST_CYCLES: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Total guest cycles consumed by every case executed on the calling
/// thread so far. Monotonic and fully deterministic (it advances by each
/// case's `metrics.cycles`), which makes it usable as a virtual clock for
/// benchmark measurements that must not wobble with host load.
#[must_use]
pub fn guest_cycles_consumed() -> u64 {
    GUEST_CYCLES.with(std::cell::Cell::get)
}

/// The result of one executed [`RunSpec`].
#[derive(Clone, Debug, PartialEq)]
pub struct CaseReport {
    /// Spec name.
    pub name: String,
    /// Spec seed.
    pub seed: u64,
    /// What happened.
    pub outcome: CaseOutcome,
    /// Guest console output (empty unless the guest wrote).
    pub console: String,
    /// Counters consumed by the run (zero when the program never ran).
    pub metrics: Metrics,
    /// Host wall-clock time spent on the case (build + run). The only
    /// nondeterministic field; no aggregate consumes it. A cache hit
    /// returns the *cached* wall time, keeping the whole report
    /// byte-identical to the original run's.
    pub wall: Duration,
    /// The Figure 5 capability-size distribution, collected only when
    /// [`RunSpec::trace`] was set (never part of the cached/streamed JSON).
    pub cap_cdf: Option<SizeCdf>,
    /// Times the case was re-executed by the session's retry policy
    /// ([`SessionOpts::retries`]). Retry metadata never reaches the cache:
    /// the cache key is a function of the spec alone, and stored entries
    /// hold the execution result from before the metadata is attached.
    pub retries: u64,
    /// True when the case still had a transient outcome
    /// (panicked/deadline) after exhausting its retries.
    pub quarantined: bool,
    /// What the armed fault plane did, when [`RunSpec::fault`] was set.
    pub faults: Option<FaultCounters>,
    /// Host-side interpreter counters (TLB/superblock hit rates). Absent
    /// when the case never ran or every counter is zero; always excluded
    /// from the deterministic line format and the report-cache identity.
    pub host: Option<HostCounters>,
    /// Latency percentiles, present only for scenario specs
    /// (`ProgramSpec::Scenario`). Deterministic guest data — unlike
    /// `host`, it *is* part of the deterministic line format.
    pub scenario: Option<ScenarioStats>,
    /// Hardened-membrane evidence counters, present only when the spec ran
    /// with [`MembraneMode::Hardened`]. Deterministic (drained allocator
    /// counters, no wall time or addresses), so — unlike `host` — it *is*
    /// part of the deterministic line format: the attack table's hardened
    /// rows pin what the membrane did, byte for byte.
    pub membrane: Option<AllocEvidence>,
}

impl CaseReport {
    /// Canonical JSON encoding (omits `cap_cdf`; traced runs are
    /// rendered by their experiment, not by the generic report line).
    /// Retry metadata and fault counters are appended only when present,
    /// so a plain, fault-free report encodes byte-identically to before
    /// the fault plane existed — existing goldens stay valid.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name", Json::str(self.name.clone())),
            ("seed", Json::u64(self.seed)),
            ("outcome", self.outcome.to_json()),
            ("console", Json::str(self.console.clone())),
            (
                "metrics",
                Json::obj(vec![
                    ("instructions", Json::u64(self.metrics.instructions)),
                    ("cycles", Json::u64(self.metrics.cycles)),
                    ("l2_misses", Json::u64(self.metrics.l2_misses)),
                    ("syscalls", Json::u64(self.metrics.syscalls)),
                ]),
            ),
            ("wall_nanos", Json::Int(self.wall.as_nanos() as i128)),
        ];
        if self.retries != 0 {
            fields.push(("retries", Json::u64(self.retries)));
        }
        if self.quarantined {
            fields.push(("quarantined", Json::Bool(true)));
        }
        if let Some(counters) = &self.faults {
            fields.push(("faults", counters.to_json()));
        }
        if let Some(host) = &self.host {
            fields.push(("host", host.to_json()));
        }
        if let Some(scenario) = &self.scenario {
            fields.push(("scenario", scenario.to_json()));
        }
        if let Some(m) = &self.membrane {
            fields.push((
                "membrane",
                Json::obj(vec![
                    ("repairs", Json::u64(m.repairs)),
                    ("swept_caps", Json::u64(m.swept_caps)),
                    ("quarantine_bytes", Json::u64(m.quarantine_bytes)),
                ]),
            ));
        }
        Json::obj(fields)
    }

    /// [`CaseReport::to_json`] with the submission index prepended — the
    /// `--json-stream` line format.
    #[must_use]
    pub fn to_json_tagged(&self, index: usize) -> Json {
        let mut fields = vec![("case".to_string(), Json::u64(index as u64))];
        if let Json::Obj(rest) = self.to_json() {
            fields.extend(rest);
        }
        Json::Obj(fields)
    }

    /// [`CaseReport::to_json_tagged`] minus the wall-clock field — the
    /// `--shard` line format, where byte-identity across machines and runs
    /// matters and wall time (the one nondeterministic field) would break
    /// it.
    #[must_use]
    pub fn to_json_deterministic(&self, index: usize) -> Json {
        match self.to_json_tagged(index) {
            Json::Obj(fields) => Json::Obj(
                fields
                    .into_iter()
                    .filter(|(k, _)| !matches!(k.as_str(), "wall_nanos" | "host"))
                    .collect(),
            ),
            other => other,
        }
    }

    /// Decodes [`CaseReport::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message if the value is not a recognised encoding.
    pub fn from_json(v: &Json) -> Result<CaseReport, String> {
        let m = v.field("metrics")?;
        Ok(CaseReport {
            name: v.field("name")?.as_str()?.to_string(),
            seed: v.field("seed")?.as_u64()?,
            outcome: CaseOutcome::from_json(v.field("outcome")?)?,
            console: v.field("console")?.as_str()?.to_string(),
            metrics: Metrics {
                instructions: m.field("instructions")?.as_u64()?,
                cycles: m.field("cycles")?.as_u64()?,
                l2_misses: m.field("l2_misses")?.as_u64()?,
                syscalls: m.field("syscalls")?.as_u64()?,
            },
            // Absent in the deterministic (`--shard` / fleet) line format,
            // which strips the one nondeterministic field.
            wall: match v.get("wall_nanos") {
                Some(n) => Duration::from_nanos(u64::try_from(n.as_u128()?).unwrap_or(u64::MAX)),
                None => Duration::ZERO,
            },
            cap_cdf: None,
            // Optional tail fields (absent in pre-fault-plane encodings).
            retries: match v.get("retries") {
                Some(n) => n.as_u64()?,
                None => 0,
            },
            quarantined: match v.get("quarantined") {
                Some(b) => b.as_bool()?,
                None => false,
            },
            faults: match v.get("faults") {
                Some(counters) => Some(FaultCounters::from_json(counters)?),
                None => None,
            },
            host: match v.get("host") {
                Some(host) => Some(HostCounters::from_json(host)?),
                None => None,
            },
            scenario: match v.get("scenario") {
                Some(stats) => Some(ScenarioStats::from_json(stats)?),
                None => None,
            },
            membrane: match v.get("membrane") {
                Some(m) => Some(AllocEvidence {
                    repairs: m.field("repairs")?.as_u64()?,
                    swept_caps: m.field("swept_caps")?.as_u64()?,
                    quarantine_bytes: m.field("quarantine_bytes")?.as_u64()?,
                }),
                None => None,
            },
        })
    }
}

/// Builds and runs one spec on the current thread (no deadline handling),
/// dispatching replay-oracle cases to [`execute_replay`].
fn execute_inner(registry: &Registry, spec: &RunSpec) -> CaseReport {
    if spec.oracle == OracleMode::Replay {
        return execute_replay(registry, spec);
    }
    execute_once(registry, spec, false)
}

/// Runs the spec twice — fast path, then the single-step reference
/// interpreter — and diffs the guest-visible results. A clean replay
/// returns the fast run's report verbatim (byte-identical to an
/// oracle-free run); a mismatch becomes [`CaseOutcome::Divergence`].
fn execute_replay(registry: &Registry, spec: &RunSpec) -> CaseReport {
    let start = Instant::now();
    let fast = execute_once(registry, spec, false);
    let reference = execute_once(registry, spec, true);
    let mut diffs = Vec::new();
    if fast.outcome != reference.outcome {
        diffs.push(format!(
            "outcome: fast `{}`, reference `{}`",
            fast.outcome, reference.outcome
        ));
    }
    if fast.console != reference.console {
        diffs.push(format!(
            "console: fast {:?}, reference {:?}",
            fast.console, reference.console
        ));
    }
    if fast.metrics != reference.metrics {
        diffs.push(format!(
            "metrics: fast {:?}, reference {:?}",
            fast.metrics, reference.metrics
        ));
    }
    if fast.scenario != reference.scenario {
        diffs.push(format!(
            "scenario stats: fast {:?}, reference {:?}",
            fast.scenario, reference.scenario
        ));
    }
    if diffs.is_empty() {
        return fast;
    }
    CaseReport {
        outcome: CaseOutcome::Divergence(format!("replay mismatch: {}", diffs.join("; "))),
        wall: start.elapsed(),
        ..fast
    }
}

/// Builds and runs one spec in a fresh system on the current thread.
/// `reference` forces the single-step reference interpreter regardless of
/// [`RunSpec::exec_mode`] — the replay oracle's second leg.
fn execute_once(registry: &Registry, spec: &RunSpec, reference: bool) -> CaseReport {
    let start = Instant::now();
    let run = catch_unwind(AssertUnwindSafe(|| {
        let program = registry.lower(&spec.program, spec.opts, spec.seed);
        let mut sys = System::with_config(spec.config);
        if let Some(l2) = spec.l2_size {
            sys.kernel.cpu.caches = CacheHierarchy::new(
                CacheConfig::l1_default(),
                CacheConfig {
                    size: l2,
                    line: 64,
                    ways: 8,
                },
            );
        }
        if spec.trace {
            sys.enable_tracing();
        }
        match spec.exec_mode {
            ExecMode::SingleStep => sys.kernel.cpu.set_fast_path(false),
            ExecMode::Superblock => {
                sys.kernel.cpu.set_fast_path(true);
                sys.kernel.cpu.set_templates(false);
            }
            ExecMode::Template => {
                sys.kernel.cpu.set_fast_path(true);
                // An armed fault plan mutates memory behind the guest's
                // back mid-run; templates assume the re-entry guard stays
                // valid for a whole trace, so demote to superblocks.
                sys.kernel.cpu.set_templates(spec.fault.is_none());
            }
        }
        sys.kernel.cpu.set_weaken_sem(spec.weaken_sem);
        sys.kernel.cpu.set_weaken_flush(spec.weaken_flush);
        if reference {
            sys.kernel.cpu.set_reference(true);
        } else if spec.oracle == OracleMode::Lockstep {
            // Store verification is off while a fault plan is armed:
            // injected bit-flips corrupt granules behind the architecture's
            // back, which is exactly the non-architectural behaviour the
            // fault plane exists to create.
            sys.kernel
                .cpu
                .set_lockstep(spec.oracle_every.max(1), spec.fault.is_none());
        }
        // Arm the fault plane before the guest spawns, so access counts
        // start from the same zero on every run of this spec.
        if let Some(plan) = &spec.fault {
            plan.arm(&mut sys.kernel);
        }
        let mut opts = SpawnOpts::new(spec.abi);
        opts.asan = spec.asan;
        opts.instr_budget = spec.instr_budget;
        opts.hardened = spec.abi_mode == MembraneMode::Hardened;
        opts.weaken_quarantine = spec.weaken_quarantine;
        // Scenario specs run the whole process tree through the scheduler
        // and harvest latency stamps; everything else takes the classic
        // run-one-guest `measure` path.
        let scenario_shape = match &spec.program {
            ProgramSpec::Scenario {
                clients, queries, ..
            } => Some((*clients, *queries)),
            _ => None,
        };
        let (result, extra) = if let Some((clients, queries)) = scenario_shape {
            match sys.run_scenario(&program, &opts, clients) {
                Ok(run) => {
                    let stats =
                        ScenarioStats::from_latencies(clients, clients * queries, &run.latencies);
                    (
                        Ok((run.status, run.console, run.metrics)),
                        Some((run.deadlock, stats)),
                    )
                }
                Err(load) => (Err(load), None),
            }
        } else {
            (sys.measure(&program, &opts), None)
        };
        let cdf = spec.trace.then(|| sys.capability_histogram());
        // The first lockstep mismatch, if any — it outranks whatever the
        // guest appeared to do, since the machine that produced that
        // result just disagreed with its own semantics.
        let divergence = sys.kernel.cpu.take_divergence();
        // Harvest even when the load failed: a fault injected into the
        // exec path still fired.
        let faults = spec.fault.map(|_| FaultCounters::harvest(&sys.kernel));
        let host = HostCounters {
            tlb_hits: sys.kernel.cpu.stats.tlb_hits,
            tlb_misses: sys.kernel.cpu.stats.tlb_misses,
            sb_hits: sys.kernel.cpu.stats.sb_hits,
            sb_misses: sys.kernel.cpu.stats.sb_misses,
            wakes: sys.kernel.stats.wakes,
            blocks: sys.kernel.stats.blocks,
            max_runq_depth: sys.kernel.stats.max_runq_depth,
            ctx_switches: sys.kernel.stats.ctx_switches,
        };
        // The membrane block is attached for hardened runs only, so plain
        // reports stay byte-identical to before the membrane existed.
        let membrane = (spec.abi_mode == MembraneMode::Hardened).then_some(sys.kernel.membrane);
        (result, cdf, divergence, faults, host, extra, membrane)
    }));
    let wall = start.elapsed();
    let (outcome, console, metrics, cap_cdf, faults, host, scenario, membrane) = match run {
        Ok((Ok((status, console, metrics)), cdf, divergence, faults, host, extra, membrane)) => {
            let outcome = match (&divergence, &extra) {
                (Some(d), _) => CaseOutcome::Divergence(d.to_string()),
                // A deadlocked scenario is a guest-visible failure with
                // the kernel's per-pid diagnostics attached.
                (None, Some((Some(diag), _))) => CaseOutcome::Deadlock(diag.clone()),
                _ => CaseOutcome::Exited(status),
            };
            (
                outcome,
                console,
                metrics,
                cdf,
                faults,
                (host != HostCounters::default()).then_some(host),
                extra.map(|(_, stats)| stats),
                membrane,
            )
        }
        Ok((Err(load), _, _, faults, host, _, membrane)) => (
            CaseOutcome::LoadFailed(load.to_string()),
            String::new(),
            Metrics::default(),
            None,
            faults,
            (host != HostCounters::default()).then_some(host),
            None,
            membrane,
        ),
        Err(payload) => (
            CaseOutcome::Panicked(panic_message(payload.as_ref())),
            String::new(),
            Metrics::default(),
            None,
            None,
            None,
            None,
            None,
        ),
    };
    // Advance the thread's deterministic guest clock by this case's cost.
    GUEST_CYCLES.with(|c| c.set(c.get().wrapping_add(metrics.cycles)));
    CaseReport {
        name: spec.name.clone(),
        seed: spec.seed,
        outcome,
        console,
        metrics,
        wall,
        cap_cdf,
        retries: 0,
        quarantined: false,
        faults,
        host,
        scenario,
        membrane,
    }
}

/// Executes one spec in a fresh kernel, confining panics to the report and
/// enforcing the spec's wall-clock deadline (if any).
///
/// Deadline enforcement runs the case on a dedicated thread and abandons
/// it on timeout: the simulation cannot be preempted mid-instruction, so
/// the abandoned thread winds down on its own when the case's instruction
/// budget runs out, while the calling worker moves on immediately. Give
/// deadline-bearing specs a finite instruction budget so abandoned runs
/// cannot spin forever.
#[must_use]
pub fn execute_spec(registry: &Registry, spec: &RunSpec) -> CaseReport {
    let Some(limit) = spec.deadline else {
        return execute_inner(registry, spec);
    };
    let start = Instant::now();
    let (tx, rx) = mpsc::channel();
    let thread_registry = registry.clone();
    let thread_spec = spec.clone();
    std::thread::Builder::new()
        .name(format!("case-{}", spec.name))
        .spawn(move || {
            let _ = tx.send(execute_inner(&thread_registry, &thread_spec));
        })
        .expect("spawn case thread");
    match rx.recv_timeout(limit) {
        Ok(report) => report,
        Err(_) => CaseReport {
            name: spec.name.clone(),
            seed: spec.seed,
            outcome: CaseOutcome::DeadlineExceeded,
            console: String::new(),
            metrics: Metrics::default(),
            wall: start.elapsed(),
            cap_cdf: None,
            retries: 0,
            quarantined: false,
            faults: None,
            host: None,
            scenario: None,
            membrane: None,
        },
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A shard assignment: this process owns every submission index `i` with
/// `i % count == index`. Round-robin (rather than contiguous blocks)
/// balances matrices whose expensive cases cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Shard {
    /// This shard's number, `0..count`.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl Shard {
    /// Parses the `I/N` command-line form (`0/2`, `1/2`, ...).
    ///
    /// # Errors
    ///
    /// Returns a message when the text is not `I/N` with `I < N`, `N ≥ 1`.
    pub fn parse(text: &str) -> Result<Shard, String> {
        let (i, n) = text
            .split_once('/')
            .ok_or_else(|| format!("--shard wants I/N, got `{text}`"))?;
        let index: usize = i.parse().map_err(|_| format!("bad shard index `{i}`"))?;
        let count: usize = n.parse().map_err(|_| format!("bad shard count `{n}`"))?;
        if count == 0 || index >= count {
            return Err(format!(
                "shard index {index} out of range for {count} shards"
            ));
        }
        Ok(Shard { index, count })
    }

    /// Whether this shard owns submission index `i`.
    #[must_use]
    pub fn owns(&self, i: usize) -> bool {
        i % self.count == self.index
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// A [`SessionOpts::on_report`] observer: called with
/// `(submission_index, report, from_cache)`.
pub type ReportObserver<'a> = dyn Fn(usize, &CaseReport, bool) + Sync + 'a;

/// Per-run execution options for [`Harness::run_session`].
#[derive(Default)]
pub struct SessionOpts<'a> {
    /// Serve and record reports through this content-addressed cache.
    pub cache: Option<&'a ReportCache>,
    /// Execute only the submission indices this shard owns.
    pub shard: Option<Shard>,
    /// Write a progress line (cases completed / total, ETA) to stderr.
    pub progress: bool,
    /// Called once per completed case, as it completes (completion order,
    /// not submission order). Drives `--json-stream`.
    pub on_report: Option<&'a ReportObserver<'a>>,
    /// Re-execute a case up to this many times when its outcome is
    /// *transient* — panicked or deadline-exceeded, the two outcomes that
    /// can reflect host conditions rather than the spec — with a
    /// deterministic exponential backoff ([`retry_backoff`]) between
    /// attempts. The final report carries the attempt count in
    /// [`CaseReport::retries`]; a case still transient after the last
    /// attempt is marked [`CaseReport::quarantined`]. Retry metadata is
    /// attached *after* the cache store, so cached entries (and cache
    /// keys, which depend only on the spec) never see it.
    pub retries: u64,
}

/// Whether `outcome` is worth retrying: only panics and missed deadlines
/// can be environmental; every other outcome is a deterministic function
/// of the spec.
#[must_use]
pub fn outcome_is_transient(outcome: &CaseOutcome) -> bool {
    matches!(
        outcome,
        CaseOutcome::Panicked(_) | CaseOutcome::DeadlineExceeded
    )
}

/// The deterministic backoff before retry `attempt` (1-based): 10 ms
/// doubling per attempt, capped at 320 ms. A pure function of the attempt
/// number — no jitter — so retried sessions stay reproducible.
#[must_use]
pub fn retry_backoff(attempt: u64) -> Duration {
    Duration::from_millis(10u64 << attempt.clamp(1, 6).saturating_sub(1))
}

/// What a session produced: the owned reports plus cache counters.
#[derive(Clone, Debug)]
pub struct Session {
    /// `(submission_index, report)` for every owned index, in submission
    /// order. Unsharded sessions own every index.
    pub reports: Vec<(usize, CaseReport)>,
    /// Cases served from the report cache.
    pub cache_hits: usize,
    /// Cases actually executed (and recorded, when caching).
    pub cache_misses: usize,
}

impl Session {
    /// Drops the indices (valid for unsharded sessions, where they are
    /// `0..n` by construction).
    #[must_use]
    pub fn into_reports(self) -> Vec<CaseReport> {
        self.reports.into_iter().map(|(_, r)| r).collect()
    }
}

/// Merges per-shard report lists back into submission order.
///
/// # Panics
///
/// Panics if the shards do not cover every index exactly once (a merge of
/// mismatched runs would silently corrupt every downstream aggregate).
#[must_use]
pub fn merge_shards(shards: impl IntoIterator<Item = Vec<(usize, CaseReport)>>) -> Vec<CaseReport> {
    let mut all: Vec<(usize, CaseReport)> = shards.into_iter().flatten().collect();
    all.sort_by_key(|(i, _)| *i);
    for (expect, (i, _)) in all.iter().enumerate() {
        assert_eq!(
            *i, expect,
            "shard reports do not cover every submission index exactly once"
        );
    }
    all.into_iter().map(|(_, r)| r).collect()
}

/// The parallel executor.
#[derive(Clone, Copy, Debug)]
pub struct Harness {
    jobs: usize,
}

impl Default for Harness {
    fn default() -> Self {
        Harness::auto()
    }
}

impl Harness {
    /// A harness running `jobs` cases concurrently (clamped to ≥ 1).
    #[must_use]
    pub fn new(jobs: usize) -> Harness {
        Harness { jobs: jobs.max(1) }
    }

    /// A harness using all available cores.
    #[must_use]
    pub fn auto() -> Harness {
        Harness::new(available_parallelism())
    }

    /// Configured worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Executes every spec and returns the reports in submission order —
    /// the simple path with no cache, shard, or streaming.
    #[must_use]
    pub fn run(&self, registry: &Registry, specs: &[RunSpec]) -> Vec<CaseReport> {
        self.run_session(registry, specs, &SessionOpts::default())
            .into_reports()
    }

    /// Executes the owned subset of `specs` and returns the reports in
    /// submission order, serving unchanged cases from the report cache.
    ///
    /// With one job (or one owned case) the cases run inline on the
    /// calling thread — the exact sequential path. Otherwise `jobs`
    /// workers pull owned indices from a shared atomic counter; each case
    /// still runs in its own fresh kernel, so scheduling order cannot
    /// affect any report.
    #[must_use]
    pub fn run_session(
        &self,
        registry: &Registry,
        specs: &[RunSpec],
        opts: &SessionOpts<'_>,
    ) -> Session {
        let owned: Vec<usize> = (0..specs.len())
            .filter(|&i| opts.shard.is_none_or(|s| s.owns(i)))
            .collect();
        let total = owned.len();
        let hits = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let started = Instant::now();

        let run_one = |index: usize| -> CaseReport {
            let spec = &specs[index];
            let (report, cached) = match opts.cache.and_then(|c| c.load(spec)) {
                Some(report) => {
                    hits.fetch_add(1, Ordering::Relaxed);
                    (report, true)
                }
                None => {
                    let mut report = execute_spec(registry, spec);
                    let mut attempts = 0u64;
                    while attempts < opts.retries && outcome_is_transient(&report.outcome) {
                        attempts += 1;
                        std::thread::sleep(retry_backoff(attempts));
                        report = execute_spec(registry, spec);
                    }
                    // Store first: the cache holds the execution result;
                    // retry metadata is session bookkeeping, not identity.
                    if let Some(cache) = opts.cache {
                        cache.store(spec, &report);
                    }
                    report.retries = attempts;
                    report.quarantined = attempts > 0 && outcome_is_transient(&report.outcome);
                    (report, false)
                }
            };
            if let Some(cb) = opts.on_report {
                cb(index, &report, cached);
            }
            if opts.progress {
                let completed = done.fetch_add(1, Ordering::Relaxed) + 1;
                progress_line(completed, total, started);
            }
            report
        };

        let workers = self.jobs.min(total);
        let reports: Vec<CaseReport> = if workers <= 1 {
            owned.iter().map(|&i| run_one(i)).collect()
        } else {
            let next = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<CaseReport>>> =
                owned.iter().map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let slot = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&index) = owned.get(slot) else { break };
                        let report = run_one(index);
                        *slots[slot].lock().expect("slot lock poisoned") = Some(report);
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("slot lock poisoned")
                        .expect("every slot claimed exactly once")
                })
                .collect()
        };
        let cache_hits = hits.load(Ordering::Relaxed);
        Session {
            reports: owned.into_iter().zip(reports).collect(),
            cache_hits,
            cache_misses: total - cache_hits,
        }
    }
}

/// Writes the `--progress` line: throttled to ~100 updates per run so a
/// 3000-case matrix does not spam stderr, always including the final case.
fn progress_line(completed: usize, total: usize, started: Instant) {
    let step = (total / 100).max(1);
    if !completed.is_multiple_of(step) && completed != total {
        return;
    }
    let elapsed = started.elapsed().as_secs_f64();
    let eta = elapsed / completed as f64 * (total - completed) as f64;
    eprint!(
        "\rharness: {completed}/{total} cases ({}%), eta {eta:.1}s",
        completed * 100 / total.max(1)
    );
    if completed == total {
        eprintln!();
    }
}

/// The number of hardware threads available to this process (≥ 1).
#[must_use]
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn exit_with_seed_spec(name: &str, seed: u64) -> RunSpec {
        RunSpec::new(
            name,
            ProgramSpec::Exit { code: 0 },
            CodegenOpts::purecap(),
            AbiMode::CheriAbi,
        )
        .with_seed(seed)
    }

    #[test]
    fn reports_come_back_in_submission_order() {
        let registry = Registry::builtin();
        let specs: Vec<RunSpec> = (0..24)
            .map(|i| exit_with_seed_spec(&format!("case-{i}"), i))
            .collect();
        let reports = Harness::new(8).run(&registry, &specs);
        assert_eq!(reports.len(), specs.len());
        for (i, report) in reports.iter().enumerate() {
            assert_eq!(report.name, format!("case-{i}"));
            assert_eq!(
                report.outcome,
                CaseOutcome::Exited(ExitStatus::Code(i as i64 % 64))
            );
        }
    }

    #[test]
    fn parallel_reports_match_sequential_reports() {
        let registry = Registry::builtin();
        let specs: Vec<RunSpec> = (0..16)
            .map(|i| exit_with_seed_spec(&format!("case-{i}"), i * 7))
            .collect();
        let seq = Harness::new(1).run(&registry, &specs);
        let par = Harness::new(8).run(&registry, &specs);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.console, b.console);
        }
    }

    #[test]
    fn a_panicking_case_is_isolated_to_its_own_report() {
        let registry = Registry::builtin();
        let mut specs: Vec<RunSpec> = (0..6)
            .map(|i| exit_with_seed_spec(&format!("ok-{i}"), i))
            .collect();
        specs.insert(
            3,
            RunSpec::new(
                "boom",
                ProgramSpec::Boom,
                CodegenOpts::purecap(),
                AbiMode::CheriAbi,
            ),
        );
        let reports = Harness::new(4).run(&registry, &specs);
        assert_eq!(reports.len(), 7);
        assert_eq!(
            reports[3].outcome,
            CaseOutcome::Panicked("probe program `boom` always fails to build".to_string())
        );
        for (i, report) in reports.iter().enumerate() {
            if i != 3 {
                assert!(matches!(
                    report.outcome,
                    CaseOutcome::Exited(ExitStatus::Code(_))
                ));
            }
        }
    }

    #[test]
    fn unclaimed_specs_become_reports_not_panics() {
        // The builtin registry cannot lower a corpus case; the failure is
        // confined to the report like any builder panic.
        let registry = Registry::builtin();
        let spec = RunSpec::new(
            "unclaimed",
            ProgramSpec::Corpus {
                case: "no-such-case".to_string(),
            },
            CodegenOpts::purecap(),
            AbiMode::CheriAbi,
        );
        let report = execute_spec(&registry, &spec);
        assert!(
            matches!(report.outcome, CaseOutcome::Panicked(_)),
            "got {:?}",
            report.outcome
        );
    }

    #[test]
    fn deadline_reports_instead_of_stalling() {
        let registry = Registry::builtin();
        // A case that takes far longer than 5 ms of wall time; the bounded
        // instruction budget lets the abandoned thread wind down.
        let slow = RunSpec::new(
            "slow",
            ProgramSpec::Spin { iters: i64::MAX },
            CodegenOpts::mips64(),
            AbiMode::Mips64,
        )
        .with_budget(50_000_000)
        .with_deadline(Duration::from_millis(5));
        let fast = RunSpec::new(
            "fast",
            ProgramSpec::Exit { code: 1 },
            CodegenOpts::mips64(),
            AbiMode::Mips64,
        )
        .with_deadline(Duration::from_secs(60));
        let reports = Harness::new(2).run(&registry, &[slow, fast]);
        assert_eq!(reports[0].outcome, CaseOutcome::DeadlineExceeded);
        assert_eq!(reports[1].outcome, CaseOutcome::Exited(ExitStatus::Code(1)));
    }

    #[test]
    fn sharded_sessions_merge_to_the_unsharded_run() {
        let registry = Registry::builtin();
        let specs: Vec<RunSpec> = (0..11)
            .map(|i| exit_with_seed_spec(&format!("case-{i}"), i * 3))
            .collect();
        let full = Harness::new(4).run(&registry, &specs);
        let shards: Vec<Vec<(usize, CaseReport)>> = (0..3)
            .map(|index| {
                let opts = SessionOpts {
                    shard: Some(Shard { index, count: 3 }),
                    ..SessionOpts::default()
                };
                let session = Harness::new(2).run_session(&registry, &specs, &opts);
                // A shard owns exactly its round-robin indices.
                for (i, _) in &session.reports {
                    assert_eq!(i % 3, index);
                }
                session.reports
            })
            .collect();
        let merged = merge_shards(shards);
        assert_eq!(merged.len(), full.len());
        for (a, b) in merged.iter().zip(&full) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.metrics, b.metrics);
        }
    }

    #[test]
    fn shard_parsing_accepts_i_slash_n_only() {
        assert_eq!(Shard::parse("0/2"), Ok(Shard { index: 0, count: 2 }));
        assert_eq!(Shard::parse("1/2"), Ok(Shard { index: 1, count: 2 }));
        assert!(Shard::parse("2/2").is_err());
        assert!(Shard::parse("0/0").is_err());
        assert!(Shard::parse("1").is_err());
        assert!(Shard::parse("a/b").is_err());
    }

    #[test]
    fn on_report_fires_once_per_owned_case() {
        let registry = Registry::builtin();
        let specs: Vec<RunSpec> = (0..10)
            .map(|i| exit_with_seed_spec(&format!("case-{i}"), i))
            .collect();
        let seen = Mutex::new(Vec::new());
        let callback = |index: usize, report: &CaseReport, cached: bool| {
            assert!(!cached);
            seen.lock().unwrap().push((index, report.name.clone()));
        };
        let opts = SessionOpts {
            on_report: Some(&callback),
            ..SessionOpts::default()
        };
        let session = Harness::new(4).run_session(&registry, &specs, &opts);
        assert_eq!(session.cache_hits, 0);
        assert_eq!(session.cache_misses, 10);
        let mut seen = seen.into_inner().unwrap();
        seen.sort();
        let expected: Vec<(usize, String)> = (0..10).map(|i| (i, format!("case-{i}"))).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn run_spec_round_trips_through_json() {
        let spec = RunSpec::new(
            "rt",
            ProgramSpec::Bodiag {
                region: "stack".to_string(),
                tail: 0,
                access: "write".to_string(),
                idiom: "loop".to_string(),
                len: 33,
                variant: "min".to_string(),
            },
            CodegenOpts::purecap_small_clc(),
            AbiMode::CheriAbi,
        )
        .with_seed(9)
        .with_budget(1_000_000)
        .with_deadline(Duration::from_millis(750))
        .with_asan(false)
        .with_l2_size(256 * 1024);
        let text = spec.to_json().to_string();
        let back = RunSpec::from_json(&json::parse(&text).expect("parses")).expect("decodes");
        assert_eq!(back, spec);
        assert_eq!(back.to_json().to_string(), text);
    }

    #[test]
    fn exec_mode_encodes_only_when_not_default_and_decodes_legacy_keys() {
        let plain = exit_with_seed_spec("mode", 0);
        let text = plain.to_json().to_string();
        // The default tier encodes to nothing: pre-template spec JSON (and
        // every existing golden) stays byte-identical.
        assert!(!text.contains("exec_mode"), "{text}");
        assert!(!text.contains("fast_path"), "{text}");
        assert!(!text.contains("weaken_flush"), "{text}");
        for (mode, label) in [
            (ExecMode::SingleStep, Some("\"exec_mode\":\"single\"")),
            (ExecMode::Superblock, Some("\"exec_mode\":\"superblock\"")),
            (ExecMode::Template, None),
        ] {
            let spec = plain.clone().with_exec_mode(mode);
            let text = spec.to_json().to_string();
            match label {
                Some(l) => assert!(text.contains(l), "{text}"),
                None => assert!(!text.contains("exec_mode"), "{text}"),
            }
            let back = RunSpec::from_json(&json::parse(&text).expect("parses")).expect("decodes");
            assert_eq!(back, spec);
            assert_eq!(back.to_json().to_string(), text);
        }
        // The legacy two-tier key still decodes: `false` was the
        // single-step interpreter, `true` the (then two-tier) fast path.
        for (legacy, mode) in [
            ("\"fast_path\":false", ExecMode::SingleStep),
            ("\"fast_path\":true", ExecMode::Template),
        ] {
            let text = text.replace("\"trace\":false", &format!("\"trace\":false,{legacy}"));
            let back = RunSpec::from_json(&json::parse(&text).expect("parses")).expect("decodes");
            assert_eq!(back.exec_mode, mode, "{legacy}");
        }
        // And the builder alias maps onto the tiers.
        assert_eq!(
            plain.clone().with_fast_path(false).exec_mode,
            ExecMode::SingleStep
        );
        assert_eq!(
            plain.clone().with_fast_path(true).exec_mode,
            ExecMode::Template
        );
        // weaken_flush encodes only when set, and round-trips.
        let weakened = plain.with_weaken_flush(true);
        let text = weakened.to_json().to_string();
        assert!(text.contains("\"weaken_flush\":true"), "{text}");
        let back = RunSpec::from_json(&json::parse(&text).expect("parses")).expect("decodes");
        assert_eq!(back, weakened);
    }

    #[test]
    fn reports_round_trip_through_json() {
        let registry = Registry::builtin();
        let statuses = [
            CaseOutcome::Exited(ExitStatus::Code(7)),
            CaseOutcome::Exited(ExitStatus::Fault(TrapCause::Cap(CapFault::LengthViolation))),
            CaseOutcome::Exited(ExitStatus::Fault(TrapCause::Vm(VmError::Unmapped(4096)))),
            CaseOutcome::Exited(ExitStatus::SanitizerAbort),
            CaseOutcome::Exited(ExitStatus::BudgetExhausted),
            CaseOutcome::Exited(ExitStatus::Signaled(9)),
            CaseOutcome::LoadFailed("no entry".to_string()),
            CaseOutcome::Panicked("builder \"exploded\"\n".to_string()),
            CaseOutcome::DeadlineExceeded,
            CaseOutcome::Deadlock("pid3: pipe-read(0); pid4: pipe-write(1)".to_string()),
            CaseOutcome::Divergence(
                "divergence at pc=0x10000 instret=4: register state diverged: c15".to_string(),
            ),
        ];
        for outcome in statuses {
            let report = CaseReport {
                name: "rt".to_string(),
                seed: 3,
                outcome,
                console: "hello\n".to_string(),
                metrics: Metrics {
                    instructions: 10,
                    cycles: 25,
                    l2_misses: 1,
                    syscalls: 2,
                },
                wall: Duration::from_micros(1234),
                cap_cdf: None,
                retries: 0,
                quarantined: false,
                faults: None,
                host: None,
                scenario: None,
                membrane: None,
            };
            let text = report.to_json().to_string();
            let back =
                CaseReport::from_json(&json::parse(&text).expect("parses")).expect("decodes");
            assert_eq!(back, report);
            assert_eq!(back.to_json().to_string(), text, "byte-identical re-encode");
        }
        // And a real run's report round-trips too.
        let report = execute_spec(&registry, &exit_with_seed_spec("real", 5));
        let back =
            CaseReport::from_json(&json::parse(&report.to_json().to_string()).expect("parses"))
                .expect("decodes");
        assert_eq!(back, report);
    }

    #[test]
    fn tagged_lines_carry_the_submission_index() {
        let report = CaseReport {
            name: "t".to_string(),
            seed: 0,
            outcome: CaseOutcome::Exited(ExitStatus::Code(0)),
            console: String::new(),
            metrics: Metrics::default(),
            wall: Duration::ZERO,
            cap_cdf: None,
            retries: 0,
            quarantined: false,
            faults: None,
            host: None,
            scenario: None,
            membrane: None,
        };
        let line = report.to_json_tagged(12).to_string();
        assert!(line.starts_with("{\"case\":12,\"name\":\"t\""), "{line}");
    }

    #[test]
    fn swap_io_traps_round_trip_through_json() {
        let status = ExitStatus::Fault(TrapCause::Vm(VmError::SwapIo(8192)));
        let text = exit_status_to_json(status).to_string();
        assert!(text.contains("vm:swap-io:8192"), "{text}");
        let back = exit_status_from_json(&json::parse(&text).expect("parses")).expect("decodes");
        assert_eq!(back, status);
    }

    #[test]
    fn retry_metadata_round_trips_but_plain_reports_omit_it() {
        use crate::fault::FaultCounters;
        let mut report = CaseReport {
            name: "rt".to_string(),
            seed: 1,
            outcome: CaseOutcome::Panicked("flaky".to_string()),
            console: String::new(),
            metrics: Metrics::default(),
            wall: Duration::from_micros(5),
            cap_cdf: None,
            retries: 3,
            quarantined: true,
            faults: Some(FaultCounters {
                flips: 1,
                tags_cleared: 1,
                ..FaultCounters::default()
            }),
            host: None,
            scenario: None,
            membrane: None,
        };
        let text = report.to_json().to_string();
        assert!(text.contains("\"retries\":3"), "{text}");
        assert!(text.contains("\"quarantined\":true"), "{text}");
        assert!(text.contains("\"faults\":{"), "{text}");
        let back = CaseReport::from_json(&json::parse(&text).expect("parses")).expect("decodes");
        assert_eq!(back, report);
        assert_eq!(back.to_json().to_string(), text, "byte-identical re-encode");
        // A plain report encodes without any of the tail fields, so every
        // pre-fault-plane golden (and cache entry) stays byte-identical.
        report.retries = 0;
        report.quarantined = false;
        report.faults = None;
        let plain = report.to_json().to_string();
        assert!(!plain.contains("retries"), "{plain}");
        assert!(!plain.contains("quarantined"), "{plain}");
        assert!(!plain.contains("faults"), "{plain}");
        let back = CaseReport::from_json(&json::parse(&plain).expect("parses")).expect("decodes");
        assert_eq!(back, report, "absent tail fields decode to defaults");
    }

    #[test]
    fn fault_plans_ride_run_spec_json() {
        use crate::fault::{FaultKind, FaultPlan};
        let plain = exit_with_seed_spec("f", 4);
        let plain_text = plain.to_json().to_string();
        assert!(!plain_text.contains("\"fault\":"), "{plain_text}");
        // Pre-fault-plane JSON (no `fault` key) still decodes.
        let back = RunSpec::from_json(&json::parse(&plain_text).expect("parses")).expect("decodes");
        assert_eq!(back, plain);
        // And a planned spec round-trips byte-identically.
        let planned = plain.with_fault(FaultPlan::new(FaultKind::BitFlipCap {
            after_writes: 40,
            bit: 3,
        }));
        let text = planned.to_json().to_string();
        assert!(
            text.contains("\"fault\":{\"kind\":\"bit-flip-cap\""),
            "{text}"
        );
        let back = RunSpec::from_json(&json::parse(&text).expect("parses")).expect("decodes");
        assert_eq!(back, planned);
        assert_eq!(back.to_json().to_string(), text);
    }

    #[test]
    fn oracle_modes_ride_run_spec_json() {
        let plain = exit_with_seed_spec("o", 4);
        let plain_text = plain.to_json().to_string();
        assert!(!plain_text.contains("\"oracle\""), "{plain_text}");
        assert!(!plain_text.contains("weaken_sem"), "{plain_text}");
        // Pre-oracle-plane JSON (no `oracle`/`weaken_sem` keys) still
        // decodes.
        let back = RunSpec::from_json(&json::parse(&plain_text).expect("parses")).expect("decodes");
        assert_eq!(back, plain);
        // And an oracle spec round-trips byte-identically.
        for (mode, label) in [
            (OracleMode::Lockstep, "\"oracle\":\"lockstep\""),
            (OracleMode::Replay, "\"oracle\":\"replay\""),
        ] {
            let spec = plain.clone().with_oracle(mode).with_weaken_sem(true);
            let text = spec.to_json().to_string();
            assert!(text.contains(label), "{text}");
            assert!(text.contains("\"weaken_sem\":true"), "{text}");
            let back = RunSpec::from_json(&json::parse(&text).expect("parses")).expect("decodes");
            assert_eq!(back, spec);
            assert_eq!(back.to_json().to_string(), text);
        }
    }

    #[test]
    fn oracle_runs_are_clean_and_report_identically_to_plain_runs() {
        let registry = Registry::builtin();
        let programs = [
            (
                ProgramSpec::Exit { code: 3 },
                CodegenOpts::purecap(),
                AbiMode::CheriAbi,
            ),
            (
                ProgramSpec::CapChurn { iters: 8 },
                CodegenOpts::purecap(),
                AbiMode::CheriAbi,
            ),
            (
                ProgramSpec::Spin { iters: 50 },
                CodegenOpts::mips64(),
                AbiMode::Mips64,
            ),
        ];
        for (i, (program, opts, abi)) in programs.into_iter().enumerate() {
            let plain = RunSpec::new(format!("case-{i}"), program, opts, abi).with_seed(i as u64);
            let baseline = execute_spec(&registry, &plain);
            assert!(
                !matches!(baseline.outcome, CaseOutcome::Divergence(_)),
                "got {:?}",
                baseline.outcome
            );
            for mode in [OracleMode::Lockstep, OracleMode::Replay] {
                let report = execute_spec(&registry, &plain.clone().with_oracle(mode));
                assert_eq!(report.outcome, baseline.outcome, "{mode:?}");
                assert_eq!(report.console, baseline.console, "{mode:?}");
                assert_eq!(report.metrics, baseline.metrics, "{mode:?}");
                assert_eq!(
                    report.to_json_deterministic(0).to_string(),
                    baseline.to_json_deterministic(0).to_string(),
                    "{mode:?} must not perturb the deterministic line"
                );
            }
        }
    }

    #[test]
    fn oracle_sessions_are_deterministic_across_job_counts() {
        let registry = Registry::builtin();
        let specs: Vec<RunSpec> = (0..8)
            .map(|i| {
                exit_with_seed_spec(&format!("case-{i}"), i).with_oracle(if i % 2 == 0 {
                    OracleMode::Lockstep
                } else {
                    OracleMode::Replay
                })
            })
            .collect();
        let seq = Harness::new(1).run(&registry, &specs);
        let par = Harness::new(8).run(&registry, &specs);
        for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
            assert_eq!(
                a.to_json_deterministic(i).to_string(),
                b.to_json_deterministic(i).to_string()
            );
        }
    }

    #[test]
    fn membrane_fields_ride_run_spec_json() {
        let plain = exit_with_seed_spec("m", 4);
        let plain_text = plain.to_json().to_string();
        assert!(!plain_text.contains("abi_mode"), "{plain_text}");
        assert!(!plain_text.contains("oracle_every"), "{plain_text}");
        assert!(!plain_text.contains("weaken_quarantine"), "{plain_text}");
        // The defaults encode to nothing: explicit strict / every=1 specs
        // are byte-identical to untouched ones (goldens stay valid).
        assert_eq!(
            plain
                .clone()
                .with_abi_mode(MembraneMode::Strict)
                .with_oracle_every(1)
                .to_json()
                .to_string(),
            plain_text
        );
        // Pre-membrane JSON still decodes.
        let back = RunSpec::from_json(&json::parse(&plain_text).expect("parses")).expect("decodes");
        assert_eq!(back, plain);
        // And a hardened spec round-trips byte-identically.
        let hardened = plain
            .clone()
            .with_abi_mode(MembraneMode::Hardened)
            .with_oracle_every(64)
            .with_weaken_quarantine(true);
        let text = hardened.to_json().to_string();
        assert!(text.contains("\"abi_mode\":\"hardened\""), "{text}");
        assert!(text.contains("\"oracle_every\":64"), "{text}");
        assert!(text.contains("\"weaken_quarantine\":true"), "{text}");
        let back = RunSpec::from_json(&json::parse(&text).expect("parses")).expect("decodes");
        assert_eq!(back, hardened);
        assert_eq!(back.to_json().to_string(), text);
    }

    #[test]
    fn sampled_lockstep_matches_full_lockstep() {
        let registry = Registry::builtin();
        for (program, opts, abi) in [
            (
                ProgramSpec::CapChurn { iters: 12 },
                CodegenOpts::purecap(),
                AbiMode::CheriAbi,
            ),
            (
                ProgramSpec::Spin { iters: 40 },
                CodegenOpts::mips64(),
                AbiMode::Mips64,
            ),
        ] {
            let base =
                RunSpec::new("sampled", program, opts, abi).with_oracle(OracleMode::Lockstep);
            let implicit = execute_spec(&registry, &base);
            let full = execute_spec(&registry, &base.clone().with_oracle_every(1));
            let sampled = execute_spec(&registry, &base.clone().with_oracle_every(3));
            assert!(
                !matches!(implicit.outcome, CaseOutcome::Divergence(_)),
                "got {:?}",
                implicit.outcome
            );
            // every=1 ≡ the implicit full-lockstep default, and sampling
            // must not perturb the deterministic report either.
            for (label, report) in [("every=1", &full), ("every=3", &sampled)] {
                assert_eq!(
                    report.to_json_deterministic(0).to_string(),
                    implicit.to_json_deterministic(0).to_string(),
                    "{label}"
                );
            }
        }
    }

    fn lower_free_churn(
        spec: &ProgramSpec,
        opts: CodegenOpts,
        _seed: u64,
    ) -> Option<cheri_rtld::Program> {
        use crate::guest::GuestOps;
        use cheri_isa::codegen::Ptr;
        match spec {
            ProgramSpec::Corpus { case } if case == "free-churn" => {
                Some(crate::spec::single_main("free-churn", opts, |f| {
                    // Enough churn to push bytes through the quarantine
                    // (and, in hardened mode, across the sweep threshold).
                    for _ in 0..40 {
                        f.malloc_imm(Ptr(0), 512);
                        f.free(Ptr(0));
                    }
                    f.sys_exit_imm(0);
                }))
            }
            _ => None,
        }
    }

    #[test]
    fn hardened_membrane_evidence_is_deterministic_across_job_counts() {
        let registry = Registry::builtin().with(lower_free_churn);
        let spec = RunSpec::new(
            "churn",
            ProgramSpec::Corpus {
                case: "free-churn".to_string(),
            },
            CodegenOpts::purecap(),
            AbiMode::CheriAbi,
        );
        // Strict runs carry no membrane block — reports stay byte-identical
        // to before the membrane existed.
        let strict = execute_spec(&registry, &spec);
        assert_eq!(strict.outcome, CaseOutcome::Exited(ExitStatus::Code(0)));
        assert!(strict.membrane.is_none());
        assert!(!strict.to_json().to_string().contains("membrane"));
        // Hardened runs do, with non-zero deterministic counters, identical
        // across job counts and lockstep-clean.
        let hardened = spec.with_abi_mode(MembraneMode::Hardened);
        let specs: Vec<RunSpec> = (0..8)
            .map(|i| {
                let mut s = hardened.clone();
                s.name = format!("churn-{i}");
                s
            })
            .collect();
        let seq = Harness::new(1).run(&registry, &specs);
        let par = Harness::new(8).run(&registry, &specs);
        for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
            assert_eq!(
                a.to_json_deterministic(i).to_string(),
                b.to_json_deterministic(i).to_string()
            );
            let ev = a.membrane.expect("hardened runs attach evidence");
            assert!(ev.quarantine_bytes > 0, "frees were quarantined: {ev:?}");
            assert!(ev.swept_caps == 0, "no stale caps here: {ev:?}");
            assert!(
                a.to_json_deterministic(i).to_string().contains("membrane"),
                "evidence is part of the deterministic line"
            );
        }
        // Hardened repairs are semantics-preserving: lockstep stays clean.
        let locked = execute_spec(
            &registry,
            &hardened.clone().with_oracle(OracleMode::Lockstep),
        );
        assert_eq!(locked.outcome, CaseOutcome::Exited(ExitStatus::Code(0)));
    }

    #[test]
    fn retries_rerun_transient_cases_then_quarantine() {
        let registry = Registry::builtin();
        let specs = vec![
            RunSpec::new(
                "boom",
                ProgramSpec::Boom,
                CodegenOpts::purecap(),
                AbiMode::CheriAbi,
            ),
            exit_with_seed_spec("fine", 2),
        ];
        let opts = SessionOpts {
            retries: 2,
            ..SessionOpts::default()
        };
        let session = Harness::new(1).run_session(&registry, &specs, &opts);
        let reports = session.into_reports();
        assert!(matches!(reports[0].outcome, CaseOutcome::Panicked(_)));
        assert_eq!(reports[0].retries, 2, "both retries spent");
        assert!(reports[0].quarantined, "still transient => quarantined");
        assert_eq!(reports[1].retries, 0, "healthy cases are not retried");
        assert!(!reports[1].quarantined);
        // Backoff is a pure function of the attempt number.
        assert_eq!(retry_backoff(1), Duration::from_millis(10));
        assert_eq!(retry_backoff(2), Duration::from_millis(20));
        assert_eq!(retry_backoff(100), Duration::from_millis(320));
        assert!(outcome_is_transient(&CaseOutcome::DeadlineExceeded));
        assert!(!outcome_is_transient(&CaseOutcome::Exited(
            ExitStatus::Code(0)
        )));
    }

    #[test]
    fn retry_schedule_is_deterministic_across_job_counts() {
        // The fleet re-dispatch machinery reuses the harness retry policy,
        // so the whole schedule — how many attempts each case spends and
        // the backoff before each — must be a pure function of the spec
        // (seed, case index), never of host timing or worker interleaving.
        let registry = Registry::builtin();
        let specs: Vec<RunSpec> = (0..8)
            .map(|i| {
                if i % 3 == 0 {
                    // Transient: every Boom panics deterministically, so it
                    // spends the full retry budget.
                    RunSpec::new(
                        format!("boom-{i}"),
                        ProgramSpec::Boom,
                        CodegenOpts::purecap(),
                        AbiMode::CheriAbi,
                    )
                    .with_seed(i)
                } else {
                    exit_with_seed_spec("fine", i)
                }
            })
            .collect();
        let opts = SessionOpts {
            retries: 3,
            ..SessionOpts::default()
        };
        let schedule = |reports: &[CaseReport]| -> Vec<(u64, Vec<Duration>)> {
            reports
                .iter()
                .map(|r| (r.retries, (1..=r.retries).map(retry_backoff).collect()))
                .collect()
        };
        let solo = Harness::new(1).run_session(&registry, &specs, &opts);
        let wide = Harness::new(8).run_session(&registry, &specs, &opts);
        let solo_reports = solo.into_reports();
        let wide_reports = wide.into_reports();
        assert_eq!(
            schedule(&solo_reports),
            schedule(&wide_reports),
            "attempt counts and delays are identical at --jobs 1 and --jobs 8"
        );
        // And the schedule is exactly what the spec predicts: the full
        // budget for deterministic panickers, nothing for healthy cases.
        for (i, (attempts, delays)) in schedule(&solo_reports).iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(*attempts, 3, "case {i}");
                assert_eq!(
                    delays.as_slice(),
                    [
                        Duration::from_millis(10),
                        Duration::from_millis(20),
                        Duration::from_millis(40)
                    ],
                    "case {i}"
                );
            } else {
                assert_eq!(*attempts, 0, "case {i}");
                assert!(delays.is_empty(), "case {i}");
            }
        }
        // The re-run of an identical session reproduces the schedule too:
        // no jitter anywhere in the policy.
        let again = Harness::new(8).run_session(&registry, &specs, &opts);
        assert_eq!(schedule(&again.into_reports()), schedule(&solo_reports));
        // Full-report determinism across job counts, metadata included.
        for (i, (a, b)) in solo_reports.iter().zip(&wide_reports).enumerate() {
            assert_eq!(
                a.to_json_deterministic(i).to_string(),
                b.to_json_deterministic(i).to_string()
            );
            assert_eq!(a.quarantined, b.quarantined);
        }
    }

    #[test]
    fn faulted_specs_collect_counters_without_host_panics() {
        use crate::fault::{FaultKind, FaultPlan};
        let registry = Registry::builtin();
        // A transparent EINTR: malloc is an eligible syscall, so the
        // injection fires and the guest still exits with its normal code.
        let spec = RunSpec::new(
            "eintr",
            ProgramSpec::CapChurn { iters: 10 },
            CodegenOpts::purecap(),
            AbiMode::CheriAbi,
        )
        .with_fault(FaultPlan::new(FaultKind::SyscallEintr { at: 1 }));
        let report = execute_spec(&registry, &spec);
        assert_eq!(report.outcome, CaseOutcome::Exited(ExitStatus::Code(9)));
        let counters = report.faults.expect("faulted spec harvests counters");
        assert_eq!(counters.eintr_injected, 1);
        // A capability bit-flip with proper semantics: the run must end in
        // a clean exit or a clean guest fault — never a panic, and never a
        // still-tagged corrupted capability.
        let spec = RunSpec::new(
            "flip",
            ProgramSpec::CapChurn { iters: 10 },
            CodegenOpts::purecap(),
            AbiMode::CheriAbi,
        )
        .with_fault(FaultPlan::new(FaultKind::BitFlipCap {
            after_writes: 50,
            bit: 1,
        }));
        let report = execute_spec(&registry, &spec);
        assert!(
            matches!(report.outcome, CaseOutcome::Exited(_)),
            "got {:?}",
            report.outcome
        );
        let counters = report.faults.expect("harvested");
        assert_eq!(counters.tags_preserved, 0);
        assert_eq!(counters.corrupt_cap_loads, 0, "no escapes");
        // An unfaulted spec carries no counters at all.
        let plain = execute_spec(&registry, &exit_with_seed_spec("plain", 0));
        assert!(plain.faults.is_none());
    }

    #[test]
    fn traced_specs_collect_the_capability_cdf() {
        let registry = Registry::builtin();
        let spec = exit_with_seed_spec("traced", 0).with_trace(true);
        let report = execute_spec(&registry, &spec);
        let cdf = report.cap_cdf.expect("trace collected");
        assert!(cdf.total() > 0, "even exit(0) derives capabilities");
        let untraced = execute_spec(&registry, &exit_with_seed_spec("plain", 0));
        assert!(untraced.cap_cdf.is_none());
    }
}
