//! Runs the complete BOdiagsuite (291 cases × 4 variants × 3 configs) and
//! checks the Table 3 shape.

use bodiagsuite::{all_cases, run_table3, Config};

#[test]
fn table3_shape_holds() {
    let cases = all_cases();
    let table = run_table3(&cases);
    println!("{table}");
    assert!(
        table.false_positives.is_empty(),
        "ok-variants must pass: {:?}",
        table.false_positives
    );
    let get = |c: Config| {
        table
            .detected
            .iter()
            .find(|(cc, _)| *cc == c)
            .map(|(_, v)| *v)
            .expect("config present")
    };
    let m = get(Config::Mips64);
    let ch = get(Config::CheriAbi);
    let asan = get(Config::Asan);

    // CheriABI: misses exactly the 12 intra-object cases at min, the 2
    // deep-tail cases at med, and nothing at large (paper: 279/289/291).
    assert_eq!(ch, [279, 289, 291], "cheriabi");
    // ASan: additionally blind to the 3 global-adjacent cases
    // (paper: 276/286/286).
    assert_eq!(asan[0], 276, "asan min");
    assert_eq!(asan[1], 286, "asan med");
    assert!(asan[2] >= 286, "asan large");
    // mips64 catches (almost) nothing until overflows reach unmapped
    // memory (paper: 4/8/175).
    assert!(m[0] <= 8, "mips64 min: {}", m[0]);
    assert!(m[1] <= 16, "mips64 med: {}", m[1]);
    assert!(m[2] >= 120 && m[2] <= 220, "mips64 large: {}", m[2]);
    // Ordering: CheriABI strictly dominates ASan, which dominates mips64.
    for i in 0..3 {
        assert!(ch[i] >= asan[i], "cheriabi >= asan at {i}");
        assert!(asan[i] >= m[i], "asan >= mips64 at {i}");
    }
}
