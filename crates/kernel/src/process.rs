//! The process table entry.

use crate::abi::AbiMode;
use cheri_alloc::Allocator;
use cheri_cap::{Capability, PrincipalId};
use cheri_cpu::{RegFile, TrapCause};
use cheri_rtld::LoadedProgram;
use cheri_vm::AsId;
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Process identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Pid(pub u64);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// Why a process finished.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExitStatus {
    /// Voluntary `exit(code)`.
    Code(i64),
    /// Killed by an unhandled trap (the CheriABI `SIGPROT` path records the
    /// capability fault that raised it).
    Fault(TrapCause),
    /// Killed by an unhandled signal.
    Signaled(u8),
    /// The AddressSanitizer instrumentation aborted the program (`break`).
    SanitizerAbort,
    /// The kernel's per-process instruction budget ran out (runaway guard).
    BudgetExhausted,
}

impl ExitStatus {
    /// True if the process was stopped by a memory-safety detector
    /// (capability fault or sanitizer abort) — the Table 3 "detected"
    /// predicate.
    #[must_use]
    pub fn is_safety_stop(self) -> bool {
        matches!(self, ExitStatus::Fault(_) | ExitStatus::SanitizerAbort)
    }
}

/// What a blocked process is waiting for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitReason {
    /// Readable data (or EOF) on a pipe.
    PipeReadable(u64),
    /// Buffer space (or reader loss) on a pipe.
    PipeWritable(u64),
    /// Exit of a child (or any child if `None`).
    Child(Option<Pid>),
    /// A registered kevent to fire.
    Kevent,
    /// Readiness of any read-set fd in a `select` call (bitmap of fds).
    Select(u64),
    /// Stopped by a tracer (`ptrace` attach).
    Traced,
}

/// Scheduling state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcState {
    /// Eligible to run.
    Runnable,
    /// Waiting; the pending syscall is retried when the condition holds.
    Blocked(WaitReason),
    /// Finished.
    Exited(ExitStatus),
}

/// An open file description.
#[derive(Clone, Debug)]
pub enum FileDesc {
    /// Process stdout/stderr; bytes are captured per process.
    Console,
    /// Read end of a pipe.
    PipeRead(u64),
    /// Write end of a pipe.
    PipeWrite(u64),
    /// A memory-filesystem file and cursor.
    File {
        /// Path key in the kernel's memfs.
        path: String,
        /// Read/write cursor.
        pos: u64,
        /// Opened writable.
        writable: bool,
    },
}

/// A registered kevent (the paper's example of a syscall that stores user
/// pointers in kernel structures: "we have modified the kernel structures
/// to store capabilities").
#[derive(Clone, Copy, Debug)]
pub struct KqEntry {
    /// Identifier (an fd).
    pub ident: u64,
    /// User data pointer, stored as a full capability so the tag survives
    /// the round trip through the kernel.
    pub udata: Capability,
    /// Whether the event has fired and awaits collection.
    pub fired: bool,
}

/// One simulated process (single-threaded).
pub struct Process {
    /// Process id.
    pub pid: Pid,
    /// Parent, if any.
    pub parent: Option<Pid>,
    /// ABI this process runs under.
    pub abi: AbiMode,
    /// Its address space.
    pub space: AsId,
    /// Its abstract principal (== address-space principal).
    pub principal: PrincipalId,
    /// Saved architectural registers.
    pub regs: RegFile,
    /// Scheduling state.
    pub state: ProcState,
    /// Userspace allocator state (runtime service).
    pub allocator: Allocator,
    /// File descriptor table.
    pub fds: Vec<Option<FileDesc>>,
    /// Signal handlers: signal -> handler function address.
    pub sighandlers: HashMap<u8, u64>,
    /// Signals queued for delivery.
    pub pending_signals: VecDeque<u8>,
    /// Stack of signal-frame addresses (for nested delivery/sigreturn).
    pub signal_frames: Vec<u64>,
    /// Captured console output.
    pub console: Vec<u8>,
    /// The loaded program image (symbols, trampoline, TLS).
    pub loaded: LoadedProgram,
    /// Trampoline page PC for signal return.
    pub trampoline_pc: u64,
    /// kevent registrations.
    pub kq: Vec<KqEntry>,
    /// Children.
    pub children: Vec<Pid>,
    /// Exited children awaiting `waitpid`.
    pub zombies: Vec<(Pid, ExitStatus)>,
    /// Tracer process, if being debugged.
    pub traced_by: Option<Pid>,
    /// Pending swap-I/O retry site `(pc, vaddr)`: set after the first
    /// `SwapIo` trap at that site so a repeat becomes SIGBUS instead of an
    /// unbounded retry loop. Cleared whenever a slice ends without one.
    pub swap_retry: Option<(u64, u64)>,
    /// Instruction budget left (runaway guard).
    pub instr_budget: u64,
    /// Guest cycles this process has consumed (scheduler-maintained ledger;
    /// includes kernel work performed on its behalf during its slices).
    pub cycles: u64,
    /// Whether the process was built with asan instrumentation.
    pub asan: bool,
    /// Top of the stack mapping.
    pub stack_top: u64,
    /// Size of the stack mapping.
    pub stack_size: u64,
}

impl fmt::Debug for Process {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Process{{{} {} {:?}}}", self.pid, self.abi, self.state)
    }
}

impl Process {
    /// Allocates the lowest free fd slot.
    pub fn install_fd(&mut self, desc: FileDesc) -> u64 {
        for (i, slot) in self.fds.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(desc);
                return i as u64;
            }
        }
        self.fds.push(Some(desc));
        self.fds.len() as u64 - 1
    }

    /// Looks up an fd.
    #[must_use]
    pub fn fd(&self, fd: u64) -> Option<&FileDesc> {
        self.fds.get(fd as usize).and_then(Option::as_ref)
    }

    /// The captured console output as UTF-8 (lossy).
    #[must_use]
    pub fn console_string(&self) -> String {
        String::from_utf8_lossy(&self.console).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_status_safety_classification() {
        use cheri_cap::CapFault;
        assert!(ExitStatus::Fault(TrapCause::Cap(CapFault::LengthViolation)).is_safety_stop());
        assert!(ExitStatus::SanitizerAbort.is_safety_stop());
        assert!(!ExitStatus::Code(0).is_safety_stop());
        assert!(!ExitStatus::Signaled(9).is_safety_stop());
    }
}
